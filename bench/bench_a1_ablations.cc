// A1: design-choice ablations beyond the paper's baseline configuration
// — each knob isolated on an otherwise identical workload:
//   (a) the 2PC read-only optimization (read-only participants skip
//       phase 2 and release locks at prepare time);
//   (b) name-server schema caching (per-site cache vs a lookup round
//       per item per transaction);
//   (c) QC broadcast reads (contact every copy, take the first quorum)
//       vs minimal preferred subsets, on a lossy network;
//   (d) primary-copy replication vs QC and ROWA on the same mix.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("A1", "protocol-option ablations");

  {
    Experiment exp("(a) 2PC read-only optimization, 80% read mix");
    for (bool opt : {false, true}) {
      Experiment::Point p;
      p.label = opt ? "on" : "off";
      p.system.seed = 111;
      p.system.num_sites = 4;
      p.system.protocols.readonly_optimization = opt;
      p.system.AddUniformItems(80, 100, 3);
      p.workload.seed = 112;
      p.workload.num_txns = 300;
      p.workload.mpl = 6;
      p.workload.read_fraction = 0.8;
      exp.AddPoint(std::move(p));
    }
    if (int rc = bench::RunAndPrint(
            exp, {metrics::MsgsPerCommit(), metrics::MeanResponseMs(),
                  metrics::CommitRate(), metrics::Throughput()});
        rc != 0) {
      return rc;
    }
  }
  {
    Experiment exp("(b) name-server schema caching");
    for (bool cache : {true, false}) {
      Experiment::Point p;
      p.label = cache ? "cached" : "lookup-per-txn";
      p.system.seed = 113;
      p.system.num_sites = 4;
      p.system.protocols.cache_schema = cache;
      p.system.AddUniformItems(80, 100, 3);
      p.workload.seed = 114;
      p.workload.num_txns = 300;
      p.workload.mpl = 6;
      exp.AddPoint(std::move(p));
    }
    if (int rc = bench::RunAndPrint(
            exp, {metrics::MsgsPerCommit(), metrics::MeanResponseMs(),
                  metrics::Throughput()});
        rc != 0) {
      return rc;
    }
  }
  {
    Experiment exp("(c) QC read strategy on a 2%-lossy network");
    for (bool broadcast : {false, true}) {
      Experiment::Point p;
      p.label = broadcast ? "broadcast" : "subset";
      p.system.seed = 115;
      p.system.num_sites = 5;
      p.system.message_loss = 0.02;
      p.system.protocols.rcp_broadcast = broadcast;
      p.system.AddUniformItems(100, 100, 5);
      p.workload.seed = 116;
      p.workload.num_txns = 300;
      p.workload.mpl = 6;
      p.workload.read_fraction = 0.7;
      exp.AddPoint(std::move(p));
    }
    if (int rc = bench::RunAndPrint(
            exp, {metrics::CommitRate(), metrics::AbortRateRcp(),
                  metrics::MsgsPerCommit(), metrics::MeanResponseMs()});
        rc != 0) {
      return rc;
    }
  }
  {
    Experiment exp("(d) RCP matrix incl. primary copy, 60% reads");
    for (RcpKind rcp : {RcpKind::kQuorumConsensus, RcpKind::kRowa,
                        RcpKind::kPrimaryCopy}) {
      Experiment::Point p;
      p.label = RcpKindName(rcp);
      p.system.seed = 117;
      p.system.num_sites = 4;
      p.system.protocols.rcp = rcp;
      p.system.AddUniformItems(80, 100, 3);
      p.workload.seed = 118;
      p.workload.num_txns = 300;
      p.workload.mpl = 6;
      p.workload.read_fraction = 0.6;
      exp.AddPoint(std::move(p));
    }
    if (int rc = bench::RunAndPrint(
            exp, {metrics::CommitRate(), metrics::MsgsPerCommit(),
                  metrics::MeanResponseMs(), metrics::Throughput()});
        rc != 0) {
      return rc;
    }
  }
  {
    Experiment exp(
        "(e) restart fairness: wait-die retries with fresh vs inherited "
        "timestamps\n    (6 hot items, write-heavy, up to 25 retries)");
    for (bool inherit : {false, true}) {
      Experiment::Point p;
      p.label = inherit ? "inherit-ts" : "fresh-ts";
      p.system.seed = 119;
      p.system.num_sites = 3;
      p.system.AddUniformItems(6, 0, 3);
      p.workload.seed = 120;
      p.workload.num_txns = 60;
      p.workload.mpl = 6;
      p.workload.ops_min = 2;
      p.workload.ops_max = 3;
      p.workload.read_fraction = 0.2;
      p.workload.max_retries = 25;
      p.workload.retry_inherit_timestamp = inherit;
      p.options.max_duration = Seconds(120);
      exp.AddPoint(std::move(p));
    }
    if (int rc = bench::RunAndPrint(
            exp, {metrics::Committed(), metrics::Retries(),
                  metrics::MeanResponseMs()});
        rc != 0) {
      return rc;
    }
  }
  std::cout
      << "reading: (a) saves one decision+ack pair per read-only\n"
         "participant; (b) caching removes two lookup messages per item\n"
         "per transaction; (c) broadcast reads survive losses that abort\n"
         "subset reads, at higher message cost; (d) primary copy pays\n"
         "ROWA-like write fan-out but centralizes CC at one site; (e)\n"
         "restarts that keep their original timestamp (wait-die fairness)\n"
         "complete more logical transactions within the retry budget\n"
         "(their seniority stops the starvation), though total attempts\n"
         "can rise as the elders force younger requesters to restart.\n";
  return 0;
}
