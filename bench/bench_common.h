#ifndef RAINBOW_BENCH_BENCH_COMMON_H_
#define RAINBOW_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment benches. Each bench binary
// regenerates one table/figure from the Rainbow experiment index
// (DESIGN.md §4) and prints the rows the paper's progress monitor would
// display.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/experiment.h"
#include "core/session.h"

namespace rainbow::bench {

inline void PrintHeader(const std::string& id, const std::string& what) {
  std::cout << "==============================================================\n";
  std::cout << id << ": " << what << "\n";
  std::cout << "==============================================================\n";
}

/// Runs the experiment and prints the table; exits non-zero on failure.
inline int RunAndPrint(Experiment& exp,
                       const std::vector<Experiment::Metric>& columns) {
  Status s = exp.Run();
  if (!s.ok()) {
    std::cerr << "experiment failed: " << s << "\n";
    return 1;
  }
  std::cout << exp.RenderTable(columns) << "\n";
  return 0;
}

}  // namespace rainbow::bench

#endif  // RAINBOW_BENCH_BENCH_COMMON_H_
