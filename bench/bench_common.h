#ifndef RAINBOW_BENCH_BENCH_COMMON_H_
#define RAINBOW_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment benches. Each bench binary
// regenerates one table/figure from the Rainbow experiment index
// (DESIGN.md §4) and prints the rows the paper's progress monitor would
// display.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/experiment.h"
#include "core/session.h"

namespace rainbow::bench {

inline void PrintHeader(const std::string& id, const std::string& what) {
  std::cout << "==============================================================\n";
  std::cout << id << ": " << what << "\n";
  std::cout << "==============================================================\n";
}

/// Runs the experiment and prints the table; exits non-zero on failure.
inline int RunAndPrint(Experiment& exp,
                       const std::vector<Experiment::Metric>& columns) {
  Status s = exp.Run();
  if (!s.ok()) {
    std::cerr << "experiment failed: " << s << "\n";
    return 1;
  }
  std::cout << exp.RenderTable(columns) << "\n";
  return 0;
}

/// Scans argv for `--shards N` — the sharded-kernel knob shared by the
/// bench binaries — without disturbing each binary's own flag loop.
/// Returns `def` when the flag is absent or malformed.
inline uint32_t ShardsFlag(int argc, char** argv, uint32_t def = 1) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--shards") {
      unsigned long v = std::strtoul(argv[i + 1], nullptr, 10);
      if (v >= 1 && v <= 64) return static_cast<uint32_t>(v);
    }
  }
  return def;
}

/// Environment fields every bench JSON report records: the shard count
/// the run used and the machine's hardware threads. CI speedup gates
/// read `hardware_threads` to skip boxes too small to show scaling.
inline void AddEnvFields(std::vector<std::pair<std::string, double>>& fields,
                         uint32_t shards) {
  fields.emplace_back("sim_shards", static_cast<double>(shards));
  fields.emplace_back("hardware_threads",
                      static_cast<double>(std::thread::hardware_concurrency()));
}

/// Writes a flat JSON object of numeric fields, in the given order, to
/// `path`. This is the machine-readable side of a bench: the BENCH_*.json
/// baselines checked into the repo and compared by CI perf-smoke steps.
inline bool EmitJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  for (size_t i = 0; i < fields.size(); ++i) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.17g", fields[i].second);
    out << "  \"" << fields[i].first << "\": " << num
        << (i + 1 < fields.size() ? "," : "") << "\n";
  }
  out << "}\n";
  return static_cast<bool>(out);
}

/// Reads back a flat JSON object in the shape EmitJson writes (one
/// `"key": number` pair per line; no nesting). Returns an empty map if
/// the file cannot be read.
inline std::map<std::string, double> ParseFlatJson(const std::string& path) {
  std::map<std::string, double> fields;
  std::ifstream in(path);
  if (!in) return fields;
  std::string line;
  while (std::getline(in, line)) {
    size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;
    size_t k1 = line.find('"', k0 + 1);
    if (k1 == std::string::npos) continue;
    size_t colon = line.find(':', k1);
    if (colon == std::string::npos) continue;
    try {
      fields[line.substr(k0 + 1, k1 - k0 - 1)] =
          std::stod(line.substr(colon + 1));
    } catch (...) {
      // Not a numeric field; skip.
    }
  }
  return fields;
}

}  // namespace rainbow::bench

#endif  // RAINBOW_BENCH_BENCH_COMMON_H_
