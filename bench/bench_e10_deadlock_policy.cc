// E10: design-choice ablations on a high-contention workload —
// (a) the 2PL deadlock-handling policy (wait-die / wound-wait /
//     local-WFG / timeout-only), and
// (b) basic TSO vs the multiversion-TSO term-project extension, where
//     MVTO's old-version reads rescue read-heavy transactions.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E10", "deadlock-policy and MVTO ablations");

  {
    struct Case {
      DeadlockPolicy policy;
      bool ordered;
      const char* name;
    };
    Experiment exp("2PL deadlock handling at high contention (MPL 12, hotspot)");
    for (const auto& c :
         {Case{DeadlockPolicy::kWaitDie, false, "wait-die"},
          Case{DeadlockPolicy::kWoundWait, false, "wound-wait"},
          Case{DeadlockPolicy::kLocalWfg, false, "local-wfg"},
          Case{DeadlockPolicy::kTimeoutOnly, false, "timeout-only"},
          Case{DeadlockPolicy::kEdgeChasing, false, "edge-chasing"},
          Case{DeadlockPolicy::kTimeoutOnly, true, "ordered-access"}}) {
      Experiment::Point p;
      p.label = c.name;
      p.system.seed = 101;
      p.system.num_sites = 4;
      p.system.protocols.cc = CcKind::kTwoPhaseLocking;
      p.system.protocols.deadlock = c.policy;
      p.system.protocols.ordered_access = c.ordered;
      if (c.policy == DeadlockPolicy::kEdgeChasing) {
        // Let the probes, not the lock-wait timeout, do the work.
        p.system.protocols.probe_delay = Millis(8);
        p.system.protocols.lock_wait_timeout = Millis(120);
      }
      if (c.ordered) {
        // Ordered acquisition cannot cycle; waits are benign but must
        // still resolve below the coordinator's op timeout so stuck
        // waits are attributed to the CCP, not the RCP.
        p.system.protocols.lock_wait_timeout = Millis(60);
      }
      p.system.AddUniformItems(30, 100, 4);
      p.workload.seed = 102;
      p.workload.num_txns = 400;
      p.workload.mpl = 12;
      p.workload.read_fraction = 0.5;
      p.workload.pattern = AccessPattern::kHotspot;
      p.workload.hot_fraction = 0.2;
      p.workload.hot_prob = 0.8;
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::CommitRate(), metrics::AbortRateCcp(),
              metrics::AbortRateRcp(), metrics::Throughput(),
              metrics::MeanResponseMs()});
    if (rc != 0) return rc;
  }
  {
    struct Case {
      CcKind cc;
      const char* name;
    };
    Experiment exp("TSO vs MVTO on a read-heavy contended mix (80% reads)");
    for (const auto& c : {Case{CcKind::kTimestampOrdering, "TSO"},
                          Case{CcKind::kMultiversionTso, "MVTO"}}) {
      Experiment::Point p;
      p.label = c.name;
      p.system.seed = 103;
      p.system.num_sites = 4;
      p.system.protocols.cc = c.cc;
      p.system.AddUniformItems(30, 100, 4);
      p.workload.seed = 104;
      p.workload.num_txns = 400;
      p.workload.mpl = 12;
      p.workload.read_fraction = 0.8;
      p.workload.pattern = AccessPattern::kHotspot;
      p.workload.hot_fraction = 0.2;
      p.workload.hot_prob = 0.8;
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::CommitRate(), metrics::AbortRateCcp(),
              metrics::Throughput(), metrics::MeanResponseMs()});
    if (rc != 0) return rc;
  }
  std::cout << "reading: detection (local-wfg, edge-chasing) beats avoidance\n"
               "(wait-die, wound-wait) on commit rate because only real\n"
               "cycles die; edge-chasing adds the distributed cycles the\n"
               "local WFG cannot see. Conservative ordered access removes\n"
               "deadlocks entirely (its aborts are pure long-wait timeouts)\n"
               "and commits the most, paying with queueing latency. MVTO\n"
               "beats TSO on the read-heavy mix because old-version reads\n"
               "never restart.\n";
  return 0;
}
