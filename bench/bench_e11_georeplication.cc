// E11: geo-replication — a 6-site Rainbow domain split across two
// "data centers" (0.5 ms within a region, 20 ms across). Placement and
// protocol choice dominate: majority quorums straddle the WAN on every
// write, weighted votes can keep quorums region-local, and primary copy
// pins reads to the primary's region.

#include <iostream>

#include "bench_common.h"

namespace {

using namespace rainbow;

SystemConfig GeoSystem() {
  SystemConfig cfg;
  cfg.seed = 121;
  cfg.num_sites = 6;
  cfg.latency.mean = Micros(500);
  cfg.latency.inter_region_mean = Millis(20);
  cfg.latency.regions = {0, 0, 0, 1, 1, 1};
  // Timeouts sized for WAN round trips.
  cfg.protocols.op_timeout = Millis(400);
  cfg.protocols.lock_wait_timeout = Millis(150);
  cfg.protocols.vote_timeout = Millis(400);
  return cfg;
}

void AddItems(SystemConfig& cfg, bool weighted_local) {
  for (int i = 0; i < 120; ++i) {
    ItemConfig item;
    item.name = "x" + std::to_string(i);
    item.initial = 100;
    item.copies = {0, 1, 2, 3, 4, 5};
    if (weighted_local) {
      // Region-0 copies carry 2 votes each (total 9): R = W = 5 can be
      // met entirely inside region 0 (2+2+... hmm 2+2+1? no: 2+2+2=6>=5),
      // so region-0 homes never cross the WAN for quorums.
      item.votes = {2, 2, 2, 1, 1, 1};
      item.read_quorum = 5;
      item.write_quorum = 5;
    }
    cfg.items.push_back(std::move(item));
  }
}

}  // namespace

int main() {
  using namespace rainbow;
  bench::PrintHeader("E11", "geo-replication: two data centers, 20ms WAN");

  struct Case {
    const char* name;
    RcpKind rcp;
    bool weighted;
  };
  Experiment exp(
      "6 sites = 2 regions; 120 items on all sites; 70% reads; homes\n"
      "round-robin over every site (both regions submit)");
  for (const Case& c : {Case{"QC-majority", RcpKind::kQuorumConsensus, false},
                        Case{"QC-weighted(R0)", RcpKind::kQuorumConsensus, true},
                        Case{"ROWA", RcpKind::kRowa, false},
                        Case{"PRIMARY(R0)", RcpKind::kPrimaryCopy, false}}) {
    Experiment::Point p;
    p.label = c.name;
    p.system = GeoSystem();
    p.system.protocols.rcp = c.rcp;
    AddItems(p.system, c.weighted);
    p.workload.seed = 122;
    p.workload.num_txns = 240;
    p.workload.mpl = 6;
    p.workload.read_fraction = 0.7;
    p.options.max_duration = Seconds(120);
    exp.AddPoint(std::move(p));
  }
  int rc = bench::RunAndPrint(
      exp, {metrics::MeanResponseMs(), metrics::P95ResponseMs(),
            metrics::CommitRate(), metrics::MsgsPerCommit(),
            metrics::Throughput()});
  if (rc != 0) return rc;
  std::cout
      << "reading: plain majority quorums cross the WAN for every\n"
         "operation quorum or commit round. Region-weighted votes keep\n"
         "region-0 transactions LAN-local (watch the response-time\n"
         "split); ROWA's local reads are fast but every write pays a\n"
         "full WAN round; primary copy is fast for region-0 homes and\n"
         "slow for region-1 homes (all CC at the region-0 primary).\n";
  return 0;
}
