// E1 (paper Figure 5): "Transaction processing output in a Rainbow
// session" — the per-transaction outcome log plus the session summary,
// for one classroom-sized session (3 sites, QC + 2PL + 2PC).

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E1 / Figure 5", "transaction processing output of one session");

  SystemConfig system;
  system.seed = 5;
  system.num_sites = 3;
  system.AddFullyReplicatedItems(12, 100);

  WorkloadConfig workload;
  workload.num_txns = 40;
  workload.mpl = 4;
  workload.read_fraction = 0.6;

  SessionOptions options;
  options.keep_session_log = true;

  auto result = RunSession(system, workload, options);
  if (!result.ok()) {
    std::cerr << "session failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "--- per-transaction output (finish_time  txn  outcome) ---\n";
  std::cout << result->session_log;
  std::cout << "\n--- session summary ---\n";
  std::cout << result->stats_table;
  return 0;
}
