// E2 (paper §3): the extensible output-statistics list. One mixed
// workload with an injected site failure + recovery, so every statistic
// in the list (including per-cause aborts and orphans) is exercised.

#include <iostream>

#include "bench_common.h"
#include "fault/fault_injector.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E2 / paper §3", "the extensible set of output statistics");

  SystemConfig system;
  system.seed = 7;
  system.num_sites = 4;
  system.AddUniformItems(150, 100, 4);

  WorkloadConfig workload;
  workload.num_txns = 400;
  workload.mpl = 8;
  workload.read_fraction = 0.6;
  workload.pattern = AccessPattern::kHotspot;
  workload.hot_fraction = 0.2;
  workload.hot_prob = 0.5;

  SessionOptions options;
  options.faults = {FaultEvent::Crash(Millis(150), 2),
                    FaultEvent::Recover(Millis(600), 2)};

  auto result = RunSession(system, workload, options);
  if (!result.ok()) {
    std::cerr << "session failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "workload: 400 txns, MPL 8, 60% reads, hotspot access;\n"
            << "site 2 crashes at t=150ms and recovers at t=600ms\n\n";
  std::cout << result->stats_table;
  return 0;
}
