// E3 (the SETH-lineage study the paper cites as Rainbow's research use):
// message traffic per committed transaction as a function of the
// replication degree, for QC vs ROWA, under a read-heavy and a
// write-heavy mix. The paper's claim: Rainbow measures "quorum consensus
// behavior and message traffic in quorum-based systems".
//
// Expected shape: ROWA reads cost one copy access regardless of degree
// while its writes touch every copy; QC pays quorum-sized costs on both.
// Read-heavy mixes favour ROWA; write-heavy mixes converge/flip.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E3", "message traffic vs replication degree (QC vs ROWA)");

  const int kSites = 7;
  for (double read_fraction : {0.9, 0.5}) {
    for (RcpKind rcp : {RcpKind::kQuorumConsensus, RcpKind::kRowa}) {
      Experiment exp(StringPrintf("mix %.0f%% reads, RCP=%s",
                                  read_fraction * 100, RcpKindName(rcp)));
      for (int degree : {1, 2, 3, 4, 5, 6, 7}) {
        Experiment::Point p;
        p.label = std::to_string(degree);
        p.system.seed = 31;
        p.system.num_sites = kSites;
        p.system.protocols.rcp = rcp;
        p.system.AddUniformItems(140, 100, degree);
        p.workload.seed = 32;
        p.workload.num_txns = 300;
        p.workload.mpl = 6;
        p.workload.read_fraction = read_fraction;
        exp.AddPoint(std::move(p));
      }
      int rc = bench::RunAndPrint(
          exp, {metrics::MsgsPerCommit(), metrics::MeanResponseMs(),
                metrics::CommitRate(), metrics::Throughput()});
      if (rc != 0) return rc;
    }
  }
  std::cout
      << "reading: msgs/commit — ROWA stays flat on read-heavy mixes and\n"
         "grows steeply with degree on writes; QC grows with quorum size\n"
         "on both operation types.\n";
  return 0;
}
