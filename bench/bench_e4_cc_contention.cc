// E4: concurrency-control comparison — abort rate and throughput vs the
// multiprogramming level (MPL) for 2PL (wait-die), basic TSO, and the
// optimistic extension (OCC), on a hotspot workload — the classic
// pessimistic-vs-restart-vs-optimistic study. 2PL converts conflicts
// into waits and victim aborts; TSO rejects out-of-order accesses
// outright; OCC executes lock-free and pays with validation failures
// at commit time.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E4", "abort rate vs MPL: 2PL vs TSO vs OCC (CCP comparison)");

  struct Case {
    CcKind cc;
    const char* name;
  };
  for (const auto& c : {Case{CcKind::kTwoPhaseLocking, "2PL/wait-die"},
                        Case{CcKind::kTimestampOrdering, "TSO"},
                        Case{CcKind::kOptimistic, "OCC"}}) {
    Experiment exp(std::string("CCP = ") + c.name);
    for (int mpl : {1, 2, 4, 8, 16, 32}) {
      Experiment::Point p;
      p.label = std::to_string(mpl);
      p.system.seed = 41;
      p.system.num_sites = 4;
      p.system.protocols.cc = c.cc;
      p.system.AddUniformItems(60, 100, 4);
      p.workload.seed = 42;
      p.workload.num_txns = 400;
      p.workload.mpl = static_cast<uint32_t>(mpl);
      p.workload.read_fraction = 0.5;
      p.workload.pattern = AccessPattern::kHotspot;
      p.workload.hot_fraction = 0.15;
      p.workload.hot_prob = 0.7;
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::AbortRateTotal(), metrics::AbortRateCcp(),
              metrics::AbortRateAcp(), metrics::CommitRate(),
              metrics::Throughput(), metrics::MeanResponseMs()});
    if (rc != 0) return rc;
  }
  std::cout << "reading: abort% rises with MPL for every CCP. Wait-die's\n"
               "eager victim rule (any younger requester dies on contact)\n"
               "restarts most; TSO only rejects accesses that arrive out\n"
               "of timestamp order; OCC never aborts during execution (its\n"
               "failures are NO votes at validation, counted under ACP)\n"
               "and posts the lowest response times — no lock waits — at\n"
               "the price of late, wasted work. See E10 for the other 2PL\n"
               "deadlock policies.\n";
  return 0;
}
