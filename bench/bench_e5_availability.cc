// E5: availability under site failures — commit rate as the random
// crash rate rises, for QC vs ROWA vs ROWA-A. The paper's fault
// injector + RCP matrix makes exactly this experiment a one-liner in
// the GUI; here it is a config sweep.
//
// Expected shape: ROWA write availability collapses as failures rise
// (one dead copy blocks every write); QC degrades gracefully while a
// majority is up; ROWA-A stays available by shrinking the write set.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E5", "commit rate vs site failure rate (RCP comparison)");

  struct Case {
    RcpKind rcp;
    const char* name;
  };
  for (const auto& c : {Case{RcpKind::kQuorumConsensus, "QC"},
                        Case{RcpKind::kRowa, "ROWA"},
                        Case{RcpKind::kRowaAvailable, "ROWA-A"}}) {
    Experiment exp(std::string("RCP = ") + c.name +
                   "  (x = per-site MTTF in ms; MTTR fixed 100ms)");
    for (SimTime mttf : {Millis(4000), Millis(2000), Millis(1000),
                         Millis(500), Millis(250)}) {
      Experiment::Point p;
      p.label = std::to_string(mttf / 1000);
      p.system.seed = 51;
      p.system.num_sites = 5;
      p.system.protocols.rcp = c.rcp;
      p.system.AddUniformItems(80, 100, 5);
      p.workload.seed = 52;
      p.workload.num_txns = 300;
      p.workload.mpl = 6;
      p.workload.read_fraction = 0.5;
      p.options.random_mttf = mttf;
      p.options.random_mttr = Millis(100);
      p.options.max_duration = Seconds(30);
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::CommitRate(), metrics::AbortRateRcp(),
              metrics::AbortRateAcp(), metrics::Orphans(),
              metrics::Throughput()});
    if (rc != 0) return rc;
  }
  std::cout << "reading: as MTTF shrinks (right-most rows), ROWA's commit\n"
               "rate collapses first; QC degrades gracefully; ROWA-A trades\n"
               "strict replica consistency for availability.\n";
  return 0;
}
