// E6: scalability — throughput and response time as the Rainbow domain
// grows from 2 to 12 sites, at a fixed offered load, with replication
// degree fixed at 3 (so the per-transaction work is constant and the
// extra sites add capacity).

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E6", "throughput & response time vs number of sites");

  Experiment exp("fixed offered load (open arrivals, 600 tps), degree-3 replication");
  for (uint32_t sites : {2u, 3u, 4u, 6u, 8u, 10u, 12u}) {
    Experiment::Point p;
    p.label = std::to_string(sites);
    p.system.seed = 61;
    p.system.num_sites = sites;
    p.system.AddUniformItems(40 * static_cast<int>(sites), 100, 3);
    p.workload.seed = 62;
    p.workload.num_txns = 600;
    p.workload.arrival = WorkloadConfig::Arrival::kOpen;
    p.workload.arrival_rate_tps = 600;
    p.workload.read_fraction = 0.7;
    exp.AddPoint(std::move(p));
  }
  int rc = bench::RunAndPrint(
      exp, {metrics::Throughput(), metrics::MeanResponseMs(),
            metrics::P95ResponseMs(), metrics::CommitRate(),
            metrics::MsgsPerCommit()});
  if (rc != 0) return rc;
  std::cout << exp.RenderChart(metrics::Throughput()) << "\n";
  std::cout << "reading: adding sites adds capacity (throughput and commit\n"
               "rate climb toward the offered load) but also distribution\n"
               "cost: quorums and commit rounds touch more remote copies,\n"
               "so messages per commit and response time creep upward —\n"
               "the classic throughput-vs-latency trade of scaling out.\n";
  return 0;
}
