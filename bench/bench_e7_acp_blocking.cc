// E7: atomic-commit comparison — what a coordinator crash between the
// vote and the decision costs under 2PC vs 3PC (the paper's named
// term-project replacement).
//
// The crash is aimed: with fixed 1ms latency a single-write transaction
// reaches "participants prepared, decision not yet sent" about 5.5ms
// after submission, so crashing the home site then leaves the remote
// participants in doubt. Under 2PC they must wait for the coordinator
// to recover (presumed abort); under 3PC the termination protocol
// resolves them in a few timeout windows. We repeat the scenario over a
// range of coordinator outage lengths and report the participant
// blocking time measured by the progress monitor.

#include <iostream>

#include "bench_common.h"
#include "core/system.h"
#include "fault/fault_injector.h"

namespace {

using namespace rainbow;

struct Row {
  SimTime outage;
  double blocked_2pc_ms;
  double blocked_3pc_ms;
};

double RunOne(AcpKind acp, SimTime outage) {
  SystemConfig cfg;
  cfg.seed = 71;
  cfg.num_sites = 4;
  cfg.latency.distribution = LatencyDistribution::kFixed;
  cfg.latency.mean = Millis(1);
  cfg.latency.per_kb = 0;
  cfg.protocols.acp = acp;
  cfg.AddFullyReplicatedItems(8, 100);

  auto sys = RainbowSystem::Create(cfg);
  if (!sys.ok()) return -1;
  RainbowSystem& s = **sys;
  FaultInjector inject(&s);

  // Ten aimed victim transactions, spaced far apart.
  for (int i = 0; i < 10; ++i) {
    SimTime submit_at = Millis(5) + static_cast<SimTime>(i) * (outage + Millis(400));
    SimTime crash_at = submit_at + Micros(5500);
    ItemId item = static_cast<ItemId>(i % 8);
    s.sim().At(submit_at, [&s, item] {
      (void)s.Submit(0, TxnProgram{{Op::Write(item, 1)}, "victim"}, nullptr);
    });
    inject.Schedule(FaultEvent::Crash(crash_at, 0));
    inject.Schedule(FaultEvent::Recover(crash_at + outage, 0));
  }
  s.RunFor(static_cast<SimTime>(10) * (outage + Millis(400)) + Seconds(3));
  return s.monitor().blocked_times().mean() / 1000.0;
}

}  // namespace

int main() {
  using namespace rainbow;
  bench::PrintHeader(
      "E7", "participant blocking under coordinator failure: 2PC vs 3PC");

  TablePrinter t({"coordinator outage (ms)", "2PC mean blocked (ms)",
                  "3PC mean blocked (ms)"});
  for (SimTime outage : {Millis(200), Millis(500), Millis(1000),
                         Millis(2000), Millis(4000)}) {
    double b2 = RunOne(AcpKind::kTwoPhaseCommit, outage);
    double b3 = RunOne(AcpKind::kThreePhaseCommit, outage);
    if (b2 < 0 || b3 < 0) {
      std::cerr << "run failed\n";
      return 1;
    }
    t.AddRow({TablePrinter::Cell(static_cast<int64_t>(outage / 1000)).text,
              FormatDouble(b2, 1), FormatDouble(b3, 1)});
  }
  std::cout << t.ToString() << "\n";
  std::cout
      << "reading: 2PC participants stay blocked for (almost) the whole\n"
         "coordinator outage — blocking grows linearly with it. 3PC\n"
         "participants terminate among themselves after the decision\n"
         "timeout, so their blocking time is flat regardless of how long\n"
         "the coordinator stays down.\n";
  return 0;
}
