// E8: cost of replication — response time and message count as the
// replication degree grows, under the default QC protocol stack. The
// flip side of E5's availability gain.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E8", "response time & messages vs replication degree (QC)");

  Experiment exp("7 sites, QC majority quorums, 50% reads");
  for (int degree : {1, 2, 3, 4, 5, 6, 7}) {
    Experiment::Point p;
    p.label = std::to_string(degree);
    p.system.seed = 81;
    p.system.num_sites = 7;
    p.system.AddUniformItems(140, 100, degree);
    p.workload.seed = 82;
    p.workload.num_txns = 300;
    p.workload.mpl = 6;
    p.workload.read_fraction = 0.5;
    exp.AddPoint(std::move(p));
  }
  int rc = bench::RunAndPrint(
      exp, {metrics::MeanResponseMs(), metrics::P95ResponseMs(),
            metrics::MsgsPerCommit(), metrics::CommitRate(),
            metrics::Throughput()});
  if (rc != 0) return rc;
  std::cout << exp.RenderChart(metrics::MsgsPerCommit()) << "\n";
  std::cout << "reading: majority quorums grow with the degree, so both\n"
               "messages per commit and response time climb roughly\n"
               "linearly; degree 1 (no replication) is the floor.\n";
  return 0;
}
