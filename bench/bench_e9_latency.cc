// E9: network-simulation sensitivity — response time vs the configured
// one-way latency, plus a latency-distribution ablation (fixed vs
// uniform vs exponential at the same mean). This exercises the paper's
// "configure a network simulation" step.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace rainbow;
  bench::PrintHeader("E9", "response time vs simulated network latency");

  {
    Experiment exp("mean one-way latency sweep (uniform distribution), QC+2PL+2PC");
    for (SimTime mean : {Micros(200), Millis(1), Millis(2), Millis(5),
                         Millis(10), Millis(20)}) {
      Experiment::Point p;
      p.label = FormatDouble(static_cast<double>(mean) / 1000.0, 1);
      p.system.seed = 91;
      p.system.num_sites = 4;
      p.system.latency.mean = mean;
      p.system.protocols.op_timeout = std::max<SimTime>(Millis(80), mean * 8);
      p.system.protocols.lock_wait_timeout =
          std::max<SimTime>(Millis(30), mean * 4);
      p.system.protocols.vote_timeout = std::max<SimTime>(Millis(80), mean * 8);
      p.system.AddUniformItems(80, 100, 3);
      p.workload.seed = 92;
      p.workload.num_txns = 250;
      p.workload.mpl = 6;
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::MeanResponseMs(), metrics::P95ResponseMs(),
              metrics::Throughput(), metrics::CommitRate()});
    if (rc != 0) return rc;
  }
  {
    Experiment exp("distribution ablation at mean = 2ms");
    for (auto dist : {LatencyDistribution::kFixed, LatencyDistribution::kUniform,
                      LatencyDistribution::kExponential}) {
      Experiment::Point p;
      p.label = LatencyDistributionName(dist);
      p.system.seed = 93;
      p.system.num_sites = 4;
      p.system.latency.distribution = dist;
      p.system.latency.mean = Millis(2);
      p.system.AddUniformItems(80, 100, 3);
      p.workload.seed = 94;
      p.workload.num_txns = 250;
      p.workload.mpl = 6;
      exp.AddPoint(std::move(p));
    }
    int rc = bench::RunAndPrint(
        exp, {metrics::MeanResponseMs(), metrics::P95ResponseMs(),
              metrics::CommitRate()});
    if (rc != 0) return rc;
  }
  std::cout << "reading: response time scales linearly with the per-hop\n"
               "latency (each transaction is a fixed number of sequential\n"
               "round trips); heavier-tailed distributions widen p95.\n";
  return 0;
}
