// M1: microbenchmark of the 2PL lock manager — grant/release throughput
// under no contention, shared-lock fan-in, and conflict handling per
// deadlock policy (google-benchmark).

#include <benchmark/benchmark.h>

#include "cc/lock_manager.h"

namespace rainbow {
namespace {

void BM_UncontendedWriteLocks(benchmark::State& state) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  uint64_t seq = 1;
  for (auto _ : state) {
    TxnId txn{0, seq++};
    TxnTimestamp ts{static_cast<SimTime>(seq), 0};
    for (ItemId item = 0; item < 8; ++item) {
      lm.RequestWrite(txn, ts, item, [](const CcGrant&) {});
    }
    lm.Finish(txn, true);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_UncontendedWriteLocks);

void BM_SharedLockFanIn(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  uint64_t seq = 1;
  for (auto _ : state) {
    LockManager lm(DeadlockPolicy::kWaitDie);
    for (int r = 0; r < readers; ++r) {
      TxnId txn{0, seq++};
      lm.RequestRead(txn, TxnTimestamp{static_cast<SimTime>(r), 0}, 1,
                     [](const CcGrant&) {});
    }
    for (int r = 0; r < readers; ++r) {
      lm.Finish(TxnId{0, seq - static_cast<uint64_t>(readers) +
                             static_cast<uint64_t>(r)},
                true);
    }
  }
  state.SetItemsProcessed(state.iterations() * readers);
}
BENCHMARK(BM_SharedLockFanIn)->Arg(4)->Arg(16)->Arg(64);

void BM_ConflictChainRelease(benchmark::State& state) {
  // A chain of writers on one item: each release promotes the next.
  const int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LockManager lm(DeadlockPolicy::kTimeoutOnly);
    for (int i = 0; i < chain; ++i) {
      lm.RequestWrite(TxnId{0, static_cast<uint64_t>(i + 1)},
                      TxnTimestamp{i, 0}, 1, [](const CcGrant&) {});
    }
    for (int i = 0; i < chain; ++i) {
      lm.Finish(TxnId{0, static_cast<uint64_t>(i + 1)}, true);
    }
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_ConflictChainRelease)->Arg(8)->Arg(64);

void BM_WaitDieDenialPath(benchmark::State& state) {
  LockManager lm(DeadlockPolicy::kWaitDie);
  lm.RequestWrite(TxnId{0, 1}, TxnTimestamp{1, 0}, 1, [](const CcGrant&) {});
  uint64_t seq = 2;
  for (auto _ : state) {
    // Younger requester dies instantly: measures the denial fast path.
    TxnId txn{0, seq++};
    lm.RequestWrite(txn, TxnTimestamp{static_cast<SimTime>(seq), 0}, 1,
                    [](const CcGrant&) {});
    lm.Finish(txn, false);
  }
}
BENCHMARK(BM_WaitDieDenialPath);

}  // namespace
}  // namespace rainbow

BENCHMARK_MAIN();
