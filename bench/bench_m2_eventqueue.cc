// M2: microbenchmark of the discrete-event kernel — schedule/fire
// throughput, cancellation cost, and a full simulated message ping-pong
// (google-benchmark).

#include <benchmark/benchmark.h>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

void BM_ScheduleAndFire(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.Schedule(i, [] {});
    }
    while (!q.empty()) q.PopNext().cb();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleAndFire)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ScheduleCancelHalf(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  std::vector<EventQueue::EventId> ids(static_cast<size_t>(batch));
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<size_t>(i)] = q.Schedule(i, [] {});
    }
    for (int i = 0; i < batch; i += 2) {
      q.Cancel(ids[static_cast<size_t>(i)]);
    }
    while (!q.empty()) q.PopNext().cb();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScheduleCancelHalf)->Arg(1024);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int remaining = 10000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.After(1, tick);
    };
    sim.After(1, tick);
    sim.RunToQuiescence();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorTimerChurn);

}  // namespace
}  // namespace rainbow

BENCHMARK_MAIN();
