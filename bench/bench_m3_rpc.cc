// M3: microbenchmark of the typed RPC sub-layer (net/rpc.h) — call
// dispatch overhead vs raw Network::Send, retry/timeout machinery under
// a slow link, and duplicate-suppression window cost (google-benchmark).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace rainbow {
namespace {

LatencyConfig FastLink() {
  LatencyConfig lat;
  lat.distribution = LatencyDistribution::kFixed;
  lat.mean = Micros(100);
  lat.min = 0;
  lat.per_kb = 0;
  return lat;
}

/// Baseline: raw request/reply ping-pong over Network::Send, no RPC
/// layer. Measures the floor the RPC layer adds overhead on top of.
void BM_RawSendPingPong(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Network net(&sim, FastLink(), Rng(1), nullptr);
    int completed = 0;
    net.RegisterHandler(1, [&](const Message& m) {
      net.Send(1, 0, Ack{std::get<AbortRequest>(m.payload).txn});
    });
    net.RegisterHandler(0, [&](const Message&) { ++completed; });
    for (int i = 0; i < pairs; ++i) {
      net.Send(0, 1, AbortRequest{TxnId{0, static_cast<uint64_t>(i)}});
    }
    sim.RunToQuiescence();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_RawSendPingPong)->Arg(64)->Arg(1024);

/// The same ping-pong through RpcEndpoint::Call / Reply: correlation
/// ids, per-call timers, and the duplicate window are all in the path.
void BM_RpcCallPingPong(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Network net(&sim, FastLink(), Rng(1), nullptr);
    RpcEndpoint client(&sim, &net, 0, 1);
    RpcEndpoint server(&sim, &net, 1, 2);
    int completed = 0;
    net.RegisterHandler(0, [&](const Message& m) { client.Accept(m); });
    net.RegisterHandler(1, [&](const Message& m) {
      RpcDelivery d = server.Accept(m);
      if (d.consumed) return;
      server.Reply(d.ctx, Ack{std::get<AbortRequest>(m.payload).txn});
    });
    RpcPolicy policy;  // generous timeout: no retries on the fast link
    for (int i = 0; i < pairs; ++i) {
      client.Call(1, AbortRequest{TxnId{0, static_cast<uint64_t>(i)}},
                  policy, [&](Result<Payload>) { ++completed; });
    }
    sim.RunToQuiescence();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_RpcCallPingPong)->Arg(64)->Arg(1024);

/// Worst case for the retry machinery: the one-way delay exceeds the
/// per-attempt timeout, so every call burns several attempts and the
/// server's duplicate window absorbs the retransmissions.
void BM_RpcRetryStorm(benchmark::State& state) {
  const int calls = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    LatencyConfig lat = FastLink();
    lat.mean = Millis(30);
    Network net(&sim, lat, Rng(1), nullptr);
    RpcEndpoint client(&sim, &net, 0, 1);
    RpcEndpoint server(&sim, &net, 1, 2);
    int completed = 0;
    net.RegisterHandler(0, [&](const Message& m) { client.Accept(m); });
    net.RegisterHandler(1, [&](const Message& m) {
      RpcDelivery d = server.Accept(m);
      if (d.consumed) return;
      server.Reply(d.ctx, Ack{std::get<AbortRequest>(m.payload).txn});
    });
    RpcPolicy policy;
    policy.timeout = Millis(10);
    policy.max_attempts = 0;
    policy.backoff_base = Millis(2);
    for (int i = 0; i < calls; ++i) {
      client.Call(1, AbortRequest{TxnId{0, static_cast<uint64_t>(i)}},
                  policy, [&](Result<Payload>) { ++completed; });
    }
    sim.RunToQuiescence();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * calls);
}
BENCHMARK(BM_RpcRetryStorm)->Arg(256);

/// Duplicate-suppression window under sustained one-way traffic: every
/// request is served and cached, so the bounded window constantly
/// trims. Measures Accept()+Reply() bookkeeping cost alone.
void BM_RpcDuplicateWindow(benchmark::State& state) {
  Simulator sim;
  Network net(&sim, FastLink(), Rng(1), nullptr);
  RpcEndpoint server(&sim, &net, 1, 2);
  net.RegisterHandler(0, [](const Message&) {});
  uint64_t rpc_id = 0;
  Message m;
  m.from = 0;
  m.to = 1;
  m.payload = AbortRequest{TxnId{0, 1}};
  for (auto _ : state) {
    m.rpc_id = ++rpc_id;
    RpcDelivery d = server.Accept(m);
    server.Reply(d.ctx, Ack{TxnId{0, 1}});
  }
  sim.RunToQuiescence();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcDuplicateWindow);

}  // namespace
}  // namespace rainbow

BENCHMARK_MAIN();
