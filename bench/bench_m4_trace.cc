// M4: microbenchmark of the structured tracing subsystem. Two
// questions: (a) what does one Emit() cost at each detail level, and
// (b) does *disabled* tracing stay free on the message hot path — the
// acceptance bar is zero allocations per message when trace_detail is
// off, since every Network::Deliver and RpcEndpoint::SendAttempt runs
// through the collector guard.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/trace.h"
#include "core/system.h"
#include "workload/workload.h"

namespace {

// Global allocation counter: counts every operator-new so a benchmark
// can assert "no allocations happened inside this region".
std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above is malloc-based, so free() is the
// matching deallocator; GCC cannot see the pairing and misfires
// -Wmismatched-new-delete at call sites inlined into these definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace rainbow {
namespace {

// --- (a) raw Emit() cost per detail level -----------------------------

void BM_EmitDisabled(benchmark::State& state) {
  TraceCollector c;  // kOff
  for (auto _ : state) {
    // The caller-side pattern: one branch, no record constructed.
    if (c.enabled()) {
      c.Emit(TraceRecord{0, TraceEventKind::kMsgSend, TxnId{0, 1}, 0, 1,
                         kInvalidItem, 0, "ReadRequest"});
    }
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitDisabled);

void BM_EmitProtocol(benchmark::State& state) {
  TraceCollector c;
  c.set_detail(TraceDetail::kProtocol);
  c.set_capacity(1 << 16);
  for (auto _ : state) {
    if (c.enabled()) {
      c.Emit(TraceRecord{0, TraceEventKind::kCcGrant, TxnId{0, 1}, 0,
                         kInvalidSite, 3, 0, std::string()});
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitProtocol);

void BM_EmitFullWithDetailString(benchmark::State& state) {
  TraceCollector c;
  c.set_detail(TraceDetail::kFull);
  c.set_capacity(1 << 16);
  for (auto _ : state) {
    if (c.full()) {
      c.Emit(TraceRecord{0, TraceEventKind::kMsgSend, TxnId{0, 1}, 0, 1,
                         kInvalidItem, 42, "PrewriteRequest"});
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitFullWithDetailString);

// --- (b) whole-system message hot path --------------------------------

void RunWorkload(TraceDetail detail, uint64_t* messages, uint64_t* allocs) {
  SystemConfig cfg;
  cfg.seed = 99;
  cfg.num_sites = 3;
  cfg.trace_enabled = detail != TraceDetail::kOff;
  cfg.trace_detail = detail;
  cfg.AddFullyReplicatedItems(16, 100);
  auto sys = RainbowSystem::Create(cfg);
  if (!sys.ok()) std::abort();
  WorkloadConfig wl;
  wl.seed = 99;
  wl.num_txns = 100;
  wl.mpl = 8;
  WorkloadGenerator gen(sys->get(), wl);
  gen.Run();
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  (*sys)->RunToQuiescence();
  *allocs = g_allocs.load(std::memory_order_relaxed) - before;
  *messages = (*sys)->net().stats().delivered;
}

void BM_SystemRunTraced(benchmark::State& state) {
  auto detail = static_cast<TraceDetail>(state.range(0));
  uint64_t messages = 0, allocs = 0;
  for (auto _ : state) {
    RunWorkload(detail, &messages, &allocs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(messages));
  state.counters["msgs"] = static_cast<double>(messages);
  state.counters["allocs_per_msg"] =
      static_cast<double>(allocs) / static_cast<double>(messages);
}
BENCHMARK(BM_SystemRunTraced)
    ->Arg(static_cast<int>(TraceDetail::kOff))
    ->Arg(static_cast<int>(TraceDetail::kProtocol))
    ->Arg(static_cast<int>(TraceDetail::kFull));

// Not a timing benchmark: hard assertion that the disabled collector
// adds zero allocations per emitted-site check. Runs the caller-side
// guard a million times against a steady-state collector and verifies
// the allocation counter did not move.
void BM_DisabledEmitZeroAllocs(benchmark::State& state) {
  TraceCollector c;  // kOff
  for (auto _ : state) {
    uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1'000'000; ++i) {
      if (c.enabled()) {
        c.Emit(TraceRecord{i, TraceEventKind::kMsgRecv, TxnId{0, 1}, 0, 1,
                           kInvalidItem, i, "ReadReply"});
      }
    }
    uint64_t after = g_allocs.load(std::memory_order_relaxed);
    if (after != before) {
      state.SkipWithError("disabled tracing allocated on the hot path");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_DisabledEmitZeroAllocs);

}  // namespace
}  // namespace rainbow

BENCHMARK_MAIN();
