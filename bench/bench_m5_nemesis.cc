// M5: microbenchmark of the per-link fault-override machinery behind
// the nemesis fuzzer. Two questions: (a) what does a Send() cost on the
// no-override fast path versus with overrides installed, and (b) is the
// fast path genuinely free — the acceptance bar is that a network that
// has never seen an override and one whose overrides were erased back
// to identity run the hot path with byte-identical allocation behavior,
// since every Network::Send runs through the override check.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/network.h"
#include "sim/simulator.h"

namespace {

// Global allocation counter: counts every operator-new so a benchmark
// can assert "these two regions allocated identically".
std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above is malloc-based, so free() is the
// matching deallocator; GCC cannot see the pairing and misfires
// -Wmismatched-new-delete at call sites inlined into these definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace rainbow {
namespace {

LatencyConfig BenchLatency() {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(1);
  cfg.min = Micros(10);
  cfg.per_kb = 0;
  return cfg;
}

struct Harness {
  Simulator sim;
  TraceLog trace;
  Network net;
  uint64_t received = 0;

  Harness() : net(&sim, BenchLatency(), Rng(7), &trace) {
    for (SiteId s = 0; s < 4; ++s) {
      net.RegisterHandler(s, [this](const Message&) { ++received; });
    }
  }

  // One measured unit: a burst of sends drained to quiescence.
  void Burst(int n) {
    for (int i = 0; i < n; ++i) {
      net.Send(0, 1, Ack{TxnId{0, static_cast<uint64_t>(i)}});
    }
    sim.RunToQuiescence();
  }
};

constexpr int kBurst = 1000;

// --- (a) Send() cost across override states ---------------------------

void BM_SendNoOverrides(benchmark::State& state) {
  Harness h;
  for (auto _ : state) {
    h.Burst(kBurst);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_SendNoOverrides);

void BM_SendWithUnrelatedOverride(benchmark::State& state) {
  // An override on 2->3 makes the map non-empty: sends on 0->1 now pay
  // the hash lookup (the "someone else is being faulted" cost).
  Harness h;
  LinkOverride o;
  o.loss = 0.5;
  h.net.SetLinkOverride(2, 3, o);
  for (auto _ : state) {
    h.Burst(kBurst);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_SendWithUnrelatedOverride);

void BM_SendThroughDupOverride(benchmark::State& state) {
  // The full slow path: every message duplicated with its own delay
  // sample, both copies delivered.
  Harness h;
  LinkOverride o;
  o.dup_probability = 1.0;
  h.net.SetLinkOverride(0, 1, o);
  for (auto _ : state) {
    h.Burst(kBurst);
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_SendThroughDupOverride);

// --- (b) the fast path is genuinely restored --------------------------

// Not a timing benchmark: hard assertion that a network whose overrides
// were installed and then erased (identity install + ClearLinkOverrides)
// allocates exactly as much per burst as one that never had any. If the
// erased map left residue — a tombstone, a capacity check, anything that
// allocates — the counters diverge and the benchmark fails.
void BM_ErasedOverridesAllocParity(benchmark::State& state) {
  Harness pristine;
  Harness erased;
  LinkOverride o;
  o.delay_multiplier = 8.0;
  erased.net.SetLinkOverride(0, 1, o);
  erased.net.SetLinkOverride(0, 1, LinkOverride{});  // identity erases
  o.reorder_jitter = Millis(2);
  erased.net.SetLinkOverride(2, 3, o);
  erased.net.ClearLinkOverrides();
  if (erased.net.has_link_overrides()) {
    state.SkipWithError("identity/clear did not empty the override map");
    return;
  }
  // Warm both harnesses so steady-state container capacity is reached.
  pristine.Burst(kBurst);
  erased.Burst(kBurst);
  for (auto _ : state) {
    uint64_t before = g_allocs.load(std::memory_order_relaxed);
    pristine.Burst(kBurst);
    uint64_t mid = g_allocs.load(std::memory_order_relaxed);
    erased.Burst(kBurst);
    uint64_t after = g_allocs.load(std::memory_order_relaxed);
    if (mid - before != after - mid) {
      state.SkipWithError(
          "erased-override fast path allocates differently from the "
          "never-overridden path");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst * 2);
}
BENCHMARK(BM_ErasedOverridesAllocParity);

}  // namespace
}  // namespace rainbow

BENCHMARK_MAIN();
