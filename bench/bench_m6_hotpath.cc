// M6: the simulator's event/message hot path, with a machine-readable
// baseline. Three sections:
//
//   * micro/messages — fault-free Send()→Deliver() bursts through the
//     Network (the substrate every RCP/CCP/ACP experiment runs on).
//     Reports messages/sec and heap allocations per delivered message,
//     and hard-gates the steady state at ZERO allocations per
//     send→deliver cycle (the way bench_m5_nemesis gates the
//     no-override path).
//   * micro/events — raw EventQueue schedule/fire throughput, with the
//     same zero-allocation steady-state gate.
//   * macro/session — a full classroom_default-shaped session
//     (3 sites, QC + 2PL + 2PC, 12 fully replicated items), reporting
//     wall time and allocations per finished transaction.
//
// The numbers are written as flat JSON (bench::EmitJson). The repo
// checks in BENCH_M6.json as the baseline; the CI perf-smoke step runs
// this binary with --check BENCH_M6.json, which fails on a >2x
// allocation-count or >1.5x wall-time regression. The wall-time bound
// is deliberately loose (CI machines are noisy); the allocation counts
// are exact and are the real gate.
//
// Flags:
//   --out FILE        write the JSON report here (default BENCH_M6.json)
//   --check FILE      compare against a baseline JSON; exit 1 on regression
//   --seed-json FILE  merge a pre-change run's numbers as seed_* keys
//   --no-gate         skip the zero-allocation steady-state gates (only
//                     for measuring pre-change code, which fails them)

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace {

// Global allocation counter: every operator-new bumps it, so a region
// of the bench can assert exact allocation behavior.
std::atomic<uint64_t> g_allocs{0};

uint64_t Allocs() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above is malloc-based, so free() is the
// matching deallocator; GCC cannot see the pairing and misfires
// -Wmismatched-new-delete at call sites inlined into these definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace rainbow {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedSec(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

LatencyConfig BenchLatency() {
  LatencyConfig cfg;
  cfg.distribution = LatencyDistribution::kFixed;
  cfg.mean = Millis(1);
  cfg.min = Micros(10);
  cfg.per_kb = 0;
  return cfg;
}

struct MsgHarness {
  Simulator sim;
  TraceLog trace;
  Network net;
  uint64_t received = 0;

  MsgHarness() : net(&sim, BenchLatency(), Rng(7), &trace) {
    for (SiteId s = 0; s < 4; ++s) {
      net.RegisterHandler(s, [this](const Message&) { ++received; });
    }
    // One giant stats bucket: sim time advancing during the bench must
    // not grow the per-bucket histogram mid-measurement.
    net.set_stats_bucket_width(Seconds(1000000));
  }

  void Burst(int n) {
    for (int i = 0; i < n; ++i) {
      net.Send(0, 1, Ack{TxnId{0, static_cast<uint64_t>(i)}});
    }
    sim.RunToQuiescence();
  }
};

constexpr int kBurst = 1000;
constexpr int kMsgBursts = 500;
constexpr int kEventBatch = 4096;
constexpr int kEventRounds = 300;

struct Report {
  std::vector<std::pair<std::string, double>> fields;
  void Add(const std::string& key, double value) {
    fields.emplace_back(key, value);
    std::printf("  %-28s %.6g\n", key.c_str(), value);
  }
};

bool RunMicroMessages(bool gate, Report& report) {
  std::printf("-- micro/messages: %d bursts x %d sends (0 -> 1) --\n",
              kMsgBursts, kBurst);
  MsgHarness h;
  for (int i = 0; i < 10; ++i) h.Burst(kBurst);  // warm pools/tables

  // Steady-state gate: one warmed-up, fault-free burst must not touch
  // the heap at all.
  uint64_t gate_before = Allocs();
  h.Burst(kBurst);
  uint64_t steady = Allocs() - gate_before;

  uint64_t received_before = h.received;
  uint64_t allocs_before = Allocs();
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kMsgBursts; ++i) h.Burst(kBurst);
  Clock::time_point t1 = Clock::now();
  uint64_t delivered = h.received - received_before;
  uint64_t allocs = Allocs() - allocs_before;

  report.Add("micro_msgs_per_sec",
             static_cast<double>(delivered) / ElapsedSec(t0, t1));
  report.Add("micro_allocs_per_msg",
             static_cast<double>(allocs) / static_cast<double>(delivered));
  report.Add("micro_steady_allocs_per_burst", static_cast<double>(steady));
  if (steady != 0) {
    std::printf("  %s: steady-state burst performed %llu heap allocations "
                "(expected 0)\n",
                gate ? "GATE FAILED" : "note (gate skipped)",
                static_cast<unsigned long long>(steady));
    if (gate) return false;
  }
  return true;
}

bool RunMicroEvents(bool gate, Report& report) {
  std::printf("-- micro/events: %d rounds x %d schedule+fire --\n",
              kEventRounds, kEventBatch);
  EventQueue q;
  auto round = [&q] {
    for (int i = 0; i < kEventBatch; ++i) q.Schedule(i, [] {});
    while (!q.empty()) q.PopNext().cb();
  };
  for (int i = 0; i < 3; ++i) round();  // warm the slot table and heap

  uint64_t gate_before = Allocs();
  round();
  uint64_t steady = Allocs() - gate_before;

  uint64_t allocs_before = Allocs();
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kEventRounds; ++i) round();
  Clock::time_point t1 = Clock::now();
  uint64_t events =
      static_cast<uint64_t>(kEventRounds) * static_cast<uint64_t>(kEventBatch);
  uint64_t allocs = Allocs() - allocs_before;

  report.Add("micro_events_per_sec",
             static_cast<double>(events) / ElapsedSec(t0, t1));
  report.Add("micro_allocs_per_event",
             static_cast<double>(allocs) / static_cast<double>(events));
  report.Add("micro_steady_allocs_per_round", static_cast<double>(steady));
  if (steady != 0) {
    std::printf("  %s: steady-state round performed %llu heap allocations "
                "(expected 0)\n",
                gate ? "GATE FAILED" : "note (gate skipped)",
                static_cast<unsigned long long>(steady));
    if (gate) return false;
  }
  return true;
}

bool RunMacroSession(Report& report) {
  std::printf("-- macro/session: classroom_default workload --\n");
  SystemConfig system;
  system.seed = 2026;
  system.num_sites = 3;
  system.AddFullyReplicatedItems(12, 100);
  // M6 measures the simulator/protocol hot path, so pin the legacy map
  // store: the page engine (B+ tree + buffer pool + store-record
  // logging) has its own baseline and gates in bench_m8_storage.
  system.protocols.storage_engine = StorageEngineKind::kMap;

  WorkloadConfig workload;
  workload.num_txns = 400;
  workload.mpl = 8;
  workload.read_fraction = 0.6;

  uint64_t allocs_before = Allocs();
  Clock::time_point t0 = Clock::now();
  auto result = RunSession(system, workload);
  Clock::time_point t1 = Clock::now();
  uint64_t allocs = Allocs() - allocs_before;

  if (!result.ok()) {
    std::printf("GATE FAILED: session failed: %s\n",
                result.status().ToString().c_str());
    return false;
  }
  uint64_t finished = result->committed + result->aborted;
  report.Add("macro_wall_ms", ElapsedSec(t0, t1) * 1e3);
  report.Add("macro_allocs_per_txn",
             static_cast<double>(allocs) /
                 static_cast<double>(finished == 0 ? 1 : finished));
  report.Add("macro_committed", static_cast<double>(result->committed));
  report.Add("macro_net_messages", static_cast<double>(result->net_messages));
  return true;
}

/// One baseline comparison: fails (returns false) when `current` is
/// worse than `allowed_ratio` times the baseline value. `higher_is_better`
/// flips the direction for throughput-style metrics. `slack` absorbs
/// quantization around zero-valued allocation baselines.
bool CheckMetric(const std::map<std::string, double>& baseline,
                 const std::map<std::string, double>& current,
                 const std::string& key, double allowed_ratio,
                 bool higher_is_better, double slack = 0.0) {
  auto b = baseline.find(key);
  auto c = current.find(key);
  if (b == baseline.end() || c == current.end()) {
    std::printf("  check %-28s SKIPPED (missing from %s)\n", key.c_str(),
                b == baseline.end() ? "baseline" : "current run");
    return true;
  }
  bool ok = higher_is_better ? c->second >= b->second / allowed_ratio
                             : c->second <= b->second * allowed_ratio + slack;
  std::printf("  check %-28s %s (current %.6g vs baseline %.6g, allowed %gx)\n",
              key.c_str(), ok ? "ok" : "REGRESSED", c->second, b->second,
              allowed_ratio);
  return ok;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_M6.json";
  std::string check_path;
  std::string seed_json_path;
  bool gate = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--seed-json") {
      seed_json_path = next();
    } else if (arg == "--no-gate") {
      gate = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader("M6", "event/message hot path (alloc counts + throughput)");
  Report report;
  bool ok = RunMicroMessages(gate, report);
  ok = RunMicroEvents(gate, report) && ok;
  ok = RunMacroSession(report) && ok;

  // Merge a pre-change run (--seed-json) as seed_* keys plus the two
  // headline ratios the acceptance criteria track.
  if (!seed_json_path.empty()) {
    std::map<std::string, double> seed = bench::ParseFlatJson(seed_json_path);
    std::map<std::string, double> current(report.fields.begin(),
                                          report.fields.end());
    for (const auto& [key, value] : seed) {
      report.fields.emplace_back("seed_" + key, value);
    }
    if (seed.count("micro_msgs_per_sec") != 0 &&
        seed["micro_msgs_per_sec"] > 0) {
      report.Add("speedup_msgs_per_sec",
                 current["micro_msgs_per_sec"] / seed["micro_msgs_per_sec"]);
    }
    if (seed.count("micro_allocs_per_msg") != 0 &&
        seed["micro_allocs_per_msg"] > 0) {
      report.Add("alloc_reduction_per_msg",
                 1.0 - current["micro_allocs_per_msg"] /
                           seed["micro_allocs_per_msg"]);
    }
  }

  bench::AddEnvFields(report.fields, /*shards=*/1);
  if (!bench::EmitJson(out_path, report.fields)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    std::printf("-- checking against baseline %s --\n", check_path.c_str());
    std::map<std::string, double> baseline = bench::ParseFlatJson(check_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s missing or unreadable\n",
                   check_path.c_str());
      return 1;
    }
    std::map<std::string, double> current(report.fields.begin(),
                                          report.fields.end());
    bool pass = true;
    // Wall-time-shaped metrics: loose 1.5x bound (CI machines are noisy).
    pass &= CheckMetric(baseline, current, "micro_msgs_per_sec", 1.5, true);
    pass &= CheckMetric(baseline, current, "micro_events_per_sec", 1.5, true);
    pass &= CheckMetric(baseline, current, "macro_wall_ms", 1.5, false);
    // Allocation counts: exact measurements, 2x bound. The small
    // absolute slack absorbs ratio-vs-zero edge cases.
    pass &= CheckMetric(baseline, current, "micro_allocs_per_msg", 2.0, false,
                        /*slack=*/0.5);
    pass &= CheckMetric(baseline, current, "macro_allocs_per_txn", 2.0, false,
                        /*slack=*/16.0);
    // Acceptance floor from the calendar-queue/batching/arena pass: the
    // hot path must hold >= 2x the frozen PR-5 seed throughput (the
    // seed_* keys are historical measurements and are never re-run).
    // The checked-in run sits near 3x, so the floor leaves ~33%
    // headroom for CI machine noise.
    auto seed = baseline.find("seed_micro_msgs_per_sec");
    if (seed != baseline.end() && seed->second > 0 &&
        current.count("micro_msgs_per_sec") != 0) {
      double ratio = current["micro_msgs_per_sec"] / seed->second;
      bool ok = ratio >= 2.0;
      std::printf("  check %-28s %s (%.2fx over PR-5 seed, need >= 2x)\n",
                  "speedup_vs_seed", ok ? "ok" : "REGRESSED", ratio);
      pass &= ok;
    }
    if (!pass) {
      std::printf("perf-smoke: REGRESSION against %s\n", check_path.c_str());
      return 1;
    }
    std::printf("perf-smoke: ok\n");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace rainbow

int main(int argc, char** argv) { return rainbow::Main(argc, argv); }
