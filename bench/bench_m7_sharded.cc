// M7: sharded-kernel scaling on a wide topology, with a machine-readable
// report and a CI speedup gate.
//
// The bench builds a 120-site partially replicated system, drives the
// same seeded per-site-client workload through the single-shard kernel
// and through the sharded kernel (--shards, default 4), and reports
// wall-clock messages/sec for both. Because the sharded kernel is
// deterministic *across shard counts*, the two runs must also agree on
// committed transactions and total network messages — the bench
// hard-fails on any divergence (a free end-to-end determinism check on
// a topology much wider than the unit tests').
//
// The speedup gate (with --check) fails when the sharded run's msgs/sec
// is below 2x the single-shard run — but only on machines with at least
// 4 hardware threads; on smaller boxes the gate is reported and
// skipped, and the baseline records `hardware_threads` so readers can
// tell which kind of machine produced it.
//
// Flags:
//   --out FILE    write the JSON report here (default BENCH_M7.json)
//   --check FILE  compare against a baseline JSON + enforce the speedup
//                 gate; exit 1 on failure
//   --shards N    parallel shard count to measure (default 4)
//   --txns N      transactions to drive (default 3000)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "core/system.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kSites = 120;
constexpr int kItems = 360;
constexpr int kReplication = 3;

struct RunNumbers {
  double wall_ms = 0;
  double msgs_per_sec = 0;
  uint64_t committed = 0;
  uint64_t net_messages = 0;
  bool ok = false;
};

RunNumbers RunOnce(uint32_t shards, uint32_t txns) {
  SystemConfig system;
  system.seed = 2026;
  system.num_sites = kSites;
  system.sim_shards = shards;
  system.AddUniformItems(kItems, 100, kReplication);

  WorkloadConfig workload;
  workload.seed = 7;
  workload.num_txns = txns;
  workload.mpl = kSites;  // one in-flight transaction per site
  workload.read_fraction = 0.6;
  workload.per_site_clients = true;  // identical model at any shard count

  RunNumbers n;
  Clock::time_point t0 = Clock::now();
  auto result = RunSession(system, workload);
  Clock::time_point t1 = Clock::now();
  if (!result.ok()) {
    std::printf("run (shards=%u) FAILED: %s\n", shards,
                result.status().ToString().c_str());
    return n;
  }
  n.wall_ms =
      std::chrono::duration<double>(t1 - t0).count() * 1e3;
  n.committed = result->committed;
  n.net_messages = result->net_messages;
  n.msgs_per_sec = n.wall_ms > 0
                       ? static_cast<double>(n.net_messages) / (n.wall_ms / 1e3)
                       : 0;
  n.ok = true;
  std::printf("  shards=%-3u wall %.1f ms, %llu msgs (%.3g msgs/sec), "
              "%llu committed\n",
              shards, n.wall_ms, static_cast<unsigned long long>(n.net_messages),
              n.msgs_per_sec, static_cast<unsigned long long>(n.committed));
  return n;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_M7.json";
  std::string check_path;
  uint32_t txns = 3000;
  uint32_t shards = bench::ShardsFlag(argc, argv, 4);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--shards") {
      next();  // consumed by bench::ShardsFlag
    } else if (arg == "--txns") {
      txns = static_cast<uint32_t>(std::stoul(next()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader(
      "M7", "sharded kernel scaling (120 sites, shards=1 vs " +
                std::to_string(shards) + ")");

  RunNumbers base = RunOnce(1, txns);
  RunNumbers par = RunOnce(shards, txns);
  if (!base.ok || !par.ok) return 1;

  // Determinism cross-check: shard count must not change the execution.
  bool parity = base.committed == par.committed &&
                base.net_messages == par.net_messages;
  if (!parity) {
    std::printf("PARITY FAILED: shards=1 (%llu committed, %llu msgs) vs "
                "shards=%u (%llu committed, %llu msgs)\n",
                static_cast<unsigned long long>(base.committed),
                static_cast<unsigned long long>(base.net_messages), shards,
                static_cast<unsigned long long>(par.committed),
                static_cast<unsigned long long>(par.net_messages));
  }

  double speedup =
      base.msgs_per_sec > 0 ? par.msgs_per_sec / base.msgs_per_sec : 0;
  std::printf("  speedup (msgs/sec, %u shards vs 1): %.2fx\n", shards,
              speedup);

  std::vector<std::pair<std::string, double>> fields;
  fields.emplace_back("sites", kSites);
  fields.emplace_back("txns", txns);
  fields.emplace_back("wall_ms_1shard", base.wall_ms);
  fields.emplace_back("msgs_per_sec_1shard", base.msgs_per_sec);
  fields.emplace_back("committed_1shard", static_cast<double>(base.committed));
  fields.emplace_back("wall_ms_sharded", par.wall_ms);
  fields.emplace_back("msgs_per_sec_sharded", par.msgs_per_sec);
  fields.emplace_back("committed_sharded", static_cast<double>(par.committed));
  fields.emplace_back("net_messages", static_cast<double>(base.net_messages));
  fields.emplace_back("speedup_msgs_per_sec", speedup);
  fields.emplace_back("parity", parity ? 1 : 0);
  bench::AddEnvFields(fields, shards);
  if (!bench::EmitJson(out_path, fields)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  bool pass = parity;
  if (!check_path.empty()) {
    std::printf("-- checking against baseline %s --\n", check_path.c_str());
    std::map<std::string, double> baseline = bench::ParseFlatJson(check_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s missing or unreadable\n",
                   check_path.c_str());
      return 1;
    }
    // Workload-shape sanity: the run must still drive the same
    // execution the baseline recorded (message totals are exact).
    auto b = baseline.find("net_messages");
    if (b != baseline.end() &&
        static_cast<double>(base.net_messages) != b->second) {
      std::printf("  check net_messages REGRESSED (current %llu vs baseline "
                  "%.0f)\n",
                  static_cast<unsigned long long>(base.net_messages),
                  b->second);
      pass = false;
    }
    // The scaling gate: >= 2x msgs/sec at >= 4 shards, enforced only on
    // machines with enough hardware threads to possibly show it.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 4 && shards >= 4) {
      bool ok = speedup >= 2.0;
      std::printf("  check speedup_msgs_per_sec  %s (%.2fx, need >= 2.0x)\n",
                  ok ? "ok" : "REGRESSED", speedup);
      pass &= ok;
    } else {
      std::printf("  check speedup_msgs_per_sec  SKIPPED (%u hardware "
                  "threads, %u shards)\n",
                  hw, shards);
    }
  }

  std::printf(pass ? "M7 PASS\n" : "M7 FAIL\n");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace rainbow

int main(int argc, char** argv) { return rainbow::Main(argc, argv); }
