// M8: the page storage engine under memory pressure, with a
// machine-readable baseline. Four sections:
//
//   * load — bulk-build the B+ tree with 1M items through a buffer pool
//     that holds a small fraction of the data (load rate, pages
//     allocated, tree height).
//   * point — zipfian point ops (80% Get / 20% committed Apply) against
//     the warmed pool; reports ops/sec, buffer hit rate and pages
//     evicted — the classic "working set vs pool size" curve every
//     storage lecture draws.
//   * scan — leaf-chain range scans of 64 items from zipfian start
//     keys; reports scanned items/sec.
//   * restart — a crash (pool dropped) after a batch of logged commits,
//     then the ARIES analysis->redo->undo pass; reports replay time and
//     redo counts.
//   * checkpoint — a second store running fuzzy checkpoints on a fixed
//     LSN cadence; crash-and-restart after 20k and again after 100k
//     commits. With checkpoints the analysis scan starts at the last
//     complete checkpoint, so the 100k restart must scan at most ~2x
//     the records of the 20k restart even though the log is 5x longer
//     (hard in-binary gate on the ratio).
//
// The numbers are written as flat JSON (bench::EmitJson). The repo
// checks in BENCH_M8.json as the baseline; the CI perf-smoke step runs
// this binary with --check BENCH_M8.json, which fails on throughput
// regressions beyond 1.5x (wall-clock, loose for CI noise) or a buffer
// hit rate drop beyond 10% (deterministic, the real gate: the replacer
// or pool accounting regressing shows up here immediately).
//
// Flags:
//   --out FILE    write the JSON report here (default BENCH_M8.json)
//   --check FILE  compare against a baseline JSON; exit 1 on regression
//   --items N     override the item count (default 1,000,000)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "storage/storage_engine.h"

namespace rainbow {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedSec(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

constexpr uint32_t kPageSize = 4096;
constexpr size_t kPoolPages = 256;  // 1 MiB of pool vs ~20 MiB of data
constexpr size_t kLruK = 2;
constexpr int kPointOps = 400000;
constexpr int kScanOps = 20000;
constexpr uint32_t kScanLength = 64;
constexpr int kRestartTxns = 20000;
constexpr double kZipfTheta = 0.99;
constexpr uint32_t kCheckpointItems = 100000;
constexpr uint64_t kCheckpointInterval = 5000;  // LSNs between checkpoints
// Crash points sit off the natural checkpoint cadence (~1250 commits at
// 4 log records per commit) so the analysis tail is a representative
// partial window rather than the degenerate crash-right-after-checkpoint.
constexpr int kCheckpointTxnsSmall = 20700;
constexpr int kCheckpointTxnsLarge = 100700;
constexpr double kCheckpointScanRatioGate = 2.0;

struct Report {
  std::vector<std::pair<std::string, double>> fields;
  void Add(const std::string& key, double value) {
    fields.emplace_back(key, value);
    std::printf("  %-28s %.6g\n", key.c_str(), value);
  }
};

bool CheckMetric(const std::map<std::string, double>& baseline,
                 const std::map<std::string, double>& current,
                 const std::string& key, double allowed_ratio,
                 bool higher_is_better, double slack = 0.0) {
  auto b = baseline.find(key);
  auto c = current.find(key);
  if (b == baseline.end() || c == current.end()) {
    std::printf("  check %-28s SKIPPED (missing from %s)\n", key.c_str(),
                b == baseline.end() ? "baseline" : "current run");
    return true;
  }
  bool ok = higher_is_better ? c->second >= b->second / allowed_ratio
                             : c->second <= b->second * allowed_ratio + slack;
  std::printf("  check %-28s %s (current %.6g vs baseline %.6g, allowed %gx)\n",
              key.c_str(), ok ? "ok" : "REGRESSED", c->second, b->second,
              allowed_ratio);
  return ok;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_M8.json";
  std::string check_path;
  uint32_t num_items = 1000000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--items") {
      num_items = static_cast<uint32_t>(std::stoul(next()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader("M8", "page storage engine (B+ tree / buffer pool / ARIES)");
  Report report;

  Wal wal;
  PageStore store(&wal, kPageSize, kPoolPages, kLruK);

  // --- load ---------------------------------------------------------------
  std::printf("-- load: %u items, %u B pages, %zu-frame pool --\n", num_items,
              kPageSize, kPoolPages);
  Clock::time_point t0 = Clock::now();
  for (uint32_t i = 0; i < num_items; ++i) {
    store.Load(i, static_cast<Value>(i));
  }
  store.FlushAll();
  Clock::time_point t1 = Clock::now();
  report.Add("load_items_per_sec",
             static_cast<double>(num_items) / ElapsedSec(t0, t1));
  report.Add("pages_allocated", static_cast<double>(store.disk().allocated_pages()));
  report.Add("tree_height", static_cast<double>(store.tree().height()));

  // --- point ops ----------------------------------------------------------
  std::printf("-- point: %d zipfian ops (80%% get / 20%% apply) --\n",
              kPointOps);
  Rng rng(20260808);
  ZipfSampler zipf(num_items, kZipfTheta);
  BufferPool::Stats before = store.pool().stats();
  Version version = 1;
  uint64_t sum = 0;
  t0 = Clock::now();
  for (int i = 0; i < kPointOps; ++i) {
    ItemId item = static_cast<ItemId>(zipf.Sample(rng));
    if (i % 5 == 0) {
      store.Apply(item, static_cast<Value>(i), version++);
    } else {
      auto copy = store.Get(item);
      if (copy.ok()) sum += static_cast<uint64_t>(copy->version);
    }
  }
  t1 = Clock::now();
  BufferPool::Stats after = store.pool().stats();
  uint64_t accesses = (after.hits - before.hits) + (after.misses - before.misses);
  report.Add("point_ops_per_sec",
             static_cast<double>(kPointOps) / ElapsedSec(t0, t1));
  report.Add("point_hit_rate",
             accesses == 0 ? 0.0
                           : static_cast<double>(after.hits - before.hits) /
                                 static_cast<double>(accesses));
  report.Add("point_pages_evicted",
             static_cast<double>(after.evictions - before.evictions));
  if (sum == 0) std::printf("  (checksum unused)\n");

  // --- scans --------------------------------------------------------------
  std::printf("-- scan: %d scans x %u items --\n", kScanOps, kScanLength);
  before = store.pool().stats();
  std::vector<std::pair<ItemId, ItemCopy>> out;
  uint64_t scanned = 0;
  t0 = Clock::now();
  for (int i = 0; i < kScanOps; ++i) {
    ItemId from = static_cast<ItemId>(zipf.Sample(rng));
    out.clear();
    store.Range(from, kScanLength, out);
    scanned += out.size();
  }
  t1 = Clock::now();
  after = store.pool().stats();
  accesses = (after.hits - before.hits) + (after.misses - before.misses);
  report.Add("scan_items_per_sec",
             static_cast<double>(scanned) / ElapsedSec(t0, t1));
  report.Add("scan_hit_rate",
             accesses == 0 ? 0.0
                           : static_cast<double>(after.hits - before.hits) /
                                 static_cast<double>(accesses));
  report.Add("scan_pages_evicted",
             static_cast<double>(after.evictions - before.evictions));

  // --- restart ------------------------------------------------------------
  std::printf("-- restart: crash after %d logged commits, ARIES replay --\n",
              kRestartTxns);
  uint64_t seq = 1;
  for (int i = 0; i < kRestartTxns; ++i) {
    ItemId item = static_cast<ItemId>(zipf.Sample(rng));
    TxnId txn{0, seq++};
    Value value = static_cast<Value>(i);
    store.LogPrewrite(txn, item, value);
    if (store.Apply(item, value, version++, txn)) {
      store.CommitStorageTxn(txn);
    } else {
      store.AbortStorageTxn(txn);
    }
  }
  store.OnCrash();
  t0 = Clock::now();
  RestartSummary rs = store.Restart();
  t1 = Clock::now();
  report.Add("restart_ms", ElapsedSec(t0, t1) * 1e3);
  report.Add("restart_redo_applied", static_cast<double>(rs.redo_applied));
  report.Add("restart_tentative_leaks", static_cast<double>(rs.tentative_leaks));
  if (rs.tentative_leaks != 0) {
    std::printf("GATE FAILED: restart left %zu tentative versions\n",
                rs.tentative_leaks);
    return 1;
  }

  // --- checkpoint ---------------------------------------------------------
  std::printf(
      "-- checkpoint: fuzzy checkpoints every %llu LSNs, restart after "
      "%d and %d commits --\n",
      static_cast<unsigned long long>(kCheckpointInterval),
      kCheckpointTxnsSmall, kCheckpointTxnsLarge);
  Wal ckpt_wal;
  PageStoreOptions ckpt_opts;
  ckpt_opts.page_size = kPageSize;
  ckpt_opts.pool_pages = kPoolPages;
  ckpt_opts.lru_k = kLruK;
  ckpt_opts.checkpoint_interval = kCheckpointInterval;
  PageStore ckpt_store(&ckpt_wal, ckpt_opts);
  for (uint32_t i = 0; i < kCheckpointItems; ++i) {
    ckpt_store.Load(i, static_cast<Value>(i));
  }
  ckpt_store.FlushAll();
  ZipfSampler ckpt_zipf(kCheckpointItems, kZipfTheta);
  Version ckpt_version = 1;
  uint64_t ckpt_seq = 1;
  auto run_commits = [&](int count) {
    for (int i = 0; i < count; ++i) {
      ItemId item = static_cast<ItemId>(ckpt_zipf.Sample(rng));
      TxnId txn{0, ckpt_seq++};
      Value value = static_cast<Value>(i);
      ckpt_store.LogPrewrite(txn, item, value);
      if (ckpt_store.Apply(item, value, ckpt_version++, txn)) {
        ckpt_store.CommitStorageTxn(txn);
      } else {
        ckpt_store.AbortStorageTxn(txn);
      }
    }
  };
  run_commits(kCheckpointTxnsSmall);
  ckpt_store.OnCrash();
  t0 = Clock::now();
  RestartSummary rs_small = ckpt_store.Restart();
  t1 = Clock::now();
  report.Add("ckpt_restart20_ms", ElapsedSec(t0, t1) * 1e3);
  report.Add("ckpt_scanned_20k", static_cast<double>(rs_small.log_scanned));
  run_commits(kCheckpointTxnsLarge - kCheckpointTxnsSmall);
  ckpt_store.OnCrash();
  t0 = Clock::now();
  RestartSummary rs_large = ckpt_store.Restart();
  t1 = Clock::now();
  report.Add("ckpt_restart100_ms", ElapsedSec(t0, t1) * 1e3);
  report.Add("ckpt_scanned_100k", static_cast<double>(rs_large.log_scanned));
  double scan_ratio = rs_small.log_scanned == 0
                          ? 0.0
                          : static_cast<double>(rs_large.log_scanned) /
                                static_cast<double>(rs_small.log_scanned);
  report.Add("ckpt_scan_ratio", scan_ratio);
  if (rs_small.tentative_leaks != 0 || rs_large.tentative_leaks != 0) {
    std::printf("GATE FAILED: checkpointed restart leaked tentative versions\n");
    return 1;
  }
  if (scan_ratio > kCheckpointScanRatioGate) {
    std::printf(
        "GATE FAILED: 100k-commit restart scanned %.2fx the records of the "
        "20k restart (gate %.1fx) — checkpoints are not bounding analysis\n",
        scan_ratio, kCheckpointScanRatioGate);
    return 1;
  }

  bench::AddEnvFields(report.fields, /*shards=*/1);
  if (!bench::EmitJson(out_path, report.fields)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    std::printf("-- checking against baseline %s --\n", check_path.c_str());
    std::map<std::string, double> baseline = bench::ParseFlatJson(check_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s missing or unreadable\n",
                   check_path.c_str());
      return 1;
    }
    std::map<std::string, double> current(report.fields.begin(),
                                          report.fields.end());
    bool pass = true;
    // Wall-time-shaped metrics: loose 1.5x bound (CI machines are noisy).
    pass &= CheckMetric(baseline, current, "load_items_per_sec", 1.5, true);
    pass &= CheckMetric(baseline, current, "point_ops_per_sec", 1.5, true);
    pass &= CheckMetric(baseline, current, "scan_items_per_sec", 1.5, true);
    pass &= CheckMetric(baseline, current, "restart_ms", 1.5, false);
    // Deterministic pool behavior: these move only when the replacer,
    // pool accounting, or tree layout changes — tight bounds.
    pass &= CheckMetric(baseline, current, "point_hit_rate", 1.1, true);
    pass &= CheckMetric(baseline, current, "point_pages_evicted", 1.2, false);
    pass &= CheckMetric(baseline, current, "pages_allocated", 1.1, false);
    pass &= CheckMetric(baseline, current, "restart_tentative_leaks", 1.0,
                        false, /*slack=*/0.0);
    // Checkpointed restart: wall-time loose, scan counts deterministic.
    pass &= CheckMetric(baseline, current, "ckpt_restart20_ms", 1.5, false);
    pass &= CheckMetric(baseline, current, "ckpt_restart100_ms", 1.5, false);
    pass &= CheckMetric(baseline, current, "ckpt_scan_ratio", 1.2, false);
    if (!pass) {
      std::printf("perf-smoke: REGRESSION against %s\n", check_path.c_str());
      return 1;
    }
    std::printf("perf-smoke: ok\n");
  }
  return 0;
}

}  // namespace
}  // namespace rainbow

int main(int argc, char** argv) { return rainbow::Main(argc, argv); }
