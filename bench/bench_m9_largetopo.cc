// M9: large-topology macro bench — the hot path at classroom scale.
//
// PR 10's calendar event queue, same-tick delivery batching, and arena
// codec were tuned on small systems (M6 runs 3 sites); this bench pins
// their behavior on a topology shaped like the paper's scale
// experiments: 128 sites, 3-way partial replication, one client per
// site. The run is fully deterministic, so committed transactions and
// total network messages are exact CI gates (any protocol or kernel
// change that alters the execution must regenerate the baseline in the
// same PR), while wall time, msgs/sec, and allocations per transaction
// are gated with loose ratio bounds the way M6 gates its macro section.
//
// Flags:
//   --out FILE    write the JSON report here (default BENCH_M9.json)
//   --check FILE  compare against a baseline JSON; exit 1 on regression
//   --txns N      transactions to drive (default 2000)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/session.h"
#include "core/system.h"
#include "workload/workload.h"

namespace {

// Global allocation counter (same scheme as M6): every operator-new
// bumps it so the bench can report exact allocations per transaction.
std::atomic<uint64_t> g_allocs{0};

uint64_t Allocs() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above is malloc-based, so free() is the
// matching deallocator; GCC cannot see the pairing and misfires
// -Wmismatched-new-delete at call sites inlined into these definitions.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace rainbow {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kSites = 128;
constexpr int kItems = 384;  // 3 item classes per site on average
constexpr int kReplication = 3;

/// One baseline comparison; mirrors M6's CheckMetric. Fails when
/// `current` is worse than `allowed_ratio` times the baseline value.
bool CheckMetric(const std::map<std::string, double>& baseline,
                 const std::map<std::string, double>& current,
                 const std::string& key, double allowed_ratio,
                 bool higher_is_better, double slack = 0.0) {
  auto b = baseline.find(key);
  auto c = current.find(key);
  if (b == baseline.end() || c == current.end()) {
    std::printf("  check %-24s SKIPPED (missing key)\n", key.c_str());
    return true;
  }
  bool ok = higher_is_better ? c->second >= b->second / allowed_ratio
                             : c->second <= b->second * allowed_ratio + slack;
  std::printf("  check %-24s %s (current %.6g vs baseline %.6g, allowed %gx)\n",
              key.c_str(), ok ? "ok" : "REGRESSED", c->second, b->second,
              allowed_ratio);
  return ok;
}

/// Exact comparison for deterministic counters.
bool CheckExact(const std::map<std::string, double>& baseline,
                const std::map<std::string, double>& current,
                const std::string& key) {
  auto b = baseline.find(key);
  auto c = current.find(key);
  if (b == baseline.end() || c == current.end()) {
    std::printf("  check %-24s SKIPPED (missing key)\n", key.c_str());
    return true;
  }
  bool ok = b->second == c->second;
  std::printf("  check %-24s %s (current %.0f vs baseline %.0f, exact)\n",
              key.c_str(), ok ? "ok" : "REGRESSED", c->second, b->second);
  return ok;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_M9.json";
  std::string check_path;
  uint32_t txns = 2000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--check") {
      check_path = next();
    } else if (arg == "--txns") {
      txns = static_cast<uint32_t>(std::stoul(next()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench::PrintHeader("M9", "large-topology hot path (" +
                               std::to_string(kSites) + " sites, " +
                               std::to_string(kReplication) +
                               "-way replication)");

  SystemConfig system;
  system.seed = 2026;
  system.num_sites = kSites;
  system.AddUniformItems(kItems, 100, kReplication);
  // M9 measures the simulator/protocol hot path at scale, so pin the
  // legacy map store (the page engine has its own gates in M8).
  system.protocols.storage_engine = StorageEngineKind::kMap;

  WorkloadConfig workload;
  workload.seed = 9;
  workload.num_txns = txns;
  workload.mpl = kSites;  // one in-flight transaction per site
  workload.read_fraction = 0.6;
  workload.per_site_clients = true;

  uint64_t allocs_before = Allocs();
  Clock::time_point t0 = Clock::now();
  auto result = RunSession(system, workload);
  Clock::time_point t1 = Clock::now();
  uint64_t allocs = Allocs() - allocs_before;

  if (!result.ok()) {
    std::printf("M9 FAIL: session failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }

  double wall_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
  uint64_t finished = result->committed + result->aborted;
  double msgs_per_sec =
      wall_ms > 0 ? static_cast<double>(result->net_messages) / (wall_ms / 1e3)
                  : 0;

  std::vector<std::pair<std::string, double>> fields;
  auto add = [&](const std::string& key, double value) {
    fields.emplace_back(key, value);
    std::printf("  %-24s %.6g\n", key.c_str(), value);
  };
  add("sites", kSites);
  add("replication", kReplication);
  add("txns", txns);
  add("wall_ms", wall_ms);
  add("msgs_per_sec", msgs_per_sec);
  add("allocs_per_txn", static_cast<double>(allocs) /
                            static_cast<double>(finished == 0 ? 1 : finished));
  add("committed", static_cast<double>(result->committed));
  add("aborted", static_cast<double>(result->aborted));
  add("net_messages", static_cast<double>(result->net_messages));

  bench::AddEnvFields(fields, /*shards=*/1);
  if (!bench::EmitJson(out_path, fields)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!check_path.empty()) {
    std::printf("-- checking against baseline %s --\n", check_path.c_str());
    std::map<std::string, double> baseline = bench::ParseFlatJson(check_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "baseline %s missing or unreadable\n",
                   check_path.c_str());
      return 1;
    }
    std::map<std::string, double> current(fields.begin(), fields.end());
    bool pass = true;
    // Deterministic counters: exact. A legitimate behavior change must
    // regenerate the baseline in the same PR (bench/README.md).
    pass &= CheckExact(baseline, current, "committed");
    pass &= CheckExact(baseline, current, "net_messages");
    // Wall-time-shaped metrics: 2x bounds — this run is an order of
    // magnitude longer than M6's macro section and its wall time swings
    // ~40% between cold and warm runs on small CI boxes.
    pass &= CheckMetric(baseline, current, "wall_ms", 2.0, false);
    pass &= CheckMetric(baseline, current, "msgs_per_sec", 2.0, true);
    // Allocation behavior: exact measurement, 2x bound with slack.
    pass &= CheckMetric(baseline, current, "allocs_per_txn", 2.0, false,
                        /*slack=*/16.0);
    if (!pass) {
      std::printf("perf-smoke: REGRESSION against %s\n", check_path.c_str());
      return 1;
    }
    std::printf("perf-smoke: ok\n");
  }
  return 0;
}

}  // namespace
}  // namespace rainbow

int main(int argc, char** argv) { return rainbow::Main(argc, argv); }
