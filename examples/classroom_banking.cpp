// Classroom banking scenario: ten replicated accounts, concurrent
// transfers submitted from every site. Demonstrates what the paper's
// protocol stack guarantees — the total balance is conserved and the
// committed history is conflict-serializable — even though transfers
// race on the same accounts and some of them abort and restart.
//
// Build & run:  ./build/examples/classroom_banking

#include <iostream>

#include "core/system.h"
#include "verify/history.h"

int main() {
  using namespace rainbow;

  constexpr int kAccounts = 10;
  constexpr Value kInitialBalance = 1000;
  constexpr int kTransfers = 200;

  SystemConfig cfg;
  cfg.seed = 20260705;
  cfg.num_sites = 3;
  cfg.record_history = true;
  for (int i = 0; i < kAccounts; ++i) {
    ItemConfig account;
    account.name = "acct" + std::to_string(i);
    account.initial = kInitialBalance;
    account.copies = {0, 1, 2};  // fully replicated, majority quorums
    cfg.items.push_back(account);
  }

  auto created = RainbowSystem::Create(cfg);
  if (!created.ok()) {
    std::cerr << "create failed: " << created.status() << "\n";
    return 1;
  }
  RainbowSystem& sys = **created;

  // Launch transfers at random times from random home sites. Each is
  // the classic read-modify-write pair: debit one account, credit
  // another.
  Rng rng(42);
  int committed = 0, aborted = 0;
  for (int i = 0; i < kTransfers; ++i) {
    ItemId from = static_cast<ItemId>(rng.NextUint(kAccounts));
    ItemId to = static_cast<ItemId>(rng.NextUint(kAccounts - 1));
    if (to >= from) ++to;
    Value amount = rng.NextInt(1, 100);
    TxnProgram transfer;
    transfer.label = "transfer " + std::to_string(amount);
    transfer.ops = {Op::Increment(from, -amount), Op::Increment(to, amount)};
    SiteId home = static_cast<SiteId>(rng.NextUint(3));
    SimTime at = Micros(static_cast<SimTime>(rng.NextUint(100000)));
    sys.sim().At(at, [&, transfer, home] {
      (void)sys.Submit(home, transfer, [&](const TxnOutcome& o) {
        (o.committed ? committed : aborted)++;
      });
    });
  }
  sys.RunFor(Seconds(30));

  std::cout << "Rainbow classroom banking — " << kTransfers
            << " concurrent transfers on " << kAccounts
            << " replicated accounts\n\n";
  std::cout << "committed: " << committed << "   aborted: " << aborted
            << " (aborted transfers simply never happened — atomicity)\n\n";

  Value total = 0;
  std::cout << "final balances (highest committed version per account):\n";
  for (ItemId i = 0; i < kAccounts; ++i) {
    auto latest = sys.LatestCommitted(i);
    if (!latest.ok()) {
      std::cerr << "read failed: " << latest.status() << "\n";
      return 1;
    }
    std::cout << "  acct" << i << " = " << latest->value << " (v"
              << latest->version << ")\n";
    total += latest->value;
  }
  std::cout << "\ntotal = " << total << " (expected "
            << kAccounts * kInitialBalance << ") — money conserved: "
            << (total == kAccounts * kInitialBalance ? "YES" : "NO") << "\n";

  Status ser = CheckConflictSerializable(sys.history().transactions());
  std::cout << "committed history conflict-serializable: "
            << (ser.ok() ? "YES" : ser.ToString()) << "\n";
  return total == kAccounts * kInitialBalance && ser.ok() ? 0 : 1;
}
