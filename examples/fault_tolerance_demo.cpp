// Fault-tolerance demo: the same workload is run twice — once under
// quorum consensus, once under ROWA — while a site crashes mid-run and
// recovers later. QC keeps committing writes through the outage (a
// majority of copies is still up); ROWA's writes abort until the copy
// returns. Afterwards, the recovered site catches up via the recovery
// refresh and all copies converge.
//
// Build & run:  ./build/examples/fault_tolerance_demo

#include <iostream>

#include "core/session.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"

int main() {
  using namespace rainbow;

  std::cout << "Rainbow fault-tolerance demo\n"
            << "5 sites, full replication; site 3 crashes at t=100ms and\n"
            << "recovers at t=900ms; 300 transactions, 50% writes.\n\n";

  for (RcpKind rcp : {RcpKind::kQuorumConsensus, RcpKind::kRowa}) {
    SystemConfig system;
    system.seed = 1848;
    system.num_sites = 5;
    system.protocols.rcp = rcp;
    system.AddFullyReplicatedItems(200, 100);

    WorkloadConfig workload;
    workload.seed = 7;
    workload.num_txns = 300;
    workload.mpl = 4;
    workload.read_fraction = 0.5;

    SessionOptions options;
    options.faults = {FaultEvent::Crash(Millis(100), 3),
                      FaultEvent::Recover(Millis(900), 3)};

    auto result = RunSession(system, workload, options);
    if (!result.ok()) {
      std::cerr << "session failed: " << result.status() << "\n";
      return 1;
    }
    std::cout << "--- RCP = " << RcpKindName(rcp) << " ---\n";
    std::cout << "  committed " << result->committed << " / 300, commit rate "
              << FormatDouble(result->commit_rate * 100, 1) << "%\n";
    std::cout << "  aborts: RCP-caused " << result->aborted_rcp
              << ", CC-caused " << result->aborted_ccp << ", ACP-caused "
              << result->aborted_acp << ", home-crash "
              << result->aborted_fail << "\n";
    std::cout << "  orphan cleanups: " << result->orphans
              << ", network messages: " << result->net_messages << "\n\n";
  }

  std::cout << "reading: with one of five copies down, QC loses only the\n"
               "transactions homed at (or quorum-routed through) the dead\n"
               "site, while ROWA aborts essentially every write for the\n"
               "duration of the outage.\n";
  return 0;
}
