// History check: runs a workload against a configured Rainbow instance
// with structured tracing on, then feeds the trace to the offline
// protocol-invariant checker (verify/checker.h) — conflict
// serializability, 2PC atomicity, replication invariants and 2PL lock
// discipline — and prints the report. Exit status 1 on any violation,
// so the binary doubles as a CI gate.
//
// Build & run:  ./build/examples/history_check [config.rainbow]
//                   [--txns N] [--seed N] [--faults]
//               ./build/examples/history_check --sweep [--seeds N]
//                   [--txns N] [--faults] [--verbose]
//
// --sweep ignores the config file's protocol selection and runs every
// seed under each {2PL, TSO} x {ROWA, QC} combination — the
// randomized sweep CI runs with --faults on.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/session.h"
#include "core/system.h"

using namespace rainbow;

namespace {

Result<SystemConfig> LoadConfig(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return SystemConfig::FromText(text.str());
}

SessionOptions FaultOptions(bool faults) {
  SessionOptions options;
  options.verify_history = true;
  if (faults) {
    options.random_mttf = Millis(600);
    options.random_mttr = Millis(150);
  }
  return options;
}

struct SweepPoint {
  CcKind cc;
  RcpKind rcp;
};

int RunSweep(SystemConfig base, uint32_t seeds, uint32_t txns, bool faults,
             bool verbose) {
  // ROWA-available is deliberately absent: it trades consistency for
  // availability and can serve stale reads under faults, so the
  // serializability invariant does not hold for it by design.
  const std::vector<SweepPoint> points = {
      {CcKind::kTwoPhaseLocking, RcpKind::kRowa},
      {CcKind::kTwoPhaseLocking, RcpKind::kQuorumConsensus},
      {CcKind::kTimestampOrdering, RcpKind::kRowa},
      {CcKind::kTimestampOrdering, RcpKind::kQuorumConsensus},
  };

  TablePrinter table({"cc", "rcp", "seed", "committed", "aborted", "events",
                      "violations"});
  int failures = 0;
  for (const SweepPoint& point : points) {
    for (uint32_t s = 0; s < seeds; ++s) {
      SystemConfig cfg = base;
      cfg.seed = base.seed + s;
      cfg.protocols.cc = point.cc;
      cfg.protocols.rcp = point.rcp;
      cfg.trace_enabled = true;
      cfg.trace_detail = TraceDetail::kProtocol;
      if (faults) cfg.message_loss = std::max(cfg.message_loss, 0.01);

      WorkloadConfig wl;
      wl.seed = cfg.seed * 7919 + 13;
      wl.num_txns = txns;
      wl.mpl = 6;
      wl.max_retries = 3;

      auto created = RainbowSystem::Create(cfg);
      if (!created.ok()) {
        std::cerr << "create failed: " << created.status() << "\n";
        return 2;
      }
      RainbowSystem& sys = **created;
      FaultInjector injector(&sys);
      SessionOptions options = FaultOptions(faults);
      if (faults) {
        injector.EnableRandomFaults(options.random_mttf, options.random_mttr,
                                    Seconds(3), cfg.seed ^ 0xfa17u);
      }
      WorkloadGenerator wlg(&sys, wl);
      wlg.Run();
      sys.RunToQuiescence();

      CheckReport report = sys.VerifyHistory();
      table.AddRow({CcKindName(point.cc), RcpKindName(point.rcp),
                    std::to_string(cfg.seed),
                    std::to_string(report.committed),
                    std::to_string(report.aborted),
                    std::to_string(report.events),
                    std::to_string(report.violations.size())});
      if (!report.ok()) {
        ++failures;
        std::cerr << "VIOLATION at cc=" << CcKindName(point.cc)
                  << " rcp=" << RcpKindName(point.rcp)
                  << " seed=" << cfg.seed << "\n"
                  << report.Render() << "\n";
      } else if (verbose) {
        std::cout << report.Render() << "\n";
      }
    }
  }
  std::cout << table.ToString();
  if (failures) {
    std::cout << failures << " run(s) violated protocol invariants\n";
    return 1;
  }
  std::cout << "all " << points.size() * seeds
            << " runs satisfied every invariant\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path =
      std::string(RAINBOW_SOURCE_DIR) + "/configs/classroom_default.rainbow";
  uint32_t num_txns = 120;
  uint32_t seeds = 5;
  uint64_t seed_override = 0;
  bool sweep = false;
  bool faults = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--txns" && i + 1 < argc) {
      num_txns = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--seeds" && i + 1 < argc) {
      seeds = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed_override = std::stoull(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      config_path = arg;
    } else {
      std::cerr << "usage: history_check [config.rainbow] [--txns N] "
                   "[--seed N] [--faults] [--sweep] [--seeds N] "
                   "[--verbose]\n";
      return 2;
    }
  }

  auto loaded = LoadConfig(config_path);
  if (!loaded.ok()) {
    std::cerr << "config: " << loaded.status() << "\n";
    return 1;
  }
  SystemConfig cfg = *loaded;
  if (seed_override) cfg.seed = seed_override;

  if (sweep) return RunSweep(cfg, seeds, num_txns, faults, verbose);

  cfg.verify_history = true;
  WorkloadConfig wl;
  wl.seed = cfg.seed;
  wl.num_txns = num_txns;
  wl.mpl = 6;
  wl.max_retries = 3;

  SessionOptions options = FaultOptions(faults);
  auto r = RunSession(cfg, wl, options);
  if (!r.ok()) {
    // A violation fails the session; the rendered report rides along in
    // the status message.
    std::cerr << r.status().message() << "\n";
    return 1;
  }
  std::cout << "config: " << config_path << "\n";
  std::cout << r->verify_report << "\n";
  return 0;
}
