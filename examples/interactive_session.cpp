// Text-mode Rainbow session: the scripted equivalent of the paper's GUI
// tour (§4 "A Brief Tour of the Rainbow Demo"). The same verbs the GUI
// panels expose are available as commands:
//
//   sites N                  configure the number of Rainbow sites
//   latency MEAN_US          configure the network simulation
//   protocol rcp QC|ROWA|ROWA-A
//   protocol cc 2PL|TSO|MVTO
//   protocol acp 2PC|3PC
//   item NAME INITIAL s0|s1|...   define a replicated database item
//   start                    instantiate the configured system
//   submit HOME OP [OP...]   manual workload panel; OP = r:NAME,
//                            w:NAME=VAL, i:NAME+DELTA
//   auto N MPL READFRAC      simulated workload generation
//   run MS                   advance virtual time
//   crash S | recover S      inject a site failure / recovery
//   linkdown A B | linkup A B | linkdown1 A B | linkup1 A B
//   loss A B P | delay A B M | dup A B P | reorder A B J
//   partition G | G ... | heal | clearlinks | crashns | recoverns
//                            the full fault vocabulary of
//                            fault/fault_script.h, applied immediately
//   stats                    Tx-processing statistics (§3 list)
//   log                      per-transaction session log (Figure 5)
//   saveconfig FILE | quit
//
// Run with no arguments for a built-in demo script, with a file argument
// to execute a script, or with "-" to read commands from stdin.

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/string_util.h"
#include "core/config.h"
#include "core/system.h"
#include "fault/fault_script.h"
#include "workload/workload.h"

namespace {

using namespace rainbow;

const char* kDemoScript = R"(
# --- built-in demo: the paper's tour, scripted ---
sites 3
latency 2000
protocol rcp QC
protocol cc 2PL
protocol acp 2PC
item x 100 0|1|2
item y 200 0|1|2
item z 300 0|1|2
item a0 0 0|1|2
item a1 0 0|1|2
item a2 0 0|1|2
item a3 0 0|1|2
item a4 0 0|1|2
item a5 0 0|1|2
item a6 0 0|1|2
item a7 0 0|1|2
item a8 0 0|1|2
start
submit 0 r:x i:y+5
submit 1 w:z=42 r:y
run 50
crash 2
submit 0 i:x+1
run 100
recover 2
run 100
auto 30 4 0.7
run 2000
stats
log
quit
)";

class SessionShell {
 public:
  int RunStream(std::istream& in, bool echo) {
    std::string line;
    while (std::getline(in, line)) {
      std::string_view trimmed = TrimWhitespace(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (echo) std::cout << "rainbow> " << trimmed << "\n";
      if (!Execute(std::string(trimmed))) return 0;  // quit
    }
    return 0;
  }

 private:
  bool Execute(const std::string& line) {
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::cout << "commands: sites latency protocol item start submit auto "
                   "run crash recover linkdown linkup linkdown1 linkup1 loss "
                   "delay dup reorder partition heal clearlinks crashns "
                   "recoverns stats log saveconfig quit\n";
    } else if (cmd == "sites") {
      is >> config_.num_sites;
    } else if (cmd == "latency") {
      int64_t us = 0;
      is >> us;
      config_.latency.mean = us;
    } else if (cmd == "protocol") {
      std::string which, value;
      is >> which >> value;
      SetProtocol(which, value);
    } else if (cmd == "item") {
      ItemConfig item;
      std::string copies;
      is >> item.name >> item.initial >> copies;
      for (const std::string& s : SplitAndTrim(copies, '|')) {
        auto v = ParseInt(s);
        if (v.ok()) item.copies.push_back(static_cast<SiteId>(*v));
      }
      config_.items.push_back(std::move(item));
    } else if (cmd == "start") {
      Start();
    } else if (cmd == "submit") {
      Submit(is);
    } else if (cmd == "auto") {
      Auto(is);
    } else if (cmd == "run") {
      int64_t ms = 0;
      is >> ms;
      if (RequireSystem()) sys_->RunFor(Millis(ms));
    } else if (IsFaultVerb(cmd)) {
      // The whole fault-script vocabulary (fault/fault_script.h) is
      // available as interactive verbs, applied at the current time.
      if (RequireSystem()) {
        Result<FaultEvent> e = ParseFaultCommand(line, sys_->sim().Now());
        if (!e.ok()) {
          std::cout << "bad fault command: " << e.status() << "\n";
        } else {
          injector_->ApplyNow(*e);
          std::cout << "fault applied: " << FormatFaultEvent(*e) << "\n";
        }
      }
    } else if (cmd == "stats") {
      if (RequireSystem()) {
        std::cout << sys_->monitor().RenderStatistics(sys_->net().stats(),
                                                      sys_->sim().Now());
      }
    } else if (cmd == "log") {
      if (RequireSystem()) std::cout << sys_->monitor().RenderSessionLog();
    } else if (cmd == "saveconfig") {
      std::string path;
      is >> path;
      std::ofstream out(path);
      out << config_.ToText();
      std::cout << "saved configuration to " << path << "\n";
    } else {
      std::cout << "unknown command '" << cmd << "' (try: help)\n";
    }
    return true;
  }

  void SetProtocol(const std::string& which, const std::string& value) {
    ProtocolConfig& p = config_.protocols;
    if (which == "rcp") {
      if (value == "QC") p.rcp = RcpKind::kQuorumConsensus;
      if (value == "ROWA") p.rcp = RcpKind::kRowa;
      if (value == "ROWA-A") p.rcp = RcpKind::kRowaAvailable;
    } else if (which == "cc") {
      if (value == "2PL") p.cc = CcKind::kTwoPhaseLocking;
      if (value == "TSO") p.cc = CcKind::kTimestampOrdering;
      if (value == "MVTO") p.cc = CcKind::kMultiversionTso;
      if (value == "OCC") p.cc = CcKind::kOptimistic;
    } else if (which == "acp") {
      if (value == "2PC") p.acp = AcpKind::kTwoPhaseCommit;
      if (value == "3PC") p.acp = AcpKind::kThreePhaseCommit;
    } else if (which == "deadlock") {
      if (value == "wait-die") p.deadlock = DeadlockPolicy::kWaitDie;
      if (value == "wound-wait") p.deadlock = DeadlockPolicy::kWoundWait;
      if (value == "local-wfg") p.deadlock = DeadlockPolicy::kLocalWfg;
      if (value == "timeout-only") p.deadlock = DeadlockPolicy::kTimeoutOnly;
      if (value == "edge-chasing") p.deadlock = DeadlockPolicy::kEdgeChasing;
    }
  }

  void Start() {
    auto created = RainbowSystem::Create(config_);
    if (!created.ok()) {
      std::cout << "configuration rejected: " << created.status() << "\n";
      return;
    }
    sys_ = std::move(created).value();
    injector_ = std::make_unique<FaultInjector>(sys_.get());
    sys_->monitor().set_keep_outcomes(true);
    std::cout << "Rainbow instance up: " << config_.num_sites << " sites, "
              << config_.items.size() << " items, RCP="
              << RcpKindName(config_.protocols.rcp) << " CCP="
              << CcKindName(config_.protocols.cc) << " ACP="
              << AcpKindName(config_.protocols.acp) << "\n";
  }

  void Submit(std::istringstream& is) {
    if (!RequireSystem()) return;
    SiteId home = 0;
    is >> home;
    TxnProgram program;
    std::string token;
    while (is >> token) {
      auto op = ParseOp(token);
      if (!op.ok()) {
        std::cout << "bad op '" << token << "': " << op.status() << "\n";
        return;
      }
      program.ops.push_back(*op);
    }
    Status s = sys_->Submit(home, program, [](const TxnOutcome& o) {
      std::cout << "  -> " << o.ToString() << "\n";
    });
    if (!s.ok()) std::cout << "submit failed: " << s << "\n";
  }

  Result<Op> ParseOp(const std::string& token) {
    // r:NAME | w:NAME=VAL | i:NAME+DELTA (delta may be negative: i:x+-3)
    if (token.size() < 3 || token[1] != ':') {
      return Status::InvalidArgument("expected r:/w:/i: prefix");
    }
    char kind = token[0];
    std::string rest = token.substr(2);
    if (kind == 'r') {
      RAINBOW_ASSIGN_OR_RETURN(ItemId item, sys_->ItemByName(rest));
      return Op::Read(item);
    }
    char sep = kind == 'w' ? '=' : '+';
    size_t pos = rest.find(sep);
    if (pos == std::string::npos) {
      return Status::InvalidArgument(std::string("missing '") + sep + "'");
    }
    RAINBOW_ASSIGN_OR_RETURN(ItemId item,
                             sys_->ItemByName(rest.substr(0, pos)));
    RAINBOW_ASSIGN_OR_RETURN(int64_t value, ParseInt(rest.substr(pos + 1)));
    return kind == 'w' ? Op::Write(item, value) : Op::Increment(item, value);
  }

  void Auto(std::istringstream& is) {
    if (!RequireSystem()) return;
    WorkloadConfig wl;
    is >> wl.num_txns >> wl.mpl >> wl.read_fraction;
    wl.seed = 4711;
    wlg_ = std::make_unique<WorkloadGenerator>(sys_.get(), wl);
    wlg_->Run([n = wl.num_txns] {
      std::cout << "  [workload generator: all " << n
                << " transactions completed]\n";
    });
    std::cout << "simulated workload started (" << wl.num_txns << " txns, MPL "
              << wl.mpl << ", " << wl.read_fraction * 100
              << "% reads); advance time with 'run'\n";
  }

  static bool IsFaultVerb(const std::string& cmd) {
    for (size_t k = 0; k < kNumFaultKinds; ++k) {
      if (cmd == FaultKindName(static_cast<FaultEvent::Kind>(k))) return true;
    }
    return false;
  }

  bool RequireSystem() {
    if (!sys_) {
      std::cout << "no running instance — configure and 'start' first\n";
      return false;
    }
    return true;
  }

  SystemConfig config_;
  std::unique_ptr<RainbowSystem> sys_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<WorkloadGenerator> wlg_;
};

}  // namespace

int main(int argc, char** argv) {
  SessionShell shell;
  if (argc < 2) {
    std::cout << "(no script given: running the built-in demo; pass a file "
                 "or '-' for stdin)\n";
    std::istringstream demo(kDemoScript);
    return shell.RunStream(demo, /*echo=*/true);
  }
  std::string arg = argv[1];
  if (arg == "-") {
    return shell.RunStream(std::cin, /*echo=*/false);
  }
  std::ifstream file(arg);
  if (!file) {
    std::cerr << "cannot open " << arg << "\n";
    return 1;
  }
  return shell.RunStream(file, /*echo=*/true);
}
