// Nemesis: adversarial fault-schedule fuzzing for Rainbow. Generates
// seed-driven fault programs (crash/recover bursts, partitions,
// asymmetric link failures, per-link loss / delay spikes / duplication /
// reordering) over an intensity profile, runs each against the
// deterministic simulator with the protocol-invariant checker as the
// oracle, and delta-debugs the first failing schedule down to a minimal
// repro emitted as a declarative fault script (fault/fault_script.h).
//
// Build & run:
//   ./build/examples/nemesis --rounds 50 --profile havoc --shrink
//   ./build/examples/nemesis --rounds 20 --profile flaky --seed 7
//       --emit-repro out.faults
//   ./build/examples/nemesis --replay out.faults --seed 7
//
// Flags:
//   --rounds N        schedules to try (default from config: 10)
//   --profile NAME    calm | flaky | havoc (default flaky)
//   --seed N          nemesis base seed (default 1)
//   --txns N          workload size per round (default 120)
//   --mpl N           workload multiprogramming level (default 4)
//   --shrink / --no-shrink    minimize the first failing schedule
//   --shrink-budget N max simulator re-runs while shrinking
//   --emit-repro F    write the minimized fault script to F
//   --replay F        replay a fault script instead of fuzzing
//   --replay-seed N   workload seed for --replay (default: --seed)
//   --config F        base system config (.rainbow text format); its
//                     nemesis_* keys seed the defaults
//   --shards N        run every round on the sharded kernel with N
//                     shards (default 1 = sequential kernel); results
//                     are identical either way — CI uses this to fuzz
//                     the barrier/mailbox machinery under TSan
//   --no-epoch-fencing    disable the incarnation-epoch fix (plants the
//                     resurrection bug for bug-hunt demos and labs)
//   --storage-faults  mix storage-fault windows (torn/short/lost writes,
//                     read bit flips) into the schedules, on a small-page
//                     config that actually exercises the disk
//   --no-page-crc     disable page checksums + doublewrite (plants the
//                     torn-page bug for storage bug-hunt demos); replays
//                     of a repro found this way need the same flag
//
// Exit status: 0 = all rounds clean, or replay reproduced the
// violation; 1 = violation found (repro printed / emitted), or replay
// did NOT reproduce; 2 = usage or harness error.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/config.h"
#include "fault/fault_script.h"
#include "fault/nemesis.h"

using namespace rainbow;

namespace {

Result<SystemConfig> LoadConfig(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return SystemConfig::FromText(text.str());
}

int Usage() {
  std::cerr << "usage: nemesis [--rounds N] [--profile calm|flaky|havoc]\n"
               "               [--seed N] [--txns N] [--mpl N]\n"
               "               [--shrink | --no-shrink] [--shrink-budget N]\n"
               "               [--emit-repro FILE] [--config FILE]\n"
               "               [--shards N] [--no-epoch-fencing]\n"
               "               [--storage-faults] [--no-page-crc]\n"
               "       nemesis --replay FILE [--replay-seed N] ...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  NemesisOptions opts;
  opts.rounds = 0;  // 0 = take the config default
  std::string emit_path;
  std::string replay_path;
  uint64_t replay_seed = 0;
  bool have_replay_seed = false;
  bool seed_given = false;
  bool profile_given = false;
  uint32_t shards = 0;  // 0 = keep the config's sim_shards

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--rounds") {
      const char* v = next();
      if (!v) return Usage();
      opts.rounds = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--profile") {
      const char* v = next();
      if (!v) return Usage();
      opts.profile = v;
      profile_given = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      opts.seed = std::stoull(v);
      seed_given = true;
    } else if (arg == "--txns") {
      const char* v = next();
      if (!v) return Usage();
      opts.txns = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--mpl") {
      const char* v = next();
      if (!v) return Usage();
      opts.mpl = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--shrink-budget") {
      const char* v = next();
      if (!v) return Usage();
      opts.shrink_budget = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--emit-repro") {
      const char* v = next();
      if (!v) return Usage();
      emit_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return Usage();
      replay_path = v;
    } else if (arg == "--replay-seed") {
      const char* v = next();
      if (!v) return Usage();
      replay_seed = std::stoull(v);
      have_replay_seed = true;
    } else if (arg == "--config") {
      const char* v = next();
      if (!v) return Usage();
      Result<SystemConfig> cfg = LoadConfig(v);
      if (!cfg.ok()) {
        std::cerr << "config: " << cfg.status() << "\n";
        return 2;
      }
      opts.base_config = *cfg;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return Usage();
      shards = static_cast<uint32_t>(std::stoul(v));
    } else if (arg == "--no-epoch-fencing") {
      opts.base_config.protocols.epoch_fencing = false;
    } else if (arg == "--storage-faults") {
      opts.storage_faults = true;
    } else if (arg == "--no-page-crc") {
      opts.base_config.protocols.page_checksums = false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage();
    }
  }

  // Config-file nemesis knobs are the defaults; flags win.
  if (!seed_given) opts.seed = opts.base_config.nemesis_seed;
  if (!profile_given) opts.profile = opts.base_config.nemesis_profile;
  if (opts.rounds == 0) opts.rounds = opts.base_config.nemesis_rounds;
  if (shards > 0) opts.base_config.sim_shards = shards;

  Result<Nemesis> made = Nemesis::Make(opts);
  if (!made.ok()) {
    std::cerr << made.status() << "\n";
    return 2;
  }
  Nemesis& nemesis = *made;

  if (!replay_path.empty()) {
    std::ifstream file(replay_path);
    if (!file) {
      std::cerr << "cannot open " << replay_path << "\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    const uint64_t wl_seed = have_replay_seed ? replay_seed : opts.seed;
    std::string report;
    Result<bool> reproduced = nemesis.Replay(text.str(), wl_seed, &report);
    if (!reproduced.ok()) {
      std::cerr << "replay: " << reproduced.status() << "\n";
      return 2;
    }
    if (*reproduced) {
      std::cout << "violation reproduced:\n" << report << "\n";
      return 0;
    }
    std::cout << "no violation on replay (oracle: " << report << ")\n";
    return 1;
  }

  std::cout << "nemesis: profile=" << opts.profile << " seed=" << opts.seed
            << " rounds=" << opts.rounds << " txns=" << opts.txns
            << " shards=" << opts.base_config.sim_shards
            << " shrink=" << (opts.shrink ? "on" : "off") << "\n";

  NemesisResult result = nemesis.Run();
  std::cout << "rounds run: " << result.rounds_run
            << ", simulator executions: " << result.total_runs << "\n";

  if (!result.found_violation) {
    std::cout << "all rounds clean — no invariant violation found\n";
    return 0;
  }

  std::cout << "VIOLATION in round " << result.failing_round
            << " (schedule seed " << result.failing_seed << "), schedule of "
            << result.failing_schedule.size() << " fault events";
  if (opts.shrink) {
    std::cout << ", minimized to " << result.minimized.size();
  }
  std::cout << "\n\n--- oracle report ---\n"
            << result.report << "\n--- minimal fault script ---\n"
            << result.repro_script;

  if (!emit_path.empty()) {
    std::ofstream out(emit_path);
    out << "# nemesis repro: profile=" << opts.profile
        << " nemesis-seed=" << opts.seed
        << " schedule-seed=" << result.failing_seed
        << " txns=" << opts.txns << " mpl=" << opts.mpl << "\n"
        << "# replay: nemesis --replay " << emit_path << " --replay-seed "
        << result.failing_seed << "\n"
        << result.repro_script;
    std::cout << "repro written to " << emit_path << "\n";
  }
  return 1;
}
