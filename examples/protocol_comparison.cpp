// Protocol-matrix comparison: one workload, every protocol combination
// Rainbow supports (RCP x CCP x ACP, plus the term-project extensions).
// This is the experiment the paper's modular protocol design exists to
// enable — "Rainbow protocols are implemented with minimum
// interdependencies ... to facilitate their replacement".
//
// Build & run:  ./build/examples/protocol_comparison

#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "core/session.h"

int main() {
  using namespace rainbow;

  std::cout << "Rainbow protocol matrix — identical workload (300 txns,\n"
            << "MPL 8, 60% reads, 4 sites, degree-3 replication) under\n"
            << "every protocol combination:\n\n";

  TablePrinter table({"RCP", "CCP", "ACP", "commit%", "tput(tps)",
                      "mean_rt(ms)", "msgs/commit"});

  for (RcpKind rcp : {RcpKind::kQuorumConsensus, RcpKind::kRowa,
                      RcpKind::kRowaAvailable}) {
    for (CcKind cc : {CcKind::kTwoPhaseLocking, CcKind::kTimestampOrdering,
                      CcKind::kMultiversionTso, CcKind::kOptimistic}) {
      for (AcpKind acp :
           {AcpKind::kTwoPhaseCommit, AcpKind::kThreePhaseCommit}) {
        SystemConfig system;
        system.seed = 99;
        system.num_sites = 4;
        system.protocols.rcp = rcp;
        system.protocols.cc = cc;
        system.protocols.acp = acp;
        system.AddUniformItems(60, 100, 3);

        WorkloadConfig workload;
        workload.seed = 100;
        workload.num_txns = 300;
        workload.mpl = 8;
        workload.read_fraction = 0.6;

        auto result = RunSession(system, workload);
        if (!result.ok()) {
          std::cerr << "session failed: " << result.status() << "\n";
          return 1;
        }
        table.AddRow({RcpKindName(rcp), CcKindName(cc), AcpKindName(acp),
                      FormatDouble(result->commit_rate * 100, 1),
                      FormatDouble(result->throughput_tps, 1),
                      FormatDouble(result->mean_response_us / 1000, 2),
                      FormatDouble(result->msgs_per_commit, 1)});
      }
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << "observations to look for:\n"
            << "  * ROWA beats QC on this read-heavy mix (cheap reads);\n"
            << "  * MVTO posts the best commit rates (reads never restart);\n"
            << "  * 3PC pays an extra round per commit vs 2PC (messages up,\n"
            << "    response time up) and buys non-blocking termination.\n";
  return 0;
}
