// Quickstart: bring up a three-site Rainbow instance with quorum
// consensus + 2PL + 2PC, run a small mixed workload, and print the
// paper's statistics table.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/session.h"

int main() {
  using namespace rainbow;

  // 1. Configure the instance: 3 sites, 20 items, each replicated on
  //    all sites with majority quorums (the classroom default).
  SystemConfig system;
  system.seed = 2026;
  system.num_sites = 3;
  system.AddFullyReplicatedItems(/*count=*/20, /*initial=*/100);
  system.protocols.rcp = RcpKind::kQuorumConsensus;  // paper default
  system.protocols.cc = CcKind::kTwoPhaseLocking;
  system.protocols.acp = AcpKind::kTwoPhaseCommit;

  // 2. Describe the workload: 200 transactions, 8 at a time, 75% reads.
  WorkloadConfig workload;
  workload.num_txns = 200;
  workload.mpl = 8;
  workload.read_fraction = 0.75;

  // 3. Run the session and render the §3 statistics.
  SessionOptions options;
  options.check_serializability = true;
  auto result = RunSession(system, workload, options);
  if (!result.ok()) {
    std::cerr << "session failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "Rainbow quickstart — QC + 2PL + 2PC, 3 sites\n\n";
  std::cout << result->stats_table << "\n";
  std::cout << "committed history verified conflict-serializable\n";
  return 0;
}
