// Research-study example: the kind of scientific experiment §3 of the
// paper says Rainbow exists for — "studying the quorum consensus
// behavior and message traffic in quorum-based systems" — run
// programmatically with the experiment harness instead of the GUI.
//
// Study question: on a 5-site system, how does shifting quorum weight
// onto one "datacenter-grade" site (3 votes vs 1 each) change message
// traffic, response time, and what happens when THAT site fails?
//
// Build & run:  ./build/examples/research_study

#include <iostream>

#include "common/string_util.h"
#include "core/experiment.h"
#include "fault/fault_injector.h"

namespace {

using namespace rainbow;

SystemConfig WeightedSystem(bool weighted) {
  SystemConfig cfg;
  cfg.seed = 515;
  cfg.num_sites = 5;
  for (int i = 0; i < 100; ++i) {
    ItemConfig item;
    item.name = "x" + std::to_string(i);
    item.initial = 100;
    item.copies = {0, 1, 2, 3, 4};
    if (weighted) {
      // Site 0 carries 3 of 7 votes; R = W = 4 still intersect
      // (4+4 > 7, 2*4 > 7) but can be met by {site0, one other}.
      item.votes = {3, 1, 1, 1, 1};
      item.read_quorum = 4;
      item.write_quorum = 4;
    }  // else: default majority (3 of 5, one vote each)
    cfg.items.push_back(std::move(item));
  }
  return cfg;
}

WorkloadConfig Mix() {
  WorkloadConfig wl;
  wl.seed = 516;
  wl.num_txns = 300;
  wl.mpl = 6;
  wl.read_fraction = 0.6;
  return wl;
}

}  // namespace

int main() {
  std::cout <<
      "Rainbow research study: weighted vs uniform quorum votes\n"
      "5 sites, 100 fully replicated items, QC + 2PL + 2PC.\n"
      "'weighted' gives site 0 three of seven votes (R = W = 4), so a\n"
      "quorum is {site0 + any one other}; 'uniform' is majority 3-of-5.\n\n";

  {
    Experiment exp("healthy network");
    for (bool weighted : {false, true}) {
      Experiment::Point p;
      p.label = weighted ? "weighted" : "uniform";
      p.system = WeightedSystem(weighted);
      p.workload = Mix();
      exp.AddPoint(std::move(p));
    }
    if (!exp.Run().ok()) return 1;
    std::cout << exp.RenderTable({metrics::MsgsPerCommit(),
                                  metrics::MeanResponseMs(),
                                  metrics::CommitRate(),
                                  metrics::Throughput()})
              << "\n";
  }
  {
    Experiment exp("the heavy site (site 0) crashes at t=100ms, back at t=1s");
    for (bool weighted : {false, true}) {
      Experiment::Point p;
      p.label = weighted ? "weighted" : "uniform";
      p.system = WeightedSystem(weighted);
      p.workload = Mix();
      p.options.faults = {FaultEvent::Crash(Millis(100), 0),
                          FaultEvent::Recover(Millis(1000), 0)};
      exp.AddPoint(std::move(p));
    }
    if (!exp.Run().ok()) return 1;
    std::cout << exp.RenderTable({metrics::CommitRate(),
                                  metrics::AbortRateRcp(),
                                  metrics::MsgsPerCommit(),
                                  metrics::Throughput()})
              << "\n";
  }
  {
    Experiment exp(
        "two sites (0 and 1) down from t=100ms until t=1500ms");
    for (bool weighted : {false, true}) {
      Experiment::Point p;
      p.label = weighted ? "weighted" : "uniform";
      p.system = WeightedSystem(weighted);
      p.workload = Mix();
      p.options.faults = {FaultEvent::Crash(Millis(100), 0),
                          FaultEvent::Crash(Millis(100), 1),
                          FaultEvent::Recover(Millis(1500), 0),
                          FaultEvent::Recover(Millis(1500), 1)};
      p.options.max_duration = Seconds(60);
      exp.AddPoint(std::move(p));
    }
    if (!exp.Run().ok()) return 1;
    std::cout << exp.RenderTable({metrics::CommitRate(),
                                  metrics::AbortRateRcp(),
                                  metrics::Throughput()})
              << "\n";
  }
  std::cout <<
      "finding: weighted votes nearly halve the message bill while the\n"
      "heavy site is healthy. One crash of the heavy site is survivable\n"
      "for both schemes, but the weighted quorum must then touch every\n"
      "remaining copy (its msgs/commit jumps past uniform's). With TWO\n"
      "sites down including the heavy one, only 3 of 7 votes remain:\n"
      "the weighted scheme cannot form any quorum until recovery, while\n"
      "uniform majority (3 of 5) keeps committing. Weighted quorums buy\n"
      "common-case cost with fault-tolerance margin.\n";
  return 0;
}
