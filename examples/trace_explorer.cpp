// Trace explorer: runs a workload against a configured Rainbow instance
// with structured tracing at full detail, then shows what the trace
// subsystem can answer — the per-transaction summary, the ASCII
// timeline of the most contended transaction (the "execution window"
// view of the paper's GUI), and a Chrome trace_event JSON export that
// loads in chrome://tracing or https://ui.perfetto.dev.
//
// Build & run:  ./build/examples/trace_explorer [config.rainbow]
//                   [--txns N] [--out trace.json] [--selfdiff]
//
// --selfdiff runs the same seeded configuration twice and diffs the two
// exports byte-for-byte; CI uses it as the determinism regression gate
// (exit status 1 on any divergence).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/system.h"
#include "stats/trace_export.h"
#include "workload/workload.h"

using namespace rainbow;

namespace {

Result<SystemConfig> LoadConfig(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return SystemConfig::FromText(text.str());
}

/// The transaction whose timeline is most instructive: most CC blocks,
/// ties broken towards more events.
TxnId MostContended(const TraceCollector& c) {
  TxnId best;
  size_t best_blocks = 0, best_events = 0;
  for (TxnId txn : c.Transactions()) {
    std::vector<TraceRecord> events = c.ForTxn(txn);
    size_t blocks = 0;
    for (const TraceRecord& r : events) {
      if (r.kind == TraceEventKind::kCcBlock) ++blocks;
    }
    if (!best.valid() || blocks > best_blocks ||
        (blocks == best_blocks && events.size() > best_events)) {
      best = txn;
      best_blocks = blocks;
      best_events = events.size();
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path =
      std::string(RAINBOW_SOURCE_DIR) + "/configs/classroom_default.rainbow";
  std::string out_path;
  uint32_t num_txns = 30;
  bool selfdiff = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--selfdiff") {
      selfdiff = true;
    } else if (arg == "--txns" && i + 1 < argc) {
      num_txns = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      config_path = arg;
    } else {
      std::cerr << "usage: trace_explorer [config.rainbow] [--txns N] "
                   "[--out trace.json] [--selfdiff]\n";
      return 2;
    }
  }

  auto loaded = LoadConfig(config_path);
  if (!loaded.ok()) {
    std::cerr << "config: " << loaded.status() << "\n";
    return 1;
  }
  SystemConfig cfg = *loaded;
  cfg.trace_enabled = true;
  cfg.trace_detail = TraceDetail::kFull;

  WorkloadConfig wl;
  wl.seed = cfg.seed;
  wl.num_txns = num_txns;
  wl.mpl = 4;
  wl.max_retries = 3;

  if (selfdiff) {
    auto diff = SameSeedTraceDiff(cfg, wl);
    if (!diff.ok()) {
      std::cerr << "selfdiff: " << diff.status() << "\n";
      return 1;
    }
    std::cout << "same-seed trace diff: " << diff->Describe() << "\n";
    return diff->identical ? 0 : 1;
  }

  auto created = RainbowSystem::Create(cfg);
  if (!created.ok()) {
    std::cerr << "create failed: " << created.status() << "\n";
    return 1;
  }
  RainbowSystem& sys = **created;
  WorkloadGenerator gen(&sys, wl);
  gen.Run();
  sys.RunToQuiescence();

  const TraceCollector& trace = sys.collector();
  std::cout << "config: " << config_path << "\n";
  std::cout << "transactions: " << gen.completed() << " completed, "
            << gen.retries() << " retries, " << trace.records().size()
            << " trace events\n\n";

  std::cout << "--- per-transaction summary ---\n"
            << RenderTraceSummary(trace) << "\n";

  TxnId pick = MostContended(trace);
  if (pick.valid()) {
    std::cout << "--- most contended transaction ---\n"
              << RenderTxnTimeline(trace, pick) << "\n";
  }

  std::cout << "--- execution window (tail) ---\n"
            << ProgressMonitor::RenderExecutionWindow(trace, 20);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << ChromeTraceJson(trace);
    std::cout << "\nwrote Chrome trace to " << out_path
              << " (load it in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}
