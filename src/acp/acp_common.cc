#include "acp/acp_common.h"

#include <algorithm>

namespace rainbow {

const char* AcpKindName(AcpKind k) {
  switch (k) {
    case AcpKind::kTwoPhaseCommit:
      return "2PC";
    case AcpKind::kThreePhaseCommit:
      return "3PC";
  }
  return "?";
}

VoteCollector::VoteCollector(std::vector<SiteId> participants)
    : participants_(std::move(participants)) {}

void VoteCollector::Record(SiteId site, bool yes) {
  if (std::find(participants_.begin(), participants_.end(), site) ==
      participants_.end()) {
    return;  // not a participant; stray message
  }
  if (!voted_.insert(site).second) return;  // duplicate
  if (!yes) any_no_ = true;
}

bool VoteCollector::AllYes() const { return Complete() && !any_no_; }

bool VoteCollector::Complete() const {
  return voted_.size() == participants_.size();
}

size_t VoteCollector::pending() const {
  return participants_.size() - voted_.size();
}

AckCollector::AckCollector(std::vector<SiteId> participants)
    : participants_(std::move(participants)) {}

void AckCollector::Record(SiteId site) {
  if (std::find(participants_.begin(), participants_.end(), site) ==
      participants_.end()) {
    return;
  }
  acked_.insert(site);
}

bool AckCollector::Complete() const {
  return acked_.size() == participants_.size();
}

size_t AckCollector::pending() const {
  return participants_.size() - acked_.size();
}

std::vector<SiteId> AckCollector::Missing() const {
  std::vector<SiteId> out;
  for (SiteId s : participants_) {
    if (!acked_.contains(s)) out.push_back(s);
  }
  return out;
}

std::optional<bool> ThreePcTerminationDecision(
    const std::vector<AcpState>& states) {
  if (states.empty()) return std::nullopt;
  bool any_precommitted = false;
  for (AcpState s : states) {
    switch (s) {
      case AcpState::kCommitted:
        return true;
      case AcpState::kAborted:
      case AcpState::kUnknown:
      case AcpState::kActive:
        return false;
      case AcpState::kPreCommitted:
        any_precommitted = true;
        break;
      case AcpState::kPrepared:
        break;
    }
  }
  return any_precommitted;  // all prepared, none pre-committed -> abort
}

SiteId ElectCoordinator(const std::vector<SiteId>& participants,
                        const std::set<SiteId>& suspected) {
  SiteId best = kInvalidSite;
  for (SiteId s : participants) {
    if (suspected.contains(s)) continue;
    best = std::min(best, s);
  }
  return best;
}

}  // namespace rainbow
