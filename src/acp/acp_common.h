#ifndef RAINBOW_ACP_ACP_COMMON_H_
#define RAINBOW_ACP_ACP_COMMON_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace rainbow {

/// Which atomic commitment protocol a Rainbow instance runs.
enum class AcpKind {
  kTwoPhaseCommit,    ///< the paper's default ACP
  kThreePhaseCommit,  ///< non-blocking term-project extension
};

const char* AcpKindName(AcpKind k);

/// Tracks phase-1 vote collection at the coordinator. Pure bookkeeping,
/// shared by 2PC and 3PC.
class VoteCollector {
 public:
  explicit VoteCollector(std::vector<SiteId> participants);

  /// Records a vote; duplicate votes from the same site are ignored.
  void Record(SiteId site, bool yes);

  bool AllYes() const;
  bool AnyNo() const { return any_no_; }
  bool Complete() const;
  size_t pending() const;
  const std::vector<SiteId>& participants() const { return participants_; }

 private:
  std::vector<SiteId> participants_;
  std::set<SiteId> voted_;
  bool any_no_ = false;
};

/// Tracks acknowledgement collection (decision phase of 2PC, and the
/// pre-commit / commit phases of 3PC).
class AckCollector {
 public:
  explicit AckCollector(std::vector<SiteId> participants);

  void Record(SiteId site);
  bool Complete() const;
  size_t pending() const;
  std::vector<SiteId> Missing() const;

 private:
  std::vector<SiteId> participants_;
  std::set<SiteId> acked_;
};

/// The 3PC cooperative-termination decision rule: given the states
/// reported by the reachable participants (including the caller's own),
/// decide the transaction's fate without the coordinator.
///
///  * any kCommitted         -> commit
///  * any kAborted / kUnknown / kActive -> abort (kUnknown or kActive
///    means that site had not voted YES, so commit cannot have been
///    decided)
///  * any kPreCommitted      -> commit (no site can be in both abort-
///    and commit-reachable states; pre-commit certifies all voted yes)
///  * all kPrepared          -> abort (safe in 3PC: pre-commit certifies
///    commit decisions, and no reachable site saw one)
///
/// Returns nullopt if `states` is empty.
std::optional<bool> ThreePcTerminationDecision(
    const std::vector<AcpState>& states);

/// Elects a replacement coordinator for 3PC termination: the lowest site
/// id among the live participants.
SiteId ElectCoordinator(const std::vector<SiteId>& participants,
                        const std::set<SiteId>& suspected);

}  // namespace rainbow

#endif  // RAINBOW_ACP_ACP_COMMON_H_
