#include "catalog/catalog.h"

namespace rainbow {

Result<SiteId> Catalog::RegisterSite(const std::string& name) {
  SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(SiteInfo{id, name});
  return id;
}

Result<const SiteInfo*> Catalog::FindSite(SiteId id) const {
  if (id >= sites_.size()) {
    return Status::NotFound("no site with id " + std::to_string(id));
  }
  return &sites_[id];
}

Status Catalog::Validate() const {
  RAINBOW_RETURN_IF_ERROR(schema_.Validate());
  for (const ItemSchema& item : schema_.items()) {
    for (SiteId s : item.copies) {
      if (s >= sites_.size()) {
        return Status::InvalidArgument(
            "item '" + item.name + "' places a copy on unregistered site " +
            std::to_string(s));
      }
    }
  }
  return Status::OK();
}

}  // namespace rainbow
