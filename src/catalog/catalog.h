#ifndef RAINBOW_CATALOG_CATALOG_H_
#define RAINBOW_CATALOG_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "catalog/schema.h"

namespace rainbow {

/// Metadata for one Rainbow site, as stored in the name server ("the id
/// and end point specifications"). In the simulation the endpoint is the
/// site's network address (its SiteId) plus a display name.
struct SiteInfo {
  SiteId id = kInvalidSite;
  std::string name;
};

/// The name server's data: the site registry plus the replication
/// schema. Kept as a separate value type so it can be unit-tested and
/// snapshot-copied into site-local caches without touching the actor.
class Catalog {
 public:
  /// Registers a site; ids must be dense from 0.
  Result<SiteId> RegisterSite(const std::string& name);

  Result<const SiteInfo*> FindSite(SiteId id) const;
  const std::vector<SiteInfo>& sites() const { return sites_; }
  size_t num_sites() const { return sites_.size(); }

  ReplicationSchema& schema() { return schema_; }
  const ReplicationSchema& schema() const { return schema_; }

  /// Validates sites + schema consistency (every copy placed on a
  /// registered site).
  Status Validate() const;

 private:
  std::vector<SiteInfo> sites_;
  ReplicationSchema schema_;
};

}  // namespace rainbow

#endif  // RAINBOW_CATALOG_CATALOG_H_
