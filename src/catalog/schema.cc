#include "catalog/schema.h"

#include <numeric>

namespace rainbow {

int ItemSchema::total_votes() const {
  return std::accumulate(votes.begin(), votes.end(), 0);
}

int ItemSchema::VoteOf(SiteId site) const {
  for (size_t i = 0; i < copies.size(); ++i) {
    if (copies[i] == site) return votes[i];
  }
  return 0;
}

bool ItemSchema::HasCopyAt(SiteId site) const { return VoteOf(site) > 0; }

Result<ItemId> ReplicationSchema::AddItem(const std::string& name,
                                          Value initial_value,
                                          std::vector<SiteId> copies,
                                          std::vector<int> votes,
                                          int read_quorum, int write_quorum) {
  if (by_name_.contains(name)) {
    return Status::AlreadyExists("item '" + name + "' already defined");
  }
  if (copies.empty()) {
    return Status::InvalidArgument("item '" + name + "' has no copies");
  }
  if (votes.size() != copies.size()) {
    return Status::InvalidArgument("item '" + name +
                                   "': votes/copies size mismatch");
  }
  for (size_t i = 0; i < copies.size(); ++i) {
    if (votes[i] < 1) {
      return Status::InvalidArgument("item '" + name +
                                     "': vote weights must be >= 1");
    }
    for (size_t j = i + 1; j < copies.size(); ++j) {
      if (copies[i] == copies[j]) {
        return Status::InvalidArgument("item '" + name +
                                       "': duplicate copy site");
      }
    }
  }
  ItemSchema item;
  item.id = static_cast<ItemId>(items_.size());
  item.name = name;
  item.initial_value = initial_value;
  item.copies = std::move(copies);
  item.votes = std::move(votes);
  item.read_quorum = read_quorum;
  item.write_quorum = write_quorum;
  by_name_[name] = item.id;
  items_.push_back(std::move(item));
  return items_.back().id;
}

Result<ItemId> ReplicationSchema::AddItemMajority(const std::string& name,
                                                  Value initial_value,
                                                  std::vector<SiteId> copies) {
  int n = static_cast<int>(copies.size());
  int majority = n / 2 + 1;
  std::vector<int> votes(copies.size(), 1);
  return AddItem(name, initial_value, std::move(copies), std::move(votes),
                 majority, majority);
}

Status ReplicationSchema::Validate() const {
  for (const ItemSchema& item : items_) {
    int v = item.total_votes();
    if (item.read_quorum < 1 || item.write_quorum < 1) {
      return Status::InvalidArgument("item '" + item.name +
                                     "': quorums must be >= 1");
    }
    if (item.read_quorum > v || item.write_quorum > v) {
      return Status::InvalidArgument("item '" + item.name +
                                     "': quorum exceeds total votes");
    }
    if (item.read_quorum + item.write_quorum <= v) {
      return Status::InvalidArgument(
          "item '" + item.name +
          "': R + W must exceed total votes (read/write quorums must "
          "intersect)");
    }
    if (2 * item.write_quorum <= v) {
      return Status::InvalidArgument(
          "item '" + item.name +
          "': 2W must exceed total votes (write quorums must intersect)");
    }
  }
  return Status::OK();
}

Result<ItemId> ReplicationSchema::IdOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no item named '" + name + "'");
  }
  return it->second;
}

Result<const ItemSchema*> ReplicationSchema::Find(ItemId id) const {
  if (id >= items_.size()) {
    return Status::NotFound("no item with id " + std::to_string(id));
  }
  return &items_[id];
}

std::vector<ItemId> ReplicationSchema::ItemsAt(SiteId site) const {
  std::vector<ItemId> out;
  for (const ItemSchema& item : items_) {
    if (item.HasCopyAt(site)) out.push_back(item.id);
  }
  return out;
}

}  // namespace rainbow
