#ifndef RAINBOW_CATALOG_SCHEMA_H_
#define RAINBOW_CATALOG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Replication metadata for one database item: which sites hold copies,
/// the vote weight of each copy, and the quorum thresholds. This is the
/// name server's "database fragmentation, replication and distribution
/// schema" from the paper.
struct ItemSchema {
  ItemId id = kInvalidItem;
  std::string name;
  Value initial_value = 0;
  std::vector<SiteId> copies;
  std::vector<int> votes;  ///< parallel to `copies`; all >= 1
  int read_quorum = 0;     ///< in votes
  int write_quorum = 0;    ///< in votes

  int total_votes() const;
  /// Vote weight of `site`'s copy, 0 if no copy there.
  int VoteOf(SiteId site) const;
  bool HasCopyAt(SiteId site) const;
};

/// The database schema: items, their placement, and quorum parameters.
/// Configured once per Rainbow instance ("Database Replication
/// Configuration panel") and then distributed via the name server.
class ReplicationSchema {
 public:
  /// Adds an item with explicit copies/votes/quorums. Returns the id.
  Result<ItemId> AddItem(const std::string& name, Value initial_value,
                         std::vector<SiteId> copies, std::vector<int> votes,
                         int read_quorum, int write_quorum);

  /// Adds an item replicated at `copies` with one vote per copy and
  /// majority read/write quorums (the common classroom configuration).
  Result<ItemId> AddItemMajority(const std::string& name, Value initial_value,
                                 std::vector<SiteId> copies);

  /// Checks every item: copies non-empty, votes positive, quorums
  /// satisfiable and correct (R + W > V and 2W > V, the quorum
  /// intersection conditions).
  Status Validate() const;

  Result<ItemId> IdOf(const std::string& name) const;
  Result<const ItemSchema*> Find(ItemId id) const;
  const std::vector<ItemSchema>& items() const { return items_; }
  size_t num_items() const { return items_.size(); }

  /// Items hosted at `site`.
  std::vector<ItemId> ItemsAt(SiteId site) const;

 private:
  std::vector<ItemSchema> items_;
  std::unordered_map<std::string, ItemId> by_name_;
};

}  // namespace rainbow

#endif  // RAINBOW_CATALOG_SCHEMA_H_
