#ifndef RAINBOW_CC_CC_ENGINE_H_
#define RAINBOW_CC_CC_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace rainbow {

/// Which concurrency-control protocol a Rainbow instance runs at each
/// site. Selected in the Protocols Configuration step.
enum class CcKind {
  kTwoPhaseLocking,
  kTimestampOrdering,
  kMultiversionTso,  ///< the paper's "multi-versioning TSO" term project
  kOptimistic,       ///< OCC: lock-free execution, backward validation
                     ///< (version checks + non-waiting commit locks) at
                     ///< 2PC prepare time (extension)
};

const char* CcKindName(CcKind k);

/// How 2PL resolves (or avoids) deadlocks.
enum class DeadlockPolicy {
  kWaitDie,     ///< older waits, younger dies (no deadlock possible)
  kWoundWait,   ///< older wounds younger holder, younger waits
  kLocalWfg,    ///< waits allowed; local waits-for cycle check aborts youngest
  kTimeoutOnly, ///< waits allowed; rely on the coordinator's op timeout
  kEdgeChasing, ///< waits allowed; Chandy–Misra–Haas probes detect
                ///< distributed cycles and abort the probe initiator
};

const char* DeadlockPolicyName(DeadlockPolicy p);

/// Outcome of a copy-access request at a replica site.
struct CcGrant {
  bool granted = false;
  DenyReason reason = DenyReason::kNone;
  /// MVTO serves reads from its own version chain; when set, the caller
  /// must use this value/version instead of the committed store.
  bool has_value = false;
  Value value = 0;
  Version version = 0;

  static CcGrant Granted() { return CcGrant{true, DenyReason::kNone, false, 0, 0}; }
  static CcGrant Denied(DenyReason r) {
    return CcGrant{false, r, false, 0, 0};
  }
};

/// Callback invoked when an access request is decided. May fire
/// synchronously from Request*() or later when a conflicting transaction
/// finishes. Dropped (never invoked) if the requesting transaction is
/// finished/cancelled first.
using CcCallback = std::function<void(const CcGrant&)>;

/// Site-local concurrency control: the CCP of the paper. Each replica
/// site consults its engine when a copy is read or pre-written (§2.1).
///
/// Engines are purely reactive (no timers); waiting requests are woken
/// by Finish() of conflicting transactions. All engine state is
/// volatile — a site crash destroys the engine and a fresh one is built
/// at recovery.
class CcEngine {
 public:
  virtual ~CcEngine() = default;

  /// Invoked when the engine unilaterally aborts a transaction that had
  /// previously been granted access (wound-wait / waits-for victim).
  /// The site reacts by discarding local state and notifying the home
  /// site. Never invoked for the transaction currently inside a
  /// Request*() call (that one gets a denied callback instead).
  using VictimHandler = std::function<void(TxnId, DenyReason)>;
  void set_victim_handler(VictimHandler h) { victim_handler_ = std::move(h); }

  /// Requests read access to the local copy of `item`.
  virtual void RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                           CcCallback cb) = 0;

  /// Requests write (pre-write) access to the local copy of `item`.
  virtual void RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                            CcCallback cb) = 0;

  /// Transaction finished at this site: releases all holds and pending
  /// requests, waking compatible waiters. `commit` distinguishes commit
  /// from abort (TSO advances write timestamps only on commit).
  virtual void Finish(TxnId txn, bool commit) = 0;

  /// Marks the transaction prepared (voted YES in 2PC): it must not be
  /// selected as a wound/deadlock victim from now on.
  virtual void MarkPrepared(TxnId txn) = 0;

  /// Informs the engine of an applied committed write (MVTO extends its
  /// version chain from this; other engines ignore it).
  virtual void OnApply(TxnId txn, ItemId item, Value value, Version version) {
    (void)txn;
    (void)item;
    (void)value;
    (void)version;
  }

  /// True if the engine still tracks any state for `txn`.
  virtual bool Tracks(TxnId txn) const = 0;

  /// Transactions that `txn` is currently waiting for at this engine
  /// (conflicting holders / queued-ahead requests). Empty when `txn` is
  /// not blocked here. Drives the edge-chasing deadlock detector.
  virtual std::vector<TxnId> WaitingFor(TxnId txn) const {
    (void)txn;
    return {};
  }

  /// OCC commit-window locking: tries to take a non-waiting shared
  /// (read-validation) or exclusive (write) lock held until Finish().
  /// Returns false on conflict — the participant then votes NO. Engines
  /// other than OCC return true (their execution-phase CC already
  /// guarantees exclusivity).
  virtual bool TryCommitLock(TxnId txn, ItemId item, bool exclusive) {
    (void)txn;
    (void)item;
    (void)exclusive;
    return true;
  }

  virtual std::string name() const = 0;

 protected:
  void NotifyVictim(TxnId txn, DenyReason reason) {
    if (victim_handler_) victim_handler_(txn, reason);
  }

 private:
  VictimHandler victim_handler_;
};

/// Creates an engine of the requested kind. `policy` applies to 2PL only.
std::unique_ptr<CcEngine> CreateCcEngine(CcKind kind, DeadlockPolicy policy);

}  // namespace rainbow

#endif  // RAINBOW_CC_CC_ENGINE_H_
