#include <memory>

#include "cc/cc_engine.h"
#include "cc/lock_manager.h"
#include "cc/mvto_manager.h"
#include "cc/occ_manager.h"
#include "cc/tso_manager.h"

namespace rainbow {

const char* CcKindName(CcKind k) {
  switch (k) {
    case CcKind::kTwoPhaseLocking:
      return "2PL";
    case CcKind::kTimestampOrdering:
      return "TSO";
    case CcKind::kMultiversionTso:
      return "MVTO";
    case CcKind::kOptimistic:
      return "OCC";
  }
  return "?";
}

const char* DeadlockPolicyName(DeadlockPolicy p) {
  switch (p) {
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kLocalWfg:
      return "local-wfg";
    case DeadlockPolicy::kTimeoutOnly:
      return "timeout-only";
    case DeadlockPolicy::kEdgeChasing:
      return "edge-chasing";
  }
  return "?";
}

std::unique_ptr<CcEngine> CreateCcEngine(CcKind kind, DeadlockPolicy policy) {
  switch (kind) {
    case CcKind::kTwoPhaseLocking:
      return std::make_unique<LockManager>(policy);
    case CcKind::kTimestampOrdering:
      return std::make_unique<TsoManager>();
    case CcKind::kMultiversionTso:
      return std::make_unique<MvtoManager>();
    case CcKind::kOptimistic:
      return std::make_unique<OccManager>();
  }
  return nullptr;
}

}  // namespace rainbow
