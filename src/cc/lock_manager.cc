#include "cc/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

namespace {

bool Compatible(LockManager::Mode a, LockManager::Mode b) {
  return a == LockManager::Mode::kShared && b == LockManager::Mode::kShared;
}

}  // namespace

LockManager::LockManager(DeadlockPolicy policy) : policy_(policy) {}

std::string LockManager::name() const {
  return std::string("2PL/") + DeadlockPolicyName(policy_);
}

bool LockManager::Tracks(TxnId txn) const { return txns_.contains(txn); }

void LockManager::RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                              CcCallback cb) {
  Request(txn, ts, item, Mode::kShared, std::move(cb));
}

void LockManager::RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                               CcCallback cb) {
  Request(txn, ts, item, Mode::kExclusive, std::move(cb));
}

bool LockManager::ConflictsWithHolders(const LockState& ls, TxnId txn,
                                       Mode mode) {
  for (const auto& [holder, held_mode] : ls.holders) {
    if (holder == txn) continue;
    if (!Compatible(mode, held_mode)) return true;
  }
  return false;
}

void LockManager::Request(TxnId txn, TxnTimestamp ts, ItemId item, Mode mode,
                          CcCallback cb) {
  TxnState& tstate = txns_[txn];
  tstate.ts = ts;

  LockState& ls = locks_[item];

  // Re-entrant request by a current holder.
  auto self = ls.holders.find(txn);
  bool upgrade = false;
  if (self != ls.holders.end()) {
    if (mode == Mode::kShared || self->second == Mode::kExclusive) {
      cb(CcGrant::Granted());
      return;
    }
    upgrade = true;  // holds S, wants X
  }

  bool conflict = ConflictsWithHolders(ls, txn, mode);
  // FIFO fairness (queueing behind waiters even when compatible) is only
  // applied under the wait-based policies; wait-die / wound-wait grant
  // any holder-compatible request immediately, which preserves their
  // deadlock-freedom argument (waits-for edges only ever point at
  // holders with a fixed age relation).
  bool fairness_block =
      !conflict && !upgrade && !ls.queue.empty() &&
      (policy_ == DeadlockPolicy::kLocalWfg ||
       policy_ == DeadlockPolicy::kTimeoutOnly ||
       policy_ == DeadlockPolicy::kEdgeChasing);

  if (!conflict && !fairness_block) {
    if (upgrade) {
      self->second = Mode::kExclusive;
    } else {
      ls.holders[txn] = mode;
    }
    tstate.held.insert(item);
    cb(CcGrant::Granted());
    return;
  }

  // Conflict (or fairness wait). Decide per policy.
  std::vector<TxnId> to_wound;
  if (conflict) {
    switch (policy_) {
      case DeadlockPolicy::kWaitDie: {
        // Die unless strictly older than every conflicting holder.
        for (const auto& [holder, held_mode] : ls.holders) {
          if (holder == txn || Compatible(mode, held_mode)) continue;
          const TxnState& hstate = txns_.at(holder);
          if (!(ts < hstate.ts)) {
            ++denials_;
            cb(CcGrant::Denied(DenyReason::kDeadlockVictim));
            return;
          }
        }
        break;  // older than all conflicting holders: wait
      }
      case DeadlockPolicy::kWoundWait: {
        // Wound every younger unprepared conflicting holder; wait for
        // the rest (older or prepared ones).
        for (const auto& [holder, held_mode] : ls.holders) {
          if (holder == txn || Compatible(mode, held_mode)) continue;
          const TxnState& hstate = txns_.at(holder);
          if (hstate.ts.time >= 0 && ts < hstate.ts && !hstate.prepared) {
            to_wound.push_back(holder);
          }
        }
        break;
      }
      case DeadlockPolicy::kLocalWfg:
      case DeadlockPolicy::kTimeoutOnly:
      case DeadlockPolicy::kEdgeChasing:
        break;  // wait; detection (if any) runs elsewhere
    }
  }

  // Enqueue the request (upgrades at the front so they cannot starve
  // behind requests that would deadlock against the held S lock).
  ++waits_started_;
  LockRequest req{txn, ts, mode, std::move(cb)};
  if (upgrade) {
    ls.queue.push_front(std::move(req));
  } else {
    ls.queue.push_back(std::move(req));
  }
  tstate.waiting.insert(item);

  std::vector<std::pair<CcCallback, CcGrant>> out;

  for (TxnId victim : to_wound) {
    ++wounds_;
    ReleaseAll(victim, out);
    NotifyVictim(victim, DenyReason::kWounded);
  }

  if (policy_ == DeadlockPolicy::kLocalWfg && conflict) {
    TxnId victim = FindWfgVictim(txn);
    if (victim.valid()) {
      ++wfg_victims_;
      if (victim == txn) {
        // The requester itself is the chosen victim: pull its request
        // back out of the queue and deny it synchronously.
        LockState& vls = locks_[item];
        for (auto qi = vls.queue.begin(); qi != vls.queue.end(); ++qi) {
          if (qi->txn == txn) {
            out.emplace_back(std::move(qi->cb),
                             CcGrant::Denied(DenyReason::kDeadlockVictim));
            vls.queue.erase(qi);
            break;
          }
        }
        txns_[txn].waiting.erase(item);
        ++denials_;
        PromoteWaiters(item, out);
      } else {
        ReleaseAll(victim, out);
        NotifyVictim(victim, DenyReason::kDeadlockVictim);
      }
    }
  }

  for (auto& [f, g] : out) f(g);
}

void LockManager::RemoveFromQueue(ItemId item, TxnId txn) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  auto& q = it->second.queue;
  for (auto qi = q.begin(); qi != q.end(); ++qi) {
    if (qi->txn == txn) {
      q.erase(qi);
      return;
    }
  }
}

void LockManager::PromoteWaiters(
    ItemId item, std::vector<std::pair<CcCallback, CcGrant>>& out) {
  auto it = locks_.find(item);
  if (it == locks_.end()) return;
  LockState& ls = it->second;
  while (!ls.queue.empty()) {
    LockRequest& front = ls.queue.front();
    bool upgrade = false;
    auto self = ls.holders.find(front.txn);
    if (self != ls.holders.end()) {
      if (front.mode == Mode::kShared || self->second == Mode::kExclusive) {
        // Already satisfied (e.g. was wounded into release and re-granted
        // — shouldn't happen, but harmless).
        upgrade = false;
      } else {
        upgrade = true;
      }
    }
    if (ConflictsWithHolders(ls, front.txn, front.mode)) break;
    // Grant.
    if (upgrade) {
      self->second = Mode::kExclusive;
    } else {
      ls.holders[front.txn] = front.mode;
    }
    auto ts_it = txns_.find(front.txn);
    if (ts_it != txns_.end()) {
      ts_it->second.held.insert(item);
      ts_it->second.waiting.erase(item);
    }
    out.emplace_back(std::move(front.cb), CcGrant::Granted());
    ls.queue.pop_front();
  }
  if (ls.queue.empty() && ls.holders.empty()) locks_.erase(it);
}

std::vector<TxnId> LockManager::WaitingFor(TxnId txn) const {
  // Waits-for edges on demand: a waiter waits for every incompatible
  // holder of the item and every incompatible request queued ahead.
  std::vector<TxnId> out;
  auto ts_it = txns_.find(txn);
  if (ts_it == txns_.end()) return out;
  for (ItemId item : ts_it->second.waiting) {
    auto li = locks_.find(item);
    if (li == locks_.end()) continue;
    const LockState& ls = li->second;
    Mode mode = Mode::kShared;
    bool found = false;
    for (const LockRequest& r : ls.queue) {
      if (r.txn == txn) {
        mode = r.mode;
        found = true;
        break;
      }
    }
    if (!found) continue;
    for (const auto& [holder, held_mode] : ls.holders) {
      if (holder != txn && !Compatible(mode, held_mode)) {
        out.push_back(holder);
      }
    }
    for (const LockRequest& r : ls.queue) {
      if (r.txn == txn) break;
      if (!Compatible(mode, r.mode) || !Compatible(r.mode, mode)) {
        out.push_back(r.txn);
      }
    }
  }
  return out;
}

TxnId LockManager::FindWfgVictim(TxnId from) {
  auto edges_of = [&](TxnId t) { return WaitingFor(t); };

  // Iterative DFS with colors to find a cycle reachable from `from`.
  std::unordered_map<TxnId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<TxnId> path;
  TxnId victim;

  std::function<bool(TxnId)> dfs = [&](TxnId t) -> bool {
    color[t] = 1;
    path.push_back(t);
    for (TxnId next : edges_of(t)) {
      auto c = color.find(next);
      if (c != color.end() && c->second == 1) {
        // Cycle: nodes from `next` to end of path.
        auto start = std::find(path.begin(), path.end(), next);
        TxnTimestamp youngest{-1, 0};
        for (auto pi = start; pi != path.end(); ++pi) {
          const TxnState& st = txns_.at(*pi);
          if (st.prepared) continue;
          if (!victim.valid() || youngest < st.ts) {
            youngest = st.ts;
            victim = *pi;
          }
        }
        return true;
      }
      if (c == color.end() || c->second == 0) {
        if (dfs(next)) return true;
      }
    }
    color[t] = 2;
    path.pop_back();
    return false;
  };

  dfs(from);
  return victim;
}

void LockManager::ReleaseAll(TxnId txn,
                             std::vector<std::pair<CcCallback, CcGrant>>& out) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  TxnState state = std::move(it->second);
  txns_.erase(it);

  for (ItemId item : state.waiting) {
    RemoveFromQueue(item, txn);
  }
  std::set<ItemId> touched = state.held;
  for (ItemId item : state.waiting) touched.insert(item);
  for (ItemId item : state.held) {
    auto li = locks_.find(item);
    if (li != locks_.end()) li->second.holders.erase(txn);
  }
  for (ItemId item : touched) {
    PromoteWaiters(item, out);
  }
}

void LockManager::Finish(TxnId txn, bool commit) {
  (void)commit;  // locks are released identically on commit and abort
  std::vector<std::pair<CcCallback, CcGrant>> out;
  ReleaseAll(txn, out);
  for (auto& [f, g] : out) f(g);
}

void LockManager::MarkPrepared(TxnId txn) {
  auto it = txns_.find(txn);
  if (it != txns_.end()) it->second.prepared = true;
}

std::vector<std::pair<TxnId, LockManager::Mode>> LockManager::HoldersOf(
    ItemId item) const {
  std::vector<std::pair<TxnId, Mode>> out;
  auto it = locks_.find(item);
  if (it == locks_.end()) return out;
  for (const auto& [txn, mode] : it->second.holders) {
    out.emplace_back(txn, mode);
  }
  return out;
}

size_t LockManager::num_waiting() const {
  size_t n = 0;
  for (const auto& [item, ls] : locks_) n += ls.queue.size();
  return n;
}

}  // namespace rainbow
