#ifndef RAINBOW_CC_LOCK_MANAGER_H_
#define RAINBOW_CC_LOCK_MANAGER_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/cc_engine.h"

namespace rainbow {

/// Strict two-phase locking over the local item copies of one site.
///
/// Lock modes are shared (read) and exclusive (write), with S->X
/// upgrades. Requests that conflict either wait in a FIFO queue or are
/// resolved by the configured DeadlockPolicy:
///
///  * wait-die: an older requester waits; a younger one is denied
///    immediately (deadlock-free, no victims among holders).
///  * wound-wait: an older requester aborts ("wounds") younger holders
///    — unless they are already prepared — and waits; a younger
///    requester waits.
///  * local-wfg: requests wait; each block runs a cycle check on the
///    site-local waits-for graph and aborts the youngest transaction on
///    a detected cycle. (Cross-site deadlock cycles are broken by the
///    coordinator's operation timeout.)
///  * timeout-only: requests wait; the coordinator's timeout is the only
///    deadlock breaker.
///
/// Locks are held until Finish() — strictness — which 2PC guarantees to
/// call only after the global decision.
class LockManager final : public CcEngine {
 public:
  explicit LockManager(DeadlockPolicy policy);

  void RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                   CcCallback cb) override;
  void RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                    CcCallback cb) override;
  void Finish(TxnId txn, bool commit) override;
  void MarkPrepared(TxnId txn) override;
  bool Tracks(TxnId txn) const override;
  std::vector<TxnId> WaitingFor(TxnId txn) const override;
  std::string name() const override;

  // --- introspection for tests and the progress monitor ---

  enum class Mode { kShared, kExclusive };

  /// Current holders of the lock on `item` (empty if unlocked).
  std::vector<std::pair<TxnId, Mode>> HoldersOf(ItemId item) const;

  /// Number of requests currently waiting across all items.
  size_t num_waiting() const;

  /// Total times any request had to wait / was denied (lifetime counters).
  uint64_t waits_started() const { return waits_started_; }
  uint64_t denials() const { return denials_; }
  uint64_t wounds() const { return wounds_; }
  uint64_t wfg_victims() const { return wfg_victims_; }

 private:
  struct LockRequest {
    TxnId txn;
    TxnTimestamp ts;
    Mode mode;
    CcCallback cb;
  };
  struct LockState {
    std::map<TxnId, Mode> holders;
    std::deque<LockRequest> queue;
  };
  struct TxnState {
    TxnTimestamp ts;
    std::set<ItemId> held;
    std::set<ItemId> waiting;
    bool prepared = false;
  };

  void Request(TxnId txn, TxnTimestamp ts, ItemId item, Mode mode,
               CcCallback cb);

  /// True if `txn` asking for `mode` conflicts with current holders
  /// (ignoring its own holds).
  static bool ConflictsWithHolders(const LockState& ls, TxnId txn, Mode mode);

  /// Grants queued requests on `item` that are now compatible (FIFO).
  /// Appends granted callbacks to `granted` for deferred invocation.
  void PromoteWaiters(ItemId item,
                      std::vector<std::pair<CcCallback, CcGrant>>& out);

  /// Removes `txn`'s queued request on `item` if any.
  void RemoveFromQueue(ItemId item, TxnId txn);

  /// Detects a waits-for cycle reachable from `from`; returns the
  /// youngest (largest-timestamp) unprepared transaction on the cycle,
  /// or an invalid id if no cycle / no eligible victim.
  TxnId FindWfgVictim(TxnId from);

  /// Releases everything `txn` holds or waits for. Granted waiters are
  /// collected into `out` for deferred callback invocation.
  void ReleaseAll(TxnId txn, std::vector<std::pair<CcCallback, CcGrant>>& out);

  DeadlockPolicy policy_;
  std::unordered_map<ItemId, LockState> locks_;
  std::unordered_map<TxnId, TxnState> txns_;

  uint64_t waits_started_ = 0;
  uint64_t denials_ = 0;
  uint64_t wounds_ = 0;
  uint64_t wfg_victims_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_CC_LOCK_MANAGER_H_
