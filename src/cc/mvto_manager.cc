#include "cc/mvto_manager.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

MvtoManager::MvtoManager() = default;

bool MvtoManager::Tracks(TxnId txn) const { return txns_.contains(txn); }

void MvtoManager::LoadInitial(ItemId item, Value value, Version version) {
  ItemState& st = items_[item];
  st.versions.clear();
  VersionEntry v;
  v.wts = TxnTimestamp{-1, 0};
  v.value = value;
  v.version = version;
  st.versions[v.wts] = v;
}

MvtoManager::Verdict MvtoManager::Judge(const ItemState& st, TxnId txn,
                                        TxnTimestamp ts, bool is_write) const {
  if (is_write) {
    if (st.has_pending && st.pending_txn == txn) return Verdict::kGrant;
    // The version this write would follow: largest wts < ts.
    auto it = st.versions.lower_bound(ts);
    if (it != st.versions.begin()) {
      --it;
      if (ts < it->second.max_rts) {
        // A younger reader already observed the predecessor version.
        return Verdict::kDeny;
      }
    }
    if (st.has_pending) {
      return ts < st.pending_ts ? Verdict::kDeny : Verdict::kWait;
    }
    return Verdict::kGrant;
  }
  // Read: wait only for a smaller-timestamp pending writer whose version
  // this read would have to observe.
  if (st.has_pending && st.pending_txn != txn && st.pending_ts < ts) {
    return Verdict::kWait;
  }
  return Verdict::kGrant;
}

CcGrant MvtoManager::GrantRead(ItemState& st, TxnTimestamp ts) {
  // Version with largest wts <= ts. The initial version has wts
  // {-1, 0} < any real timestamp, so a version always exists.
  auto it = st.versions.upper_bound(ts);
  assert(it != st.versions.begin());
  --it;
  VersionEntry& v = it->second;
  if (v.max_rts < ts) v.max_rts = ts;
  CcGrant g = CcGrant::Granted();
  g.has_value = true;
  g.value = v.value;
  g.version = v.version;
  return g;
}

void MvtoManager::RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                              CcCallback cb) {
  ItemState& st = items_[item];
  if (st.versions.empty()) {
    // Item never loaded here; treat as version-0 zero value so the
    // engine is usable standalone in unit tests.
    LoadInitial(item, 0);
  }
  switch (Judge(st, txn, ts, /*is_write=*/false)) {
    case Verdict::kGrant:
      txns_[txn];
      cb(GrantRead(st, ts));
      return;
    case Verdict::kDeny:
      ++rejections_;
      cb(CcGrant::Denied(DenyReason::kTsoTooLate));
      return;
    case Verdict::kWait:
      break;
  }
  Waiter w{txn, ts, false, std::move(cb)};
  auto pos = std::upper_bound(
      st.waiters.begin(), st.waiters.end(), ts,
      [](const TxnTimestamp& t, const Waiter& x) { return t < x.ts; });
  st.waiters.insert(pos, std::move(w));
  txns_[txn].waiting_items.insert(item);
}

void MvtoManager::RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                               CcCallback cb) {
  ItemState& st = items_[item];
  if (st.versions.empty()) LoadInitial(item, 0);
  switch (Judge(st, txn, ts, /*is_write=*/true)) {
    case Verdict::kGrant: {
      st.has_pending = true;
      st.pending_txn = txn;
      st.pending_ts = ts;
      TxnInfo& info = txns_[txn];
      info.pending_items.insert(item);
      info.pending_ts[item] = ts;
      cb(CcGrant::Granted());
      return;
    }
    case Verdict::kDeny:
      ++rejections_;
      cb(CcGrant::Denied(DenyReason::kTsoTooLate));
      return;
    case Verdict::kWait:
      break;
  }
  Waiter w{txn, ts, true, std::move(cb)};
  auto pos = std::upper_bound(
      st.waiters.begin(), st.waiters.end(), ts,
      [](const TxnTimestamp& t, const Waiter& x) { return t < x.ts; });
  st.waiters.insert(pos, std::move(w));
  txns_[txn].waiting_items.insert(item);
}

void MvtoManager::OnApply(TxnId txn, ItemId item, Value value,
                          Version version) {
  auto ti = txns_.find(txn);
  if (ti == txns_.end()) return;
  auto pi = ti->second.pending_ts.find(item);
  if (pi == ti->second.pending_ts.end()) return;
  ItemState& st = items_[item];
  VersionEntry v;
  v.wts = pi->second;
  v.value = value;
  v.version = version;
  st.versions[v.wts] = v;
}

void MvtoManager::Rejudge(ItemId item,
                          std::vector<std::pair<CcCallback, CcGrant>>& out) {
  auto it = items_.find(item);
  if (it == items_.end()) return;
  ItemState& st = it->second;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto wi = st.waiters.begin(); wi != st.waiters.end(); ++wi) {
      Verdict v = Judge(st, wi->txn, wi->ts, wi->is_write);
      if (v == Verdict::kWait) continue;
      Waiter w = std::move(*wi);
      st.waiters.erase(wi);
      auto ti = txns_.find(w.txn);
      if (ti != txns_.end()) ti->second.waiting_items.erase(item);
      if (v == Verdict::kGrant) {
        if (w.is_write) {
          st.has_pending = true;
          st.pending_txn = w.txn;
          st.pending_ts = w.ts;
          TxnInfo& info = txns_[w.txn];
          info.pending_items.insert(item);
          info.pending_ts[item] = w.ts;
          out.emplace_back(std::move(w.cb), CcGrant::Granted());
        } else {
          txns_[w.txn];
          out.emplace_back(std::move(w.cb), GrantRead(st, w.ts));
        }
      } else {
        ++rejections_;
        out.emplace_back(std::move(w.cb),
                         CcGrant::Denied(DenyReason::kTsoTooLate));
      }
      progress = true;
      break;
    }
  }
}

void MvtoManager::Finish(TxnId txn, bool commit) {
  (void)commit;  // versions were already appended via OnApply on commit
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  TxnInfo info = std::move(it->second);
  txns_.erase(it);

  std::vector<std::pair<CcCallback, CcGrant>> out;
  std::set<ItemId> touched;

  for (ItemId item : info.pending_items) {
    auto ii = items_.find(item);
    if (ii == items_.end()) continue;
    ItemState& st = ii->second;
    if (st.has_pending && st.pending_txn == txn) {
      st.has_pending = false;
      touched.insert(item);
    }
  }
  for (ItemId item : info.waiting_items) {
    auto ii = items_.find(item);
    if (ii == items_.end()) continue;
    auto& ws = ii->second.waiters;
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [&](const Waiter& w) { return w.txn == txn; }),
             ws.end());
    touched.insert(item);
  }
  for (ItemId item : touched) Rejudge(item, out);
  for (auto& [f, g] : out) f(g);
}

void MvtoManager::MarkPrepared(TxnId txn) { (void)txn; }

size_t MvtoManager::num_versions(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0 : it->second.versions.size();
}

size_t MvtoManager::num_waiting() const {
  size_t n = 0;
  for (const auto& [item, st] : items_) n += st.waiters.size();
  return n;
}

}  // namespace rainbow
