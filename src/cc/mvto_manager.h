#ifndef RAINBOW_CC_MVTO_MANAGER_H_
#define RAINBOW_CC_MVTO_MANAGER_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/cc_engine.h"

namespace rainbow {

/// Multiversion timestamp ordering — the "multi-versioning TSO" term
/// project the paper proposes. The engine keeps a chain of committed
/// versions per item (seeded from OnApply) and serves reads itself:
///
///  * read(ts) finds the version with the largest write timestamp <= ts
///    and records ts as that version's read timestamp. Reads are never
///    rejected; they wait only when an uncommitted prewrite with a
///    smaller timestamp could still produce the version they must
///    observe (strictness).
///  * prewrite(ts) is rejected iff some transaction with a larger
///    timestamp already read the version that this write would
///    overwrite (i.e. a version v with wts(v) < ts and rts(v) > ts).
///    One prewrite pending per item at a time, as in strict TSO.
///
/// Compared to basic TSO, read-only transactions never restart — the
/// effect the E10 ablation quantifies.
class MvtoManager final : public CcEngine {
 public:
  MvtoManager();

  void RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                   CcCallback cb) override;
  void RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                    CcCallback cb) override;
  void Finish(TxnId txn, bool commit) override;
  void MarkPrepared(TxnId txn) override;
  void OnApply(TxnId txn, ItemId item, Value value, Version version) override;
  bool Tracks(TxnId txn) const override;
  std::string name() const override { return "MVTO"; }

  /// Seeds the base version of an item (wts = -inf). Called by the site
  /// when the database is loaded (version 0) and again after a crash,
  /// when the committed store value (at its current version) becomes the
  /// fresh engine's base version.
  void LoadInitial(ItemId item, Value value, Version version = 0);

  // --- introspection for tests ---
  uint64_t rejections() const { return rejections_; }
  size_t num_versions(ItemId item) const;
  size_t num_waiting() const;

 private:
  struct VersionEntry {
    TxnTimestamp wts{-1, 0};  ///< writer's timestamp
    TxnTimestamp max_rts{-1, 0};
    Value value = 0;
    Version version = 0;  ///< system version number (for the checker)
  };
  struct Waiter {
    TxnId txn;
    TxnTimestamp ts;
    bool is_write = false;
    CcCallback cb;
  };
  struct ItemState {
    /// Committed versions keyed by writer timestamp (ascending).
    std::map<TxnTimestamp, VersionEntry> versions;
    bool has_pending = false;
    TxnId pending_txn;
    TxnTimestamp pending_ts;
    std::vector<Waiter> waiters;
  };
  struct TxnInfo {
    std::set<ItemId> pending_items;
    std::set<ItemId> waiting_items;
    /// Pending timestamps per item (needed at OnApply time).
    std::map<ItemId, TxnTimestamp> pending_ts;
  };

  enum class Verdict { kGrant, kDeny, kWait };
  Verdict Judge(const ItemState& st, TxnId txn, TxnTimestamp ts,
                bool is_write) const;

  /// Grants a read: updates rts and fills value/version into the grant.
  CcGrant GrantRead(ItemState& st, TxnTimestamp ts);

  void Rejudge(ItemId item, std::vector<std::pair<CcCallback, CcGrant>>& out);

  std::unordered_map<ItemId, ItemState> items_;
  std::unordered_map<TxnId, TxnInfo> txns_;
  uint64_t rejections_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_CC_MVTO_MANAGER_H_
