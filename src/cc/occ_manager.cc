#include "cc/occ_manager.h"

namespace rainbow {

void OccManager::RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                             CcCallback cb) {
  (void)txn;
  (void)ts;
  (void)item;
  cb(CcGrant::Granted());
}

void OccManager::RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                              CcCallback cb) {
  (void)txn;
  (void)ts;
  (void)item;
  cb(CcGrant::Granted());
}

bool OccManager::TryCommitLock(TxnId txn, ItemId item, bool exclusive) {
  ItemLocks& il = locks_[item];
  if (il.exclusive.valid() && !(il.exclusive == txn)) {
    ++validation_conflicts_;
    return false;
  }
  if (exclusive) {
    // An exclusive commit lock tolerates only this transaction's own
    // prior shared lock.
    for (const TxnId& holder : il.shared) {
      if (!(holder == txn)) {
        ++validation_conflicts_;
        return false;
      }
    }
    il.exclusive = txn;
  } else {
    il.shared.insert(txn);
  }
  txns_[txn].insert(item);
  return true;
}

void OccManager::Finish(TxnId txn, bool commit) {
  (void)commit;
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  for (ItemId item : it->second) {
    auto li = locks_.find(item);
    if (li == locks_.end()) continue;
    li->second.shared.erase(txn);
    if (li->second.exclusive == txn) li->second.exclusive = TxnId{};
    if (li->second.shared.empty() && !li->second.exclusive.valid()) {
      locks_.erase(li);
    }
  }
  txns_.erase(it);
}

size_t OccManager::num_commit_locks() const {
  size_t n = 0;
  for (const auto& [item, il] : locks_) {
    n += il.shared.size() + (il.exclusive.valid() ? 1 : 0);
  }
  return n;
}

}  // namespace rainbow
