#ifndef RAINBOW_CC_OCC_MANAGER_H_
#define RAINBOW_CC_OCC_MANAGER_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "cc/cc_engine.h"

namespace rainbow {

/// Optimistic concurrency control (Kung–Robinson style, adapted to the
/// distributed 2PC pipeline):
///
///  * Execution phase is completely lock-free: every read and prewrite
///    request is granted immediately; the engine records nothing.
///  * Validation happens at 2PC prepare time, at each participant:
///    the coordinator ships the versions its reads observed, the
///    participant re-checks them against the committed store, and the
///    engine supplies non-waiting *commit locks* (shared for validated
///    reads, exclusive for writes) held from the YES vote until the
///    decision. Any conflict or stale read fails validation — the
///    participant votes NO and the transaction restarts.
///
/// The commit locks make validation + write-back atomic per copy: two
/// conflicting transactions cannot both be in their commit window at an
/// overlapping copy, which yields conflict-serializability (verified
/// empirically by the property suite).
class OccManager final : public CcEngine {
 public:
  OccManager() = default;

  // Execution phase: everything is granted without bookkeeping.
  void RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                   CcCallback cb) override;
  void RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                    CcCallback cb) override;

  bool TryCommitLock(TxnId txn, ItemId item, bool exclusive) override;
  void Finish(TxnId txn, bool commit) override;
  void MarkPrepared(TxnId) override {}
  bool Tracks(TxnId txn) const override { return txns_.contains(txn); }
  std::string name() const override { return "OCC"; }

  // --- introspection for tests ---
  uint64_t validation_conflicts() const { return validation_conflicts_; }
  size_t num_commit_locks() const;

 private:
  struct ItemLocks {
    std::set<TxnId> shared;
    TxnId exclusive;  ///< invalid = none
  };
  std::unordered_map<ItemId, ItemLocks> locks_;
  std::unordered_map<TxnId, std::set<ItemId>> txns_;
  uint64_t validation_conflicts_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_CC_OCC_MANAGER_H_
