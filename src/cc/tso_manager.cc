#include "cc/tso_manager.h"

#include <algorithm>

namespace rainbow {

TsoManager::TsoManager() = default;

bool TsoManager::Tracks(TxnId txn) const { return txns_.contains(txn); }

TsoManager::Verdict TsoManager::Judge(const ItemState& st, TxnId txn,
                                      TxnTimestamp ts, bool is_write) const {
  if (is_write) {
    if (st.has_pending && st.pending_txn == txn) return Verdict::kGrant;
    if (ts < st.read_ts || ts < st.write_ts) return Verdict::kDeny;
    if (st.has_pending) {
      // One pending prewrite at a time; younger waits, older is rejected
      // (its write must precede the already-granted one in ts order).
      return ts < st.pending_ts ? Verdict::kDeny : Verdict::kWait;
    }
    return Verdict::kGrant;
  }
  // Read.
  if (ts < st.write_ts) return Verdict::kDeny;
  if (st.has_pending && st.pending_txn != txn && st.pending_ts < ts) {
    return Verdict::kWait;  // must observe that writer's outcome first
  }
  return Verdict::kGrant;
}

void TsoManager::ApplyGrant(ItemState& st, TxnId txn, TxnTimestamp ts,
                            bool is_write, ItemId item) {
  if (is_write) {
    st.has_pending = true;
    st.pending_txn = txn;
    st.pending_ts = ts;
    txns_[txn].pending_items.insert(item);
  } else {
    st.read_ts = std::max(st.read_ts, ts,
                          [](const TxnTimestamp& a, const TxnTimestamp& b) {
                            return a < b;
                          });
  }
}

void TsoManager::RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                             CcCallback cb) {
  ItemState& st = items_[item];
  switch (Judge(st, txn, ts, /*is_write=*/false)) {
    case Verdict::kGrant:
      ApplyGrant(st, txn, ts, false, item);
      txns_[txn];  // ensure tracked
      cb(CcGrant::Granted());
      return;
    case Verdict::kDeny:
      ++rejections_;
      cb(CcGrant::Denied(DenyReason::kTsoTooLate));
      return;
    case Verdict::kWait:
      break;
  }
  Waiter w{txn, ts, false, std::move(cb)};
  auto pos = std::upper_bound(
      st.waiters.begin(), st.waiters.end(), ts,
      [](const TxnTimestamp& t, const Waiter& x) { return t < x.ts; });
  st.waiters.insert(pos, std::move(w));
  txns_[txn].waiting_items.insert(item);
}

void TsoManager::RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                              CcCallback cb) {
  ItemState& st = items_[item];
  switch (Judge(st, txn, ts, /*is_write=*/true)) {
    case Verdict::kGrant:
      ApplyGrant(st, txn, ts, true, item);
      cb(CcGrant::Granted());
      return;
    case Verdict::kDeny:
      ++rejections_;
      cb(CcGrant::Denied(DenyReason::kTsoTooLate));
      return;
    case Verdict::kWait:
      break;
  }
  Waiter w{txn, ts, true, std::move(cb)};
  auto pos = std::upper_bound(
      st.waiters.begin(), st.waiters.end(), ts,
      [](const TxnTimestamp& t, const Waiter& x) { return t < x.ts; });
  st.waiters.insert(pos, std::move(w));
  txns_[txn].waiting_items.insert(item);
}

void TsoManager::Rejudge(ItemId item,
                         std::vector<std::pair<CcCallback, CcGrant>>& out) {
  auto it = items_.find(item);
  if (it == items_.end()) return;
  ItemState& st = it->second;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto wi = st.waiters.begin(); wi != st.waiters.end(); ++wi) {
      Verdict v = Judge(st, wi->txn, wi->ts, wi->is_write);
      if (v == Verdict::kWait) continue;
      Waiter w = std::move(*wi);
      st.waiters.erase(wi);
      auto ti = txns_.find(w.txn);
      if (ti != txns_.end()) ti->second.waiting_items.erase(item);
      if (v == Verdict::kGrant) {
        ApplyGrant(st, w.txn, w.ts, w.is_write, item);
        txns_[w.txn];
        out.emplace_back(std::move(w.cb), CcGrant::Granted());
      } else {
        ++rejections_;
        out.emplace_back(std::move(w.cb),
                         CcGrant::Denied(DenyReason::kTsoTooLate));
      }
      progress = true;
      break;  // iterator invalidated; rescan
    }
  }
}

void TsoManager::Finish(TxnId txn, bool commit) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  TxnInfo info = std::move(it->second);
  txns_.erase(it);

  std::vector<std::pair<CcCallback, CcGrant>> out;
  std::set<ItemId> touched;

  for (ItemId item : info.pending_items) {
    auto ii = items_.find(item);
    if (ii == items_.end()) continue;
    ItemState& st = ii->second;
    if (st.has_pending && st.pending_txn == txn) {
      st.has_pending = false;
      if (commit) {
        st.write_ts = std::max(
            st.write_ts, st.pending_ts,
            [](const TxnTimestamp& a, const TxnTimestamp& b) { return a < b; });
      }
      touched.insert(item);
    }
  }
  // Drop any still-waiting requests of this transaction (it aborted
  // while queued); their callbacks are intentionally not invoked.
  for (ItemId item : info.waiting_items) {
    auto ii = items_.find(item);
    if (ii == items_.end()) continue;
    auto& ws = ii->second.waiters;
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [&](const Waiter& w) { return w.txn == txn; }),
             ws.end());
    touched.insert(item);
  }

  for (ItemId item : touched) Rejudge(item, out);
  for (auto& [f, g] : out) f(g);
}

void TsoManager::MarkPrepared(TxnId txn) {
  (void)txn;  // TSO never selects victims; nothing to protect
}

size_t TsoManager::num_waiting() const {
  size_t n = 0;
  for (const auto& [item, st] : items_) n += st.waiters.size();
  return n;
}

}  // namespace rainbow
