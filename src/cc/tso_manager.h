#ifndef RAINBOW_CC_TSO_MANAGER_H_
#define RAINBOW_CC_TSO_MANAGER_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/cc_engine.h"

namespace rainbow {

/// Strict (basic) timestamp ordering over the local item copies of one
/// site. Every transaction carries a globally unique timestamp assigned
/// at its home site; accesses must arrive in timestamp order or be
/// rejected:
///
///  * read(ts): rejected if ts < write_ts(item); otherwise granted
///    (advancing read_ts) — but if a prewrite with a smaller timestamp
///    is pending, the read waits until that writer finishes
///    (strictness: reads only ever observe committed values).
///  * prewrite(ts): rejected if ts < read_ts(item) or ts < write_ts(item);
///    at most one prewrite is pending per item (a younger prewrite
///    waits behind it; an older one is rejected, preserving order).
///
/// Waiting is always younger-waits-for-older, so TSO never deadlocks.
/// All rejections surface as DenyReason::kTsoTooLate, counted by the
/// monitor as CCP aborts — the restart-heavy behaviour the CCP
/// comparison experiment (E4) measures.
class TsoManager final : public CcEngine {
 public:
  TsoManager();

  void RequestRead(TxnId txn, TxnTimestamp ts, ItemId item,
                   CcCallback cb) override;
  void RequestWrite(TxnId txn, TxnTimestamp ts, ItemId item,
                    CcCallback cb) override;
  void Finish(TxnId txn, bool commit) override;
  void MarkPrepared(TxnId txn) override;
  bool Tracks(TxnId txn) const override;
  std::string name() const override { return "TSO"; }

  // --- introspection for tests ---
  uint64_t rejections() const { return rejections_; }
  size_t num_waiting() const;

 private:
  struct Waiter {
    TxnId txn;
    TxnTimestamp ts;
    bool is_write = false;
    CcCallback cb;
  };
  struct ItemState {
    TxnTimestamp read_ts{-1, 0};
    TxnTimestamp write_ts{-1, 0};
    bool has_pending = false;
    TxnId pending_txn;
    TxnTimestamp pending_ts;
    std::vector<Waiter> waiters;  ///< kept sorted by ts
  };
  struct TxnInfo {
    std::set<ItemId> pending_items;
    std::set<ItemId> waiting_items;
  };

  /// Decision for one request against the current item state.
  enum class Verdict { kGrant, kDeny, kWait };
  Verdict Judge(const ItemState& st, TxnId txn, TxnTimestamp ts,
                bool is_write) const;

  void ApplyGrant(ItemState& st, TxnId txn, TxnTimestamp ts, bool is_write,
                  ItemId item);

  /// Re-examines waiters of `item` after state changed; decided ones are
  /// appended to `out`.
  void Rejudge(ItemId item,
               std::vector<std::pair<CcCallback, CcGrant>>& out);

  std::unordered_map<ItemId, ItemState> items_;
  std::unordered_map<TxnId, TxnInfo> txns_;
  uint64_t rejections_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_CC_TSO_MANAGER_H_
