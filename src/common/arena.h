#ifndef RAINBOW_COMMON_ARENA_H_
#define RAINBOW_COMMON_ARENA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace rainbow {

/// Reusable flat byte arena for transient encodes. Reset() drops the
/// contents but keeps the capacity, so a hot loop that encodes into the
/// same arena (one per network lane, one per codec-heavy tool) performs
/// no heap allocation once the high-water mark is reached.
///
/// Views handed out over the arena (std::span — see net/codec.h's
/// EncodePayloadTo / EncodeMessageTo) are invalidated by the next
/// Reset() or write; callers must finish reading before reusing the
/// arena.
class Arena {
 public:
  /// Prepares for a fresh encode: size back to zero, capacity kept.
  void Reset() { buf_.clear(); }

  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  const uint8_t* data() const { return buf_.data(); }

  /// View of everything written since the last Reset().
  std::span<const uint8_t> view() const { return {buf_.data(), buf_.size()}; }

  /// The backing byte vector, for writers (Encoder) that append into
  /// the arena in place.
  std::vector<uint8_t>& storage() { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_ARENA_H_
