#include "common/binary_io.h"

namespace rainbow {

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PatchU32(size_t pos, uint32_t v) {
  assert(pos + 4 <= size());
  for (int i = 0; i < 4; ++i) {
    (*buf_)[base_ + pos + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void Encoder::PutTxnId(const TxnId& id) {
  PutU32(id.home);
  PutU64(id.seq);
}

void Encoder::PutTimestamp(const TxnTimestamp& ts) {
  PutI64(ts.time);
  PutU32(ts.site);
}

Result<uint8_t> Decoder::GetU8() {
  if (pos_ + 1 > size_) return Status::InvalidArgument("truncated u8");
  return data_[pos_++];
}

Result<uint32_t> Decoder::GetU32() {
  if (pos_ + 4 > size_) return Status::InvalidArgument("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (pos_ + 8 > size_) return Status::InvalidArgument("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

Result<int64_t> Decoder::GetI64() {
  RAINBOW_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<bool> Decoder::GetBool() {
  RAINBOW_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) return Status::InvalidArgument("bad bool");
  return v == 1;
}

Result<TxnId> Decoder::GetTxnId() {
  TxnId id;
  RAINBOW_ASSIGN_OR_RETURN(id.home, GetU32());
  RAINBOW_ASSIGN_OR_RETURN(id.seq, GetU64());
  return id;
}

Result<TxnTimestamp> Decoder::GetTimestamp() {
  TxnTimestamp ts;
  RAINBOW_ASSIGN_OR_RETURN(ts.time, GetI64());
  RAINBOW_ASSIGN_OR_RETURN(ts.site, GetU32());
  return ts;
}

}  // namespace rainbow
