#ifndef RAINBOW_COMMON_BINARY_IO_H_
#define RAINBOW_COMMON_BINARY_IO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Append-only binary writer (little-endian, length-prefixed vectors).
/// Shared by the message wire codec (net/codec.h) and the WAL's on-disk
/// format (storage/wal.h).
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutTxnId(const TxnId& id);
  void PutTimestamp(const TxnTimestamp& ts);

  template <typename T, typename F>
  void PutVector(const std::vector<T>& v, F put_one) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (const T& x : v) put_one(x);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked binary reader over an encoded buffer. Every getter
/// fails with kInvalidArgument on truncation instead of reading past
/// the end.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<TxnId> GetTxnId();
  Result<TxnTimestamp> GetTimestamp();

  /// Remaining unread bytes.
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_BINARY_IO_H_
