#ifndef RAINBOW_COMMON_BINARY_IO_H_
#define RAINBOW_COMMON_BINARY_IO_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Append-only binary writer (little-endian, length-prefixed vectors).
/// Shared by the message wire codec (net/codec.h) and the WAL's on-disk
/// format (storage/wal.h).
///
/// Two modes: the default constructor owns its buffer (Take() moves it
/// out — the WAL path), while the external-buffer constructor appends
/// into a caller-supplied vector — typically an Arena's storage — so a
/// hot encode loop reuses one allocation (the codec path). In external
/// mode the writer tracks the base offset it started at; written()
/// spans exactly the bytes this Encoder produced.
class Encoder {
 public:
  Encoder() : buf_(&owned_) {}
  /// Appends into `*external` (not owned; must outlive the Encoder).
  explicit Encoder(std::vector<uint8_t>* external)
      : buf_(external), base_(external->size()) {}

  void PutU8(uint8_t v) { buf_->push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutTxnId(const TxnId& id);
  void PutTimestamp(const TxnTimestamp& ts);

  template <typename T, typename F>
  void PutVector(const std::vector<T>& v, F put_one) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (const T& x : v) put_one(x);
  }

  /// Bytes written by this Encoder so far (excludes anything that was
  /// already in an external buffer).
  size_t size() const { return buf_->size() - base_; }

  /// Overwrites the u32 previously written at offset `pos` (relative to
  /// this Encoder's first byte) — length backpatching for frames whose
  /// size isn't known up front.
  void PatchU32(size_t pos, uint32_t v);

  const std::vector<uint8_t>& buffer() const { return *buf_; }
  std::vector<uint8_t> Take() {
    assert(buf_ == &owned_ && "Take() requires the owning constructor");
    return std::move(owned_);
  }

  /// View of the bytes this Encoder wrote. Valid until the underlying
  /// buffer is next written or destroyed.
  std::span<const uint8_t> written() const {
    return {buf_->data() + base_, buf_->size() - base_};
  }

 private:
  std::vector<uint8_t> owned_;
  std::vector<uint8_t>* buf_;
  size_t base_ = 0;
};

/// Bounds-checked binary reader over an encoded buffer. Every getter
/// fails with kInvalidArgument on truncation instead of reading past
/// the end.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}
  explicit Decoder(std::span<const uint8_t> buf)
      : Decoder(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<TxnId> GetTxnId();
  Result<TxnTimestamp> GetTimestamp();

  /// Remaining unread bytes.
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  /// View of the next `n` unread bytes without consuming them; fails on
  /// truncation. The zero-copy hook for nested frames (a message's
  /// payload region): the caller decodes the view in place instead of
  /// copying it out.
  Result<std::span<const uint8_t>> PeekSpan(size_t n) const {
    if (n > remaining()) {
      return Status::InvalidArgument("truncated: span past end");
    }
    return std::span<const uint8_t>{data_ + pos_, n};
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_BINARY_IO_H_
