#include "common/crc32.h"

#include <array>
#include <cstring>

namespace rainbow {

namespace {

/// 8 slice tables, built once at first use (constant-time, no I/O — the
/// determinism linter's D2 rule is about entropy, not table setup).
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
  Crc32Tables() {
    constexpr uint32_t kPoly = 0xedb88320u;  // reflected IEEE polynomial
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xff] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  uint32_t crc = ~seed;
  // Slice-by-8 main loop: one 64-bit load feeds eight table lookups.
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data, sizeof(chunk));
    // Little-endian lane order; on a big-endian host the memcpy lanes
    // would differ, but the repo's toolchain targets are little-endian
    // and the value is only ever compared against itself.
    crc ^= static_cast<uint32_t>(chunk);
    const uint32_t hi = static_cast<uint32_t>(chunk >> 32);
    crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
          t[5][(crc >> 16) & 0xff] ^ t[4][(crc >> 24) & 0xff] ^
          t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][(hi >> 24) & 0xff];
    data += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *data++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rainbow
