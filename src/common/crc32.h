#ifndef RAINBOW_COMMON_CRC32_H_
#define RAINBOW_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rainbow {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip one) over `size` bytes.
/// `seed` chains partial computations: Crc32(b, n) ==
/// Crc32(b + k, n - k, Crc32(b, k)). Implemented slice-by-8, so the page
/// checksum and WAL record framing stay off the profile's top entries.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

}  // namespace rainbow

#endif  // RAINBOW_COMMON_CRC32_H_
