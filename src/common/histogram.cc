#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rainbow {

namespace {
// Sub-buckets per power of two; 16 gives ~4.4% worst-case relative error.
constexpr int kSubBuckets = 16;
constexpr int kSubBucketBits = 4;
}  // namespace

Histogram::Histogram() = default;

size_t Histogram::BucketFor(int64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  uint64_t v = static_cast<uint64_t>(value);
  int msb = 63 - __builtin_clzll(v);
  int shift = msb - kSubBucketBits;
  uint64_t sub = (v >> shift) - kSubBuckets;  // in [0, kSubBuckets)
  return static_cast<size_t>(kSubBuckets + (msb - kSubBucketBits) * kSubBuckets + sub);
}

int64_t Histogram::BucketUpper(size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<int64_t>(bucket);
  size_t b = bucket - kSubBuckets;
  int exp = static_cast<int>(b / kSubBuckets);
  uint64_t sub = b % kSubBuckets;
  int shift = exp;  // since msb - kSubBucketBits = exp
  uint64_t base = (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  // Upper edge of the bucket (inclusive).
  return static_cast<int64_t>(base + ((1ULL << shift) - 1));
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  size_t b = BucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b]++;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = sum_sq_ = 0;
  min_ = max_ = 0;
}

int64_t Histogram::min() const { return count_ ? min_ : 0; }
int64_t Histogram::max() const { return count_ ? max_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The rank-1 element is the minimum, but a bucket's upper edge can
  // exceed it; answer q=0 exactly rather than through the buckets.
  if (q == 0.0) return min_;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return std::clamp(BucketUpper(b), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " p50=" << Percentile(0.5)
     << " p95=" << Percentile(0.95) << " p99=" << Percentile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace rainbow
