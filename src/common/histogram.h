#ifndef RAINBOW_COMMON_HISTOGRAM_H_
#define RAINBOW_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rainbow {

/// Accumulates a distribution of non-negative measurements (e.g.
/// response times in simulated microseconds) and reports count, mean,
/// min/max, standard deviation, and percentiles.
///
/// Values are bucketed logarithmically (~4% relative resolution), so
/// memory is O(log(max/min)) and percentile queries are approximate to
/// within one bucket. Exact sums/min/max are kept on the side.
class Histogram {
 public:
  Histogram();

  /// Records one measurement. Negative values are clamped to zero.
  void Add(int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  double stddev() const;

  /// Approximate value at quantile q in [0, 1]; e.g. 0.5 = median.
  /// Returns 0 for an empty histogram.
  int64_t Percentile(double q) const;

  /// One-line summary: "n=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;

 private:
  static size_t BucketFor(int64_t value);
  static int64_t BucketUpper(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_HISTOGRAM_H_
