#ifndef RAINBOW_COMMON_INLINE_FUNCTION_H_
#define RAINBOW_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rainbow {

/// Move-only type-erased callable with small-buffer-optimized storage.
///
/// Unlike std::function (whose libstdc++ inline buffer is 16 bytes and
/// which requires copyability), an InlineFunction<void(), N> stores any
/// callable of up to N bytes directly in the object — no heap
/// allocation — and accepts move-only callables. Oversized callables
/// (or ones whose move constructor may throw, which would make the
/// noexcept move of the wrapper unsound) transparently fall back to one
/// heap allocation, exactly the std::function cost; heap_allocated()
/// exposes which path a given instance took so benchmarks can gate the
/// hot-path closures staying inline.
///
/// This is the callback type of the simulator's EventQueue: the
/// network-delivery closure (a `this` pointer plus a message-pool slot
/// index) must fit inline, which net/network.cc static-asserts.
template <typename Signature, size_t N>
class InlineFunction;

template <typename R, typename... Args, size_t N>
class InlineFunction<R(Args...), N> {
 public:
  /// Capacity of the inline buffer in bytes.
  static constexpr size_t kInlineBytes = N;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      target_ = ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      target_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True if the stored callable lives on the heap (capture too large
  /// for the inline buffer, over-aligned, or throwing-move).
  bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

  /// Whether a callable of type D would be stored inline.
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= N && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  R operator()(Args... args) {
    return ops_->invoke(target_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable from `src` into the buffer at `dst`
    /// and destroys the source. Null for heap-stored callables (moving
    /// the wrapper just steals the pointer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename D>
  static R Invoke(void* target, Args&&... args) {
    return (*static_cast<D*>(target))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void Relocate(void* dst, void* src) noexcept {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  template <typename D>
  static void DestroyInline(void* target) {
    static_cast<D*>(target)->~D();
  }
  template <typename D>
  static void DestroyHeap(void* target) {
    delete static_cast<D*>(target);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&Invoke<D>, &Relocate<D>, &DestroyInline<D>,
                                  /*heap=*/false};
  template <typename D>
  static constexpr Ops kHeapOps{&Invoke<D>, nullptr, &DestroyHeap<D>,
                                /*heap=*/true};

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->heap) {
      target_ = other.target_;
    } else {
      ops_->relocate(buf_, other.target_);
      target_ = buf_;
    }
    other.ops_ = nullptr;
    other.target_ = nullptr;
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(target_);
      ops_ = nullptr;
      target_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[N];
  void* target_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_INLINE_FUNCTION_H_
