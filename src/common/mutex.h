#ifndef RAINBOW_COMMON_MUTEX_H_
#define RAINBOW_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace rainbow {

/// Annotated wrapper over std::mutex. Clang's thread safety analysis
/// only tracks capabilities it can see, and the std primitives carry no
/// annotations — so every mutex in the codebase is a rainbow::Mutex and
/// every RAINBOW_GUARDED_BY refers to one. Lock/Unlock are lowercase
/// (BasicLockable) so std generic code keeps working.
class RAINBOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RAINBOW_ACQUIRE() { mu_.lock(); }
  void unlock() RAINBOW_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop that is deliberately outside
  /// the analysis (CondVar::Wait re-acquires through here).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock with scoped-capability annotations: the analysis treats
/// the guarded region as exactly the lexical scope of the MutexLock.
class RAINBOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RAINBOW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RAINBOW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() requires the caller to
/// hold the mutex and (like std::condition_variable::wait) holds it
/// again on return; waiters use the explicit while-loop form
///
///   MutexLock l(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// so reads of RAINBOW_GUARDED_BY state stay inside the analyzed
/// critical section (predicate lambdas would be analyzed as separate,
/// lock-free functions and rejected).
class CondVar {
 public:
  void Wait(Mutex& mu) RAINBOW_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand
    // ownership back without unlocking: to the analysis `mu` is simply
    // held across the call, which matches the wait semantics.
    std::unique_lock<std::mutex> l(mu.native(), std::adopt_lock);
    cv_.wait(l);
    l.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_MUTEX_H_
