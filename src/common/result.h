#ifndef RAINBOW_COMMON_RESULT_H_
#define RAINBOW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rainbow {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced (the StatusOr / arrow::Result idiom).
///
///   Result<int64_t> r = store.Get(item);
///   if (!r.ok()) return r.status();
///   int64_t value = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a Result holding an error. `status` must not be OK.
  /// Intentionally implicit so functions can `return SomeStatus();`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its
/// status from the enclosing function, otherwise assigns the value to
/// `lhs` (which may be a declaration).
#define RAINBOW_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  RAINBOW_ASSIGN_OR_RETURN_IMPL_(                                 \
      RAINBOW_CONCAT_(_rainbow_result, __LINE__), lhs, rexpr)

#define RAINBOW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define RAINBOW_CONCAT_(a, b) RAINBOW_CONCAT_IMPL_(a, b)
#define RAINBOW_CONCAT_IMPL_(a, b) a##b

}  // namespace rainbow

#endif  // RAINBOW_COMMON_RESULT_H_
