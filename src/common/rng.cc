#include "common/rng.h"

#include <cmath>

namespace rainbow {

namespace {

// splitmix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0);
  // Avoid the singular point theta == 1 of the closed forms below.
  if (theta_ > 0.9999 && theta_ < 1.0001) theta_ = 1.0001;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfSampler::H(double x) const {
  // Integral of x^-theta.
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (theta_ == 0) return rng.NextUint(n_);
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -theta_)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace rainbow
