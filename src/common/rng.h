#ifndef RAINBOW_COMMON_RNG_H_
#define RAINBOW_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rainbow {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded
/// explicitly. Every source of randomness in Rainbow draws from an Rng
/// so that entire runs are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; the same seed always produces the same stream.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextUint(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Normally distributed value (Box–Muller).
  double NextGaussian(double mean, double stddev);

  /// Derives an independent child generator; useful to give each
  /// component (network, workload, fault injector) its own stream.
  Rng Fork();

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with skew theta.
/// theta = 0 is uniform; larger theta concentrates mass on low ranks.
/// Uses the rejection-inversion method of Hörmann; O(1) per sample after
/// O(1) setup, suitable for large n.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` must be >= 0 and != 1 handled internally.
  ZipfSampler(uint64_t n, double theta);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_RNG_H_
