#include "common/status.h"

namespace rainbow {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kTimedOut:
      return "timed_out";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io_error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace rainbow
