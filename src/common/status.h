#ifndef RAINBOW_COMMON_STATUS_H_
#define RAINBOW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace rainbow {

/// Machine-readable category of an error. Rainbow never throws across
/// API boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnavailable,   ///< a required site / quorum cannot be reached
  kAborted,       ///< a transaction-level abort (see AbortCause)
  kTimedOut,
  kInternal,
  kIoError,
};

/// Returns a stable lowercase name for `code` ("ok", "not_found", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// The OK status carries no message and is cheap to copy. Typical use:
///
///   Status s = store.Put(item, value);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression) and returns it from the
/// enclosing function if it is not OK.
#define RAINBOW_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::rainbow::Status _rainbow_status = (expr);  \
    if (!_rainbow_status.ok()) return _rainbow_status; \
  } while (false)

}  // namespace rainbow

#endif  // RAINBOW_COMMON_STATUS_H_
