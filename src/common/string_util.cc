#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rainbow {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(TrimWhitespace(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  if (buf[0] == '-') {
    return Status::InvalidArgument("negative: '" + buf + "'");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<uint64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

Result<bool> ParseBool(std::string_view s) {
  s = TrimWhitespace(s);
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument("not a boolean: '" + std::string(s) + "'");
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  return StringPrintf(fmt, v);
}

}  // namespace rainbow
