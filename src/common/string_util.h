#ifndef RAINBOW_COMMON_STRING_UTIL_H_
#define RAINBOW_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace rainbow {

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" yields {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Parses a signed decimal integer; the whole string must be consumed.
Result<int64_t> ParseInt(std::string_view s);

/// Parses an unsigned decimal integer covering the full uint64 range
/// (ParseInt rejects values above INT64_MAX — e.g. large RNG seeds).
Result<uint64_t> ParseUint64(std::string_view s);

/// Parses a floating-point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Parses "true"/"false"/"1"/"0" (case-insensitive).
Result<bool> ParseBool(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits);

}  // namespace rainbow

#endif  // RAINBOW_COMMON_STRING_UTIL_H_
