#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace rainbow {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E') {
      return false;
    }
  }
  return digit;
}

}  // namespace

TablePrinter::Cell::Cell(double v) : text(FormatDouble(v, 2)) {}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(std::initializer_list<Cell> cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const Cell& c : cells) row.push_back(c.text);
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool header) {
    os << "|";
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : headers_[i];
      bool right = !header && LooksNumeric(cell);
      os << ' ';
      if (right) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
      os << " |";
    }
    os << "\n";
  };
  emit_row(headers_, /*header=*/true);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row, /*header=*/false);
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string AsciiChart(const std::string& title,
                       const std::vector<std::pair<double, double>>& series,
                       int width) {
  std::ostringstream os;
  os << title << "\n";
  double max_y = 0;
  for (const auto& [x, y] : series) max_y = std::max(max_y, y);
  for (const auto& [x, y] : series) {
    int bar = max_y > 0 ? static_cast<int>(y / max_y * width + 0.5) : 0;
    os << StringPrintf("%10.2f | %-*s %.3f\n", x, width,
                       std::string(static_cast<size_t>(bar), '#').c_str(), y);
  }
  return os.str();
}

}  // namespace rainbow
