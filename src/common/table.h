#ifndef RAINBOW_COMMON_TABLE_H_
#define RAINBOW_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rainbow {

/// Renders rows of named columns as an aligned ASCII table. This is the
/// stand-in for the Rainbow GUI's display windows: the progress monitor
/// and the bench harnesses use it to print the paper's statistics and
/// experiment series.
///
///   TablePrinter t({"protocol", "commits", "aborts"});
///   t.AddRow({"QC", "97", "3"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing trailing cells render empty, extra cells are
  /// an error caught by assert.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell (int64 -> decimal, double -> fixed
  /// with 2 digits) via the Cell helper below.
  struct Cell {
    std::string text;
    Cell(const char* s) : text(s) {}
    Cell(std::string s) : text(std::move(s)) {}
    Cell(int v) : text(std::to_string(v)) {}
    Cell(int64_t v) : text(std::to_string(v)) {}
    Cell(uint64_t v) : text(std::to_string(v)) {}
    Cell(double v);
  };
  void AddRow(std::initializer_list<Cell> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header rule; numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  std::string ToString() const;

  /// Renders as comma-separated values (header + rows) for machine use.
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an (x, y) series as a crude ASCII chart — the textual
/// equivalent of the GUI's Display menu graphs. One row per x value,
/// with a proportional bar of '#' characters.
std::string AsciiChart(const std::string& title,
                       const std::vector<std::pair<double, double>>& series,
                       int width = 50);

}  // namespace rainbow

#endif  // RAINBOW_COMMON_TABLE_H_
