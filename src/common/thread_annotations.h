#ifndef RAINBOW_COMMON_THREAD_ANNOTATIONS_H_
#define RAINBOW_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), compiled to
/// nothing on toolchains without the attributes (GCC). The CI leg
/// `clang-thread-safety` builds the tree with clang and
/// `-Wthread-safety -Werror=thread-safety`, turning the locking
/// discipline these macros document into a compile-time property:
/// touching a RAINBOW_GUARDED_BY member without holding its mutex is a
/// build failure, not a code-review catch.
///
/// The annotations only attach to types that are themselves annotated
/// as capabilities, so `common/mutex.h` provides thin annotated
/// wrappers (`Mutex`, `MutexLock`, `CondVar`) over the std primitives;
/// raw `std::mutex` + `std::lock_guard` is invisible to the analysis.
///
/// House rules:
///  * every member written by more than one thread is either
///    RAINBOW_GUARDED_BY a mutex, std::atomic, or documented as
///    confined to one thread (per-shard lanes, driver-only state);
///  * functions that expect a caller-held mutex say so with
///    RAINBOW_REQUIRES instead of a comment.

#if defined(__clang__) && (!defined(SWIG))
#define RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define RAINBOW_CAPABILITY(x) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define RAINBOW_SCOPED_CAPABILITY \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define RAINBOW_GUARDED_BY(x) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define RAINBOW_PT_GUARDED_BY(x) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define RAINBOW_ACQUIRE(...) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define RAINBOW_RELEASE(...) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RAINBOW_REQUIRES(...) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define RAINBOW_EXCLUDES(...) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define RAINBOW_RETURN_CAPABILITY(x) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define RAINBOW_ASSERT_CAPABILITY(x) \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RAINBOW_NO_THREAD_SAFETY_ANALYSIS \
  RAINBOW_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RAINBOW_COMMON_THREAD_ANNOTATIONS_H_
