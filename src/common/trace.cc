#include "common/trace.h"

#include <sstream>

#include "common/string_util.h"

namespace rainbow {

const char* TraceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::kTxn:
      return "txn";
    case TraceCategory::kRcp:
      return "rcp";
    case TraceCategory::kCcp:
      return "ccp";
    case TraceCategory::kAcp:
      return "acp";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kSite:
      return "site";
    case TraceCategory::kGeneral:
      return "general";
  }
  return "?";
}

const char* AbortCauseName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kCcp:
      return "ccp";
    case AbortCause::kRcp:
      return "rcp";
    case AbortCause::kAcp:
      return "acp";
    case AbortCause::kSiteFailure:
      return "site_failure";
    case AbortCause::kOther:
      return "other";
  }
  return "?";
}

void TraceLog::Record(SimTime time, TraceCategory category, SiteId site,
                      std::string text) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    events_.erase(events_.begin(), events_.begin() + events_.size() / 2);
  }
  events_.push_back(TraceEvent{time, category, site, std::move(text)});
}

namespace {
void RenderEvent(std::ostringstream& os, const TraceEvent& e) {
  os << StringPrintf("%10lld [%-5s]", static_cast<long long>(e.time),
                     TraceCategoryName(e.category));
  if (e.site == kInvalidSite) {
    os << "      ";
  } else if (e.site == kNameServerId) {
    os << "   @NS";
  } else {
    os << StringPrintf(" @S%-4u", e.site);
  }
  os << " " << e.text << "\n";
}
}  // namespace

std::string TraceLog::Render() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) RenderEvent(os, e);
  return os.str();
}

std::string TraceLog::Render(TraceCategory only) const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    if (e.category == only) RenderEvent(os, e);
  }
  return os.str();
}

size_t TraceLog::CountContaining(const std::string& needle) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.text.find(needle) != std::string::npos) ++n;
  }
  return n;
}

}  // namespace rainbow
