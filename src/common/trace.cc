#include "common/trace.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace rainbow {

const char* TraceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::kTxn:
      return "txn";
    case TraceCategory::kRcp:
      return "rcp";
    case TraceCategory::kCcp:
      return "ccp";
    case TraceCategory::kAcp:
      return "acp";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kSite:
      return "site";
    case TraceCategory::kGeneral:
      return "general";
  }
  return "?";
}

const char* AbortCauseName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone:
      return "none";
    case AbortCause::kCcp:
      return "ccp";
    case AbortCause::kRcp:
      return "rcp";
    case AbortCause::kAcp:
      return "acp";
    case AbortCause::kSiteFailure:
      return "site_failure";
    case AbortCause::kOther:
      return "other";
  }
  return "?";
}

void TraceLog::Record(SimTime time, TraceCategory category, SiteId site,
                      std::string text) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    events_.erase(events_.begin(), events_.begin() + events_.size() / 2);
  }
  events_.push_back(TraceEvent{time, category, site, std::move(text)});
}

void TraceLog::MergeFrom(const TraceLog& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

void TraceLog::CanonicalSort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.site < b.site;
                   });
}

namespace {
void RenderEvent(std::ostringstream& os, const TraceEvent& e) {
  os << StringPrintf("%10lld [%-5s]", static_cast<long long>(e.time),
                     TraceCategoryName(e.category));
  if (e.site == kInvalidSite) {
    os << "      ";
  } else if (e.site == kNameServerId) {
    os << "   @NS";
  } else {
    os << StringPrintf(" @S%-4u", e.site);
  }
  os << " " << e.text << "\n";
}
}  // namespace

std::string TraceLog::Render() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) RenderEvent(os, e);
  return os.str();
}

std::string TraceLog::Render(TraceCategory only) const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    if (e.category == only) RenderEvent(os, e);
  }
  return os.str();
}

size_t TraceLog::CountContaining(const std::string& needle) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.text.find(needle) != std::string::npos) ++n;
  }
  return n;
}

const char* TraceDetailName(TraceDetail d) {
  switch (d) {
    case TraceDetail::kOff:
      return "off";
    case TraceDetail::kProtocol:
      return "protocol";
    case TraceDetail::kFull:
      return "full";
  }
  return "?";
}

const char* TraceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kTxnSubmit:
      return "txn_submit";
    case TraceEventKind::kQuorumPlan:
      return "quorum_plan";
    case TraceEventKind::kQuorumReached:
      return "quorum_reached";
    case TraceEventKind::kReadDone:
      return "read_done";
    case TraceEventKind::kReadRequest:
      return "read_request";
    case TraceEventKind::kPrewriteRequest:
      return "prewrite_request";
    case TraceEventKind::kCcGrant:
      return "cc_grant";
    case TraceEventKind::kCcBlock:
      return "cc_block";
    case TraceEventKind::kCcDeny:
      return "cc_deny";
    case TraceEventKind::kCcVictim:
      return "cc_victim";
    case TraceEventKind::kPrepare:
      return "prepare";
    case TraceEventKind::kVote:
      return "vote";
    case TraceEventKind::kDecision:
      return "decision";
    case TraceEventKind::kDecisionApplied:
      return "decision_applied";
    case TraceEventKind::kWriteApplied:
      return "write_applied";
    case TraceEventKind::kRpcAttempt:
      return "rpc_attempt";
    case TraceEventKind::kRpcRetry:
      return "rpc_retry";
    case TraceEventKind::kRpcFailure:
      return "rpc_failure";
    case TraceEventKind::kMsgSend:
      return "msg_send";
    case TraceEventKind::kMsgRecv:
      return "msg_recv";
    case TraceEventKind::kMsgDrop:
      return "msg_drop";
    case TraceEventKind::kTxnCommit:
      return "txn_commit";
    case TraceEventKind::kTxnAbort:
      return "txn_abort";
    case TraceEventKind::kCount:
      break;
  }
  return "?";
}

void TraceCollector::Emit(TraceRecord rec) {
  if (detail_ == TraceDetail::kOff) return;
  if (records_.size() >= capacity_) {
    size_t evict = records_.size() / 2;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<ptrdiff_t>(evict));
    dropped_ += evict;
  }
  records_.push_back(std::move(rec));
}

void TraceCollector::Clear() {
  records_.clear();
  dropped_ = 0;
}

void TraceCollector::MergeFrom(const TraceCollector& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  dropped_ += other.dropped_;
}

void TraceCollector::CanonicalSort() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.site < b.site;
                   });
}

std::vector<TraceRecord> TraceCollector::ForTxn(TxnId txn) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.txn == txn) out.push_back(r);
  }
  return out;
}

size_t TraceCollector::CountKind(TraceEventKind kind) const {
  size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

std::vector<TxnId> TraceCollector::Transactions() const {
  std::vector<TxnId> out;
  std::set<TxnId> seen;
  for (const TraceRecord& r : records_) {
    if (!r.txn.valid()) continue;
    if (seen.insert(r.txn).second) out.push_back(r.txn);
  }
  return out;
}

}  // namespace rainbow
