#ifndef RAINBOW_COMMON_TRACE_H_
#define RAINBOW_COMMON_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rainbow {

/// Categories of trace events, so observers can filter.
enum class TraceCategory {
  kTxn,      ///< transaction lifecycle (arrive, commit, abort)
  kRcp,      ///< replication-control steps (quorum build, copy access)
  kCcp,      ///< concurrency-control decisions (grant, wait, victim)
  kAcp,      ///< atomic-commit phases (prepare, vote, decision)
  kNet,      ///< message send/deliver/drop
  kFault,    ///< injected failures and recoveries
  kSite,     ///< site-local events (crash, recover, restart)
  kGeneral,
};

const char* TraceCategoryName(TraceCategory c);

/// One trace record: what happened, where, and at what simulated time.
/// The progress monitor renders these as the "execution history" view
/// that the Rainbow GUI shows in real time.
struct TraceEvent {
  SimTime time = 0;
  TraceCategory category = TraceCategory::kGeneral;
  SiteId site = kInvalidSite;
  std::string text;
};

/// Collects trace events. Cheap when disabled (the common case for
/// large benchmark runs); tests and the interactive example enable it
/// to assert on / display execution histories.
class TraceLog {
 public:
  /// When disabled, Record() is a no-op.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Caps memory; older events are discarded beyond this count.
  void set_capacity(size_t cap) { capacity_ = cap; }

  void Record(SimTime time, TraceCategory category, SiteId site,
              std::string text);

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Renders events (optionally only one category) as "time [cat] @site text".
  std::string Render() const;
  std::string Render(TraceCategory only) const;

  /// Number of recorded events whose text contains `needle`.
  size_t CountContaining(const std::string& needle) const;

 private:
  bool enabled_ = false;
  size_t capacity_ = 1 << 20;
  std::vector<TraceEvent> events_;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_TRACE_H_
