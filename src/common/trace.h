#ifndef RAINBOW_COMMON_TRACE_H_
#define RAINBOW_COMMON_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rainbow {

/// Categories of trace events, so observers can filter.
enum class TraceCategory {
  kTxn,      ///< transaction lifecycle (arrive, commit, abort)
  kRcp,      ///< replication-control steps (quorum build, copy access)
  kCcp,      ///< concurrency-control decisions (grant, wait, victim)
  kAcp,      ///< atomic-commit phases (prepare, vote, decision)
  kNet,      ///< message send/deliver/drop
  kFault,    ///< injected failures and recoveries
  kSite,     ///< site-local events (crash, recover, restart)
  kGeneral,
};

const char* TraceCategoryName(TraceCategory c);

/// One trace record: what happened, where, and at what simulated time.
/// The progress monitor renders these as the "execution history" view
/// that the Rainbow GUI shows in real time.
struct TraceEvent {
  SimTime time = 0;
  TraceCategory category = TraceCategory::kGeneral;
  SiteId site = kInvalidSite;
  std::string text;
};

/// Collects trace events. Cheap when disabled (the common case for
/// large benchmark runs); tests and the interactive example enable it
/// to assert on / display execution histories.
class TraceLog {
 public:
  /// When disabled, Record() is a no-op.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Caps memory; older events are discarded beyond this count.
  void set_capacity(size_t cap) { capacity_ = cap; }

  void Record(SimTime time, TraceCategory category, SiteId site,
              std::string text);

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Appends another log's events (per-shard log merge). Ignores the
  /// enabled flag — merge targets are assembled, not recorded into.
  void MergeFrom(const TraceLog& other);

  /// Stable-sorts events by (time, site): the canonical cross-shard
  /// order. Within one (time, site) pair emission order is preserved —
  /// and a site's events always sit in a single shard buffer, so the
  /// merged order is shard-count-invariant.
  void CanonicalSort();

  /// Renders events (optionally only one category) as "time [cat] @site text".
  std::string Render() const;
  std::string Render(TraceCategory only) const;

  /// Number of recorded events whose text contains `needle`.
  size_t CountContaining(const std::string& needle) const;

 private:
  bool enabled_ = false;
  size_t capacity_ = 1 << 20;
  std::vector<TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Structured per-transaction tracing
// ---------------------------------------------------------------------------

/// How much the structured TraceCollector records.
enum class TraceDetail {
  kOff = 0,   ///< Emit() is a no-op; zero cost on hot paths
  kProtocol,  ///< protocol-level decisions (quorum, CC, votes, retries)
  kFull,      ///< protocol events plus every message send/recv/drop
};

const char* TraceDetailName(TraceDetail d);

/// What happened. One enumerator per protocol step the per-transaction
/// timeline (the Figure-5 "execution window") distinguishes.
enum class TraceEventKind {
  kTxnSubmit,        ///< home site accepted the transaction (arg = #ops)
  kQuorumPlan,       ///< coordinator resolved replicas for an op (arg = #targets)
  kQuorumReached,    ///< enough replica grants for an op (arg = #grants)
  kReadDone,         ///< coordinator completed a read op (arg = version used)
  kReadRequest,      ///< replica received a read for `item`
  kPrewriteRequest,  ///< replica received a prewrite for `item`
  kCcGrant,          ///< replica CC granted access to `item`
  kCcBlock,          ///< replica CC queued the request behind a conflict
  kCcDeny,           ///< replica CC denied access (detail = reason)
  kCcVictim,         ///< aborted at the replica (deadlock victim / wounded)
  kPrepare,          ///< coordinator sent prepare (arg = #participants)
  kVote,             ///< participant voted (arg = 1 yes / 0 no)
  kDecision,         ///< coordinator decided (arg = 1 commit / 0 abort)
  kDecisionApplied,  ///< participant applied the decision (arg = 1 commit)
  kWriteApplied,     ///< replica installed a committed write (arg = version)
  kRpcAttempt,       ///< kFull only: an RPC request transmission (arg = attempt#)
  kRpcRetry,         ///< RPC retransmission after a timeout (arg = attempt#)
  kRpcFailure,       ///< RPC call exhausted its attempts (arg = #attempts)
  kMsgSend,          ///< kFull only: message handed to the network
  kMsgRecv,          ///< kFull only: message delivered
  kMsgDrop,          ///< kFull only: message dropped (detail = cause)
  kTxnCommit,        ///< transaction committed at its coordinator
  kTxnAbort,         ///< transaction aborted (detail = cause)
  kCount,
};

const char* TraceEventKindName(TraceEventKind k);

/// One structured trace event. `txn` is invalid for events that are not
/// transaction-scoped (e.g. recovery refresh traffic at kFull detail).
struct TraceRecord {
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kTxnSubmit;
  TxnId txn;
  SiteId site = kInvalidSite;  ///< where the event happened
  SiteId peer = kInvalidSite;  ///< counterpart site, if any
  ItemId item = kInvalidItem;
  int64_t arg = 0;             ///< kind-specific small scalar
  std::string detail;          ///< kind-specific annotation
};

/// Collects TraceRecords in emission order. The simulator's time order
/// makes that order deterministic, so two same-seed runs produce
/// byte-identical exports (stats/trace_export.h) — the determinism
/// regression gate. Callers must check enabled()/full() BEFORE building
/// a record so that disabled tracing costs one branch and no
/// allocations on the message hot path.
class TraceCollector {
 public:
  void set_detail(TraceDetail d) { detail_ = d; }
  TraceDetail detail() const { return detail_; }
  bool enabled() const { return detail_ != TraceDetail::kOff; }
  bool full() const { return detail_ == TraceDetail::kFull; }

  /// Caps memory: when full, the older half is discarded (counted in
  /// dropped()).
  void set_capacity(size_t cap) { capacity_ = cap; }

  void Emit(TraceRecord rec);

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t dropped() const { return dropped_; }
  void Clear();

  /// Appends another collector's records (per-shard merge). Ignores the
  /// detail level — merge targets are assembled, not emitted into.
  void MergeFrom(const TraceCollector& other);

  /// Stable-sorts records by (time, site): the canonical cross-shard
  /// order (see TraceLog::CanonicalSort).
  void CanonicalSort();

  /// Events of one transaction, in emission (= time) order.
  std::vector<TraceRecord> ForTxn(TxnId txn) const;
  /// Number of recorded events of `kind`.
  size_t CountKind(TraceEventKind kind) const;
  /// Transaction ids seen, ordered by first appearance.
  std::vector<TxnId> Transactions() const;

 private:
  TraceDetail detail_ = TraceDetail::kOff;
  size_t capacity_ = 1 << 20;
  size_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace rainbow

#endif  // RAINBOW_COMMON_TRACE_H_
