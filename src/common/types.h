#ifndef RAINBOW_COMMON_TYPES_H_
#define RAINBOW_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace rainbow {

/// Identifier of a Rainbow site. Site ids are small dense integers
/// assigned by the name server at registration time.
using SiteId = uint32_t;

/// Sentinel for "no site".
inline constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();

/// The reserved id under which the name server itself is addressable on
/// the network. Regular sites are numbered from 0 upward.
inline constexpr SiteId kNameServerId = kInvalidSite - 1;

/// Database items are named; the catalog interns names to dense ids.
using ItemId = uint32_t;
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// Value stored in a database item copy.
using Value = int64_t;

/// Monotonic per-item version number installed by committed writes.
/// Version 0 is the initial value loaded at configuration time.
using Version = uint64_t;

/// Simulated time in microseconds since the start of the run.
using SimTime = int64_t;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Convenience constructors for simulated durations.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(int64_t s) { return s * 1000 * 1000; }

/// Globally unique transaction identifier: the home site that accepted
/// the transaction plus a per-site sequence number. Comparison order is
/// (sequence, site), which is NOT a timestamp order; see TxnTimestamp.
struct TxnId {
  SiteId home = kInvalidSite;
  uint64_t seq = 0;

  bool valid() const { return home != kInvalidSite; }
  bool operator==(const TxnId&) const = default;
  bool operator<(const TxnId& o) const {
    if (seq != o.seq) return seq < o.seq;
    return home < o.home;
  }
  std::string ToString() const {
    return "T" + std::to_string(seq) + "@" + std::to_string(home);
  }
};

/// Globally unique transaction timestamp: assignment time at the home
/// site with the site id as tie-breaker. Total order; used by TSO/MVTO
/// and by the wait-die / wound-wait deadlock policies ("older" = smaller).
struct TxnTimestamp {
  SimTime time = 0;
  SiteId site = kInvalidSite;

  bool operator==(const TxnTimestamp&) const = default;
  bool operator<(const TxnTimestamp& o) const {
    if (time != o.time) return time < o.time;
    return site < o.site;
  }
  bool operator<=(const TxnTimestamp& o) const { return *this < o || *this == o; }
  std::string ToString() const {
    return std::to_string(time) + "." + std::to_string(site);
  }
};

/// Why a transaction aborted, attributed to the protocol layer that
/// triggered the abort. The paper's §3 statistics report abort counts
/// and rates split along exactly these lines.
enum class AbortCause {
  kNone = 0,   ///< not aborted
  kCcp,        ///< concurrency control: deadlock victim, TSO rejection, ...
  kRcp,        ///< replication control: quorum/replica unavailable
  kAcp,        ///< atomic commitment: participant voted NO or timed out
  kSiteFailure,///< home-site crash killed the transaction mid-flight
  kOther,
};

const char* AbortCauseName(AbortCause cause);

}  // namespace rainbow

template <>
struct std::hash<rainbow::TxnId> {
  size_t operator()(const rainbow::TxnId& id) const {
    return std::hash<uint64_t>()(id.seq) * 1000003u ^
           std::hash<uint32_t>()(id.home);
  }
};

#endif  // RAINBOW_COMMON_TYPES_H_
