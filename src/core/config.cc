#include "core/config.h"

#include <sstream>

#include "common/string_util.h"

namespace rainbow {

void SystemConfig::AddUniformItems(int count, Value initial,
                                   int replication_degree) {
  int degree = std::min<int>(replication_degree, static_cast<int>(num_sites));
  for (int i = 0; i < count; ++i) {
    ItemConfig item;
    item.name = "x" + std::to_string(items.size());
    item.initial = initial;
    for (int r = 0; r < degree; ++r) {
      item.copies.push_back(static_cast<SiteId>((i + r) % num_sites));
    }
    items.push_back(std::move(item));
  }
}

Status SystemConfig::Validate() const {
  if (num_sites == 0) {
    return Status::InvalidArgument("num_sites must be >= 1");
  }
  if (sim_shards == 0) {
    return Status::InvalidArgument("sim_shards must be >= 1");
  }
  if (sim_shards > 64) {
    return Status::InvalidArgument("sim_shards must be <= 64");
  }
  if (message_loss < 0 || message_loss >= 1) {
    return Status::InvalidArgument("message_loss must be in [0, 1)");
  }
  if (items.empty()) {
    return Status::InvalidArgument("no database items configured");
  }
  if (protocols.page_size < 64) {
    return Status::InvalidArgument("page_size must be >= 64");
  }
  if (protocols.buffer_pool_pages < 8) {
    return Status::InvalidArgument("buffer_pool_pages must be >= 8");
  }
  if (protocols.lru_k < 1) {
    return Status::InvalidArgument("lru_k must be >= 1");
  }
  if (protocols.checkpoint_interval != 0 && protocols.checkpoint_interval < 8) {
    return Status::InvalidArgument("checkpoint_interval must be 0 or >= 8");
  }
  for (const ItemConfig& item : items) {
    if (item.copies.empty()) {
      return Status::InvalidArgument("item '" + item.name + "' has no copies");
    }
    for (SiteId s : item.copies) {
      if (s >= num_sites) {
        return Status::InvalidArgument("item '" + item.name +
                                       "' placed on unknown site " +
                                       std::to_string(s));
      }
    }
    if (!item.votes.empty() && item.votes.size() != item.copies.size()) {
      return Status::InvalidArgument("item '" + item.name +
                                     "': votes/copies size mismatch");
    }
  }
  return Status::OK();
}

namespace {

std::string JoinInts(const std::vector<SiteId>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += "|";
    out += std::to_string(v[i]);
  }
  return out;
}

std::string JoinInts(const std::vector<int>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += "|";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

std::string SystemConfig::ToText() const {
  std::ostringstream os;
  os << "[system]\n";
  os << "seed = " << seed << "\n";
  os << "num_sites = " << num_sites << "\n";
  os << "sim_shards = " << sim_shards << "\n";
  os << "enable_trace = " << (enable_trace ? "true" : "false") << "\n";
  os << "record_history = " << (record_history ? "true" : "false") << "\n";
  os << "stats_bucket = " << stats_bucket << "\n";
  os << "trace_enabled = " << (trace_enabled ? "true" : "false") << "\n";
  os << "trace_detail = " << TraceDetailName(trace_detail) << "\n";
  os << "verify_history = " << (verify_history ? "true" : "false") << "\n";
  os << "nemesis_seed = " << nemesis_seed << "\n";
  os << "nemesis_profile = " << nemesis_profile << "\n";
  os << "nemesis_rounds = " << nemesis_rounds << "\n";
  os << "\n[network]\n";
  os << "distribution = " << LatencyDistributionName(latency.distribution)
     << "\n";
  os << "mean = " << latency.mean << "\n";
  os << "min = " << latency.min << "\n";
  os << "per_kb = " << latency.per_kb << "\n";
  os << "local = " << latency.local << "\n";
  if (!latency.regions.empty()) {
    os << "regions = " << JoinInts(latency.regions) << "\n";
    os << "inter_region_mean = " << latency.inter_region_mean << "\n";
  }
  os << "message_loss = " << FormatDouble(message_loss, 6) << "\n";
  os << "verify_codec = " << (verify_codec ? "true" : "false") << "\n";
  os << "\n[protocols]\n";
  os << "rcp = " << RcpKindName(protocols.rcp) << "\n";
  os << "cc = " << CcKindName(protocols.cc) << "\n";
  os << "deadlock = " << DeadlockPolicyName(protocols.deadlock) << "\n";
  os << "acp = " << AcpKindName(protocols.acp) << "\n";
  os << "rcp_broadcast = " << (protocols.rcp_broadcast ? "true" : "false")
     << "\n";
  os << "cache_schema = " << (protocols.cache_schema ? "true" : "false")
     << "\n";
  os << "cooperative_termination = "
     << (protocols.cooperative_termination ? "true" : "false") << "\n";
  os << "recovery_refresh = "
     << (protocols.recovery_refresh ? "true" : "false") << "\n";
  os << "readonly_optimization = "
     << (protocols.readonly_optimization ? "true" : "false") << "\n";
  os << "epoch_fencing = " << (protocols.epoch_fencing ? "true" : "false")
     << "\n";
  os << "ordered_access = "
     << (protocols.ordered_access ? "true" : "false") << "\n";
  os << "storage_engine = " << StorageEngineKindName(protocols.storage_engine)
     << "\n";
  os << "page_size = " << protocols.page_size << "\n";
  os << "buffer_pool_pages = " << protocols.buffer_pool_pages << "\n";
  os << "lru_k = " << protocols.lru_k << "\n";
  os << "checkpoint_interval = " << protocols.checkpoint_interval << "\n";
  os << "page_checksums = " << (protocols.page_checksums ? "true" : "false")
     << "\n";
  os << "op_timeout = " << protocols.op_timeout << "\n";
  os << "lock_wait_timeout = " << protocols.lock_wait_timeout << "\n";
  os << "vote_timeout = " << protocols.vote_timeout << "\n";
  os << "decision_timeout = " << protocols.decision_timeout << "\n";
  os << "decision_retry = " << protocols.decision_retry << "\n";
  os << "active_timeout = " << protocols.active_timeout << "\n";
  os << "ack_retry = " << protocols.ack_retry << "\n";
  os << "max_ack_resends = " << protocols.max_ack_resends << "\n";
  os << "suspicion_ttl = " << protocols.suspicion_ttl << "\n";
  os << "termination_window = " << protocols.termination_window << "\n";
  os << "probe_delay = " << protocols.probe_delay << "\n";
  os << "rpc_max_attempts = " << protocols.rpc_max_attempts << "\n";
  os << "rpc_backoff_base = " << protocols.rpc_backoff_base << "\n";
  os << "rpc_backoff_cap = " << protocols.rpc_backoff_cap << "\n";
  os << "\n[items]\n";
  for (const ItemConfig& item : items) {
    os << "item = " << item.name << ", " << item.initial << ", "
       << JoinInts(item.copies);
    os << ", " << (item.votes.empty() ? "-" : JoinInts(item.votes));
    os << ", " << item.read_quorum << ", " << item.write_quorum << "\n";
  }
  return os.str();
}

namespace {

Result<std::vector<SiteId>> ParseSiteList(std::string_view s) {
  std::vector<SiteId> out;
  for (const std::string& piece : SplitAndTrim(s, '|')) {
    RAINBOW_ASSIGN_OR_RETURN(int64_t v, ParseInt(piece));
    out.push_back(static_cast<SiteId>(v));
  }
  return out;
}

Result<std::vector<int>> ParseIntList(std::string_view s) {
  std::vector<int> out;
  for (const std::string& piece : SplitAndTrim(s, '|')) {
    RAINBOW_ASSIGN_OR_RETURN(int64_t v, ParseInt(piece));
    out.push_back(static_cast<int>(v));
  }
  return out;
}

Status ParseKeyValue(SystemConfig& cfg, const std::string& section,
                     const std::string& key, const std::string& value) {
  auto as_int = [&]() -> Result<int64_t> { return ParseInt(value); };
  auto as_bool = [&]() -> Result<bool> { return ParseBool(value); };

  if (section == "system") {
    if (key == "seed") {
      // Full uint64 range: RNG seeds above INT64_MAX must reload.
      RAINBOW_ASSIGN_OR_RETURN(cfg.seed, ParseUint64(value));
    } else if (key == "num_sites") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      cfg.num_sites = static_cast<uint32_t>(v);
    } else if (key == "sim_shards") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      cfg.sim_shards = static_cast<uint32_t>(v);
    } else if (key == "enable_trace") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.enable_trace, as_bool());
    } else if (key == "record_history") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.record_history, as_bool());
    } else if (key == "stats_bucket") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.stats_bucket, as_int());
    } else if (key == "trace_enabled") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.trace_enabled, as_bool());
    } else if (key == "verify_history") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.verify_history, as_bool());
    } else if (key == "nemesis_seed") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.nemesis_seed, ParseUint64(value));
    } else if (key == "nemesis_profile") {
      cfg.nemesis_profile = value;
    } else if (key == "nemesis_rounds") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      cfg.nemesis_rounds = static_cast<uint32_t>(v);
    } else if (key == "trace_detail") {
      if (value == "off") {
        cfg.trace_detail = TraceDetail::kOff;
      } else if (value == "protocol") {
        cfg.trace_detail = TraceDetail::kProtocol;
      } else if (value == "full") {
        cfg.trace_detail = TraceDetail::kFull;
      } else {
        return Status::InvalidArgument("unknown trace_detail: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown [system] key: " + key);
    }
    return Status::OK();
  }
  if (section == "network") {
    if (key == "distribution") {
      if (value == "fixed") {
        cfg.latency.distribution = LatencyDistribution::kFixed;
      } else if (value == "uniform") {
        cfg.latency.distribution = LatencyDistribution::kUniform;
      } else if (value == "exponential") {
        cfg.latency.distribution = LatencyDistribution::kExponential;
      } else {
        return Status::InvalidArgument("unknown distribution: " + value);
      }
    } else if (key == "mean") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.mean, as_int());
    } else if (key == "min") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.min, as_int());
    } else if (key == "per_kb") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.per_kb, as_int());
    } else if (key == "local") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.local, as_int());
    } else if (key == "regions") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.regions, ParseIntList(value));
    } else if (key == "inter_region_mean") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.latency.inter_region_mean, as_int());
    } else if (key == "message_loss") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.message_loss, ParseDouble(value));
    } else if (key == "verify_codec") {
      RAINBOW_ASSIGN_OR_RETURN(cfg.verify_codec, ParseBool(value));
    } else {
      return Status::InvalidArgument("unknown [network] key: " + key);
    }
    return Status::OK();
  }
  if (section == "protocols") {
    ProtocolConfig& p = cfg.protocols;
    if (key == "rcp") {
      if (value == "ROWA") {
        p.rcp = RcpKind::kRowa;
      } else if (value == "ROWA-A") {
        p.rcp = RcpKind::kRowaAvailable;
      } else if (value == "QC") {
        p.rcp = RcpKind::kQuorumConsensus;
      } else if (value == "PRIMARY") {
        p.rcp = RcpKind::kPrimaryCopy;
      } else {
        return Status::InvalidArgument("unknown rcp: " + value);
      }
    } else if (key == "cc") {
      if (value == "2PL") {
        p.cc = CcKind::kTwoPhaseLocking;
      } else if (value == "TSO") {
        p.cc = CcKind::kTimestampOrdering;
      } else if (value == "MVTO") {
        p.cc = CcKind::kMultiversionTso;
      } else if (value == "OCC") {
        p.cc = CcKind::kOptimistic;
      } else {
        return Status::InvalidArgument("unknown cc: " + value);
      }
    } else if (key == "deadlock") {
      if (value == "wait-die") {
        p.deadlock = DeadlockPolicy::kWaitDie;
      } else if (value == "wound-wait") {
        p.deadlock = DeadlockPolicy::kWoundWait;
      } else if (value == "local-wfg") {
        p.deadlock = DeadlockPolicy::kLocalWfg;
      } else if (value == "timeout-only") {
        p.deadlock = DeadlockPolicy::kTimeoutOnly;
      } else if (value == "edge-chasing") {
        p.deadlock = DeadlockPolicy::kEdgeChasing;
      } else {
        return Status::InvalidArgument("unknown deadlock policy: " + value);
      }
    } else if (key == "acp") {
      if (value == "2PC") {
        p.acp = AcpKind::kTwoPhaseCommit;
      } else if (value == "3PC") {
        p.acp = AcpKind::kThreePhaseCommit;
      } else {
        return Status::InvalidArgument("unknown acp: " + value);
      }
    } else if (key == "rcp_broadcast") {
      RAINBOW_ASSIGN_OR_RETURN(p.rcp_broadcast, as_bool());
    } else if (key == "cache_schema") {
      RAINBOW_ASSIGN_OR_RETURN(p.cache_schema, as_bool());
    } else if (key == "cooperative_termination") {
      RAINBOW_ASSIGN_OR_RETURN(p.cooperative_termination, as_bool());
    } else if (key == "recovery_refresh") {
      RAINBOW_ASSIGN_OR_RETURN(p.recovery_refresh, as_bool());
    } else if (key == "readonly_optimization") {
      RAINBOW_ASSIGN_OR_RETURN(p.readonly_optimization, as_bool());
    } else if (key == "epoch_fencing") {
      RAINBOW_ASSIGN_OR_RETURN(p.epoch_fencing, as_bool());
    } else if (key == "ordered_access") {
      RAINBOW_ASSIGN_OR_RETURN(p.ordered_access, as_bool());
    } else if (key == "storage_engine") {
      if (value == "map") {
        p.storage_engine = StorageEngineKind::kMap;
      } else if (value == "page") {
        p.storage_engine = StorageEngineKind::kPage;
      } else {
        return Status::InvalidArgument("unknown storage_engine: " + value);
      }
    } else if (key == "page_size") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.page_size = static_cast<uint32_t>(v);
    } else if (key == "buffer_pool_pages") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.buffer_pool_pages = static_cast<uint32_t>(v);
    } else if (key == "lru_k") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.lru_k = static_cast<uint32_t>(v);
    } else if (key == "checkpoint_interval") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.checkpoint_interval = static_cast<uint64_t>(v);
    } else if (key == "page_checksums") {
      RAINBOW_ASSIGN_OR_RETURN(p.page_checksums, as_bool());
    } else if (key == "op_timeout") {
      RAINBOW_ASSIGN_OR_RETURN(p.op_timeout, as_int());
    } else if (key == "lock_wait_timeout") {
      RAINBOW_ASSIGN_OR_RETURN(p.lock_wait_timeout, as_int());
    } else if (key == "vote_timeout") {
      RAINBOW_ASSIGN_OR_RETURN(p.vote_timeout, as_int());
    } else if (key == "decision_timeout") {
      RAINBOW_ASSIGN_OR_RETURN(p.decision_timeout, as_int());
    } else if (key == "decision_retry") {
      RAINBOW_ASSIGN_OR_RETURN(p.decision_retry, as_int());
    } else if (key == "active_timeout") {
      RAINBOW_ASSIGN_OR_RETURN(p.active_timeout, as_int());
    } else if (key == "ack_retry") {
      RAINBOW_ASSIGN_OR_RETURN(p.ack_retry, as_int());
    } else if (key == "max_ack_resends") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.max_ack_resends = static_cast<int>(v);
    } else if (key == "suspicion_ttl") {
      RAINBOW_ASSIGN_OR_RETURN(p.suspicion_ttl, as_int());
    } else if (key == "termination_window") {
      RAINBOW_ASSIGN_OR_RETURN(p.termination_window, as_int());
    } else if (key == "probe_delay") {
      RAINBOW_ASSIGN_OR_RETURN(p.probe_delay, as_int());
    } else if (key == "rpc_max_attempts") {
      RAINBOW_ASSIGN_OR_RETURN(int64_t v, as_int());
      p.rpc_max_attempts = static_cast<int>(v);
    } else if (key == "rpc_backoff_base") {
      RAINBOW_ASSIGN_OR_RETURN(p.rpc_backoff_base, as_int());
    } else if (key == "rpc_backoff_cap") {
      RAINBOW_ASSIGN_OR_RETURN(p.rpc_backoff_cap, as_int());
    } else {
      return Status::InvalidArgument("unknown [protocols] key: " + key);
    }
    return Status::OK();
  }
  if (section == "items") {
    if (key != "item") {
      return Status::InvalidArgument("unknown [items] key: " + key);
    }
    std::vector<std::string> parts = SplitAndTrim(value, ',');
    if (parts.size() != 6) {
      return Status::InvalidArgument("item line needs 6 fields: " + value);
    }
    ItemConfig item;
    item.name = parts[0];
    RAINBOW_ASSIGN_OR_RETURN(item.initial, ParseInt(parts[1]));
    RAINBOW_ASSIGN_OR_RETURN(item.copies, ParseSiteList(parts[2]));
    if (parts[3] != "-") {
      RAINBOW_ASSIGN_OR_RETURN(item.votes, ParseIntList(parts[3]));
    }
    RAINBOW_ASSIGN_OR_RETURN(int64_t rq, ParseInt(parts[4]));
    RAINBOW_ASSIGN_OR_RETURN(int64_t wq, ParseInt(parts[5]));
    item.read_quorum = static_cast<int>(rq);
    item.write_quorum = static_cast<int>(wq);
    cfg.items.push_back(std::move(item));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown section: [" + section + "]");
}

}  // namespace

Result<SystemConfig> SystemConfig::FromText(const std::string& text) {
  SystemConfig cfg;
  cfg.items.clear();
  std::string section;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view sv = TrimWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    if (sv.front() == '[' && sv.back() == ']') {
      section = std::string(sv.substr(1, sv.size() - 2));
      continue;
    }
    size_t eq = sv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StringPrintf("line %d: expected key = value", lineno));
    }
    std::string key(TrimWhitespace(sv.substr(0, eq)));
    std::string value(TrimWhitespace(sv.substr(eq + 1)));
    Status s = ParseKeyValue(cfg, section, key, value);
    if (!s.ok()) {
      return Status::InvalidArgument(
          StringPrintf("line %d: %s", lineno, s.message().c_str()));
    }
  }
  return cfg;
}

}  // namespace rainbow
