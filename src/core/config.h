#ifndef RAINBOW_CORE_CONFIG_H_
#define RAINBOW_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/latency_model.h"
#include "site/protocol_config.h"

namespace rainbow {

/// Placement and quorum configuration of one database item (one line of
/// the GUI's "Database Replication Configuration" panel, Figure A-1).
struct ItemConfig {
  std::string name;
  Value initial = 0;
  std::vector<SiteId> copies;
  std::vector<int> votes;  ///< empty = one vote per copy
  int read_quorum = 0;     ///< 0 = majority of votes
  int write_quorum = 0;    ///< 0 = majority of votes
};

/// Everything needed to instantiate a Rainbow instance: the union of the
/// GUI's configuration panels (network simulation, sites, protocols,
/// database items and replication scheme). "The configuration data can
/// be saved for reuse in another session" — see ToText() / FromText().
struct SystemConfig {
  uint64_t seed = 1;
  uint32_t num_sites = 3;

  /// Simulation kernel shards (worker threads). 1 = the classic
  /// single-threaded kernel; N > 1 partitions sites across N per-shard
  /// event queues synchronized at conservative virtual-time barriers
  /// (sim/sharded_simulator.h). Same seed ⇒ same execution at any
  /// value; the knob only changes wall-clock speed.
  uint32_t sim_shards = 1;

  LatencyConfig latency;
  double message_loss = 0.0;
  /// Round-trip every message through the binary wire codec (net/codec).
  bool verify_codec = false;

  ProtocolConfig protocols;

  std::vector<ItemConfig> items;

  bool enable_trace = false;
  bool record_history = false;
  SimTime stats_bucket = Millis(100);

  /// Structured per-transaction tracing (TraceCollector). Off by default:
  /// the collector adds zero allocations to the message hot path when
  /// disabled. `trace_detail` selects protocol-level events only or the
  /// full feed including per-message send/receive/drop records.
  bool trace_enabled = false;
  TraceDetail trace_detail = TraceDetail::kProtocol;

  /// Opt-in correctness gate: after a session's workload drains, run the
  /// offline protocol-invariant checker (verify/checker.h) over the
  /// structured trace and fail the session on any violation. Forces
  /// trace_enabled (at >= protocol detail) for the run.
  bool verify_history = false;

  /// Nemesis fuzzing knobs (fault/nemesis.h): base seed, intensity
  /// profile name ("calm", "flaky", "havoc") and number of rounds, so a
  /// saved config fully describes a push-button fuzz run.
  uint64_t nemesis_seed = 1;
  std::string nemesis_profile = "flaky";
  uint32_t nemesis_rounds = 10;

  /// Adds `count` items named "x0".."x<count-1>", each with
  /// `replication_degree` copies placed round-robin across the sites,
  /// one vote per copy and majority quorums.
  void AddUniformItems(int count, Value initial, int replication_degree);

  /// Full-replication convenience: every item on every site.
  void AddFullyReplicatedItems(int count, Value initial) {
    AddUniformItems(count, initial, static_cast<int>(num_sites));
  }

  Status Validate() const;

  /// Serializes to the textual session-config format.
  std::string ToText() const;

  /// Parses a config previously produced by ToText() (or hand-written).
  static Result<SystemConfig> FromText(const std::string& text);
};

}  // namespace rainbow

#endif  // RAINBOW_CORE_CONFIG_H_
