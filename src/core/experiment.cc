#include "core/experiment.h"

#include "common/string_util.h"

namespace rainbow {

Experiment::Experiment(std::string title) : title_(std::move(title)) {}

void Experiment::AddPoint(Point point) { points_.push_back(std::move(point)); }

Status Experiment::Run() {
  results_.clear();
  for (const Point& p : points_) {
    SessionOptions options = p.options;
    options.verify_history |= verify_history_;
    auto r = RunSession(p.system, p.workload, options);
    if (!r.ok()) {
      return Status(r.status().code(),
                    title_ + " point '" + p.label + "': " +
                        r.status().message());
    }
    results_.push_back(std::move(r).value());
  }
  return Status::OK();
}

std::string Experiment::RenderTable(const std::vector<Metric>& metrics) const {
  std::vector<std::string> headers{"point"};
  for (const Metric& m : metrics) headers.push_back(m.name);
  TablePrinter t(std::move(headers));
  for (size_t i = 0; i < results_.size(); ++i) {
    std::vector<std::string> row{points_[i].label};
    for (const Metric& m : metrics) {
      row.push_back(FormatDouble(m.get(results_[i]), 2));
    }
    t.AddRow(std::move(row));
  }
  return title_ + "\n" + t.ToString();
}

std::string Experiment::RenderChart(const Metric& metric) const {
  std::vector<std::pair<double, double>> series;
  for (size_t i = 0; i < results_.size(); ++i) {
    double x = static_cast<double>(i);
    auto parsed = ParseDouble(points_[i].label);
    if (parsed.ok()) x = *parsed;
    series.emplace_back(x, metric.get(results_[i]));
  }
  return AsciiChart(title_ + " — " + metric.name, series);
}

namespace metrics {

Experiment::Metric CommitRate() {
  return {"commit_rate",
          [](const SessionResult& r) { return r.commit_rate * 100.0; }};
}
Experiment::Metric Throughput() {
  return {"tput_tps", [](const SessionResult& r) { return r.throughput_tps; }};
}
Experiment::Metric MeanResponseMs() {
  return {"mean_rt_ms",
          [](const SessionResult& r) { return r.mean_response_us / 1000.0; }};
}
Experiment::Metric P95ResponseMs() {
  return {"p95_rt_ms", [](const SessionResult& r) {
            return static_cast<double>(r.p95_response_us) / 1000.0;
          }};
}
Experiment::Metric MsgsPerCommit() {
  return {"msgs/commit",
          [](const SessionResult& r) { return r.msgs_per_commit; }};
}
Experiment::Metric MsgsPerTxn() {
  return {"msgs/txn", [](const SessionResult& r) { return r.msgs_per_txn; }};
}
Experiment::Metric AbortRateCcp() {
  return {"abort_ccp%", [](const SessionResult& r) {
            uint64_t f = r.committed + r.aborted;
            return f ? 100.0 * static_cast<double>(r.aborted_ccp) /
                           static_cast<double>(f)
                     : 0.0;
          }};
}
Experiment::Metric AbortRateRcp() {
  return {"abort_rcp%", [](const SessionResult& r) {
            uint64_t f = r.committed + r.aborted;
            return f ? 100.0 * static_cast<double>(r.aborted_rcp) /
                           static_cast<double>(f)
                     : 0.0;
          }};
}
Experiment::Metric AbortRateAcp() {
  return {"abort_acp%", [](const SessionResult& r) {
            uint64_t f = r.committed + r.aborted;
            return f ? 100.0 * static_cast<double>(r.aborted_acp) /
                           static_cast<double>(f)
                     : 0.0;
          }};
}
Experiment::Metric AbortRateTotal() {
  return {"abort%", [](const SessionResult& r) {
            uint64_t f = r.committed + r.aborted;
            return f ? 100.0 * static_cast<double>(r.aborted) /
                           static_cast<double>(f)
                     : 0.0;
          }};
}
Experiment::Metric Committed() {
  return {"committed",
          [](const SessionResult& r) { return static_cast<double>(r.committed); }};
}
Experiment::Metric Aborted() {
  return {"aborted",
          [](const SessionResult& r) { return static_cast<double>(r.aborted); }};
}
Experiment::Metric Retries() {
  return {"retries",
          [](const SessionResult& r) { return static_cast<double>(r.retries); }};
}
Experiment::Metric Orphans() {
  return {"orphans",
          [](const SessionResult& r) { return static_cast<double>(r.orphans); }};
}
Experiment::Metric MeanBlockedMs() {
  return {"mean_blocked_ms",
          [](const SessionResult& r) { return r.mean_blocked_us / 1000.0; }};
}
Experiment::Metric MaxBlockedMs() {
  return {"max_blocked_ms", [](const SessionResult& r) {
            return static_cast<double>(r.max_blocked_us) / 1000.0;
          }};
}

}  // namespace metrics

}  // namespace rainbow
