#ifndef RAINBOW_CORE_EXPERIMENT_H_
#define RAINBOW_CORE_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/session.h"

namespace rainbow {

/// A parameter sweep: runs one Rainbow session per point and renders the
/// series as a table (and optional ASCII chart) — the automation the
/// paper's GUI provides for experiments, in library form. Every bench
/// binary is a thin wrapper around one or more Experiments.
class Experiment {
 public:
  /// A metric column: name + extractor from a SessionResult.
  struct Metric {
    std::string name;
    std::function<double(const SessionResult&)> get;
  };

  explicit Experiment(std::string title);

  /// Adds one sweep point. The setup callback produces the configs.
  struct Point {
    std::string label;
    SystemConfig system;
    WorkloadConfig workload;
    SessionOptions options;
  };
  void AddPoint(Point point);

  /// Gates every point on the protocol-invariant checker: each session
  /// runs with verify_history on, and any violation aborts the sweep
  /// with the rendered report. The standing correctness oracle for
  /// performance experiments.
  void set_verify_history(bool on) { verify_history_ = on; }

  /// Runs every point; failures abort the experiment with the status.
  Status Run();

  /// Results, parallel to the points.
  const std::vector<SessionResult>& results() const { return results_; }

  /// Renders the sweep: one row per point, one column per metric.
  std::string RenderTable(const std::vector<Metric>& metrics) const;

  /// ASCII chart of one metric over the numeric interpretation of the
  /// point labels (or the point index when labels are not numeric).
  std::string RenderChart(const Metric& metric) const;

  const std::string& title() const { return title_; }

 private:
  std::string title_;
  bool verify_history_ = false;
  std::vector<Point> points_;
  std::vector<SessionResult> results_;
};

/// Commonly used metric columns.
namespace metrics {
Experiment::Metric CommitRate();
Experiment::Metric Throughput();
Experiment::Metric MeanResponseMs();
Experiment::Metric P95ResponseMs();
Experiment::Metric MsgsPerCommit();
Experiment::Metric MsgsPerTxn();
Experiment::Metric AbortRateCcp();
Experiment::Metric AbortRateRcp();
Experiment::Metric AbortRateAcp();
Experiment::Metric AbortRateTotal();
Experiment::Metric Committed();
Experiment::Metric Aborted();
Experiment::Metric Orphans();
Experiment::Metric Retries();
Experiment::Metric MeanBlockedMs();
Experiment::Metric MaxBlockedMs();
}  // namespace metrics

}  // namespace rainbow

#endif  // RAINBOW_CORE_EXPERIMENT_H_
