#include "core/session.h"

#include "fault/fault_script.h"
#include "verify/checker.h"
#include "verify/history.h"

namespace rainbow {

Result<SessionResult> RunSession(const SystemConfig& system_config,
                                 const WorkloadConfig& workload_config,
                                 const SessionOptions& options) {
  SystemConfig sys_cfg = system_config;
  if (options.check_serializability) sys_cfg.record_history = true;
  if (options.verify_history) sys_cfg.verify_history = true;
  if (sys_cfg.verify_history && !sys_cfg.trace_enabled) {
    // The checker consumes the structured trace; protocol detail is
    // enough (per-message records are not needed).
    sys_cfg.trace_enabled = true;
    sys_cfg.trace_detail = TraceDetail::kProtocol;
  }

  auto created = RainbowSystem::Create(sys_cfg);
  RAINBOW_RETURN_IF_ERROR(created.status());
  RainbowSystem& sys = **created;
  if (options.keep_session_log) sys.set_keep_outcomes(true);

  FaultInjector injector(&sys);
  injector.ScheduleAll(options.faults);
  if (!options.fault_script.empty()) {
    Result<std::vector<FaultEvent>> scripted =
        ParseFaultScript(options.fault_script);
    RAINBOW_RETURN_IF_ERROR(scripted.status());
    injector.ScheduleAll(*scripted);
  }
  if (options.random_mttf > 0 && options.random_mttr > 0) {
    injector.EnableRandomFaults(options.random_mttf, options.random_mttr,
                                options.max_duration, sys_cfg.seed ^ 0xfa17u);
  }

  WorkloadGenerator wlg(&sys, workload_config);
  wlg.Run();

  // Drive the simulation until the workload drains (or the cap).
  const SimTime step = Millis(50);
  while (!wlg.finished() && sys.sim().Now() < options.max_duration) {
    sys.RunFor(step);
    if (sys.Idle() && !wlg.finished()) {
      // Nothing can make progress any more (e.g. every site crashed and
      // nothing is scheduled): stop.
      break;
    }
  }
  SimTime duration = sys.sim().Now();
  // Let stragglers (acks, closers, refreshes) settle for accounting.
  sys.RunFor(Millis(500));

  const ProgressMonitor& pm = sys.monitor();
  const NetworkStats& net = sys.net().stats();

  SessionResult r;
  r.duration = duration;
  r.submitted = pm.submitted();
  r.committed = pm.committed();
  r.aborted = pm.aborted_total();
  r.aborted_ccp = pm.aborted(AbortCause::kCcp);
  r.aborted_rcp = pm.aborted(AbortCause::kRcp);
  r.aborted_acp = pm.aborted(AbortCause::kAcp);
  r.aborted_fail = pm.aborted(AbortCause::kSiteFailure);
  r.orphans = pm.orphans();
  r.retries = wlg.retries();
  r.commit_rate = pm.commit_rate();
  r.throughput_tps = pm.throughput_tps(duration);
  r.mean_response_us = pm.response_times().mean();
  r.p95_response_us = pm.response_times().Percentile(0.95);
  r.p99_response_us = pm.response_times().Percentile(0.99);
  r.net_messages = net.network_sent();
  r.net_bytes = net.bytes;
  r.dropped = net.total_dropped();
  uint64_t finished = r.committed + r.aborted;
  r.msgs_per_commit =
      r.committed ? static_cast<double>(r.net_messages) /
                        static_cast<double>(r.committed)
                  : 0;
  r.msgs_per_txn = finished ? static_cast<double>(r.net_messages) /
                                  static_cast<double>(finished)
                            : 0;
  r.mean_blocked_us = pm.blocked_times().mean();
  r.max_blocked_us = pm.blocked_times().max();
  r.load_cv = pm.home_load_cv();
  r.stats_table = pm.RenderStatistics(net, duration);
  if (options.keep_session_log) r.session_log = pm.RenderSessionLog();

  if (options.check_serializability) {
    RAINBOW_RETURN_IF_ERROR(
        CheckConflictSerializable(sys.history().transactions()));
  }
  if (sys_cfg.verify_history) {
    CheckReport report = sys.VerifyHistory();
    r.verify_report = report.Render();
    if (!report.ok()) {
      return Status::Internal("history check failed:\n" + r.verify_report);
    }
  }
  return r;
}

}  // namespace rainbow
