#ifndef RAINBOW_CORE_SESSION_H_
#define RAINBOW_CORE_SESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/system.h"
#include "fault/fault_injector.h"
#include "workload/workload.h"

namespace rainbow {

/// Aggregate results of one Rainbow session, in the units the paper's
/// §3 statistics list uses. One SessionResult is one row of most bench
/// tables.
struct SessionResult {
  SimTime duration = 0;  ///< virtual time from start to last completion

  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t aborted_ccp = 0;
  uint64_t aborted_rcp = 0;
  uint64_t aborted_acp = 0;
  uint64_t aborted_fail = 0;
  uint64_t orphans = 0;
  uint64_t retries = 0;

  double commit_rate = 0;       ///< committed / finished
  double throughput_tps = 0;    ///< committed per virtual second
  double mean_response_us = 0;  ///< committed transactions
  int64_t p95_response_us = 0;
  int64_t p99_response_us = 0;

  uint64_t net_messages = 0;  ///< inter-site messages sent
  uint64_t net_bytes = 0;
  uint64_t dropped = 0;
  double msgs_per_commit = 0;
  double msgs_per_txn = 0;  ///< per finished transaction

  double mean_blocked_us = 0;  ///< prepared-participant decision wait
  int64_t max_blocked_us = 0;

  double load_cv = 0;

  std::string stats_table;   ///< full §3 rendering
  std::string session_log;   ///< Figure-5 lines (when kept)
  std::string verify_report; ///< invariant-checker report (when enabled)
};

/// Options for RunSession beyond system + workload config.
struct SessionOptions {
  std::vector<FaultEvent> faults;
  /// Declarative fault script (fault/fault_script.h grammar), scheduled
  /// in addition to `faults`. Parse errors fail the session.
  std::string fault_script;
  /// Random faults (0 = disabled): exponential MTTF/MTTR per site while
  /// the workload runs.
  SimTime random_mttf = 0;
  SimTime random_mttr = 0;
  /// Hard stop: the session ends at this virtual time even if the
  /// workload has not drained (e.g. when a crash never recovers).
  SimTime max_duration = Seconds(600);
  /// Keep per-transaction outcomes for the Figure-5 session log.
  bool keep_session_log = false;
  /// After the workload drains, verify conflict-serializability of the
  /// committed history (requires config.record_history).
  bool check_serializability = false;
  /// After the workload drains, run the full protocol-invariant checker
  /// (verify/checker.h) over the structured trace; any violation fails
  /// the session with the rendered report. Equivalent to setting
  /// SystemConfig::verify_history.
  bool verify_history = false;
};

/// Configures a Rainbow instance, drives a workload through it (with
/// optional fault injection), and gathers the statistics — one full
/// "Rainbow session" as §4.2 of the paper describes, minus the browser.
Result<SessionResult> RunSession(const SystemConfig& system_config,
                                 const WorkloadConfig& workload_config,
                                 const SessionOptions& options = {});

}  // namespace rainbow

#endif  // RAINBOW_CORE_SESSION_H_
