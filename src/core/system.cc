#include "core/system.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace rainbow {

RainbowSystem::RainbowSystem(SystemConfig config)
    : config_(std::move(config)), client_rng_(config_.seed ^ 0xc11e47) {}

Result<std::unique_ptr<RainbowSystem>> RainbowSystem::Create(
    SystemConfig config) {
  RAINBOW_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<RainbowSystem> sys(new RainbowSystem(std::move(config)));
  RAINBOW_RETURN_IF_ERROR(sys->Init());
  return sys;
}

Status RainbowSystem::Init() {
  const TraceDetail detail =
      config_.trace_enabled ? config_.trace_detail : TraceDetail::kOff;
  trace_.set_enabled(config_.enable_trace);
  collector_.set_detail(detail);
  history_.set_enabled(config_.record_history);
  monitor_.set_bucket_width(config_.stats_bucket);

  const uint32_t shards = config_.sim_shards;
  if (shards > 1) {
    sharded_ = std::make_unique<ShardedSimulator>(shards);
    for (uint32_t k = 0; k < shards; ++k) {
      auto inst = std::make_unique<ShardInstruments>();
      inst->trace.set_enabled(config_.enable_trace);
      inst->collector.set_detail(detail);
      inst->history.set_enabled(config_.record_history);
      inst->monitor.set_bucket_width(config_.stats_bucket);
      shard_inst_.push_back(std::move(inst));
    }
  }

  Rng root(config_.seed);
  // Lane 0 (the network's default) is shard 0 in sharded mode so the
  // name server — pinned to shard 0 by ShardOfSite — lands on its own
  // simulator and trace.
  Simulator* lane0_sim = sharded_ ? &sharded_->shard(0) : &sim_;
  TraceLog* lane0_trace = sharded_ ? &shard_inst_[0]->trace : &trace_;
  net_ = std::make_unique<Network>(lane0_sim, config_.latency, root.Fork(),
                                   lane0_trace);
  net_->set_loss_probability(config_.message_loss);
  net_->set_collector(sharded_ ? &shard_inst_[0]->collector : &collector_);
  net_->set_verify_codec(config_.verify_codec);
  net_->set_stats_bucket_width(config_.stats_bucket);
  if (sharded_) {
    std::vector<NetworkShardContext> contexts;
    for (uint32_t k = 0; k < shards; ++k) {
      contexts.push_back(NetworkShardContext{&sharded_->shard(k),
                                             &shard_inst_[k]->trace,
                                             &shard_inst_[k]->collector});
    }
    net_->EnableSharding(sharded_.get(), contexts);
    // Conservative lookahead: re-read each barrier so LinkOverrides that
    // shrink cross-shard latency tighten the window immediately.
    sharded_->set_lookahead_provider(
        [this] { return net_->MinCrossShardDelay(); });
  }

  // Register sites and the schema in the catalog (the name server's
  // data), mirroring the administrator's configuration steps.
  for (uint32_t i = 0; i < config_.num_sites; ++i) {
    RAINBOW_ASSIGN_OR_RETURN(SiteId id,
                             catalog_.RegisterSite("site" + std::to_string(i)));
    (void)id;
  }
  for (const ItemConfig& item : config_.items) {
    std::vector<int> votes = item.votes;
    if (votes.empty()) votes.assign(item.copies.size(), 1);
    int total = 0;
    for (int v : votes) total += v;
    int rq = item.read_quorum > 0 ? item.read_quorum : total / 2 + 1;
    int wq = item.write_quorum > 0 ? item.write_quorum : total / 2 + 1;
    auto added = catalog_.schema().AddItem(item.name, item.initial,
                                           item.copies, votes, rq, wq);
    RAINBOW_RETURN_IF_ERROR(added.status());
  }
  RAINBOW_RETURN_IF_ERROR(catalog_.Validate());

  name_server_ =
      std::make_unique<NameServer>(catalog_, net_.get(), lane0_trace);
  name_server_->Start();

  for (uint32_t i = 0; i < config_.num_sites; ++i) {
    Site::Env env;
    env.net = net_.get();
    env.config = &config_.protocols;
    env.seed = config_.seed;
    if (sharded_) {
      uint32_t k = ShardedSimulator::ShardOfSite(static_cast<SiteId>(i),
                                                 shards);
      env.sim = &sharded_->shard(k);
      env.trace = &shard_inst_[k]->trace;
      env.collector = &shard_inst_[k]->collector;
      env.monitor = &shard_inst_[k]->monitor;
      env.history = &shard_inst_[k]->history;
    } else {
      env.sim = &sim_;
      env.trace = &trace_;
      env.collector = &collector_;
      env.monitor = &monitor_;
      env.history = &history_;
    }
    sites_.push_back(std::make_unique<Site>(static_cast<SiteId>(i), env));
  }
  // Load item copies and compute refresh-peer sets (sites sharing items).
  std::map<SiteId, std::set<SiteId>> peers;
  for (const ItemSchema& item : catalog_.schema().items()) {
    for (SiteId s : item.copies) {
      sites_[s]->LoadItem(item.id, item.initial_value);
      for (SiteId other : item.copies) {
        if (other != s) peers[s].insert(other);
      }
    }
  }
  for (auto& [s, set] : peers) sites_[s]->SetRefreshPeers(std::move(set));
  for (auto& site : sites_) site->Start();
  return Status::OK();
}

void RainbowSystem::set_keep_outcomes(bool keep) {
  keep_outcomes_ = keep;
  monitor_.set_keep_outcomes(keep);
  for (auto& inst : shard_inst_) inst->monitor.set_keep_outcomes(keep);
}

void RainbowSystem::RefreshMerged() const {
  // Rebuild from scratch on every access: runs are the expensive part,
  // and rebuilding keeps the views correct without threading a dirty
  // flag through every mutation path. Merge order (control lane first,
  // then shards in index order) plus the canonical stable sorts makes
  // the result invariant under shard count.
  merged_.trace = TraceLog();
  merged_.trace.set_enabled(true);
  merged_.trace.MergeFrom(trace_);
  for (const auto& inst : shard_inst_) merged_.trace.MergeFrom(inst->trace);
  merged_.trace.CanonicalSort();

  merged_.collector = TraceCollector();
  merged_.collector.set_detail(config_.trace_enabled ? config_.trace_detail
                                                     : TraceDetail::kOff);
  merged_.collector.MergeFrom(collector_);
  for (const auto& inst : shard_inst_) {
    merged_.collector.MergeFrom(inst->collector);
  }
  merged_.collector.CanonicalSort();

  merged_.monitor = ProgressMonitor();
  merged_.monitor.set_bucket_width(config_.stats_bucket);
  merged_.monitor.set_keep_outcomes(keep_outcomes_);
  merged_.monitor.MergeFrom(monitor_);
  for (const auto& inst : shard_inst_) {
    merged_.monitor.MergeFrom(inst->monitor);
  }
  merged_.monitor.CanonicalizeOutcomes();

  merged_.history = HistoryRecorder();
  merged_.history.set_enabled(config_.record_history);
  merged_.history.MergeFrom(history_);
  for (const auto& inst : shard_inst_) {
    merged_.history.MergeFrom(inst->history);
  }
  merged_.history.CanonicalSort();
}

Status RainbowSystem::Submit(SiteId home, TxnProgram program, TxnCallback cb,
                             std::optional<TxnTimestamp> inherit_ts) {
  if (home >= sites_.size()) {
    return Status::InvalidArgument("no such site " + std::to_string(home));
  }
  sites_[home]->Submit(std::move(program), std::move(cb), inherit_ts);
  return Status::OK();
}

void RainbowSystem::RunFor(SimTime duration) {
  if (sharded_) {
    sharded_->RunUntil(sharded_->Now() + duration);
  } else {
    sim_.RunUntil(sim_.Now() + duration);
  }
}

size_t RainbowSystem::RunToQuiescence(size_t max_events) {
  return sharded_ ? sharded_->RunToQuiescence(max_events)
                  : sim_.RunToQuiescence(max_events);
}

void RainbowSystem::CrashSite(SiteId s) {
  if (s == kNameServerId) {
    name_server_->Crash();
    return;
  }
  if (s < sites_.size()) sites_[s]->Crash();
}

void RainbowSystem::RecoverSite(SiteId s) {
  if (s == kNameServerId) {
    name_server_->Recover();
    return;
  }
  if (s < sites_.size()) sites_[s]->Recover();
}

Result<ItemCopy> RainbowSystem::LatestCommitted(ItemId item) const {
  auto schema = catalog_.schema().Find(item);
  RAINBOW_RETURN_IF_ERROR(schema.status());
  ItemCopy best;
  bool found = false;
  for (SiteId s : (*schema)->copies) {
    auto copy = sites_[s]->store().Get(item);
    if (!copy.ok()) continue;
    if (!found || copy->version > best.version) {
      best = *copy;
      found = true;
    }
  }
  if (!found) return Status::NotFound("no copies readable");
  return best;
}

Status RainbowSystem::CheckReplicaConsistency(
    bool require_full_convergence) const {
  for (const ItemSchema& item : catalog_.schema().items()) {
    std::map<Version, Value> by_version;
    Version max_version = 0;
    for (SiteId s : item.copies) {
      auto copy = sites_[s]->store().Get(item.id);
      if (!copy.ok()) {
        return Status::Internal("site " + std::to_string(s) +
                                " lost its copy of " + item.name);
      }
      auto [it, inserted] = by_version.emplace(copy->version, copy->value);
      if (!inserted && it->second != copy->value) {
        return Status::Internal(StringPrintf(
            "item %s: two copies at version %llu disagree (%lld vs %lld)",
            item.name.c_str(), static_cast<unsigned long long>(copy->version),
            static_cast<long long>(it->second),
            static_cast<long long>(copy->value)));
      }
      max_version = std::max(max_version, copy->version);
    }
    if (require_full_convergence && by_version.size() > 1) {
      return Status::Internal(StringPrintf(
          "item %s: copies did not converge (%zu distinct versions)",
          item.name.c_str(), by_version.size()));
    }
  }
  return Status::OK();
}

CheckReport RainbowSystem::VerifyHistory() const {
  HistoryChecker checker(config_);
  return checker.Check(collector());
}

}  // namespace rainbow
