#ifndef RAINBOW_CORE_SYSTEM_H_
#define RAINBOW_CORE_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/config.h"
#include "nameserver/name_server.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "site/site.h"
#include "stats/progress_monitor.h"
#include "verify/checker.h"
#include "verify/history.h"

namespace rainbow {

/// One fully assembled Rainbow instance: the simulated network, the name
/// server, the sites with their item copies, and the measurement
/// apparatus. This is the programmatic equivalent of completing every
/// GUI configuration panel and pressing "start".
class RainbowSystem {
 public:
  /// Validates the configuration and builds the instance.
  static Result<std::unique_ptr<RainbowSystem>> Create(SystemConfig config);

  RainbowSystem(const RainbowSystem&) = delete;
  RainbowSystem& operator=(const RainbowSystem&) = delete;

  // --- components ---
  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  NameServer& name_server() { return *name_server_; }
  Site* site(SiteId id) { return sites_.at(id).get(); }
  size_t num_sites() const { return sites_.size(); }
  ProgressMonitor& monitor() { return monitor_; }
  TraceLog& trace() { return trace_; }
  TraceCollector& collector() { return collector_; }
  const TraceCollector& collector() const { return collector_; }
  HistoryRecorder& history() { return history_; }
  const Catalog& catalog() const { return catalog_; }
  const SystemConfig& config() const { return config_; }
  Rng& client_rng() { return client_rng_; }

  // --- convenience ---
  Result<ItemId> ItemByName(const std::string& name) const {
    return catalog_.schema().IdOf(name);
  }

  /// Submits a transaction at `home`. `inherit_ts` restarts an aborted
  /// transaction under its original timestamp (see Site::Submit).
  Status Submit(SiteId home, TxnProgram program, TxnCallback cb,
                std::optional<TxnTimestamp> inherit_ts = std::nullopt);

  /// Runs the simulation for `duration` of virtual time.
  void RunFor(SimTime duration) { sim_.RunUntil(sim_.Now() + duration); }

  /// Runs until no events remain (capped). Returns events executed.
  size_t RunToQuiescence(size_t max_events = 50'000'000) {
    return sim_.RunToQuiescence(max_events);
  }

  // --- fault shortcuts (the injector uses these too) ---
  void CrashSite(SiteId s);
  void RecoverSite(SiteId s);

  // --- whole-database inspection (test/verification helpers) ---

  /// The latest committed value of `item`: the copy with the highest
  /// version across all sites.
  Result<ItemCopy> LatestCommitted(ItemId item) const;

  /// Checks replica consistency appropriate to the configured RCP:
  /// copies never disagree at the same version, and (for ROWA with no
  /// permanent failures) all copies converged to the same version.
  Status CheckReplicaConsistency(bool require_full_convergence) const;

  /// Runs the offline protocol-invariant checker (verify/checker.h)
  /// over this instance's structured trace: serializability, 2PC
  /// atomicity, replication invariants, 2PL lock discipline. Requires
  /// tracing (config.trace_enabled) to have been on during the run.
  CheckReport VerifyHistory() const;

 private:
  explicit RainbowSystem(SystemConfig config);
  Status Init();

  SystemConfig config_;
  Simulator sim_;
  TraceLog trace_;
  TraceCollector collector_;
  Rng client_rng_;
  ProgressMonitor monitor_;
  HistoryRecorder history_;
  Catalog catalog_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<NameServer> name_server_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace rainbow

#endif  // RAINBOW_CORE_SYSTEM_H_
