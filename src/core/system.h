#ifndef RAINBOW_CORE_SYSTEM_H_
#define RAINBOW_CORE_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/config.h"
#include "nameserver/name_server.h"
#include "net/network.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "site/site.h"
#include "stats/progress_monitor.h"
#include "verify/checker.h"
#include "verify/history.h"

namespace rainbow {

/// One fully assembled Rainbow instance: the simulated network, the name
/// server, the sites with their item copies, and the measurement
/// apparatus. This is the programmatic equivalent of completing every
/// GUI configuration panel and pressing "start".
///
/// With config.sim_shards > 1 the instance runs on the sharded kernel:
/// sites are partitioned over N shard simulators driven by worker
/// threads that synchronize at conservative virtual-time barriers (see
/// sim/sharded_simulator.h). Each shard gets its own trace log,
/// collector, monitor and history recorder so site callbacks never
/// contend; the accessors below transparently return canonical merged
/// views, which are byte-identical across shard counts for the same
/// seed.
class RainbowSystem {
 public:
  /// Validates the configuration and builds the instance.
  static Result<std::unique_ptr<RainbowSystem>> Create(SystemConfig config);

  RainbowSystem(const RainbowSystem&) = delete;
  RainbowSystem& operator=(const RainbowSystem&) = delete;

  // --- components ---

  /// The control-lane simulator. Scheduling here is always safe from the
  /// driving thread: in sharded mode control events run at barriers with
  /// every worker parked; in single-shard mode this is the one kernel.
  Simulator& sim() { return sharded_ ? sharded_->control() : sim_; }
  Network& net() { return *net_; }
  NameServer& name_server() { return *name_server_; }
  Site* site(SiteId id) { return sites_.at(id).get(); }
  size_t num_sites() const { return sites_.size(); }
  const Catalog& catalog() const { return catalog_; }
  const SystemConfig& config() const { return config_; }
  Rng& client_rng() { return client_rng_; }

  /// The sharded driver, or nullptr when running single-shard.
  ShardedSimulator* sharded() { return sharded_.get(); }

  /// The simulator that owns `site`'s callbacks. Work targeting a site
  /// (submissions, per-site client timers) must be scheduled here so it
  /// runs on the owning shard.
  Simulator& SimForSite(SiteId site) {
    if (!sharded_) return sim_;
    return sharded_->shard(
        ShardedSimulator::ShardOfSite(site, config_.sim_shards));
  }

  /// True when no work is pending anywhere (all shards, the control
  /// lane, and cross-shard mailboxes).
  bool Idle() const { return sharded_ ? sharded_->idle() : sim_.idle(); }

  // --- measurement views ---
  //
  // In sharded mode these return canonical merged snapshots (rebuilt on
  // access); use the control_*() accessors for intake from control-lane
  // code such as the fault injector.

  ProgressMonitor& monitor() {
    if (!sharded_) return monitor_;
    RefreshMerged();
    return merged_.monitor;
  }
  TraceLog& trace() {
    if (!sharded_) return trace_;
    RefreshMerged();
    return merged_.trace;
  }
  TraceCollector& collector() {
    if (!sharded_) return collector_;
    RefreshMerged();
    return merged_.collector;
  }
  const TraceCollector& collector() const {
    if (!sharded_) return collector_;
    RefreshMerged();
    return merged_.collector;
  }
  HistoryRecorder& history() {
    if (!sharded_) return history_;
    RefreshMerged();
    return merged_.history;
  }

  /// Control-lane intake instruments (always safe to write from the
  /// driving thread; identical to the merged views when single-shard).
  TraceLog& control_trace() { return trace_; }
  ProgressMonitor& control_monitor() { return monitor_; }

  /// Fans the session-log flag out to every shard's monitor.
  void set_keep_outcomes(bool keep);

  // --- convenience ---
  Result<ItemId> ItemByName(const std::string& name) const {
    return catalog_.schema().IdOf(name);
  }

  /// Submits a transaction at `home`. `inherit_ts` restarts an aborted
  /// transaction under its original timestamp (see Site::Submit).
  /// In sharded mode, call only from the driving thread between runs or
  /// from a callback already running on `home`'s shard.
  Status Submit(SiteId home, TxnProgram program, TxnCallback cb,
                std::optional<TxnTimestamp> inherit_ts = std::nullopt);

  /// Runs the simulation for `duration` of virtual time.
  void RunFor(SimTime duration);

  /// Runs until no events remain (capped). Returns events executed.
  size_t RunToQuiescence(size_t max_events = 50'000'000);

  // --- fault shortcuts (the injector uses these too) ---
  void CrashSite(SiteId s);
  void RecoverSite(SiteId s);

  // --- whole-database inspection (test/verification helpers) ---

  /// The latest committed value of `item`: the copy with the highest
  /// version across all sites.
  Result<ItemCopy> LatestCommitted(ItemId item) const;

  /// Checks replica consistency appropriate to the configured RCP:
  /// copies never disagree at the same version, and (for ROWA with no
  /// permanent failures) all copies converged to the same version.
  Status CheckReplicaConsistency(bool require_full_convergence) const;

  /// Runs the offline protocol-invariant checker (verify/checker.h)
  /// over this instance's structured trace: serializability, 2PC
  /// atomicity, replication invariants, 2PL lock discipline. Requires
  /// tracing (config.trace_enabled) to have been on during the run.
  CheckReport VerifyHistory() const;

 private:
  /// Per-shard measurement instruments. Each shard's sites write only to
  /// their own set, so shard workers never share mutable state here.
  struct ShardInstruments {
    TraceLog trace;
    TraceCollector collector;
    ProgressMonitor monitor;
    HistoryRecorder history;
  };

  explicit RainbowSystem(SystemConfig config);
  Status Init();
  void RefreshMerged() const;

  SystemConfig config_;
  Simulator sim_;
  TraceLog trace_;
  TraceCollector collector_;
  Rng client_rng_;
  ProgressMonitor monitor_;
  HistoryRecorder history_;
  Catalog catalog_;
  std::unique_ptr<ShardedSimulator> sharded_;
  std::vector<std::unique_ptr<ShardInstruments>> shard_inst_;
  bool keep_outcomes_ = false;
  /// Merged snapshots for the sharded accessors, rebuilt lazily.
  mutable ShardInstruments merged_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<NameServer> name_server_;
  std::vector<std::unique_ptr<Site>> sites_;
};

}  // namespace rainbow

#endif  // RAINBOW_CORE_SYSTEM_H_
