#include "fault/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/system.h"
#include "storage/buffer_pool.h"

namespace rainbow {

const char* FaultKindName(FaultEvent::Kind k) {
  switch (k) {
    case FaultEvent::Kind::kCrashSite: return "crash";
    case FaultEvent::Kind::kRecoverSite: return "recover";
    case FaultEvent::Kind::kLinkDown: return "linkdown";
    case FaultEvent::Kind::kLinkUp: return "linkup";
    case FaultEvent::Kind::kLinkDownOneWay: return "linkdown1";
    case FaultEvent::Kind::kLinkUpOneWay: return "linkup1";
    case FaultEvent::Kind::kPartition: return "partition";
    case FaultEvent::Kind::kHeal: return "heal";
    case FaultEvent::Kind::kCrashNameServer: return "crashns";
    case FaultEvent::Kind::kRecoverNameServer: return "recoverns";
    case FaultEvent::Kind::kLinkLoss: return "loss";
    case FaultEvent::Kind::kLinkDelay: return "delay";
    case FaultEvent::Kind::kLinkDup: return "dup";
    case FaultEvent::Kind::kLinkReorder: return "reorder";
    case FaultEvent::Kind::kClearLinkFaults: return "clearlinks";
    case FaultEvent::Kind::kStorageTorn: return "tornwrite";
    case FaultEvent::Kind::kStorageShort: return "shortwrite";
    case FaultEvent::Kind::kStorageLost: return "lostwrite";
    case FaultEvent::Kind::kStorageReadFlip: return "readflip";
    case FaultEvent::Kind::kCount: break;
  }
  return "?";
}

namespace {

/// Human-readable intensity for trace lines ("0.25", "3", "1500").
std::string AmountString(double amount) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", amount);
  return buf;
}

}  // namespace

FaultInjector::FaultInjector(RainbowSystem* system) : system_(system) {}

void FaultInjector::Schedule(const FaultEvent& event) {
  FaultEvent copy = event;
  system_->sim().At(event.at, [this, copy] { Apply(copy); });
}

void FaultInjector::ScheduleAll(const std::vector<FaultEvent>& events) {
  for (const FaultEvent& e : events) Schedule(e);
}

bool FaultInjector::SiteUp(SiteId s) const {
  return system_->net().IsSiteUp(s);
}

void FaultInjector::Apply(const FaultEvent& e) {
  // Intake on the control lane: Apply runs as a control-lane event (all
  // shard workers parked at the barrier in sharded mode).
  TraceLog& trace = system_->control_trace();
  Network& net = system_->net();
  const SimTime now = system_->sim().Now();
  switch (e.kind) {
    case FaultEvent::Kind::kCrashSite:
      // Idempotent: a site that is already down (scripted event racing
      // the random process, or a shrunk schedule replay) stays down and
      // the no-op is not counted.
      if (!SiteUp(e.site)) return;
      ++crashes_;
      trace.Record(now, TraceCategory::kFault, e.site, "inject crash");
      system_->CrashSite(e.site);
      break;
    case FaultEvent::Kind::kRecoverSite:
      if (SiteUp(e.site)) return;
      ++recoveries_;
      trace.Record(now, TraceCategory::kFault, e.site, "inject recovery");
      system_->RecoverSite(e.site);
      break;
    case FaultEvent::Kind::kLinkDown:
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link down to " + std::to_string(e.peer));
      net.SetLinkUp(e.site, e.peer, false);
      break;
    case FaultEvent::Kind::kLinkUp:
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link up to " + std::to_string(e.peer));
      net.SetLinkUp(e.site, e.peer, true);
      break;
    case FaultEvent::Kind::kLinkDownOneWay:
      trace.Record(now, TraceCategory::kFault, e.site,
                   "one-way link down to " + std::to_string(e.peer));
      net.SetLinkUpOneWay(e.site, e.peer, false);
      break;
    case FaultEvent::Kind::kLinkUpOneWay:
      trace.Record(now, TraceCategory::kFault, e.site,
                   "one-way link up to " + std::to_string(e.peer));
      net.SetLinkUpOneWay(e.site, e.peer, true);
      break;
    case FaultEvent::Kind::kPartition:
      trace.Record(now, TraceCategory::kFault, kInvalidSite,
                   "partition installed");
      net.SetPartitions(e.groups);
      break;
    case FaultEvent::Kind::kHeal:
      trace.Record(now, TraceCategory::kFault, kInvalidSite,
                   "partition healed");
      net.HealPartitions();
      break;
    case FaultEvent::Kind::kCrashNameServer:
      if (system_->name_server().crashed()) return;
      trace.Record(now, TraceCategory::kFault, kNameServerId,
                   "name server crash");
      system_->name_server().Crash();
      break;
    case FaultEvent::Kind::kRecoverNameServer:
      if (!system_->name_server().crashed()) return;
      trace.Record(now, TraceCategory::kFault, kNameServerId,
                   "name server recovery");
      system_->name_server().Recover();
      break;
    case FaultEvent::Kind::kLinkLoss: {
      LinkOverride o;
      if (const LinkOverride* cur = net.FindLinkOverride(e.site, e.peer)) {
        o = *cur;
      }
      o.loss = e.amount;
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link loss " + AmountString(e.amount) + " to " +
                       std::to_string(e.peer));
      net.SetLinkOverride(e.site, e.peer, o);
      break;
    }
    case FaultEvent::Kind::kLinkDelay: {
      LinkOverride o;
      if (const LinkOverride* cur = net.FindLinkOverride(e.site, e.peer)) {
        o = *cur;
      }
      o.delay_multiplier = e.amount;
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link delay x" + AmountString(e.amount) + " to " +
                       std::to_string(e.peer));
      net.SetLinkOverride(e.site, e.peer, o);
      break;
    }
    case FaultEvent::Kind::kLinkDup: {
      LinkOverride o;
      if (const LinkOverride* cur = net.FindLinkOverride(e.site, e.peer)) {
        o = *cur;
      }
      o.dup_probability = e.amount;
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link dup " + AmountString(e.amount) + " to " +
                       std::to_string(e.peer));
      net.SetLinkOverride(e.site, e.peer, o);
      break;
    }
    case FaultEvent::Kind::kLinkReorder: {
      LinkOverride o;
      if (const LinkOverride* cur = net.FindLinkOverride(e.site, e.peer)) {
        o = *cur;
      }
      o.reorder_jitter = static_cast<SimTime>(e.amount);
      trace.Record(now, TraceCategory::kFault, e.site,
                   "link reorder jitter " + AmountString(e.amount) + "us to " +
                       std::to_string(e.peer));
      net.SetLinkOverride(e.site, e.peer, o);
      break;
    }
    case FaultEvent::Kind::kClearLinkFaults:
      trace.Record(now, TraceCategory::kFault, kInvalidSite,
                   "link overrides cleared");
      net.ClearLinkOverrides();
      break;
    case FaultEvent::Kind::kStorageTorn:
    case FaultEvent::Kind::kStorageShort:
    case FaultEvent::Kind::kStorageLost:
    case FaultEvent::Kind::kStorageReadFlip: {
      StorageFaultKind kind = StorageFaultKind::kTornWrite;
      if (e.kind == FaultEvent::Kind::kStorageShort) {
        kind = StorageFaultKind::kShortWrite;
      } else if (e.kind == FaultEvent::Kind::kStorageLost) {
        kind = StorageFaultKind::kLostWrite;
      } else if (e.kind == FaultEvent::Kind::kStorageReadFlip) {
        kind = StorageFaultKind::kReadBitFlip;
      }
      trace.Record(now, TraceCategory::kFault, e.site,
                   std::string("storage ") + StorageFaultKindName(kind) +
                       " p=" + AmountString(e.amount));
      // Arms the DISK, which (like the WAL) survives Site::Crash(), so
      // a crashed site's storage faults persist into its restart.
      system_->site(e.site)->mutable_store().SetStorageFault(kind, e.amount);
      break;
    }
    case FaultEvent::Kind::kCount:
      return;
  }
  system_->control_monitor().OnFaultInjected(e.kind);
}

void FaultInjector::EnableRandomFaults(SimTime mttf, SimTime mttr,
                                       SimTime until, uint64_t seed) {
  rng_ = Rng(seed);
  mttf_ = mttf;
  mttr_ = mttr;
  random_until_ = until;
  for (SiteId s = 0; s < static_cast<SiteId>(system_->num_sites()); ++s) {
    ScheduleNextForSite(s, /*currently_up=*/true);
  }
  // Whatever the interleaving of random and scripted faults, every site
  // is brought back at the end of the window so the run can drain.
  system_->sim().At(until, [this] {
    for (SiteId s = 0; s < static_cast<SiteId>(system_->num_sites()); ++s) {
      if (!SiteUp(s)) Apply(FaultEvent::Recover(random_until_, s));
    }
  });
}

void FaultInjector::ScheduleNextForSite(SiteId s, bool currently_up) {
  SimTime delay = static_cast<SimTime>(rng_.NextExponential(
      static_cast<double>(currently_up ? mttf_ : mttr_)));
  SimTime when = system_->sim().Now() + std::max<SimTime>(delay, Micros(1));
  if (when >= random_until_) return;  // final recovery sweep handles cleanup
  system_->sim().At(when, [this, s, currently_up] {
    // Re-check the actual state at fire time: a scripted event may have
    // crashed or recovered the site since this transition was drawn.
    // Apply is idempotent, so the stale transition is simply a no-op,
    // and the next draw is based on the observed state.
    if (currently_up) {
      Apply(FaultEvent::Crash(system_->sim().Now(), s));
    } else {
      Apply(FaultEvent::Recover(system_->sim().Now(), s));
    }
    ScheduleNextForSite(s, SiteUp(s));
  });
}

}  // namespace rainbow
