#include "fault/fault_injector.h"

#include "core/system.h"

namespace rainbow {

FaultInjector::FaultInjector(RainbowSystem* system) : system_(system) {}

void FaultInjector::Schedule(const FaultEvent& event) {
  FaultEvent copy = event;
  system_->sim().At(event.at, [this, copy] { Apply(copy); });
}

void FaultInjector::ScheduleAll(const std::vector<FaultEvent>& events) {
  for (const FaultEvent& e : events) Schedule(e);
}

void FaultInjector::Apply(const FaultEvent& e) {
  TraceLog& trace = system_->trace();
  switch (e.kind) {
    case FaultEvent::Kind::kCrashSite:
      ++crashes_;
      trace.Record(system_->sim().Now(), TraceCategory::kFault, e.site,
                   "inject crash");
      system_->CrashSite(e.site);
      break;
    case FaultEvent::Kind::kRecoverSite:
      ++recoveries_;
      trace.Record(system_->sim().Now(), TraceCategory::kFault, e.site,
                   "inject recovery");
      system_->RecoverSite(e.site);
      break;
    case FaultEvent::Kind::kLinkDown:
      trace.Record(system_->sim().Now(), TraceCategory::kFault, e.site,
                   "link down to " + std::to_string(e.peer));
      system_->net().SetLinkUp(e.site, e.peer, false);
      break;
    case FaultEvent::Kind::kLinkUp:
      trace.Record(system_->sim().Now(), TraceCategory::kFault, e.site,
                   "link up to " + std::to_string(e.peer));
      system_->net().SetLinkUp(e.site, e.peer, true);
      break;
    case FaultEvent::Kind::kPartition:
      trace.Record(system_->sim().Now(), TraceCategory::kFault, kInvalidSite,
                   "partition installed");
      system_->net().SetPartitions(e.groups);
      break;
    case FaultEvent::Kind::kHeal:
      trace.Record(system_->sim().Now(), TraceCategory::kFault, kInvalidSite,
                   "partition healed");
      system_->net().HealPartitions();
      break;
    case FaultEvent::Kind::kCrashNameServer:
      system_->name_server().Crash();
      break;
    case FaultEvent::Kind::kRecoverNameServer:
      system_->name_server().Recover();
      break;
  }
}

void FaultInjector::EnableRandomFaults(SimTime mttf, SimTime mttr,
                                       SimTime until, uint64_t seed) {
  rng_ = Rng(seed);
  mttf_ = mttf;
  mttr_ = mttr;
  random_until_ = until;
  for (SiteId s = 0; s < system_->num_sites(); ++s) {
    ScheduleNextForSite(s, /*currently_up=*/true);
  }
}

void FaultInjector::ScheduleNextForSite(SiteId s, bool currently_up) {
  SimTime delay = static_cast<SimTime>(rng_.NextExponential(
      static_cast<double>(currently_up ? mttf_ : mttr_)));
  SimTime when = system_->sim().Now() + std::max<SimTime>(delay, Micros(1));
  if (when >= random_until_) {
    // Past the fault window: if the site is down, bring it back once so
    // the run can drain.
    if (!currently_up) {
      system_->sim().At(random_until_, [this, s] {
        ++recoveries_;
        system_->RecoverSite(s);
      });
    }
    return;
  }
  system_->sim().At(when, [this, s, currently_up] {
    if (currently_up) {
      ++crashes_;
      system_->trace().Record(system_->sim().Now(), TraceCategory::kFault, s,
                              "random crash");
      system_->CrashSite(s);
    } else {
      ++recoveries_;
      system_->trace().Record(system_->sim().Now(), TraceCategory::kFault, s,
                              "random recovery");
      system_->RecoverSite(s);
    }
    ScheduleNextForSite(s, !currently_up);
  });
}

}  // namespace rainbow
