#ifndef RAINBOW_FAULT_FAULT_INJECTOR_H_
#define RAINBOW_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace rainbow {

class RainbowSystem;

/// One scripted fault/recovery action at a virtual time. The Rainbow GUI
/// lets the user "inject network and site failures and recoveries"; this
/// is the scripted equivalent. The vocabulary covers site crashes,
/// bidirectional and asymmetric link failures, partitions, and the
/// per-link overrides (loss, delay spikes, duplication, reordering) the
/// nemesis fuzzer composes into adversarial schedules.
struct FaultEvent {
  enum class Kind {
    kCrashSite,
    kRecoverSite,
    kLinkDown,         ///< bidirectional: site <-> peer
    kLinkUp,
    kLinkDownOneWay,   ///< only site -> peer severed
    kLinkUpOneWay,
    kPartition,
    kHeal,
    kCrashNameServer,
    kRecoverNameServer,
    kLinkLoss,         ///< per-link loss probability (amount in [0,1])
    kLinkDelay,        ///< per-link delay-spike multiplier (amount >= 0)
    kLinkDup,          ///< per-link duplication probability (amount in [0,1])
    kLinkReorder,      ///< per-link reorder jitter (amount = window in µs)
    kClearLinkFaults,  ///< drop every per-link override
    kStorageTorn,      ///< per-write torn-write probability (amount in [0,1])
    kStorageShort,     ///< per-write short-write probability
    kStorageLost,      ///< per-write lost-write ("fsync lie") probability
    kStorageReadFlip,  ///< per-read stored-bit-flip probability
    kCount,            ///< number of kinds; not a real event
  };
  SimTime at = 0;
  Kind kind = Kind::kCrashSite;
  SiteId site = kInvalidSite;  ///< crash/recover; link source
  SiteId peer = kInvalidSite;  ///< link destination
  /// Override intensity: probability for kLinkLoss/kLinkDup, multiplier
  /// for kLinkDelay, jitter window in µs for kLinkReorder. The nemesis
  /// shrinker halves this toward the identity when minimizing a repro.
  double amount = 0.0;
  std::vector<std::vector<SiteId>> groups;  ///< partition

  bool operator==(const FaultEvent&) const = default;

  static FaultEvent Crash(SimTime at, SiteId s) {
    return FaultEvent{at, Kind::kCrashSite, s, kInvalidSite, 0.0, {}};
  }
  static FaultEvent Recover(SimTime at, SiteId s) {
    return FaultEvent{at, Kind::kRecoverSite, s, kInvalidSite, 0.0, {}};
  }
  static FaultEvent LinkDown(SimTime at, SiteId a, SiteId b) {
    return FaultEvent{at, Kind::kLinkDown, a, b, 0.0, {}};
  }
  static FaultEvent LinkUp(SimTime at, SiteId a, SiteId b) {
    return FaultEvent{at, Kind::kLinkUp, a, b, 0.0, {}};
  }
  static FaultEvent LinkDownOneWay(SimTime at, SiteId from, SiteId to) {
    return FaultEvent{at, Kind::kLinkDownOneWay, from, to, 0.0, {}};
  }
  static FaultEvent LinkUpOneWay(SimTime at, SiteId from, SiteId to) {
    return FaultEvent{at, Kind::kLinkUpOneWay, from, to, 0.0, {}};
  }
  static FaultEvent Partition(SimTime at,
                              std::vector<std::vector<SiteId>> groups) {
    return FaultEvent{at,  Kind::kPartition, kInvalidSite, kInvalidSite,
                      0.0, std::move(groups)};
  }
  static FaultEvent Heal(SimTime at) {
    return FaultEvent{at, Kind::kHeal, kInvalidSite, kInvalidSite, 0.0, {}};
  }
  static FaultEvent LinkLoss(SimTime at, SiteId from, SiteId to, double p) {
    return FaultEvent{at, Kind::kLinkLoss, from, to, p, {}};
  }
  static FaultEvent LinkDelay(SimTime at, SiteId from, SiteId to,
                              double multiplier) {
    return FaultEvent{at, Kind::kLinkDelay, from, to, multiplier, {}};
  }
  static FaultEvent LinkDup(SimTime at, SiteId from, SiteId to, double p) {
    return FaultEvent{at, Kind::kLinkDup, from, to, p, {}};
  }
  static FaultEvent LinkReorder(SimTime at, SiteId from, SiteId to,
                                double jitter_us) {
    return FaultEvent{at, Kind::kLinkReorder, from, to, jitter_us, {}};
  }
  static FaultEvent ClearLinkFaults(SimTime at) {
    return FaultEvent{at,  Kind::kClearLinkFaults, kInvalidSite, kInvalidSite,
                      0.0, {}};
  }
  static FaultEvent StorageTorn(SimTime at, SiteId s, double p) {
    return FaultEvent{at, Kind::kStorageTorn, s, kInvalidSite, p, {}};
  }
  static FaultEvent StorageShort(SimTime at, SiteId s, double p) {
    return FaultEvent{at, Kind::kStorageShort, s, kInvalidSite, p, {}};
  }
  static FaultEvent StorageLost(SimTime at, SiteId s, double p) {
    return FaultEvent{at, Kind::kStorageLost, s, kInvalidSite, p, {}};
  }
  static FaultEvent StorageReadFlip(SimTime at, SiteId s, double p) {
    return FaultEvent{at, Kind::kStorageReadFlip, s, kInvalidSite, p, {}};
  }
};

/// Stable lower-case name of a fault kind — doubles as the keyword of
/// the declarative fault-script grammar (fault/fault_script.h).
const char* FaultKindName(FaultEvent::Kind k);

inline constexpr size_t kNumFaultKinds =
    static_cast<size_t>(FaultEvent::Kind::kCount);

/// Schedules scripted fault events and (optionally) a random
/// crash/recover process per site, driven by exponential MTTF/MTTR.
///
/// Apply is idempotent with respect to site state: crashing a site that
/// is already down (or recovering one that is up) is a no-op and is not
/// counted — scripted and random fault streams can overlap without
/// double-crashing a site or desynchronizing the random process.
class FaultInjector {
 public:
  explicit FaultInjector(RainbowSystem* system);

  /// Schedules one scripted event.
  void Schedule(const FaultEvent& event);
  void ScheduleAll(const std::vector<FaultEvent>& events);

  /// Applies an event immediately (the interactive session's crash /
  /// linkdown / ... verbs act at the current virtual time).
  void ApplyNow(const FaultEvent& event) { Apply(event); }

  /// Starts a random fault process: each site independently crashes
  /// after Exp(mttf) up time and recovers after Exp(mttr) down time,
  /// until virtual time `until`. Uses its own RNG stream (seeded).
  /// At `until` every still-down site is recovered, whatever the
  /// interleaving with scripted events, so the run can drain.
  void EnableRandomFaults(SimTime mttf, SimTime mttr, SimTime until,
                          uint64_t seed);

  uint64_t crashes_injected() const { return crashes_; }
  uint64_t recoveries_injected() const { return recoveries_; }

 private:
  void Apply(const FaultEvent& event);
  void ScheduleNextForSite(SiteId s, bool currently_up);
  bool SiteUp(SiteId s) const;

  RainbowSystem* system_;
  Rng rng_{0};
  SimTime random_until_ = 0;
  SimTime mttf_ = 0;
  SimTime mttr_ = 0;
  uint64_t crashes_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_FAULT_FAULT_INJECTOR_H_
