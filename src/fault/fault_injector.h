#ifndef RAINBOW_FAULT_FAULT_INJECTOR_H_
#define RAINBOW_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace rainbow {

class RainbowSystem;

/// One scripted fault/recovery action at a virtual time. The Rainbow GUI
/// lets the user "inject network and site failures and recoveries"; this
/// is the scripted equivalent.
struct FaultEvent {
  enum class Kind {
    kCrashSite,
    kRecoverSite,
    kLinkDown,
    kLinkUp,
    kPartition,
    kHeal,
    kCrashNameServer,
    kRecoverNameServer,
  };
  SimTime at = 0;
  Kind kind = Kind::kCrashSite;
  SiteId site = kInvalidSite;  ///< crash/recover
  SiteId peer = kInvalidSite;  ///< link events
  std::vector<std::vector<SiteId>> groups;  ///< partition

  static FaultEvent Crash(SimTime at, SiteId s) {
    return FaultEvent{at, Kind::kCrashSite, s, kInvalidSite, {}};
  }
  static FaultEvent Recover(SimTime at, SiteId s) {
    return FaultEvent{at, Kind::kRecoverSite, s, kInvalidSite, {}};
  }
  static FaultEvent LinkDown(SimTime at, SiteId a, SiteId b) {
    return FaultEvent{at, Kind::kLinkDown, a, b, {}};
  }
  static FaultEvent LinkUp(SimTime at, SiteId a, SiteId b) {
    return FaultEvent{at, Kind::kLinkUp, a, b, {}};
  }
  static FaultEvent Partition(SimTime at,
                              std::vector<std::vector<SiteId>> groups) {
    return FaultEvent{at, Kind::kPartition, kInvalidSite, kInvalidSite,
                      std::move(groups)};
  }
  static FaultEvent Heal(SimTime at) {
    return FaultEvent{at, Kind::kHeal, kInvalidSite, kInvalidSite, {}};
  }
};

/// Schedules scripted fault events and (optionally) a random
/// crash/recover process per site, driven by exponential MTTF/MTTR.
class FaultInjector {
 public:
  explicit FaultInjector(RainbowSystem* system);

  /// Schedules one scripted event.
  void Schedule(const FaultEvent& event);
  void ScheduleAll(const std::vector<FaultEvent>& events);

  /// Starts a random fault process: each site independently crashes
  /// after Exp(mttf) up time and recovers after Exp(mttr) down time,
  /// until virtual time `until`. Uses its own RNG stream (seeded).
  void EnableRandomFaults(SimTime mttf, SimTime mttr, SimTime until,
                          uint64_t seed);

  uint64_t crashes_injected() const { return crashes_; }
  uint64_t recoveries_injected() const { return recoveries_; }

 private:
  void Apply(const FaultEvent& event);
  void ScheduleNextForSite(SiteId s, bool currently_up);

  RainbowSystem* system_;
  Rng rng_{0};
  SimTime random_until_ = 0;
  SimTime mttf_ = 0;
  SimTime mttr_ = 0;
  uint64_t crashes_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_FAULT_FAULT_INJECTOR_H_
