#include "fault/fault_script.h"

#include <cstdio>
#include <sstream>
#include <string_view>

#include "common/string_util.h"

namespace rainbow {

namespace {

/// Whitespace-splits `s` into tokens.
std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  std::istringstream is{std::string(s)};
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

Result<SiteId> ParseSite(std::string_view tok) {
  Result<int64_t> v = ParseInt(tok);
  if (!v.ok()) return v.status();
  if (*v < 0 || *v >= static_cast<int64_t>(kNameServerId)) {
    return Status::InvalidArgument("site id out of range: " +
                                   std::string(tok));
  }
  return static_cast<SiteId>(*v);
}

Result<double> ParseAmount(std::string_view tok, double lo, double hi) {
  Result<double> v = ParseDouble(tok);
  if (!v.ok()) return v.status();
  if (*v < lo || *v > hi) {
    return Status::InvalidArgument("amount out of range: " +
                                   std::string(tok));
  }
  return v;
}

std::string AmountText(double amount) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", amount);
  return buf;
}

/// Expected argument count per verb (kPartition is variadic).
Result<FaultEvent> ParseVerb(const std::vector<std::string>& tok,
                             std::string_view rest_of_line, SimTime at) {
  const std::string& verb = tok[0];
  const size_t nargs = tok.size() - 1;
  auto need = [&](size_t n) -> Status {
    if (nargs == n) return Status::OK();
    return Status::InvalidArgument("'" + verb + "' takes " +
                                   std::to_string(n) + " argument(s), got " +
                                   std::to_string(nargs));
  };
  auto site_pair = [&](SiteId* a, SiteId* b) -> Status {
    Result<SiteId> ra = ParseSite(tok[1]);
    if (!ra.ok()) return ra.status();
    Result<SiteId> rb = ParseSite(tok[2]);
    if (!rb.ok()) return rb.status();
    *a = *ra;
    *b = *rb;
    return Status::OK();
  };

  if (verb == "crash" || verb == "recover") {
    if (Status s = need(1); !s.ok()) return s;
    Result<SiteId> site = ParseSite(tok[1]);
    if (!site.ok()) return site.status();
    return verb == "crash" ? FaultEvent::Crash(at, *site)
                           : FaultEvent::Recover(at, *site);
  }
  if (verb == "crashns") {
    if (Status s = need(0); !s.ok()) return s;
    return FaultEvent{at, FaultEvent::Kind::kCrashNameServer, kInvalidSite,
                      kInvalidSite, 0.0, {}};
  }
  if (verb == "recoverns") {
    if (Status s = need(0); !s.ok()) return s;
    return FaultEvent{at, FaultEvent::Kind::kRecoverNameServer, kInvalidSite,
                      kInvalidSite, 0.0, {}};
  }
  if (verb == "linkdown" || verb == "linkup" || verb == "linkdown1" ||
      verb == "linkup1") {
    if (Status s = need(2); !s.ok()) return s;
    SiteId a = 0, b = 0;
    if (Status s = site_pair(&a, &b); !s.ok()) return s;
    if (verb == "linkdown") return FaultEvent::LinkDown(at, a, b);
    if (verb == "linkup") return FaultEvent::LinkUp(at, a, b);
    if (verb == "linkdown1") return FaultEvent::LinkDownOneWay(at, a, b);
    return FaultEvent::LinkUpOneWay(at, a, b);
  }
  if (verb == "loss" || verb == "delay" || verb == "dup" ||
      verb == "reorder") {
    if (Status s = need(3); !s.ok()) return s;
    SiteId a = 0, b = 0;
    if (Status s = site_pair(&a, &b); !s.ok()) return s;
    const bool probability = verb == "loss" || verb == "dup";
    Result<double> amt =
        ParseAmount(tok[3], 0.0, probability ? 1.0 : 1e12);
    if (!amt.ok()) return amt.status();
    if (verb == "loss") return FaultEvent::LinkLoss(at, a, b, *amt);
    if (verb == "delay") return FaultEvent::LinkDelay(at, a, b, *amt);
    if (verb == "dup") return FaultEvent::LinkDup(at, a, b, *amt);
    return FaultEvent::LinkReorder(at, a, b, *amt);
  }
  if (verb == "partition") {
    // Everything after the verb is '|'-separated groups of site ids.
    size_t pos = rest_of_line.find(verb);
    std::string_view groups_text = rest_of_line.substr(pos + verb.size());
    std::vector<std::vector<SiteId>> groups;
    for (const std::string& g : SplitAndTrim(groups_text, '|')) {
      std::vector<SiteId> group;
      for (const std::string& t : Tokenize(g)) {
        Result<SiteId> site = ParseSite(t);
        if (!site.ok()) return site.status();
        group.push_back(*site);
      }
      if (group.empty()) {
        return Status::InvalidArgument("partition has an empty group");
      }
      groups.push_back(std::move(group));
    }
    if (groups.size() < 2) {
      return Status::InvalidArgument(
          "partition needs at least two '|'-separated groups");
    }
    return FaultEvent::Partition(at, std::move(groups));
  }
  if (verb == "tornwrite" || verb == "shortwrite" || verb == "lostwrite" ||
      verb == "readflip") {
    if (Status s = need(2); !s.ok()) return s;
    Result<SiteId> site = ParseSite(tok[1]);
    if (!site.ok()) return site.status();
    Result<double> p = ParseAmount(tok[2], 0.0, 1.0);
    if (!p.ok()) return p.status();
    if (verb == "tornwrite") return FaultEvent::StorageTorn(at, *site, *p);
    if (verb == "shortwrite") return FaultEvent::StorageShort(at, *site, *p);
    if (verb == "lostwrite") return FaultEvent::StorageLost(at, *site, *p);
    return FaultEvent::StorageReadFlip(at, *site, *p);
  }
  if (verb == "heal") {
    if (Status s = need(0); !s.ok()) return s;
    return FaultEvent::Heal(at);
  }
  if (verb == "clearlinks") {
    if (Status s = need(0); !s.ok()) return s;
    return FaultEvent::ClearLinkFaults(at);
  }
  return Status::InvalidArgument("unknown fault verb '" + verb + "'");
}

}  // namespace

Result<FaultEvent> ParseFaultCommand(const std::string& command, SimTime at) {
  std::vector<std::string> tok = Tokenize(command);
  if (tok.empty()) return Status::InvalidArgument("empty fault command");
  return ParseVerb(tok, command, at);
}

Result<std::vector<FaultEvent>> ParseFaultScript(const std::string& text) {
  std::vector<FaultEvent> events;
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tok = Tokenize(line);
    Result<int64_t> at = ParseInt(tok[0]);
    if (!at.ok() || *at < 0) {
      return Status::InvalidArgument(
          "line " + std::to_string(lineno) +
          ": expected a virtual time in microseconds, got '" + tok[0] + "'");
    }
    tok.erase(tok.begin());
    if (tok.empty()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": missing fault verb");
    }
    Result<FaultEvent> e = ParseVerb(tok, line, static_cast<SimTime>(*at));
    if (!e.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     e.status().message());
    }
    events.push_back(std::move(*e));
  }
  return events;
}

std::string FormatFaultEvent(const FaultEvent& e) {
  std::ostringstream os;
  os << e.at << ' ' << FaultKindName(e.kind);
  switch (e.kind) {
    case FaultEvent::Kind::kCrashSite:
    case FaultEvent::Kind::kRecoverSite:
      os << ' ' << e.site;
      break;
    case FaultEvent::Kind::kLinkDown:
    case FaultEvent::Kind::kLinkUp:
    case FaultEvent::Kind::kLinkDownOneWay:
    case FaultEvent::Kind::kLinkUpOneWay:
      os << ' ' << e.site << ' ' << e.peer;
      break;
    case FaultEvent::Kind::kLinkLoss:
    case FaultEvent::Kind::kLinkDelay:
    case FaultEvent::Kind::kLinkDup:
    case FaultEvent::Kind::kLinkReorder:
      os << ' ' << e.site << ' ' << e.peer << ' ' << AmountText(e.amount);
      break;
    case FaultEvent::Kind::kStorageTorn:
    case FaultEvent::Kind::kStorageShort:
    case FaultEvent::Kind::kStorageLost:
    case FaultEvent::Kind::kStorageReadFlip:
      os << ' ' << e.site << ' ' << AmountText(e.amount);
      break;
    case FaultEvent::Kind::kPartition:
      os << ' ';
      for (size_t g = 0; g < e.groups.size(); ++g) {
        if (g) os << " | ";
        for (size_t i = 0; i < e.groups[g].size(); ++i) {
          if (i) os << ' ';
          os << e.groups[g][i];
        }
      }
      break;
    case FaultEvent::Kind::kHeal:
    case FaultEvent::Kind::kCrashNameServer:
    case FaultEvent::Kind::kRecoverNameServer:
    case FaultEvent::Kind::kClearLinkFaults:
    case FaultEvent::Kind::kCount:
      break;
  }
  return os.str();
}

std::string SaveFaultScript(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& e : events) {
    out += FormatFaultEvent(e);
    out += '\n';
  }
  return out;
}

}  // namespace rainbow
