#ifndef RAINBOW_FAULT_FAULT_SCRIPT_H_
#define RAINBOW_FAULT_FAULT_SCRIPT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "fault/fault_injector.h"

namespace rainbow {

/// Declarative fault scripts: a text format for fault schedules, used by
/// session configs (`fault_script` in SessionOptions), the interactive
/// shell's fault verbs, and the nemesis fuzzer's minimized repros.
///
/// Grammar — one event per line, `#` starts a comment, blank lines are
/// ignored. Every line begins with a virtual time in microseconds:
///
///   <time_us> crash <site>            crash a site
///   <time_us> recover <site>          recover a site
///   <time_us> crashns                 crash the name server
///   <time_us> recoverns               recover the name server
///   <time_us> linkdown <a> <b>        sever the link both ways
///   <time_us> linkup <a> <b>          restore the link both ways
///   <time_us> linkdown1 <from> <to>   sever only from -> to
///   <time_us> linkup1 <from> <to>     restore only from -> to
///   <time_us> loss <from> <to> <p>    per-message loss probability on
///                                     the directed link, p in [0,1]
///   <time_us> delay <from> <to> <m>   delay-spike multiplier m >= 0
///   <time_us> dup <from> <to> <p>     duplication probability in [0,1]
///   <time_us> reorder <from> <to> <j> extra uniform jitter in [0, j] µs
///   <time_us> partition <g> | <g> ... partition: groups of site ids
///                                     separated by '|'
///   <time_us> heal                    remove any partition
///   <time_us> clearlinks              drop every loss/delay/dup/reorder
///                                     override (links stay as set)
///
/// SaveFaultScript emits the canonical form (single spaces, times in
/// ascending file order as given, `%g`-formatted amounts); for any
/// canonical script s, SaveFaultScript(ParseFaultScript(s)) == s.
Result<std::vector<FaultEvent>> ParseFaultScript(const std::string& text);

/// Parses one `verb args...` command (no leading time) at time `at` —
/// the interactive shell's fault verbs share the script vocabulary.
Result<FaultEvent> ParseFaultCommand(const std::string& command, SimTime at);

/// Canonical one-line form of `e`, without trailing newline.
std::string FormatFaultEvent(const FaultEvent& e);

/// Canonical text of a whole schedule (one FormatFaultEvent line each).
std::string SaveFaultScript(const std::vector<FaultEvent>& events);

}  // namespace rainbow

#endif  // RAINBOW_FAULT_FAULT_SCRIPT_H_
