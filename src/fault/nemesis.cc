#include "fault/nemesis.h"

#include <algorithm>
#include <cassert>

#include "core/system.h"
#include "fault/fault_script.h"
#include "verify/checker.h"
#include "verify/history.h"
#include "workload/workload.h"

namespace rainbow {

namespace {

/// SplitMix64 finalizer: decorrelates per-round seeds drawn from a
/// small base seed.
uint64_t Mix(uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

NemesisProfile NemesisProfile::Calm() {
  NemesisProfile p;
  p.name = "calm";
  p.min_windows = 2;
  p.max_windows = 4;
  p.horizon = Seconds(2);
  p.window_min = Millis(50);
  p.window_max = Millis(300);
  p.crash_min = Millis(50);
  p.crash_max = Millis(200);
  p.crash_weight = 0.05;
  p.partition_weight = 0.05;
  p.link_weight = 0.3;
  p.override_weight = 0.6;
  p.max_loss = 0.1;
  p.max_dup = 0.1;
  p.max_delay_multiplier = 2.0;
  p.max_reorder_jitter = Millis(1);
  return p;
}

NemesisProfile NemesisProfile::Flaky() {
  NemesisProfile p;
  p.name = "flaky";
  p.min_windows = 4;
  p.max_windows = 8;
  p.horizon = Seconds(3);
  p.window_min = Millis(50);
  p.window_max = Millis(400);
  p.crash_min = Millis(5);
  p.crash_max = Millis(80);
  p.crash_weight = 0.25;
  p.partition_weight = 0.15;
  p.link_weight = 0.25;
  p.override_weight = 0.35;
  p.max_loss = 0.4;
  p.max_dup = 0.4;
  p.max_delay_multiplier = 6.0;
  p.max_reorder_jitter = Millis(10);
  return p;
}

NemesisProfile NemesisProfile::Havoc() {
  NemesisProfile p;
  p.name = "havoc";
  p.min_windows = 8;
  p.max_windows = 16;
  p.horizon = Seconds(4);
  p.window_min = Millis(20);
  p.window_max = Millis(600);
  p.crash_min = Millis(4);
  p.crash_max = Millis(60);
  p.crash_weight = 0.35;
  p.partition_weight = 0.2;
  p.link_weight = 0.2;
  p.override_weight = 0.25;
  p.max_loss = 0.9;
  p.max_dup = 0.8;
  p.max_delay_multiplier = 16.0;
  p.max_reorder_jitter = Millis(30);
  return p;
}

Result<NemesisProfile> NemesisProfile::ByName(const std::string& name) {
  if (name == "calm") return Calm();
  if (name == "flaky") return Flaky();
  if (name == "havoc") return Havoc();
  return Status::InvalidArgument("unknown nemesis profile '" + name +
                                 "' (expected calm, flaky, or havoc)");
}

Nemesis::Nemesis(const NemesisOptions& options, const NemesisProfile& profile)
    : opts_(options), profile_(profile) {
  // Storage faults opt in per run, not per profile: raising the weight
  // here (instead of in the built-in profiles) keeps every historical
  // seed's schedule byte-identical when the option is off.
  if (opts_.storage_faults && profile_.storage_weight == 0.0) {
    profile_.storage_weight = 0.25;
  }
}

Result<Nemesis> Nemesis::Make(const NemesisOptions& options) {
  Result<NemesisProfile> profile = NemesisProfile::ByName(options.profile);
  if (!profile.ok()) return profile.status();
  return Nemesis(options, *profile);
}

uint64_t Nemesis::RoundSeed(uint32_t round) const {
  return Mix(opts_.seed + 0x9e3779b97f4a7c15ULL * (round + 1)) | 1;
}

SystemConfig Nemesis::MakeConfig() const {
  SystemConfig cfg = opts_.base_config;
  if (cfg.items.empty()) {
    // Partial replication on purpose: with a copy on every site, reads
    // are always served locally and a remote replica's locks can never
    // matter — fully replicated schemas hide a whole class of
    // crash-recovery bugs from the fuzzer.
    cfg.num_sites = 5;
    cfg.AddUniformItems(opts_.storage_faults ? 24 : 12, 100, 3);
  }
  if (opts_.storage_faults) {
    // Shrink the disk geometry so each site's tree spans several pages
    // and the pool actually evicts: under the default 4 KiB pages the
    // whole database fits in one leaf that is never written back, so a
    // per-write fault would have nothing to tear. A tight checkpoint
    // cadence keeps flush (and thus fault) traffic up.
    cfg.protocols.page_size = 64;
    cfg.protocols.buffer_pool_pages = 8;
    if (cfg.protocols.checkpoint_interval == 0 ||
        cfg.protocols.checkpoint_interval > 32) {
      cfg.protocols.checkpoint_interval = 32;
    }
  }
  cfg.record_history = true;
  if (!cfg.trace_enabled) {
    cfg.trace_enabled = true;
    cfg.trace_detail = TraceDetail::kProtocol;
  }
  return cfg;
}

std::vector<FaultWindow> Nemesis::GenerateWindows(
    uint64_t schedule_seed) const {
  Rng rng(schedule_seed);
  const SiteId num_sites = MakeConfig().num_sites;
  const int n_windows =
      profile_.min_windows +
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(
          profile_.max_windows - profile_.min_windows + 1)));

  const double total_weight =
      profile_.crash_weight + profile_.partition_weight +
      profile_.link_weight + profile_.override_weight + profile_.storage_weight;

  std::vector<FaultWindow> windows;
  windows.reserve(static_cast<size_t>(n_windows));
  for (int i = 0; i < n_windows; ++i) {
    double pick = rng.NextDouble() * total_weight;
    const bool is_crash = (pick -= profile_.crash_weight) < 0;
    const SimTime dur_min = is_crash ? profile_.crash_min : profile_.window_min;
    const SimTime dur_max = is_crash ? profile_.crash_max : profile_.window_max;
    const SimTime dur = dur_min + static_cast<SimTime>(rng.NextUint(
                                      static_cast<uint64_t>(dur_max - dur_min + 1)));
    const SimTime start = static_cast<SimTime>(
        rng.NextUint(static_cast<uint64_t>(profile_.horizon - dur + 1)));
    const SimTime end = start + dur;

    FaultWindow w;
    if (is_crash) {
      const SiteId s = static_cast<SiteId>(rng.NextUint(num_sites));
      w.start = FaultEvent::Crash(start, s);
      w.end = FaultEvent::Recover(end, s);
    } else if ((pick -= profile_.partition_weight) < 0) {
      // Random two-group split: sometimes majority/minority, sometimes
      // even — both interesting for quorum protocols.
      std::vector<SiteId> sites(num_sites);
      for (SiteId s = 0; s < num_sites; ++s) sites[s] = s;
      rng.Shuffle(sites);
      const size_t cut = 1 + static_cast<size_t>(rng.NextUint(num_sites - 1));
      std::vector<std::vector<SiteId>> groups(2);
      groups[0].assign(sites.begin(),
                       sites.begin() + static_cast<ptrdiff_t>(cut));
      groups[1].assign(sites.begin() + static_cast<ptrdiff_t>(cut),
                       sites.end());
      w.start = FaultEvent::Partition(start, std::move(groups));
      w.end = FaultEvent::Heal(end);
    } else if (pick - profile_.link_weight - profile_.override_weight >= 0) {
      // Storage-fault window: arm one fault kind on one site's disk for
      // the window, then disarm (probability 0). Only reachable when
      // storage_weight > 0, so schedules generated without the option
      // draw the identical event stream they always did.
      const SiteId s = static_cast<SiteId>(rng.NextUint(num_sites));
      const uint64_t kind = rng.NextUint(4);
      const double p = rng.NextDouble() * profile_.max_storage_fault;
      switch (kind) {
        case 0:
          w.start = FaultEvent::StorageTorn(start, s, p);
          w.end = FaultEvent::StorageTorn(end, s, 0.0);
          break;
        case 1:
          w.start = FaultEvent::StorageShort(start, s, p);
          w.end = FaultEvent::StorageShort(end, s, 0.0);
          break;
        case 2:
          w.start = FaultEvent::StorageLost(start, s, p);
          w.end = FaultEvent::StorageLost(end, s, 0.0);
          break;
        default:
          w.start = FaultEvent::StorageReadFlip(start, s, p);
          w.end = FaultEvent::StorageReadFlip(end, s, 0.0);
          break;
      }
    } else {
      const SiteId a = static_cast<SiteId>(rng.NextUint(num_sites));
      SiteId b = static_cast<SiteId>(rng.NextUint(num_sites - 1));
      if (b >= a) ++b;
      if ((pick -= profile_.link_weight) < 0) {
        if (rng.NextBool(0.5)) {
          // Asymmetric ("grey") failure: only a -> b is severed.
          w.start = FaultEvent::LinkDownOneWay(start, a, b);
          w.end = FaultEvent::LinkUpOneWay(end, a, b);
        } else {
          w.start = FaultEvent::LinkDown(start, a, b);
          w.end = FaultEvent::LinkUp(end, a, b);
        }
      } else {
        switch (rng.NextUint(4)) {
          case 0:
            w.start = FaultEvent::LinkLoss(
                start, a, b, rng.NextDouble() * profile_.max_loss);
            w.end = FaultEvent::LinkLoss(end, a, b, 0.0);
            break;
          case 1:
            w.start = FaultEvent::LinkDelay(
                start, a, b,
                1.0 + rng.NextDouble() * (profile_.max_delay_multiplier - 1.0));
            w.end = FaultEvent::LinkDelay(end, a, b, 1.0);
            break;
          case 2:
            w.start = FaultEvent::LinkDup(start, a, b,
                                          rng.NextDouble() * profile_.max_dup);
            w.end = FaultEvent::LinkDup(end, a, b, 0.0);
            break;
          default:
            w.start = FaultEvent::LinkReorder(
                start, a, b,
                static_cast<double>(rng.NextUint(static_cast<uint64_t>(
                    profile_.max_reorder_jitter + 1))));
            w.end = FaultEvent::LinkReorder(end, a, b, 0.0);
            break;
        }
      }
    }
    windows.push_back(std::move(w));
  }
  return windows;
}

std::vector<FaultEvent> Nemesis::Flatten(const std::vector<FaultWindow>& ws) {
  std::vector<FaultEvent> events;
  events.reserve(ws.size() * 2);
  for (const FaultWindow& w : ws) {
    events.push_back(w.start);
    if (w.end) events.push_back(*w.end);
  }
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return events;
}

bool Nemesis::ScheduleFails(const std::vector<FaultEvent>& events,
                            uint64_t workload_seed, std::string* report) {
  ++runs_;
  SystemConfig cfg = MakeConfig();
  // Per-round system stream (latency draws etc.); fixed across shrink
  // re-runs because workload_seed is fixed per round.
  cfg.seed = Mix(cfg.seed ^ workload_seed) | 1;

  auto created = RainbowSystem::Create(cfg);
  if (!created.ok()) {
    if (report) *report = "harness error: " + created.status().ToString();
    return false;
  }
  RainbowSystem& sys = **created;

  FaultInjector injector(&sys);
  injector.ScheduleAll(events);

  WorkloadConfig wl;
  wl.seed = workload_seed;
  wl.num_txns = opts_.txns;
  wl.mpl = opts_.mpl;
  wl.read_fraction = 0.5;
  WorkloadGenerator wlg(&sys, wl);
  wlg.Run();

  // Drive until the workload drains (crashed homes may strand it) with
  // a hard cap well past the fault horizon.
  const SimTime cap = profile_.horizon * 4 + Seconds(5);
  const SimTime step = Millis(50);
  while (!wlg.finished() && sys.sim().Now() < cap) {
    sys.RunFor(step);
    if (sys.Idle() && !wlg.finished()) break;
  }
  sys.RunFor(Millis(500));

  // The oracle: the offline invariant checker over the trace, plus the
  // recorded-history serializability check and replica convergence.
  CheckReport check = sys.VerifyHistory();
  Status serializable = CheckConflictSerializable(sys.history().transactions());
  Status replicas = sys.CheckReplicaConsistency(false);
  const bool fails = !check.ok() || !serializable.ok() || !replicas.ok();
  if (report) {
    std::string out;
    if (!check.ok()) out += check.Render();
    if (!serializable.ok()) {
      out += "serializability: " + serializable.ToString() + "\n";
    }
    if (!replicas.ok()) {
      out += "replica consistency: " + replicas.ToString() + "\n";
    }
    if (!fails) out = "ok";
    *report = std::move(out);
  }
  return fails;
}

std::vector<FaultWindow> Nemesis::Shrink(std::vector<FaultWindow> windows,
                                         uint64_t workload_seed) {
  const uint32_t budget_start = runs_;
  auto budget_left = [&] {
    return runs_ - budget_start < opts_.shrink_budget;
  };
  auto fails = [&](const std::vector<FaultWindow>& ws) {
    return ScheduleFails(Flatten(ws), workload_seed, nullptr);
  };

  // Phase 1 — ddmin over whole windows: drop chunks, halving the chunk
  // size down to single windows, restarting after progress.
  for (size_t chunk = std::max<size_t>(windows.size() / 2, 1); chunk >= 1;) {
    bool removed = false;
    for (size_t i = 0; i + chunk <= windows.size() && budget_left();) {
      if (windows.size() <= 1) break;
      std::vector<FaultWindow> cand;
      cand.reserve(windows.size() - chunk);
      for (size_t j = 0; j < windows.size(); ++j) {
        if (j < i || j >= i + chunk) cand.push_back(windows[j]);
      }
      if (!cand.empty() && fails(cand)) {
        windows = std::move(cand);
        removed = true;
      } else {
        i += chunk;
      }
    }
    if (!budget_left()) break;
    if (chunk == 1 && !removed) break;
    chunk = removed ? std::max<size_t>(windows.size() / 2, 1) : chunk / 2;
  }

  // Phase 2 — halve override intensities toward the identity.
  for (size_t i = 0; i < windows.size() && budget_left(); ++i) {
    for (int attempt = 0; attempt < 3 && budget_left(); ++attempt) {
      const FaultEvent& e = windows[i].start;
      double next = e.amount;
      switch (e.kind) {
        case FaultEvent::Kind::kLinkLoss:
        case FaultEvent::Kind::kLinkDup:
        case FaultEvent::Kind::kLinkReorder:
        case FaultEvent::Kind::kStorageTorn:
        case FaultEvent::Kind::kStorageShort:
        case FaultEvent::Kind::kStorageLost:
        case FaultEvent::Kind::kStorageReadFlip:
          next = e.amount / 2.0;
          if (next < 0.01) next = 0.0;
          break;
        case FaultEvent::Kind::kLinkDelay:
          next = 1.0 + (e.amount - 1.0) / 2.0;
          if (next < 1.01) next = 1.0;
          break;
        default:
          break;
      }
      if (next == e.amount) break;
      std::vector<FaultWindow> cand = windows;
      cand[i].start.amount = next;
      if (fails(cand)) {
        windows = std::move(cand);
      } else {
        break;
      }
    }
  }

  // Phase 3 — narrow windows: halve each window's duration.
  for (size_t i = 0; i < windows.size() && budget_left(); ++i) {
    for (int attempt = 0; attempt < 3 && budget_left(); ++attempt) {
      if (!windows[i].end) break;
      const SimTime dur = windows[i].end->at - windows[i].start.at;
      if (dur <= Millis(10)) break;
      std::vector<FaultWindow> cand = windows;
      cand[i].end->at = cand[i].start.at + dur / 2;
      if (fails(cand)) {
        windows = std::move(cand);
      } else {
        break;
      }
    }
  }

  return windows;
}

Result<bool> Nemesis::Replay(const std::string& script, uint64_t workload_seed,
                             std::string* report) {
  Result<std::vector<FaultEvent>> events = ParseFaultScript(script);
  if (!events.ok()) return events.status();
  return ScheduleFails(*events, workload_seed, report);
}

NemesisResult Nemesis::Run() {
  NemesisResult r;
  for (uint32_t round = 0; round < opts_.rounds; ++round) {
    const uint64_t schedule_seed = RoundSeed(round);
    std::vector<FaultWindow> windows = GenerateWindows(schedule_seed);
    std::vector<FaultEvent> events = Flatten(windows);
    ++r.rounds_run;
    std::string report;
    if (!ScheduleFails(events, schedule_seed, &report)) continue;

    r.found_violation = true;
    r.failing_round = round;
    r.failing_seed = schedule_seed;
    r.failing_schedule = std::move(events);
    std::vector<FaultWindow> minimized =
        opts_.shrink ? Shrink(std::move(windows), schedule_seed)
                     : std::move(windows);
    r.minimized = Flatten(minimized);
    // One authoritative re-run of the minimized schedule for the report
    // (the shrinker itself discards reports).
    ScheduleFails(r.minimized, schedule_seed, &r.report);
    r.repro_script = SaveFaultScript(r.minimized);
    break;
  }
  r.total_runs = runs_;
  return r;
}

}  // namespace rainbow
