#ifndef RAINBOW_FAULT_NEMESIS_H_
#define RAINBOW_FAULT_NEMESIS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/config.h"
#include "fault/fault_injector.h"

namespace rainbow {

/// Intensity profile for the nemesis schedule generator: how many fault
/// windows a schedule contains, how violent each one may be, and how the
/// fault mass is split across categories. Three named profiles ship:
///
///   calm   a handful of mild link faults — regression smoke
///   flaky  realistic bad-day network: crashes, asymmetric links,
///          moderate loss/delay/dup — the CI default
///   havoc  crash bursts, majority/minority partitions, near-total
///          loss, large delay spikes — the bug-hunting setting
struct NemesisProfile {
  std::string name;
  /// Fault windows per schedule, drawn uniformly in [min, max].
  int min_windows = 2;
  int max_windows = 4;
  /// Virtual-time span faults are placed in; every window closes by
  /// `horizon` and the schedule appends a heal + clearlinks tail there.
  SimTime horizon = Seconds(2);
  /// Window duration bounds (partitions, link downs, overrides).
  SimTime window_min = Millis(50);
  SimTime window_max = Millis(300);
  /// Crash windows draw from their own (much shorter) range: a crash
  /// followed by a quick restart — faster than the RPC layer's retry
  /// horizon — is the schedule most likely to resurrect transaction
  /// state, which long outages merely abort.
  SimTime crash_min = Millis(20);
  SimTime crash_max = Millis(200);
  /// Relative weights of the fault categories (need not sum to 1).
  double crash_weight = 0.1;
  double partition_weight = 0.1;
  double link_weight = 0.4;      ///< bidirectional + one-way link downs
  double override_weight = 0.4;  ///< loss / delay / dup / reorder
  /// Storage-fault windows (torn/short/lost writes, read bit flips on
  /// one site's disk). 0 in every built-in profile so existing seeds
  /// reproduce byte-identically; NemesisOptions.storage_faults raises
  /// it at construction.
  double storage_weight = 0.0;
  /// Intensity caps for override windows.
  double max_loss = 0.2;
  double max_dup = 0.2;
  double max_delay_multiplier = 3.0;
  SimTime max_reorder_jitter = Millis(2);
  /// Per-write/per-read probability cap for storage-fault windows.
  double max_storage_fault = 0.3;

  /// The built-in profile with this name, or InvalidArgument.
  static Result<NemesisProfile> ByName(const std::string& name);
  static NemesisProfile Calm();
  static NemesisProfile Flaky();
  static NemesisProfile Havoc();
};

/// One fault window: a start event and (usually) the event that undoes
/// it — crash/recover, linkdown/linkup, partition/heal, or an override
/// and its identity reset. The generator emits windows so schedules are
/// self-healing; the shrinker drops whole windows so they stay that way.
struct FaultWindow {
  FaultEvent start;
  std::optional<FaultEvent> end;
};

struct NemesisOptions {
  uint64_t seed = 1;
  std::string profile = "flaky";
  uint32_t rounds = 10;
  /// Workload driven through each schedule.
  uint32_t txns = 120;
  uint32_t mpl = 4;
  /// Mix storage-fault windows (torn/short/lost writes, read bit
  /// flips) into the schedules and shrink the disk-geometry config so
  /// multi-page trees actually exercise the fault paths.
  bool storage_faults = false;
  /// Shrink the first failing schedule before reporting it.
  bool shrink = true;
  /// Hard cap on simulator re-runs the shrinker may spend.
  uint32_t shrink_budget = 200;
  /// System under test. When it has no items a 5-site fully replicated
  /// default is built. record_history / tracing are forced on.
  SystemConfig base_config;
};

struct NemesisResult {
  uint32_t rounds_run = 0;
  uint32_t total_runs = 0;  ///< simulator executions incl. shrinking
  bool found_violation = false;
  uint32_t failing_round = 0;
  uint64_t failing_seed = 0;  ///< per-round schedule seed
  std::vector<FaultEvent> failing_schedule;
  std::vector<FaultEvent> minimized;  ///< == failing_schedule if !shrink
  /// Canonical fault script of `minimized` (fault/fault_script.h) —
  /// replay it with Nemesis::Replay or `examples/nemesis --replay`.
  std::string repro_script;
  /// Oracle report of the minimized schedule's run.
  std::string report;
};

/// The adversarial fault-schedule fuzzer: generates randomized fault
/// programs from a seed + profile, runs each against the deterministic
/// simulator with the protocol-invariant checker as oracle, and shrinks
/// the first failing schedule to a minimal replayable repro via delta
/// debugging (drop windows, halve intensities, narrow windows).
class Nemesis {
 public:
  Nemesis(const NemesisOptions& options, const NemesisProfile& profile);

  /// Convenience: resolves options.profile by name.
  static Result<Nemesis> Make(const NemesisOptions& options);

  /// The full generate → check → shrink loop. Stops at the first
  /// violation (or after `rounds` clean rounds).
  NemesisResult Run();

  /// The deterministic schedule for one round seed.
  std::vector<FaultWindow> GenerateWindows(uint64_t schedule_seed) const;

  /// Windows flattened to time-ordered fault events.
  static std::vector<FaultEvent> Flatten(const std::vector<FaultWindow>& ws);

  /// Runs one schedule through the simulator and the oracle. Returns
  /// true if the oracle found a violation; `report` (optional) receives
  /// the rendered violation report. `workload_seed` fixes the workload
  /// so shrink re-runs replay the identical load.
  bool ScheduleFails(const std::vector<FaultEvent>& events,
                     uint64_t workload_seed, std::string* report);

  /// Delta-debugs `windows` (which must fail) down to a smaller failing
  /// schedule: drops windows ddmin-style, halves override intensities
  /// toward the identity, then halves window durations — re-running the
  /// simulator each step, within options.shrink_budget runs.
  std::vector<FaultWindow> Shrink(std::vector<FaultWindow> windows,
                                  uint64_t workload_seed);

  /// Replays a saved repro script against the configured system; wraps
  /// ParseFaultScript + ScheduleFails.
  Result<bool> Replay(const std::string& script, uint64_t workload_seed,
                      std::string* report);

  uint32_t total_runs() const { return runs_; }

  /// The schedule seed of round `round` under this nemesis seed.
  uint64_t RoundSeed(uint32_t round) const;

 private:
  SystemConfig MakeConfig() const;

  NemesisOptions opts_;
  NemesisProfile profile_;
  uint32_t runs_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_FAULT_NEMESIS_H_
