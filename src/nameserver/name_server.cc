#include "nameserver/name_server.h"

namespace rainbow {

NameServer::NameServer(Catalog catalog, Network* net, TraceLog* trace)
    : catalog_(std::move(catalog)),
      net_(net),
      trace_(trace),
      rpc_(std::make_unique<RpcEndpoint>(net->sim(), net, kNameServerId,
                                         /*seed=*/0)) {}

void NameServer::Start() {
  net_->RegisterHandler(kNameServerId, [this](const Message& m) {
    if (crashed_) return;
    RpcDelivery d = rpc_->Accept(m);
    if (d.consumed) return;  // duplicate lookup, re-answered from cache
    HandleMessage(m, d.ctx);
  });
}

void NameServer::Crash() {
  crashed_ = true;
  net_->SetSiteUp(kNameServerId, false);
  rpc_->Reset();
}

void NameServer::Recover() {
  crashed_ = false;
  net_->SetSiteUp(kNameServerId, true);
}

void NameServer::HandleMessage(const Message& m, const RpcContext& ctx) {
  const auto* req = std::get_if<NsLookupRequest>(&m.payload);
  if (req == nullptr) return;  // the name server only answers lookups
  ++lookups_served_;
  NsLookupReply reply;
  reply.txn = req->txn;
  reply.item = req->item;
  auto item = catalog_.schema().Find(req->item);
  if (item.ok()) {
    reply.found = true;
    reply.copies = (*item)->copies;
    reply.votes = (*item)->votes;
    reply.read_quorum = (*item)->read_quorum;
    reply.write_quorum = (*item)->write_quorum;
  }
  if (trace_ && trace_->enabled()) {
    trace_->Record(net_->sim()->Now(), TraceCategory::kGeneral, kNameServerId,
                   "lookup item " + std::to_string(req->item) +
                       (reply.found ? "" : " (not found)"));
  }
  if (ctx.valid()) {
    rpc_->Reply(ctx, reply);
  } else {
    net_->Send(kNameServerId, m.from, reply);
  }
}

}  // namespace rainbow
