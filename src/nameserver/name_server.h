#ifndef RAINBOW_NAMESERVER_NAME_SERVER_H_
#define RAINBOW_NAMESERVER_NAME_SERVER_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "common/trace.h"
#include "net/network.h"
#include "net/rpc.h"

namespace rainbow {

/// The Rainbow name server: a network actor (addressable at
/// kNameServerId) holding the site registry and the replication schema.
/// Coordinators query it per item; "any site can query the name server
/// to get pertinent information" (paper §2).
///
/// There is exactly one name server per Rainbow instance. It can be
/// crashed and recovered by the fault injector like any site; while
/// down, lookups time out at the coordinators (schema caching hides
/// this in the default configuration).
class NameServer {
 public:
  NameServer(Catalog catalog, Network* net, TraceLog* trace);

  /// Registers the network handler. Call once.
  void Start();

  void Crash();
  void Recover();
  bool crashed() const { return crashed_; }

  const Catalog& catalog() const { return catalog_; }
  uint64_t lookups_served() const { return lookups_served_; }

 private:
  void HandleMessage(const Message& m, const RpcContext& ctx);

  Catalog catalog_;
  Network* net_;
  TraceLog* trace_;
  /// Replica-side RPC endpoint: suppresses retransmitted lookups and
  /// re-answers them from the reply cache. The name server never makes
  /// outgoing calls.
  std::unique_ptr<RpcEndpoint> rpc_;
  bool crashed_ = false;
  uint64_t lookups_served_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_NAMESERVER_NAME_SERVER_H_
