#include "net/codec.h"

namespace rainbow {

namespace {

// Caps vector lengths while decoding so corrupt buffers cannot trigger
// huge allocations.
constexpr uint32_t kMaxVector = 1 << 20;

Result<uint32_t> GetLength(Decoder& d) {
  RAINBOW_ASSIGN_OR_RETURN(uint32_t n, d.GetU32());
  if (n > kMaxVector) return Status::InvalidArgument("vector too long");
  return n;
}

Result<std::vector<SiteId>> GetSites(Decoder& d) {
  RAINBOW_ASSIGN_OR_RETURN(uint32_t n, GetLength(d));
  std::vector<SiteId> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RAINBOW_ASSIGN_OR_RETURN(SiteId s, d.GetU32());
    out.push_back(s);
  }
  return out;
}

Result<std::vector<int>> GetVotes(Decoder& d) {
  RAINBOW_ASSIGN_OR_RETURN(uint32_t n, GetLength(d));
  std::vector<int> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RAINBOW_ASSIGN_OR_RETURN(uint32_t v, d.GetU32());
    out.push_back(static_cast<int>(v));
  }
  return out;
}

struct EncodeVisitor {
  Encoder& e;

  void operator()(const NsLookupRequest& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.item);
  }
  void operator()(const NsLookupReply& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.item);
    e.PutBool(m.found);
    e.PutVector(m.copies, [&](SiteId s) { e.PutU32(s); });
    e.PutVector(m.votes, [&](int v) { e.PutU32(static_cast<uint32_t>(v)); });
    e.PutU32(static_cast<uint32_t>(m.read_quorum));
    e.PutU32(static_cast<uint32_t>(m.write_quorum));
  }
  void operator()(const ReadRequest& m) {
    e.PutTxnId(m.txn);
    e.PutTimestamp(m.ts);
    e.PutU32(m.item);
  }
  void operator()(const ReadReply& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.item);
    e.PutBool(m.granted);
    e.PutU8(static_cast<uint8_t>(m.reason));
    e.PutI64(m.value);
    e.PutU64(m.version);
    e.PutU64(m.epoch);
  }
  void operator()(const PrewriteRequest& m) {
    e.PutTxnId(m.txn);
    e.PutTimestamp(m.ts);
    e.PutU32(m.item);
    e.PutI64(m.value);
    e.PutBool(m.skip_cc);
  }
  void operator()(const PrewriteReply& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.item);
    e.PutBool(m.granted);
    e.PutU8(static_cast<uint8_t>(m.reason));
    e.PutU64(m.version);
    e.PutU64(m.epoch);
  }
  void operator()(const AbortRequest& m) { e.PutTxnId(m.txn); }
  void operator()(const PrepareRequest& m) {
    e.PutTxnId(m.txn);
    e.PutVector(m.versions, [&](const PrepareRequest::WriteVersion& wv) {
      e.PutU32(wv.item);
      e.PutU64(wv.version);
    });
    e.PutVector(m.validations, [&](const PrepareRequest::ReadValidation& rv) {
      e.PutU32(rv.item);
      e.PutU64(rv.version);
    });
    e.PutVector(m.participants, [&](SiteId s) { e.PutU32(s); });
    e.PutBool(m.three_phase);
  }
  void operator()(const VoteReply& m) {
    e.PutTxnId(m.txn);
    e.PutBool(m.yes);
    e.PutU8(static_cast<uint8_t>(m.reason));
    e.PutBool(m.read_only);
  }
  void operator()(const Decision& m) {
    e.PutTxnId(m.txn);
    e.PutBool(m.commit);
  }
  void operator()(const Ack& m) { e.PutTxnId(m.txn); }
  void operator()(const DecisionQuery& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.asker);
  }
  void operator()(const DecisionInfo& m) {
    e.PutTxnId(m.txn);
    e.PutBool(m.known);
    e.PutBool(m.commit);
  }
  void operator()(const PreCommitRequest& m) { e.PutTxnId(m.txn); }
  void operator()(const PreCommitAck& m) { e.PutTxnId(m.txn); }
  void operator()(const StateQuery& m) {
    e.PutTxnId(m.txn);
    e.PutU32(m.asker);
  }
  void operator()(const StateReply& m) {
    e.PutTxnId(m.txn);
    e.PutU8(static_cast<uint8_t>(m.state));
  }
  void operator()(const RemoteAbortNotify& m) {
    e.PutTxnId(m.txn);
    e.PutU8(static_cast<uint8_t>(m.cause));
    e.PutU8(static_cast<uint8_t>(m.reason));
  }
  void operator()(const RefreshRequest& m) {
    e.PutVector(m.items, [&](ItemId i) { e.PutU32(i); });
  }
  void operator()(const RefreshReply& m) {
    e.PutVector(m.entries, [&](const RefreshReply::Entry& entry) {
      e.PutU32(entry.item);
      e.PutI64(entry.value);
      e.PutU64(entry.version);
    });
  }
  void operator()(const DeadlockProbe& m) {
    e.PutTxnId(m.initiator);
    e.PutTxnId(m.holder);
    e.PutU32(m.hops);
  }
  void operator()(const DeadlockProbeCheck& m) {
    e.PutTxnId(m.initiator);
    e.PutTxnId(m.waiter);
    e.PutU32(m.hops);
  }
};

Result<DenyReason> GetDenyReason(Decoder& d) {
  RAINBOW_ASSIGN_OR_RETURN(uint8_t v, d.GetU8());
  if (v > static_cast<uint8_t>(DenyReason::kValidationFailed)) {
    return Status::InvalidArgument("bad deny reason");
  }
  return static_cast<DenyReason>(v);
}

Result<Payload> DecodeBody(MessageKind kind, Decoder& d) {
  switch (kind) {
    case MessageKind::kNsLookupRequest: {
      NsLookupRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kNsLookupReply: {
      NsLookupReply m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(m.found, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(m.copies, GetSites(d));
      RAINBOW_ASSIGN_OR_RETURN(m.votes, GetVotes(d));
      RAINBOW_ASSIGN_OR_RETURN(uint32_t rq, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(uint32_t wq, d.GetU32());
      m.read_quorum = static_cast<int>(rq);
      m.write_quorum = static_cast<int>(wq);
      return Payload{m};
    }
    case MessageKind::kReadRequest: {
      ReadRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.ts, d.GetTimestamp());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kReadReply: {
      ReadReply m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(m.granted, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(m.reason, GetDenyReason(d));
      RAINBOW_ASSIGN_OR_RETURN(m.value, d.GetI64());
      RAINBOW_ASSIGN_OR_RETURN(m.version, d.GetU64());
      RAINBOW_ASSIGN_OR_RETURN(m.epoch, d.GetU64());
      return Payload{m};
    }
    case MessageKind::kPrewriteRequest: {
      PrewriteRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.ts, d.GetTimestamp());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(m.value, d.GetI64());
      RAINBOW_ASSIGN_OR_RETURN(m.skip_cc, d.GetBool());
      return Payload{m};
    }
    case MessageKind::kPrewriteReply: {
      PrewriteReply m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(m.granted, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(m.reason, GetDenyReason(d));
      RAINBOW_ASSIGN_OR_RETURN(m.version, d.GetU64());
      RAINBOW_ASSIGN_OR_RETURN(m.epoch, d.GetU64());
      return Payload{m};
    }
    case MessageKind::kAbortRequest: {
      AbortRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      return Payload{m};
    }
    case MessageKind::kPrepareRequest: {
      PrepareRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(uint32_t n, GetLength(d));
      for (uint32_t i = 0; i < n; ++i) {
        PrepareRequest::WriteVersion wv;
        RAINBOW_ASSIGN_OR_RETURN(wv.item, d.GetU32());
        RAINBOW_ASSIGN_OR_RETURN(wv.version, d.GetU64());
        m.versions.push_back(wv);
      }
      RAINBOW_ASSIGN_OR_RETURN(uint32_t nv, GetLength(d));
      for (uint32_t i = 0; i < nv; ++i) {
        PrepareRequest::ReadValidation rv;
        RAINBOW_ASSIGN_OR_RETURN(rv.item, d.GetU32());
        RAINBOW_ASSIGN_OR_RETURN(rv.version, d.GetU64());
        m.validations.push_back(rv);
      }
      RAINBOW_ASSIGN_OR_RETURN(m.participants, GetSites(d));
      RAINBOW_ASSIGN_OR_RETURN(m.three_phase, d.GetBool());
      return Payload{m};
    }
    case MessageKind::kVoteReply: {
      VoteReply m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.yes, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(m.reason, GetDenyReason(d));
      RAINBOW_ASSIGN_OR_RETURN(m.read_only, d.GetBool());
      return Payload{m};
    }
    case MessageKind::kDecision: {
      Decision m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.commit, d.GetBool());
      return Payload{m};
    }
    case MessageKind::kAck: {
      Ack m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      return Payload{m};
    }
    case MessageKind::kDecisionQuery: {
      DecisionQuery m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.asker, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kDecisionInfo: {
      DecisionInfo m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.known, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(m.commit, d.GetBool());
      return Payload{m};
    }
    case MessageKind::kPreCommitRequest: {
      PreCommitRequest m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      return Payload{m};
    }
    case MessageKind::kPreCommitAck: {
      PreCommitAck m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      return Payload{m};
    }
    case MessageKind::kStateQuery: {
      StateQuery m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.asker, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kStateReply: {
      StateReply m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(uint8_t st, d.GetU8());
      if (st > static_cast<uint8_t>(AcpState::kAborted)) {
        return Status::InvalidArgument("bad acp state");
      }
      m.state = static_cast<AcpState>(st);
      return Payload{m};
    }
    case MessageKind::kRemoteAbortNotify: {
      RemoteAbortNotify m;
      RAINBOW_ASSIGN_OR_RETURN(m.txn, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(uint8_t cause, d.GetU8());
      if (cause > static_cast<uint8_t>(AbortCause::kOther)) {
        return Status::InvalidArgument("bad abort cause");
      }
      m.cause = static_cast<AbortCause>(cause);
      RAINBOW_ASSIGN_OR_RETURN(m.reason, GetDenyReason(d));
      return Payload{m};
    }
    case MessageKind::kRefreshRequest: {
      RefreshRequest m;
      RAINBOW_ASSIGN_OR_RETURN(uint32_t n, GetLength(d));
      for (uint32_t i = 0; i < n; ++i) {
        RAINBOW_ASSIGN_OR_RETURN(ItemId item, d.GetU32());
        m.items.push_back(item);
      }
      return Payload{m};
    }
    case MessageKind::kRefreshReply: {
      RefreshReply m;
      RAINBOW_ASSIGN_OR_RETURN(uint32_t n, GetLength(d));
      for (uint32_t i = 0; i < n; ++i) {
        RefreshReply::Entry entry;
        RAINBOW_ASSIGN_OR_RETURN(entry.item, d.GetU32());
        RAINBOW_ASSIGN_OR_RETURN(entry.value, d.GetI64());
        RAINBOW_ASSIGN_OR_RETURN(entry.version, d.GetU64());
        m.entries.push_back(entry);
      }
      return Payload{m};
    }
    case MessageKind::kDeadlockProbe: {
      DeadlockProbe m;
      RAINBOW_ASSIGN_OR_RETURN(m.initiator, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.holder, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.hops, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kDeadlockProbeCheck: {
      DeadlockProbeCheck m;
      RAINBOW_ASSIGN_OR_RETURN(m.initiator, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.waiter, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(m.hops, d.GetU32());
      return Payload{m};
    }
    case MessageKind::kCount:
      break;
  }
  return Status::InvalidArgument("bad message kind");
}

void EncodePayloadBody(Encoder& e, const Payload& payload) {
  e.PutU8(static_cast<uint8_t>(MessageKindOf(payload)));
  std::visit(EncodeVisitor{e}, payload);
}

void EncodeEnvelope(Encoder& e, const Message& message) {
  e.PutU64(message.id);
  e.PutU32(message.from);
  e.PutU32(message.to);
  e.PutI64(message.sent_at);
  e.PutU64(message.rpc_id);
  e.PutBool(message.rpc_is_reply);
}

}  // namespace

std::vector<uint8_t> EncodePayload(const Payload& payload) {
  Encoder e;
  EncodePayloadBody(e, payload);
  return e.Take();
}

std::span<const uint8_t> EncodePayloadTo(Arena& arena,
                                         const Payload& payload) {
  arena.Reset();
  Encoder e(&arena.storage());
  EncodePayloadBody(e, payload);
  return e.written();
}

Result<Payload> DecodePayload(std::span<const uint8_t> buf) {
  Decoder d(buf);
  RAINBOW_ASSIGN_OR_RETURN(uint8_t kind, d.GetU8());
  if (kind >= static_cast<uint8_t>(MessageKind::kCount)) {
    return Status::InvalidArgument("bad message kind byte");
  }
  RAINBOW_ASSIGN_OR_RETURN(Payload p,
                           DecodeBody(static_cast<MessageKind>(kind), d));
  if (!d.exhausted()) {
    return Status::InvalidArgument("trailing bytes after payload");
  }
  return p;
}

std::vector<uint8_t> EncodeMessage(const Message& message) {
  Encoder e;
  EncodeEnvelope(e, message);
  size_t len_pos = e.size();
  e.PutU32(0);  // payload length, backpatched below
  size_t payload_start = e.size();
  EncodePayloadBody(e, message.payload);
  e.PatchU32(len_pos, static_cast<uint32_t>(e.size() - payload_start));
  return e.Take();
}

std::span<const uint8_t> EncodeMessageTo(Arena& arena,
                                         const Message& message) {
  arena.Reset();
  Encoder e(&arena.storage());
  EncodeEnvelope(e, message);
  size_t len_pos = e.size();
  e.PutU32(0);  // payload length, backpatched below
  size_t payload_start = e.size();
  EncodePayloadBody(e, message.payload);
  e.PatchU32(len_pos, static_cast<uint32_t>(e.size() - payload_start));
  return e.written();
}

Result<Message> DecodeMessage(std::span<const uint8_t> buf) {
  Decoder d(buf);
  Message m;
  RAINBOW_ASSIGN_OR_RETURN(m.id, d.GetU64());
  RAINBOW_ASSIGN_OR_RETURN(m.from, d.GetU32());
  RAINBOW_ASSIGN_OR_RETURN(m.to, d.GetU32());
  RAINBOW_ASSIGN_OR_RETURN(m.sent_at, d.GetI64());
  RAINBOW_ASSIGN_OR_RETURN(m.rpc_id, d.GetU64());
  RAINBOW_ASSIGN_OR_RETURN(m.rpc_is_reply, d.GetBool());
  RAINBOW_ASSIGN_OR_RETURN(uint32_t len, d.GetU32());
  if (len != d.remaining()) {
    return Status::InvalidArgument("payload length mismatch");
  }
  // Zero-copy: decode the payload region in place.
  RAINBOW_ASSIGN_OR_RETURN(std::span<const uint8_t> payload, d.PeekSpan(len));
  RAINBOW_ASSIGN_OR_RETURN(m.payload, DecodePayload(payload));
  return m;
}

}  // namespace rainbow
