#ifndef RAINBOW_NET_CODEC_H_
#define RAINBOW_NET_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/binary_io.h"
#include "common/result.h"
#include "net/message.h"

namespace rainbow {

// The wire format Rainbow messages would use on a real network; the
// simulator can round-trip every message through it to guarantee the
// codec stays complete (SystemConfig::verify_codec).
//
// Two encode surfaces: the vector-returning forms allocate a fresh
// buffer per call (convenient for tests and tools), and the arena forms
// append into a caller-owned reusable Arena and return a view — the hot
// path (per-lane codec verification, trace export at full detail) pays
// no per-message allocation or copy. Decoding is zero-copy throughout:
// both decoders take a span-style view (a const vector binds
// implicitly), and DecodeMessage parses the payload region in place
// instead of copying it out.

/// Serializes a payload: one kind byte followed by the fields.
std::vector<uint8_t> EncodePayload(const Payload& payload);

/// Serializes a payload into `arena` (resetting it first). The returned
/// view is valid until the arena's next Reset() or write.
std::span<const uint8_t> EncodePayloadTo(Arena& arena, const Payload& payload);

/// Parses a payload; fails on unknown kind bytes, truncated buffers, or
/// trailing garbage.
Result<Payload> DecodePayload(std::span<const uint8_t> buf);

/// Serializes a full message (envelope + payload) in one pass.
std::vector<uint8_t> EncodeMessage(const Message& message);

/// Arena form of EncodeMessage; same lifetime rule as EncodePayloadTo.
std::span<const uint8_t> EncodeMessageTo(Arena& arena, const Message& message);

Result<Message> DecodeMessage(std::span<const uint8_t> buf);

}  // namespace rainbow

#endif  // RAINBOW_NET_CODEC_H_
