#ifndef RAINBOW_NET_CODEC_H_
#define RAINBOW_NET_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "net/message.h"

namespace rainbow {

// The wire format Rainbow messages would use on a real network; the
// simulator can round-trip every message through it to guarantee the
// codec stays complete (SystemConfig::verify_codec).

/// Serializes a payload: one kind byte followed by the fields.
std::vector<uint8_t> EncodePayload(const Payload& payload);

/// Parses a payload; fails on unknown kind bytes, truncated buffers, or
/// trailing garbage.
Result<Payload> DecodePayload(const std::vector<uint8_t>& buf);

/// Serializes a full message (envelope + payload).
std::vector<uint8_t> EncodeMessage(const Message& message);
Result<Message> DecodeMessage(const std::vector<uint8_t>& buf);

}  // namespace rainbow

#endif  // RAINBOW_NET_CODEC_H_
