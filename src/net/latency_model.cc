#include "net/latency_model.h"

#include <algorithm>

namespace rainbow {

const char* LatencyDistributionName(LatencyDistribution d) {
  switch (d) {
    case LatencyDistribution::kFixed:
      return "fixed";
    case LatencyDistribution::kUniform:
      return "uniform";
    case LatencyDistribution::kExponential:
      return "exponential";
  }
  return "?";
}

LatencyModel::LatencyModel(LatencyConfig config, Rng rng)
    : config_(config), rng_(rng) {}

SimTime LatencyModel::SampleDelay(SiteId from, SiteId to, size_t bytes) {
  return SampleDelay(from, to, bytes, rng_);
}

SimTime LatencyModel::SampleDelay(SiteId from, SiteId to, size_t bytes,
                                  Rng& rng) const {
  SimTime size_cost =
      config_.per_kb * static_cast<SimTime>(bytes) / 1024;
  if (from == to) {
    return config_.local + size_cost;
  }
  // Cross-region hops (when configured) use the inter-region mean —
  // the "two data centers" topology of geo-replication studies. The
  // name server (and other out-of-range addresses) counts as region 0.
  SimTime mean = config_.mean;
  if (config_.inter_region_mean > 0 &&
      config_.RegionOf(from) != config_.RegionOf(to)) {
    mean = config_.inter_region_mean;
  }
  SimTime base = 0;
  switch (config_.distribution) {
    case LatencyDistribution::kFixed:
      base = mean;
      break;
    case LatencyDistribution::kUniform: {
      SimTime lo = mean / 2;
      SimTime hi = mean + mean / 2;
      base = lo + static_cast<SimTime>(
                      rng.NextUint(static_cast<uint64_t>(hi - lo + 1)));
      break;
    }
    case LatencyDistribution::kExponential:
      base = static_cast<SimTime>(
          rng.NextExponential(static_cast<double>(mean)));
      break;
  }
  return std::max(config_.min, base) + size_cost;
}

}  // namespace rainbow
