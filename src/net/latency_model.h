#ifndef RAINBOW_NET_LATENCY_MODEL_H_
#define RAINBOW_NET_LATENCY_MODEL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace rainbow {

/// Shape of the one-way message delay distribution.
enum class LatencyDistribution {
  kFixed,        ///< always `mean`
  kUniform,      ///< uniform in [mean/2, 3*mean/2]
  kExponential,  ///< exponential with the given mean, shifted by min
};

const char* LatencyDistributionName(LatencyDistribution d);

/// Parameters of the simulated network's delay behaviour. Part of the
/// "configure a network simulation" step of a Rainbow session.
///
/// Geo-replication: sites can be assigned to regions ("data centers");
/// messages between different regions use `inter_region_mean` as their
/// mean instead of `mean`. Sites without an entry are region 0.
struct LatencyConfig {
  LatencyDistribution distribution = LatencyDistribution::kUniform;
  SimTime mean = Millis(2);      ///< mean one-way delay between sites
  SimTime min = Micros(100);     ///< floor applied to every sample
  SimTime per_kb = Micros(50);   ///< additional delay per 1024 payload bytes
  SimTime local = Micros(10);    ///< delay for a site messaging itself

  std::vector<int> regions;          ///< region of site i (empty = all 0)
  SimTime inter_region_mean = 0;     ///< 0 = same as `mean`

  int RegionOf(SiteId s) const {
    return s < regions.size() ? regions[s] : 0;
  }
};

/// Draws per-message delays according to a LatencyConfig.
class LatencyModel {
 public:
  LatencyModel(LatencyConfig config, Rng rng);

  /// One-way delay for a `bytes`-sized message from `from` to `to`,
  /// drawing randomness from the model's own stream.
  SimTime SampleDelay(SiteId from, SiteId to, size_t bytes);

  /// Same, but drawing from a caller-provided stream. The network uses
  /// per-*site* streams so each site's delay sequence is a pure function
  /// of its own send history — independent of global send interleaving
  /// and therefore of the shard count.
  SimTime SampleDelay(SiteId from, SiteId to, size_t bytes, Rng& rng) const;

  /// Lower bound on any cross-site (`from != to`) sample before link
  /// overrides: every distribution is floored at config.min, and the
  /// network floors cross-site delays at 1 µs. This is the base of the
  /// sharded kernel's conservative lookahead.
  SimTime MinCrossSiteDelay() const {
    return std::max<SimTime>(1, config_.min);
  }

  const LatencyConfig& config() const { return config_; }

 private:
  LatencyConfig config_;
  Rng rng_;
};

}  // namespace rainbow

#endif  // RAINBOW_NET_LATENCY_MODEL_H_
