#include "net/message.h"

#include "common/string_util.h"

namespace rainbow {

const char* MessageKindName(MessageKind k) {
  switch (k) {
    case MessageKind::kNsLookupRequest:
      return "NsLookupRequest";
    case MessageKind::kNsLookupReply:
      return "NsLookupReply";
    case MessageKind::kReadRequest:
      return "ReadRequest";
    case MessageKind::kReadReply:
      return "ReadReply";
    case MessageKind::kPrewriteRequest:
      return "PrewriteRequest";
    case MessageKind::kPrewriteReply:
      return "PrewriteReply";
    case MessageKind::kAbortRequest:
      return "AbortRequest";
    case MessageKind::kPrepareRequest:
      return "PrepareRequest";
    case MessageKind::kVoteReply:
      return "VoteReply";
    case MessageKind::kDecision:
      return "Decision";
    case MessageKind::kAck:
      return "Ack";
    case MessageKind::kDecisionQuery:
      return "DecisionQuery";
    case MessageKind::kDecisionInfo:
      return "DecisionInfo";
    case MessageKind::kPreCommitRequest:
      return "PreCommitRequest";
    case MessageKind::kPreCommitAck:
      return "PreCommitAck";
    case MessageKind::kStateQuery:
      return "StateQuery";
    case MessageKind::kStateReply:
      return "StateReply";
    case MessageKind::kRemoteAbortNotify:
      return "RemoteAbortNotify";
    case MessageKind::kRefreshRequest:
      return "RefreshRequest";
    case MessageKind::kRefreshReply:
      return "RefreshReply";
    case MessageKind::kDeadlockProbe:
      return "DeadlockProbe";
    case MessageKind::kDeadlockProbeCheck:
      return "DeadlockProbeCheck";
    case MessageKind::kCount:
      break;
  }
  return "?";
}

const char* DenyReasonName(DenyReason r) {
  switch (r) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kTsoTooLate:
      return "tso_too_late";
    case DenyReason::kDeadlockVictim:
      return "deadlock_victim";
    case DenyReason::kSiteBusy:
      return "site_busy";
    case DenyReason::kUnknownTxn:
      return "unknown_txn";
    case DenyReason::kWounded:
      return "wounded";
    case DenyReason::kWaitTimeout:
      return "wait_timeout";
    case DenyReason::kValidationFailed:
      return "validation_failed";
  }
  return "?";
}

const char* AcpStateName(AcpState s) {
  switch (s) {
    case AcpState::kUnknown:
      return "unknown";
    case AcpState::kActive:
      return "active";
    case AcpState::kPrepared:
      return "prepared";
    case AcpState::kPreCommitted:
      return "precommitted";
    case AcpState::kCommitted:
      return "committed";
    case AcpState::kAborted:
      return "aborted";
  }
  return "?";
}

namespace {

struct KindVisitor {
  MessageKind operator()(const NsLookupRequest&) const {
    return MessageKind::kNsLookupRequest;
  }
  MessageKind operator()(const NsLookupReply&) const {
    return MessageKind::kNsLookupReply;
  }
  MessageKind operator()(const ReadRequest&) const {
    return MessageKind::kReadRequest;
  }
  MessageKind operator()(const ReadReply&) const {
    return MessageKind::kReadReply;
  }
  MessageKind operator()(const PrewriteRequest&) const {
    return MessageKind::kPrewriteRequest;
  }
  MessageKind operator()(const PrewriteReply&) const {
    return MessageKind::kPrewriteReply;
  }
  MessageKind operator()(const AbortRequest&) const {
    return MessageKind::kAbortRequest;
  }
  MessageKind operator()(const PrepareRequest&) const {
    return MessageKind::kPrepareRequest;
  }
  MessageKind operator()(const VoteReply&) const {
    return MessageKind::kVoteReply;
  }
  MessageKind operator()(const Decision&) const { return MessageKind::kDecision; }
  MessageKind operator()(const Ack&) const { return MessageKind::kAck; }
  MessageKind operator()(const DecisionQuery&) const {
    return MessageKind::kDecisionQuery;
  }
  MessageKind operator()(const DecisionInfo&) const {
    return MessageKind::kDecisionInfo;
  }
  MessageKind operator()(const PreCommitRequest&) const {
    return MessageKind::kPreCommitRequest;
  }
  MessageKind operator()(const PreCommitAck&) const {
    return MessageKind::kPreCommitAck;
  }
  MessageKind operator()(const StateQuery&) const {
    return MessageKind::kStateQuery;
  }
  MessageKind operator()(const StateReply&) const {
    return MessageKind::kStateReply;
  }
  MessageKind operator()(const RemoteAbortNotify&) const {
    return MessageKind::kRemoteAbortNotify;
  }
  MessageKind operator()(const RefreshRequest&) const {
    return MessageKind::kRefreshRequest;
  }
  MessageKind operator()(const RefreshReply&) const {
    return MessageKind::kRefreshReply;
  }
  MessageKind operator()(const DeadlockProbe&) const {
    return MessageKind::kDeadlockProbe;
  }
  MessageKind operator()(const DeadlockProbeCheck&) const {
    return MessageKind::kDeadlockProbeCheck;
  }
};

}  // namespace

MessageKind MessageKindOf(const Payload& p) {
  return std::visit(KindVisitor{}, p);
}

size_t PayloadSizeBytes(const Payload& p) {
  // Envelope (headers, ids, timestamps) plus a rough per-field estimate.
  constexpr size_t kEnvelope = 48;
  struct SizeVisitor {
    size_t operator()(const NsLookupRequest&) const { return 16; }
    size_t operator()(const NsLookupReply& r) const {
      return 24 + r.copies.size() * 8;
    }
    size_t operator()(const ReadRequest&) const { return 24; }
    size_t operator()(const ReadReply&) const { return 40; }
    size_t operator()(const PrewriteRequest&) const { return 32; }
    size_t operator()(const PrewriteReply&) const { return 32; }
    size_t operator()(const AbortRequest&) const { return 12; }
    size_t operator()(const PrepareRequest& r) const {
      return 16 + r.versions.size() * 12 + r.validations.size() * 12 +
             r.participants.size() * 4;
    }
    size_t operator()(const VoteReply&) const { return 16; }
    size_t operator()(const Decision&) const { return 13; }
    size_t operator()(const Ack&) const { return 12; }
    size_t operator()(const DecisionQuery&) const { return 16; }
    size_t operator()(const DecisionInfo&) const { return 14; }
    size_t operator()(const PreCommitRequest&) const { return 12; }
    size_t operator()(const PreCommitAck&) const { return 12; }
    size_t operator()(const StateQuery&) const { return 16; }
    size_t operator()(const StateReply&) const { return 13; }
    size_t operator()(const RemoteAbortNotify&) const { return 16; }
    size_t operator()(const RefreshRequest& r) const {
      return 8 + r.items.size() * 4;
    }
    size_t operator()(const RefreshReply& r) const {
      return 8 + r.entries.size() * 20;
    }
    size_t operator()(const DeadlockProbe&) const { return 28; }
    size_t operator()(const DeadlockProbeCheck&) const { return 28; }
  };
  return kEnvelope + std::visit(SizeVisitor{}, p);
}

namespace {

/// Extracts the TxnId from payloads that carry one; returns invalid id
/// for refresh messages. Probes are attributed to their initiator.
struct TxnVisitor {
  template <typename T>
  TxnId operator()(const T& t) const {
    if constexpr (requires { t.txn; }) {
      return t.txn;
    } else if constexpr (requires { t.initiator; }) {
      return t.initiator;
    } else {
      return TxnId{};
    }
  }
};

}  // namespace

TxnId PayloadTxnId(const Payload& p) { return std::visit(TxnVisitor{}, p); }

std::string Message::Describe() const {
  TxnId txn = PayloadTxnId(payload);
  std::string out = MessageKindName(kind());
  if (txn.valid()) {
    out += " ";
    out += txn.ToString();
  }
  out += StringPrintf(" (%u->%u)", from, to);
  return out;
}

}  // namespace rainbow
