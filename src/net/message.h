#ifndef RAINBOW_NET_MESSAGE_H_
#define RAINBOW_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace rainbow {

/// Message kinds, used for traffic accounting and tracing. Kept in sync
/// with the payload variant below (MessageKindOf).
enum class MessageKind {
  kNsLookupRequest,
  kNsLookupReply,
  kReadRequest,
  kReadReply,
  kPrewriteRequest,
  kPrewriteReply,
  kAbortRequest,
  kPrepareRequest,
  kVoteReply,
  kDecision,
  kAck,
  kDecisionQuery,
  kDecisionInfo,
  kPreCommitRequest,
  kPreCommitAck,
  kStateQuery,
  kStateReply,
  kRemoteAbortNotify,
  kRefreshRequest,
  kRefreshReply,
  kDeadlockProbe,
  kDeadlockProbeCheck,
  kCount,  // number of kinds; not a real message
};

const char* MessageKindName(MessageKind k);

/// Why a copy-access request was denied by the replica's CC protocol,
/// or why a vote was NO. Travels inside replies.
enum class DenyReason {
  kNone = 0,
  kTsoTooLate,      ///< TSO: operation timestamp older than committed access
  kDeadlockVictim,  ///< wait-die / wound-wait / cycle-detection victim
  kSiteBusy,        ///< site refuses (crash recovery in progress)
  kUnknownTxn,      ///< participant lost the transaction (e.g. crashed)
  kWounded,         ///< wound-wait: preempted by an older transaction
  kWaitTimeout,     ///< CC wait exceeded the replica's lock-wait timeout
  kValidationFailed,///< OCC: stale read or commit-lock conflict at prepare
};

const char* DenyReasonName(DenyReason r);

// ---------------------------------------------------------------------------
// Payload structs. One per MessageKind.
// ---------------------------------------------------------------------------

/// Coordinator -> name server: where are the copies of `item`?
struct NsLookupRequest {
  TxnId txn;
  ItemId item = kInvalidItem;
};

/// Name server -> coordinator: copies, votes and quorum thresholds.
struct NsLookupReply {
  TxnId txn;
  ItemId item = kInvalidItem;
  bool found = false;
  std::vector<SiteId> copies;
  std::vector<int> votes;  ///< parallel to `copies`
  int read_quorum = 0;     ///< votes needed to read (QC)
  int write_quorum = 0;    ///< votes needed to write (QC)
};

/// Coordinator -> replica: read this copy under CC (acquires read lock /
/// passes the TSO read rule).
struct ReadRequest {
  TxnId txn;
  TxnTimestamp ts;
  ItemId item = kInvalidItem;
};

/// Replica -> coordinator: value and version of the local copy, or denial.
struct ReadReply {
  TxnId txn;
  ItemId item = kInvalidItem;
  bool granted = false;
  DenyReason reason = DenyReason::kNone;
  Value value = 0;
  Version version = 0;
  /// Replica incarnation at grant time. A coordinator that sees two
  /// grants from the same site under different epochs knows the site
  /// restarted in between — its volatile CC state (locks, buffered
  /// prewrites) for this transaction is gone — and must abort.
  uint64_t epoch = 0;
};

/// Coordinator -> replica: pre-write this copy (CC write access; the new
/// value is buffered at the replica until commit).
struct PrewriteRequest {
  TxnId txn;
  TxnTimestamp ts;
  ItemId item = kInvalidItem;
  Value value = 0;
  /// Primary-copy replication: backups buffer the write without
  /// consulting their CC engine (the primary's CC already serialized
  /// conflicting transactions).
  bool skip_cc = false;
};

/// Replica -> coordinator: current version number of the copy (the QC
/// rule computes the new version as max over the write quorum plus one),
/// or denial.
struct PrewriteReply {
  TxnId txn;
  ItemId item = kInvalidItem;
  bool granted = false;
  DenyReason reason = DenyReason::kNone;
  Version version = 0;      ///< version before the write
  uint64_t epoch = 0;       ///< replica incarnation (see ReadReply::epoch)
};

/// Coordinator -> participant: abort before any prepare was sent.
/// Participant discards buffered prewrites and releases CC state.
struct AbortRequest {
  TxnId txn;
};

/// Coordinator -> participant (2PC/3PC phase 1). Carries the final
/// version to install for each item written at that participant, and the
/// full participant list (needed for cooperative termination).
struct PrepareRequest {
  TxnId txn;
  struct WriteVersion {
    ItemId item = kInvalidItem;
    Version version = 0;
  };
  std::vector<WriteVersion> versions;
  /// OCC backward validation: the versions this transaction's reads
  /// observed at THIS participant; the participant votes NO if any copy
  /// has moved on. Empty under the pessimistic CC protocols.
  struct ReadValidation {
    ItemId item = kInvalidItem;
    Version version = 0;
  };
  std::vector<ReadValidation> validations;
  std::vector<SiteId> participants;
  bool three_phase = false;  ///< participant should expect PreCommit
};

/// Participant -> coordinator: YES/NO vote. A read-only participant
/// (no buffered writes, with the optimization enabled) votes YES with
/// read_only set: it has already released its locks and must not be
/// sent the decision.
struct VoteReply {
  TxnId txn;
  bool yes = false;
  DenyReason reason = DenyReason::kNone;
  bool read_only = false;
};

/// Coordinator -> participant: global decision.
struct Decision {
  TxnId txn;
  bool commit = false;
};

/// Participant -> coordinator: decision applied.
struct Ack {
  TxnId txn;
};

/// Recovered/blocked participant -> coordinator (or peer): what happened
/// to `txn`?
struct DecisionQuery {
  TxnId txn;
  SiteId asker = kInvalidSite;
};

/// Reply to DecisionQuery. `known == false` means the asked site has no
/// record of a decision (for a peer participant that is itself uncertain).
struct DecisionInfo {
  TxnId txn;
  bool known = false;
  bool commit = false;
};

/// Coordinator -> participant (3PC phase 2): decision will be commit.
struct PreCommitRequest {
  TxnId txn;
};

/// Participant -> coordinator: pre-commit acknowledged.
struct PreCommitAck {
  TxnId txn;
};

/// 3PC termination protocol: elected coordinator asks participants for
/// their local state for `txn`.
struct StateQuery {
  TxnId txn;
  SiteId asker = kInvalidSite;
};

/// Participant commit-protocol state, used by the 3PC termination rule.
enum class AcpState {
  kUnknown = 0,    ///< no record of the transaction
  kActive,         ///< received ops but no prepare
  kPrepared,       ///< voted YES, uncertain
  kPreCommitted,   ///< 3PC: received pre-commit
  kCommitted,
  kAborted,
};

const char* AcpStateName(AcpState s);

struct StateReply {
  TxnId txn;
  AcpState state = AcpState::kUnknown;
};

/// Replica -> home site: your transaction was aborted here (wounded or
/// picked as a deadlock victim) after an access had already been granted.
struct RemoteAbortNotify {
  TxnId txn;
  AbortCause cause = AbortCause::kCcp;
  DenyReason reason = DenyReason::kNone;
};

/// Recovered site -> peer: send me your copies of these items so I can
/// catch up (recovery refresh).
struct RefreshRequest {
  std::vector<ItemId> items;
};

/// Peer -> recovered site: item copies with versions; the recovering
/// site adopts any entry newer than its own.
struct RefreshReply {
  struct Entry {
    ItemId item = kInvalidItem;
    Value value = 0;
    Version version = 0;
  };
  std::vector<Entry> entries;
};

/// Edge-chasing distributed deadlock detection (Chandy–Misra–Haas):
/// "transaction `holder` is on a waits-for path starting at
/// `initiator`". Sent to the holder's home site, which — if the holder
/// is itself blocked — forwards the probe along its outstanding
/// requests. A probe whose next hop IS the initiator closes a cycle;
/// the initiator is aborted.
struct DeadlockProbe {
  TxnId initiator;
  TxnId holder;
  uint32_t hops = 0;  ///< traversal depth (loop safety valve)
};

/// Home site of a blocked holder -> replica site it is waiting on:
/// "is `waiter` queued at your CC, and behind whom?".
struct DeadlockProbeCheck {
  TxnId initiator;
  TxnId waiter;
  uint32_t hops = 0;
};

using Payload =
    std::variant<NsLookupRequest, NsLookupReply, ReadRequest, ReadReply,
                 PrewriteRequest, PrewriteReply, AbortRequest, PrepareRequest,
                 VoteReply, Decision, Ack, DecisionQuery, DecisionInfo,
                 PreCommitRequest, PreCommitAck, StateQuery, StateReply,
                 RemoteAbortNotify, RefreshRequest, RefreshReply,
                 DeadlockProbe, DeadlockProbeCheck>;

/// Returns the MessageKind tag for a payload.
MessageKind MessageKindOf(const Payload& p);

/// The transaction a payload belongs to, or an invalid TxnId for
/// payloads that are not transaction-scoped (refresh traffic). Deadlock
/// probes are attributed to the initiator whose cycle they chase.
TxnId PayloadTxnId(const Payload& p);

/// Approximate wire size in bytes, for byte-traffic statistics.
size_t PayloadSizeBytes(const Payload& p);

/// A message in flight: envelope plus typed payload.
struct Message {
  uint64_t id = 0;  ///< unique per network, assigned at send
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  SimTime sent_at = 0;
  /// RPC correlation id (net/rpc.h). 0 means "not an RPC message";
  /// nonzero ids are unique per sending endpoint and stable across
  /// retransmissions of the same logical request.
  uint64_t rpc_id = 0;
  /// Distinguishes the reply leg of an RPC exchange from the request.
  bool rpc_is_reply = false;
  Payload payload;

  MessageKind kind() const { return MessageKindOf(payload); }
  /// Short human-readable form for traces: "ReadRequest T3@1 x".
  std::string Describe() const;
};

}  // namespace rainbow

#endif  // RAINBOW_NET_MESSAGE_H_
