#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "net/codec.h"
#include "sim/sharded_simulator.h"

#include "common/string_util.h"

namespace rainbow {

const char* DropCauseName(DropCause c) {
  switch (c) {
    case DropCause::kRandomLoss:
      return "random_loss";
    case DropCause::kLinkDown:
      return "link_down";
    case DropCause::kPartition:
      return "partition";
    case DropCause::kDestinationDown:
      return "destination_down";
    case DropCause::kSourceDown:
      return "source_down";
    case DropCause::kLinkLoss:
      return "link_loss";
    case DropCause::kCount:
      break;
  }
  return "?";
}

uint64_t NetworkStats::total_dropped() const {
  uint64_t n = 0;
  for (uint64_t d : dropped) n += d;
  return n;
}

void NetworkStats::RecordSend(const Message& m, SimTime now,
                              size_t bytes_size) {
  sent++;
  bytes += bytes_size;
  by_kind[static_cast<size_t>(m.kind())]++;
  if (m.from == m.to) {
    local++;
  } else {
    size_t bucket = static_cast<size_t>(now / bucket_width);
    if (bucket >= per_bucket.size()) per_bucket.resize(bucket + 1, 0);
    per_bucket[bucket]++;
  }
}

void NetworkStats::RecordDeliver(const Message& m) {
  delivered++;
  per_site_delivered[m.to]++;
}

namespace {

void AppendPerSiteEntry(std::ostringstream& os, SiteId site, uint64_t count) {
  if (site == kNameServerId) {
    os << " ns=" << count;
  } else {
    os << " s" << site << "=" << count;
  }
}

}  // namespace

void NetworkStats::RecordDrop(DropCause cause) {
  dropped[static_cast<size_t>(cause)]++;
}

void NetworkStats::MergeFrom(const NetworkStats& other) {
  sent += other.sent;
  delivered += other.delivered;
  local += other.local;
  bytes += other.bytes;
  duplicated += other.duplicated;
  for (size_t k = 0; k < by_kind.size(); ++k) by_kind[k] += other.by_kind[k];
  for (size_t c = 0; c < dropped.size(); ++c) dropped[c] += other.dropped[c];
  if (other.per_bucket.size() > per_bucket.size()) {
    per_bucket.resize(other.per_bucket.size(), 0);
  }
  for (size_t b = 0; b < other.per_bucket.size(); ++b) {
    per_bucket[b] += other.per_bucket[b];
  }
  per_site_delivered.MergeFrom(other.per_site_delivered);
  codec_failures += other.codec_failures;
  rpc_calls += other.rpc_calls;
  rpc_attempts += other.rpc_attempts;
  rpc_retries += other.rpc_retries;
  rpc_timeouts += other.rpc_timeouts;
  rpc_failures += other.rpc_failures;
  rpc_duplicates_suppressed += other.rpc_duplicates_suppressed;
  rpc_stale_readmitted += other.rpc_stale_readmitted;
  rpc_latency.Merge(other.rpc_latency);
}

std::string NetworkStats::Render() const {
  std::ostringstream os;
  os << StringPrintf(
      "messages: sent=%llu (network=%llu local=%llu) delivered=%llu "
      "dropped=%llu bytes=%llu\n",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(network_sent()),
      static_cast<unsigned long long>(local),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(total_dropped()),
      static_cast<unsigned long long>(bytes));
  if (duplicated > 0) {
    os << StringPrintf("duplicated (injected): %llu\n",
                       static_cast<unsigned long long>(duplicated));
  }
  os << "by kind:";
  for (size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << MessageKindName(static_cast<MessageKind>(k)) << "="
       << by_kind[k];
  }
  os << "\n";
  os << StringPrintf(
      "rpc: calls=%llu attempts=%llu retries=%llu timeouts=%llu "
      "failures=%llu dup_suppressed=%llu stale_readmitted=%llu\n",
      static_cast<unsigned long long>(rpc_calls),
      static_cast<unsigned long long>(rpc_attempts),
      static_cast<unsigned long long>(rpc_retries),
      static_cast<unsigned long long>(rpc_timeouts),
      static_cast<unsigned long long>(rpc_failures),
      static_cast<unsigned long long>(rpc_duplicates_suppressed),
      static_cast<unsigned long long>(rpc_stale_readmitted));
  if (rpc_latency.count() > 0) {
    os << "rpc latency (us): " << rpc_latency.Summary() << "\n";
  }
  if (!per_site_delivered.empty()) {
    os << "per-site delivered:";
    per_site_delivered.ForEach([&os](SiteId site, uint64_t count) {
      AppendPerSiteEntry(os, site, count);
    });
    os << "\n";
  }
  return os.str();
}

Network::Network(Simulator* sim, LatencyConfig latency, Rng rng,
                 TraceLog* trace)
    : latency_(latency, rng.Fork()), site_seed_base_(rng.Next()) {
  Lane& lane = lanes_.emplace_back();
  lane.sim = sim;
  lane.trace = trace;
}

void Network::EnableSharding(ShardedSimulator* driver,
                             const std::vector<NetworkShardContext>& shards) {
  assert(driver != nullptr && !shards.empty());
  driver_ = driver;
  num_shards_ = static_cast<uint32_t>(shards.size());
  lanes_.clear();
  for (const NetworkShardContext& ctx : shards) {
    Lane& lane = lanes_.emplace_back();
    lane.sim = ctx.sim;
    lane.trace = ctx.trace;
    lane.collector = ctx.collector;
  }
}

uint32_t Network::ShardOf(SiteId site) const {
  return ShardedSimulator::ShardOfSite(site, num_shards_);
}

void Network::EnsureSiteTables(size_t slot) {
  while (site_rng_.size() <= slot) {
    // Stream seeds are a pure function of (network seed base, slot), so
    // a site's draw sequence does not depend on registration order or
    // on other sites' activity.
    size_t next = site_rng_.size();
    site_rng_.emplace_back(site_seed_base_ ^
                           (0x9e3779b97f4a7c15ULL * (next + 1)));
    site_msg_seq_.push_back(0);
  }
}

void Network::EmitMessageEvent(Lane& lane, TraceEventKind kind,
                               const Message& m, SiteId at, const char* note) {
  std::string detail = MessageKindName(m.kind());
  if (note[0] != '\0') {
    detail += " ";
    detail += note;
  }
  lane.collector->Emit(TraceRecord{lane.sim->Now(), kind,
                                   PayloadTxnId(m.payload), at,
                                   at == m.from ? m.to : m.from, kInvalidItem,
                                   static_cast<int64_t>(m.rpc_id),
                                   std::move(detail)});
}

void Network::RegisterHandler(SiteId site, Handler handler) {
  size_t slot = SiteSlot(site);
  if (slot >= handlers_.size()) handlers_.resize(slot + 1);
  handlers_[slot] = std::move(handler);
  EnsureSiteTables(slot);
}

void Network::SetSiteUp(SiteId site, bool up) {
  size_t slot = SiteSlot(site);
  if (slot >= site_down_.size()) {
    if (up) return;  // never marked down; nothing to restore
    site_down_.resize(slot + 1, 0);
  }
  site_down_[slot] = up ? 0 : 1;
}

bool Network::IsSiteUp(SiteId site) const {
  size_t slot = SiteSlot(site);
  return slot >= site_down_.size() || site_down_[slot] == 0;
}

void Network::SetLinkUp(SiteId a, SiteId b, bool up) {
  auto key = std::minmax(a, b);
  if (up) {
    down_links_.erase({key.first, key.second});
  } else {
    down_links_.insert({key.first, key.second});
  }
}

void Network::SetLinkUpOneWay(SiteId from, SiteId to, bool up) {
  if (up) {
    down_links_oneway_.erase({from, to});
  } else {
    down_links_oneway_.insert({from, to});
  }
}

void Network::RecomputeMinDelayMultiplier() {
  min_delay_multiplier_ = 1.0;
  for (const auto& [link, o] : link_overrides_) {
    (void)link;
    min_delay_multiplier_ = std::min(min_delay_multiplier_, o.delay_multiplier);
  }
}

void Network::SetLinkOverride(SiteId from, SiteId to, LinkOverride o) {
  if (o.identity()) {
    link_overrides_.erase({from, to});
  } else {
    link_overrides_[{from, to}] = o;
  }
  RecomputeMinDelayMultiplier();
}

const LinkOverride* Network::FindLinkOverride(SiteId from, SiteId to) const {
  auto it = link_overrides_.find({from, to});
  return it == link_overrides_.end() ? nullptr : &it->second;
}

void Network::ClearLinkOverrides() {
  link_overrides_.clear();
  min_delay_multiplier_ = 1.0;
}

SimTime Network::MinCrossShardDelay() const {
  double mult = std::min(1.0, min_delay_multiplier_);
  SimTime floor = static_cast<SimTime>(
      static_cast<double>(latency_.MinCrossSiteDelay()) * mult);
  return std::max<SimTime>(1, floor);
}

void Network::SetPartitions(const std::vector<std::vector<SiteId>>& groups) {
  partitioned_ = true;
  partition_group_.clear();
  int32_t g = 0;
  for (const auto& group : groups) {
    for (SiteId s : group) {
      size_t slot = SiteSlot(s);
      if (slot >= partition_group_.size()) {
        partition_group_.resize(slot + 1, -1);
      }
      partition_group_[slot] = g;
    }
    ++g;
  }
}

void Network::HealPartitions() {
  partitioned_ = false;
  partition_group_.clear();
}

bool Network::SameGroup(SiteId a, SiteId b) const {
  if (!partitioned_) return true;
  // Unlisted sites (e.g. the name server) share an implicit group -1.
  size_t slot_a = SiteSlot(a);
  size_t slot_b = SiteSlot(b);
  int32_t group_a =
      slot_a < partition_group_.size() ? partition_group_[slot_a] : -1;
  int32_t group_b =
      slot_b < partition_group_.size() ? partition_group_[slot_b] : -1;
  return group_a == group_b;
}

bool Network::Reachable(SiteId a, SiteId b) const {
  if (a == b) return IsSiteUp(a);
  if (!IsSiteUp(a) || !IsSiteUp(b)) return false;
  if (!down_links_.empty()) {
    auto key = std::minmax(a, b);
    if (down_links_.contains({key.first, key.second})) return false;
  }
  if (!down_links_oneway_.empty() && down_links_oneway_.contains({a, b})) {
    return false;
  }
  return SameGroup(a, b);
}

const NetworkStats& Network::stats() const {
  if (lanes_.size() == 1) return lanes_[0].stats;
  merged_stats_ = NetworkStats{};
  merged_stats_.bucket_width = lanes_[0].stats.bucket_width;
  for (const Lane& lane : lanes_) merged_stats_.MergeFrom(lane.stats);
  return merged_stats_;
}

NetworkStats& Network::stats_for(SiteId site) { return LaneFor(site).stats; }

void Network::set_stats_bucket_width(SimTime width) {
  for (Lane& lane : lanes_) lane.stats.bucket_width = width;
}

void Network::Send(SiteId from, SiteId to, Payload payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  SendMessage(std::move(msg));
}

void Network::SendRpc(SiteId from, SiteId to, Payload payload,
                      uint64_t rpc_id, bool is_reply) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.rpc_id = rpc_id;
  msg.rpc_is_reply = is_reply;
  msg.payload = std::move(payload);
  SendMessage(std::move(msg));
}

void Network::SendMessage(Message msg) {
  size_t from_slot = SiteSlot(msg.from);
  EnsureSiteTables(from_slot);
  Lane& lane = LaneFor(msg.from);
  Rng& rng = SiteRng(from_slot);
  msg.id = NextMsgId(from_slot);
  msg.sent_at = lane.sim->Now();

  size_t size = PayloadSizeBytes(msg.payload);
  if (verify_codec_) {
    // Arena-backed round trip: encode into the lane's reusable arena
    // and decode the view in place — no per-message buffer allocation
    // or copy on codec-verified runs.
    std::span<const uint8_t> wire = EncodePayloadTo(lane.arena, msg.payload);
    size = wire.size() + 33;  // payload bytes + envelope
    Result<Payload> decoded = DecodePayload(wire);
    if (!decoded.ok()) {
      lane.stats.codec_failures++;
      if (lane.trace && lane.trace->enabled()) {
        lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.from,
                           "CODEC FAILURE " + decoded.status().ToString());
      }
      return;
    }
    msg.payload = std::move(decoded).value();
  }
  lane.stats.RecordSend(msg, lane.sim->Now(), size);

  if (!IsSiteUp(msg.from)) {
    lane.stats.RecordDrop(DropCause::kSourceDown);
    if (lane.trace && lane.trace->enabled()) {
      lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.from,
                         "DROP(source down) " + msg.Describe());
    }
    if (lane.collector && lane.collector->full()) {
      EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.from,
                       DropCauseName(DropCause::kSourceDown));
    }
    return;
  }
  if (msg.from != msg.to && loss_probability_ > 0 &&
      rng.NextBool(loss_probability_)) {
    lane.stats.RecordDrop(DropCause::kRandomLoss);
    if (lane.trace && lane.trace->enabled()) {
      lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.from,
                         "DROP(random) " + msg.Describe());
    }
    if (lane.collector && lane.collector->full()) {
      EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.from,
                       DropCauseName(DropCause::kRandomLoss));
    }
    return;
  }

  SimTime delay = latency_.SampleDelay(msg.from, msg.to, size, rng);
  bool duplicate = false;
  // Per-link fault overrides. The emptiness check is the entire cost of
  // this feature on a fault-free run.
  if (!link_overrides_.empty() && msg.from != msg.to) {
    if (const LinkOverride* o = FindLinkOverride(msg.from, msg.to)) {
      if (o->loss > 0 && rng.NextBool(o->loss)) {
        lane.stats.RecordDrop(DropCause::kLinkLoss);
        if (lane.trace && lane.trace->enabled()) {
          lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.from,
                             "DROP(link loss) " + msg.Describe());
        }
        if (lane.collector && lane.collector->full()) {
          EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.from,
                           DropCauseName(DropCause::kLinkLoss));
        }
        return;
      }
      if (o->delay_multiplier != 1.0) {
        delay = static_cast<SimTime>(static_cast<double>(delay) *
                                     o->delay_multiplier);
      }
      if (o->reorder_jitter > 0) {
        // Independent uniform jitter per message lets later sends
        // overtake earlier ones — bounded reordering, bounded by the
        // jitter window.
        delay += static_cast<SimTime>(
            rng.NextUint(static_cast<uint64_t>(o->reorder_jitter) + 1));
      }
      duplicate = o->dup_probability > 0 && rng.NextBool(o->dup_probability);
    }
  }
  // Cross-site messages take at least one tick: MinCrossShardDelay's
  // guarantee (the conservative lookahead) must hold even when a
  // delay_multiplier shrinks the sample to zero.
  if (msg.from != msg.to) delay = std::max<SimTime>(delay, 1);
  if (lane.trace && lane.trace->enabled()) {
    lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.from,
                       "SEND " + msg.Describe());
  }
  if (lane.collector && lane.collector->full()) {
    EmitMessageEvent(lane, TraceEventKind::kMsgSend, msg, msg.from, "");
  }
  if (duplicate) {
    // The duplicate travels independently: its own delay sample (plus
    // the same override treatment minus further duplication), so it can
    // arrive before OR after the original.
    lane.stats.duplicated++;
    SimTime dup_delay = latency_.SampleDelay(msg.from, msg.to, size, rng);
    if (const LinkOverride* o = FindLinkOverride(msg.from, msg.to)) {
      if (o->delay_multiplier != 1.0) {
        dup_delay = static_cast<SimTime>(static_cast<double>(dup_delay) *
                                         o->delay_multiplier);
      }
      if (o->reorder_jitter > 0) {
        dup_delay += static_cast<SimTime>(
            rng.NextUint(static_cast<uint64_t>(o->reorder_jitter) + 1));
      }
    }
    dup_delay = std::max<SimTime>(dup_delay, 1);
    // The injected copy is its own wire-level message: it gets a fresh
    // network id (so per-message accounting and trace timelines can
    // tell the copies apart, and same-tick arrivals order by id) while
    // keeping the rpc_id, which is what duplicate suppression keys on.
    // The original is handed to ScheduleDelivery first so per-sender
    // arrivals there are monotone in id — the invariant delivery
    // batching relies on. Same-tick ordering is by id either way.
    Message dup = msg;
    dup.id = NextMsgId(from_slot);
    ScheduleDelivery(std::move(msg), delay);
    ScheduleDelivery(std::move(dup), dup_delay);
    return;
  }
  ScheduleDelivery(std::move(msg), delay);
}

uint32_t Network::AcquireSlot(Lane& lane) {
  if (!lane.pool_free.empty()) {
    uint32_t slot = lane.pool_free.back();
    lane.pool_free.pop_back();
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(lane.pool.size());
  lane.pool.emplace_back();
  lane.pool_next.push_back(kNoSlot);
  return slot;
}

void Network::ReleaseSlot(Lane& lane, uint32_t slot) {
  lane.pool_free.push_back(slot);
}

void Network::ScheduleDelivery(Message msg, SimTime delay) {
  uint32_t src_shard = ShardOf(msg.from);
  uint32_t dst_shard = ShardOf(msg.to);
  SimTime when = lanes_[src_shard].sim->Now() + delay;
  // The delivery's ordering key: same-tick arrivals at a destination
  // execute in (sender, per-sender sequence) order — a pure function of
  // message identity, independent of shard count and of the real-time
  // order in which shards inserted them.
  uint64_t key = msg.id;
  if (dst_shard != src_shard) {
    // Cross-shard hop: post the message (by value) to the destination
    // shard's mailbox; its worker drains it at the next barrier. The
    // lookahead rule guarantees `when` is at/after that barrier.
    driver_->PostToShard(dst_shard, when, key,
                         [this, m = std::move(msg)] { Deliver(m); });
    return;
  }
  Lane& lane = lanes_[dst_shard];
  uint32_t slot = AcquireSlot(lane);
  uint32_t sender_slot = static_cast<uint32_t>(SiteSlot(msg.from));
  uint32_t dst_slot = static_cast<uint32_t>(SiteSlot(msg.to));
  lane.pool[slot] = std::move(msg);
  lane.pool_next[slot] = kNoSlot;

  // Same-tick batching: if the destination's open batch matches this
  // (sender, destination, instant), chain the message onto it — no new
  // event. Appends keep the batch's ids contiguous and increasing (see
  // Batch): SendMessage hands messages over in per-sender id order.
  if (dst_slot < lane.open_batch.size()) {
    uint32_t open = lane.open_batch[dst_slot];
    if (open != kNoSlot) {
      Batch& b = lane.batches[open];
      if (b.open && b.when == when && b.sender_slot == sender_slot) {
        lane.pool_next[b.tail] = slot;
        b.tail = slot;
        return;
      }
    }
  }

  // Open a new batch for this (sender, destination, instant); it
  // supersedes whatever batch was open for the destination before.
  uint32_t batch_idx;
  if (!lane.batch_free.empty()) {
    batch_idx = lane.batch_free.back();
    lane.batch_free.pop_back();
  } else {
    batch_idx = static_cast<uint32_t>(lane.batches.size());
    lane.batches.emplace_back();
  }
  Batch& b = lane.batches[batch_idx];
  b.head = b.tail = slot;
  b.when = when;
  b.sender_slot = sender_slot;
  b.dst_slot = dst_slot;
  b.open = true;
  if (dst_slot >= lane.open_batch.size()) {
    lane.open_batch.resize(dst_slot + 1, kNoSlot);
  }
  lane.open_batch[dst_slot] = batch_idx;

  auto thunk = [this, dst_shard, batch_idx] {
    DeliverBatch(dst_shard, batch_idx);
  };
  static_assert(sizeof(thunk) <= EventQueue::kInlineCallbackBytes,
                "delivery closure must fit the event queue's inline "
                "callback storage (the zero-allocation hot path)");
  lane.sim->AtKeyed(when, key, std::move(thunk));
}

void Network::DeliverBatch(uint32_t lane_idx, uint32_t batch_idx) {
  Lane& lane = lanes_[lane_idx];
  uint32_t slot;
  {
    // Handlers invoked below may send, growing `batches` — don't hold
    // the reference across the walk.
    Batch& b = lane.batches[batch_idx];
    b.open = false;
    if (lane.open_batch[b.dst_slot] == batch_idx) {
      lane.open_batch[b.dst_slot] = kNoSlot;
    }
    slot = b.head;
  }
  while (slot != kNoSlot) {
    uint32_t next = lane.pool_next[slot];
    Deliver(lane.pool[slot]);
    ReleaseSlot(lane, slot);
    slot = next;
  }
  lane.batch_free.push_back(batch_idx);
}

void Network::Deliver(const Message& msg) {
  Lane& lane = LaneFor(msg.to);
  // Connectivity is re-checked at delivery time so that faults striking
  // while a message is in flight drop it.
  if (!IsSiteUp(msg.to)) {
    lane.stats.RecordDrop(DropCause::kDestinationDown);
    if (lane.trace && lane.trace->enabled()) {
      lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.to,
                         "DROP(dest down) " + msg.Describe());
    }
    if (lane.collector && lane.collector->full()) {
      EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.to,
                       DropCauseName(DropCause::kDestinationDown));
    }
    return;
  }
  if (msg.from != msg.to) {
    bool link_down = false;
    if (!down_links_.empty()) {
      auto key = std::minmax(msg.from, msg.to);
      link_down = down_links_.contains({key.first, key.second});
    }
    if (!link_down && !down_links_oneway_.empty()) {
      link_down = down_links_oneway_.contains({msg.from, msg.to});
    }
    if (link_down) {
      lane.stats.RecordDrop(DropCause::kLinkDown);
      if (lane.trace && lane.trace->enabled()) {
        lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.to,
                           "DROP(link down) " + msg.Describe());
      }
      if (lane.collector && lane.collector->full()) {
        EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.to,
                         DropCauseName(DropCause::kLinkDown));
      }
      return;
    }
    if (!SameGroup(msg.from, msg.to)) {
      lane.stats.RecordDrop(DropCause::kPartition);
      if (lane.trace && lane.trace->enabled()) {
        lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.to,
                           "DROP(partition) " + msg.Describe());
      }
      if (lane.collector && lane.collector->full()) {
        EmitMessageEvent(lane, TraceEventKind::kMsgDrop, msg, msg.to,
                         DropCauseName(DropCause::kPartition));
      }
      return;
    }
  }
  size_t slot = SiteSlot(msg.to);
  if (slot >= handlers_.size() || !handlers_[slot]) {
    lane.stats.RecordDrop(DropCause::kDestinationDown);
    return;
  }
  lane.stats.RecordDeliver(msg);
  if (lane.trace && lane.trace->enabled()) {
    lane.trace->Record(lane.sim->Now(), TraceCategory::kNet, msg.to,
                       "RECV " + msg.Describe());
  }
  if (lane.collector && lane.collector->full()) {
    EmitMessageEvent(lane, TraceEventKind::kMsgRecv, msg, msg.to, "");
  }
  handlers_[slot](msg);
}

}  // namespace rainbow
