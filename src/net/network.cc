#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "net/codec.h"

#include "common/string_util.h"

namespace rainbow {

const char* DropCauseName(DropCause c) {
  switch (c) {
    case DropCause::kRandomLoss:
      return "random_loss";
    case DropCause::kLinkDown:
      return "link_down";
    case DropCause::kPartition:
      return "partition";
    case DropCause::kDestinationDown:
      return "destination_down";
    case DropCause::kSourceDown:
      return "source_down";
    case DropCause::kLinkLoss:
      return "link_loss";
    case DropCause::kCount:
      break;
  }
  return "?";
}

uint64_t NetworkStats::total_dropped() const {
  uint64_t n = 0;
  for (uint64_t d : dropped) n += d;
  return n;
}

void NetworkStats::RecordSend(const Message& m, SimTime now,
                              size_t bytes_size) {
  sent++;
  bytes += bytes_size;
  by_kind[static_cast<size_t>(m.kind())]++;
  if (m.from == m.to) {
    local++;
  } else {
    size_t bucket = static_cast<size_t>(now / bucket_width);
    if (bucket >= per_bucket.size()) per_bucket.resize(bucket + 1, 0);
    per_bucket[bucket]++;
  }
}

void NetworkStats::RecordDeliver(const Message& m) {
  delivered++;
  per_site_delivered[m.to]++;
}

namespace {

void AppendPerSiteEntry(std::ostringstream& os, SiteId site, uint64_t count) {
  if (site == kNameServerId) {
    os << " ns=" << count;
  } else {
    os << " s" << site << "=" << count;
  }
}

}  // namespace

void NetworkStats::RecordDrop(DropCause cause) {
  dropped[static_cast<size_t>(cause)]++;
}

std::string NetworkStats::Render() const {
  std::ostringstream os;
  os << StringPrintf(
      "messages: sent=%llu (network=%llu local=%llu) delivered=%llu "
      "dropped=%llu bytes=%llu\n",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(network_sent()),
      static_cast<unsigned long long>(local),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(total_dropped()),
      static_cast<unsigned long long>(bytes));
  if (duplicated > 0) {
    os << StringPrintf("duplicated (injected): %llu\n",
                       static_cast<unsigned long long>(duplicated));
  }
  os << "by kind:";
  for (size_t k = 0; k < by_kind.size(); ++k) {
    if (by_kind[k] == 0) continue;
    os << " " << MessageKindName(static_cast<MessageKind>(k)) << "="
       << by_kind[k];
  }
  os << "\n";
  os << StringPrintf(
      "rpc: calls=%llu attempts=%llu retries=%llu timeouts=%llu "
      "failures=%llu dup_suppressed=%llu stale_readmitted=%llu\n",
      static_cast<unsigned long long>(rpc_calls),
      static_cast<unsigned long long>(rpc_attempts),
      static_cast<unsigned long long>(rpc_retries),
      static_cast<unsigned long long>(rpc_timeouts),
      static_cast<unsigned long long>(rpc_failures),
      static_cast<unsigned long long>(rpc_duplicates_suppressed),
      static_cast<unsigned long long>(rpc_stale_readmitted));
  if (rpc_latency.count() > 0) {
    os << "rpc latency (us): " << rpc_latency.Summary() << "\n";
  }
  if (!per_site_delivered.empty()) {
    os << "per-site delivered:";
    per_site_delivered.ForEach([&os](SiteId site, uint64_t count) {
      AppendPerSiteEntry(os, site, count);
    });
    os << "\n";
  }
  return os.str();
}

Network::Network(Simulator* sim, LatencyConfig latency, Rng rng,
                 TraceLog* trace)
    : sim_(sim), latency_(latency, rng.Fork()), rng_(rng), trace_(trace) {}

void Network::EmitMessageEvent(TraceEventKind kind, const Message& m,
                               SiteId at, const char* note) {
  std::string detail = MessageKindName(m.kind());
  if (note[0] != '\0') {
    detail += " ";
    detail += note;
  }
  collector_->Emit(TraceRecord{sim_->Now(), kind, PayloadTxnId(m.payload), at,
                               at == m.from ? m.to : m.from, kInvalidItem,
                               static_cast<int64_t>(m.rpc_id),
                               std::move(detail)});
}

void Network::RegisterHandler(SiteId site, Handler handler) {
  size_t slot = SiteSlot(site);
  if (slot >= handlers_.size()) handlers_.resize(slot + 1);
  handlers_[slot] = std::move(handler);
}

void Network::SetSiteUp(SiteId site, bool up) {
  size_t slot = SiteSlot(site);
  if (slot >= site_down_.size()) {
    if (up) return;  // never marked down; nothing to restore
    site_down_.resize(slot + 1, 0);
  }
  site_down_[slot] = up ? 0 : 1;
}

bool Network::IsSiteUp(SiteId site) const {
  size_t slot = SiteSlot(site);
  return slot >= site_down_.size() || site_down_[slot] == 0;
}

void Network::SetLinkUp(SiteId a, SiteId b, bool up) {
  auto key = std::minmax(a, b);
  if (up) {
    down_links_.erase({key.first, key.second});
  } else {
    down_links_.insert({key.first, key.second});
  }
}

void Network::SetLinkUpOneWay(SiteId from, SiteId to, bool up) {
  if (up) {
    down_links_oneway_.erase({from, to});
  } else {
    down_links_oneway_.insert({from, to});
  }
}

void Network::SetLinkOverride(SiteId from, SiteId to, LinkOverride o) {
  if (o.identity()) {
    link_overrides_.erase({from, to});
  } else {
    link_overrides_[{from, to}] = o;
  }
}

const LinkOverride* Network::FindLinkOverride(SiteId from, SiteId to) const {
  auto it = link_overrides_.find({from, to});
  return it == link_overrides_.end() ? nullptr : &it->second;
}

void Network::ClearLinkOverrides() { link_overrides_.clear(); }

void Network::SetPartitions(const std::vector<std::vector<SiteId>>& groups) {
  partitioned_ = true;
  partition_group_.clear();
  int32_t g = 0;
  for (const auto& group : groups) {
    for (SiteId s : group) {
      size_t slot = SiteSlot(s);
      if (slot >= partition_group_.size()) {
        partition_group_.resize(slot + 1, -1);
      }
      partition_group_[slot] = g;
    }
    ++g;
  }
}

void Network::HealPartitions() {
  partitioned_ = false;
  partition_group_.clear();
}

bool Network::SameGroup(SiteId a, SiteId b) const {
  if (!partitioned_) return true;
  // Unlisted sites (e.g. the name server) share an implicit group -1.
  size_t slot_a = SiteSlot(a);
  size_t slot_b = SiteSlot(b);
  int32_t group_a =
      slot_a < partition_group_.size() ? partition_group_[slot_a] : -1;
  int32_t group_b =
      slot_b < partition_group_.size() ? partition_group_[slot_b] : -1;
  return group_a == group_b;
}

bool Network::Reachable(SiteId a, SiteId b) const {
  if (a == b) return IsSiteUp(a);
  if (!IsSiteUp(a) || !IsSiteUp(b)) return false;
  if (!down_links_.empty()) {
    auto key = std::minmax(a, b);
    if (down_links_.contains({key.first, key.second})) return false;
  }
  if (!down_links_oneway_.empty() && down_links_oneway_.contains({a, b})) {
    return false;
  }
  return SameGroup(a, b);
}

void Network::Send(SiteId from, SiteId to, Payload payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  SendMessage(std::move(msg));
}

void Network::SendRpc(SiteId from, SiteId to, Payload payload,
                      uint64_t rpc_id, bool is_reply) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.rpc_id = rpc_id;
  msg.rpc_is_reply = is_reply;
  msg.payload = std::move(payload);
  SendMessage(std::move(msg));
}

void Network::SendMessage(Message msg) {
  msg.id = next_msg_id_++;
  msg.sent_at = sim_->Now();

  size_t size = PayloadSizeBytes(msg.payload);
  if (verify_codec_) {
    std::vector<uint8_t> wire = EncodePayload(msg.payload);
    size = wire.size() + 33;  // payload bytes + envelope
    Result<Payload> decoded = DecodePayload(wire);
    if (!decoded.ok()) {
      stats_.codec_failures++;
      if (trace_ && trace_->enabled()) {
        trace_->Record(sim_->Now(), TraceCategory::kNet, msg.from,
                       "CODEC FAILURE " + decoded.status().ToString());
      }
      return;
    }
    msg.payload = std::move(decoded).value();
  }
  stats_.RecordSend(msg, sim_->Now(), size);

  if (!IsSiteUp(msg.from)) {
    stats_.RecordDrop(DropCause::kSourceDown);
    if (trace_ && trace_->enabled()) {
      trace_->Record(sim_->Now(), TraceCategory::kNet, msg.from,
                     "DROP(source down) " + msg.Describe());
    }
    if (collector_ && collector_->full()) {
      EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.from,
                       DropCauseName(DropCause::kSourceDown));
    }
    return;
  }
  if (msg.from != msg.to && loss_probability_ > 0 &&
      rng_.NextBool(loss_probability_)) {
    stats_.RecordDrop(DropCause::kRandomLoss);
    if (trace_ && trace_->enabled()) {
      trace_->Record(sim_->Now(), TraceCategory::kNet, msg.from,
                     "DROP(random) " + msg.Describe());
    }
    if (collector_ && collector_->full()) {
      EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.from,
                       DropCauseName(DropCause::kRandomLoss));
    }
    return;
  }

  SimTime delay = latency_.SampleDelay(msg.from, msg.to, size);
  bool duplicate = false;
  // Per-link fault overrides. The emptiness check is the entire cost of
  // this feature on a fault-free run.
  if (!link_overrides_.empty() && msg.from != msg.to) {
    if (const LinkOverride* o = FindLinkOverride(msg.from, msg.to)) {
      if (o->loss > 0 && rng_.NextBool(o->loss)) {
        stats_.RecordDrop(DropCause::kLinkLoss);
        if (trace_ && trace_->enabled()) {
          trace_->Record(sim_->Now(), TraceCategory::kNet, msg.from,
                         "DROP(link loss) " + msg.Describe());
        }
        if (collector_ && collector_->full()) {
          EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.from,
                           DropCauseName(DropCause::kLinkLoss));
        }
        return;
      }
      if (o->delay_multiplier != 1.0) {
        delay = static_cast<SimTime>(static_cast<double>(delay) *
                                     o->delay_multiplier);
      }
      if (o->reorder_jitter > 0) {
        // Independent uniform jitter per message lets later sends
        // overtake earlier ones — bounded reordering, bounded by the
        // jitter window.
        delay += static_cast<SimTime>(
            rng_.NextUint(static_cast<uint64_t>(o->reorder_jitter) + 1));
      }
      duplicate = o->dup_probability > 0 && rng_.NextBool(o->dup_probability);
    }
  }
  if (trace_ && trace_->enabled()) {
    trace_->Record(sim_->Now(), TraceCategory::kNet, msg.from,
                   "SEND " + msg.Describe());
  }
  if (collector_ && collector_->full()) {
    EmitMessageEvent(TraceEventKind::kMsgSend, msg, msg.from, "");
  }
  if (duplicate) {
    // The duplicate travels independently: its own delay sample (plus
    // the same override treatment minus further duplication), so it can
    // arrive before OR after the original.
    stats_.duplicated++;
    SimTime dup_delay = latency_.SampleDelay(msg.from, msg.to, size);
    if (const LinkOverride* o = FindLinkOverride(msg.from, msg.to)) {
      if (o->delay_multiplier != 1.0) {
        dup_delay = static_cast<SimTime>(static_cast<double>(dup_delay) *
                                         o->delay_multiplier);
      }
      if (o->reorder_jitter > 0) {
        dup_delay += static_cast<SimTime>(
            rng_.NextUint(static_cast<uint64_t>(o->reorder_jitter) + 1));
      }
    }
    // The injected copy is its own wire-level message: it gets a fresh
    // network id (so per-message accounting and trace timelines can
    // tell the copies apart) while keeping the rpc_id, which is what
    // duplicate suppression keys on.
    Message dup = msg;
    dup.id = next_msg_id_++;
    ScheduleDelivery(std::move(dup), dup_delay);
  }
  ScheduleDelivery(std::move(msg), delay);
}

uint32_t Network::AcquireSlot() {
  if (!pool_free_.empty()) {
    uint32_t slot = pool_free_.back();
    pool_free_.pop_back();
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void Network::ReleaseSlot(uint32_t slot) { pool_free_.push_back(slot); }

void Network::ScheduleDelivery(Message msg, SimTime delay) {
  uint32_t slot = AcquireSlot();
  pool_[slot] = std::move(msg);
  auto thunk = [this, slot] { DeliverPooled(slot); };
  static_assert(sizeof(thunk) <= EventQueue::kInlineCallbackBytes,
                "delivery closure must fit the event queue's inline "
                "callback storage (the zero-allocation hot path)");
  sim_->After(delay, std::move(thunk));
}

void Network::DeliverPooled(uint32_t slot) {
  Deliver(pool_[slot]);
  ReleaseSlot(slot);
}

void Network::Deliver(const Message& msg) {
  // Connectivity is re-checked at delivery time so that faults striking
  // while a message is in flight drop it.
  if (!IsSiteUp(msg.to)) {
    stats_.RecordDrop(DropCause::kDestinationDown);
    if (trace_ && trace_->enabled()) {
      trace_->Record(sim_->Now(), TraceCategory::kNet, msg.to,
                     "DROP(dest down) " + msg.Describe());
    }
    if (collector_ && collector_->full()) {
      EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.to,
                       DropCauseName(DropCause::kDestinationDown));
    }
    return;
  }
  if (msg.from != msg.to) {
    bool link_down = false;
    if (!down_links_.empty()) {
      auto key = std::minmax(msg.from, msg.to);
      link_down = down_links_.contains({key.first, key.second});
    }
    if (!link_down && !down_links_oneway_.empty()) {
      link_down = down_links_oneway_.contains({msg.from, msg.to});
    }
    if (link_down) {
      stats_.RecordDrop(DropCause::kLinkDown);
      if (trace_ && trace_->enabled()) {
        trace_->Record(sim_->Now(), TraceCategory::kNet, msg.to,
                       "DROP(link down) " + msg.Describe());
      }
      if (collector_ && collector_->full()) {
        EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.to,
                         DropCauseName(DropCause::kLinkDown));
      }
      return;
    }
    if (!SameGroup(msg.from, msg.to)) {
      stats_.RecordDrop(DropCause::kPartition);
      if (trace_ && trace_->enabled()) {
        trace_->Record(sim_->Now(), TraceCategory::kNet, msg.to,
                       "DROP(partition) " + msg.Describe());
      }
      if (collector_ && collector_->full()) {
        EmitMessageEvent(TraceEventKind::kMsgDrop, msg, msg.to,
                         DropCauseName(DropCause::kPartition));
      }
      return;
    }
  }
  size_t slot = SiteSlot(msg.to);
  if (slot >= handlers_.size() || !handlers_[slot]) {
    stats_.RecordDrop(DropCause::kDestinationDown);
    return;
  }
  stats_.RecordDeliver(msg);
  if (trace_ && trace_->enabled()) {
    trace_->Record(sim_->Now(), TraceCategory::kNet, msg.to,
                   "RECV " + msg.Describe());
  }
  if (collector_ && collector_->full()) {
    EmitMessageEvent(TraceEventKind::kMsgRecv, msg, msg.to, "");
  }
  handlers_[slot](msg);
}

}  // namespace rainbow
