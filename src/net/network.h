#ifndef RAINBOW_NET_NETWORK_H_
#define RAINBOW_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/latency_model.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace rainbow {

class ShardedSimulator;

/// Why a message never reached its destination.
enum class DropCause {
  kRandomLoss,
  kLinkDown,
  kPartition,
  kDestinationDown,
  kSourceDown,
  kLinkLoss,  ///< per-link loss override (fault injector / nemesis)
  kCount,
};

const char* DropCauseName(DropCause c);

/// Flat per-site counter table. Site ids are small dense integers
/// assigned from 0 upward, so a counter lookup is a bounds check plus
/// an array index instead of a hash probe; the name server's reserved
/// huge id maps to slot 0 (regular site s lives in slot s + 1) to keep
/// the table dense.
class PerSiteCounters {
 public:
  /// Counter for `site`, growing the table as needed.
  uint64_t& operator[](SiteId site) {
    size_t slot = Slot(site);
    if (slot >= counts_.size()) counts_.resize(slot + 1, 0);
    return counts_[slot];
  }

  /// Counter for `site`; 0 if never touched.
  uint64_t Get(SiteId site) const {
    size_t slot = Slot(site);
    return slot < counts_.size() ? counts_[slot] : 0;
  }

  /// True if every counter is zero.
  bool empty() const {
    for (uint64_t c : counts_) {
      if (c != 0) return false;
    }
    return true;
  }

  /// Adds every counter of `other` into this table (per-shard counter
  /// merge for the sharded kernel).
  void MergeFrom(const PerSiteCounters& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }

  /// Visits (site, count) for every nonzero counter: regular sites in
  /// ascending id order, the name server last — the order renders show
  /// (previously achieved by sorting an unordered_map snapshot).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 1; i < counts_.size(); ++i) {
      if (counts_[i] != 0) fn(static_cast<SiteId>(i - 1), counts_[i]);
    }
    if (!counts_.empty() && counts_[0] != 0) fn(kNameServerId, counts_[0]);
  }

 private:
  static size_t Slot(SiteId site) {
    return site == kNameServerId ? 0 : static_cast<size_t>(site) + 1;
  }
  std::vector<uint64_t> counts_;
};

/// Per-directed-link fault overrides, installed by the fault injector
/// (and composed by the nemesis schedule generator). The default value
/// is the identity: no extra loss, unscaled delay, no duplication, no
/// reordering. Overrides are directional — an override on a→b leaves
/// b→a untouched — which is what makes asymmetric network pathologies
/// (grey failures, one-way congestion) expressible.
struct LinkOverride {
  double loss = 0.0;              ///< extra per-message loss probability
  double delay_multiplier = 1.0;  ///< scales the sampled one-way delay
  double dup_probability = 0.0;   ///< chance the message is delivered twice
  SimTime reorder_jitter = 0;     ///< extra uniform delay in [0, jitter]

  bool identity() const {
    return loss == 0.0 && delay_multiplier == 1.0 && dup_probability == 0.0 &&
           reorder_jitter == 0;
  }
  bool operator==(const LinkOverride&) const = default;
};

/// Traffic accounting for the simulated network. Feeds the paper's
/// "total number of messages generated per time unit" and message-kind
/// breakdown statistics.
struct NetworkStats {
  uint64_t sent = 0;          ///< all Send() calls (incl. local)
  uint64_t delivered = 0;
  uint64_t local = 0;         ///< from == to (not counted as network traffic)
  uint64_t bytes = 0;
  /// Extra copies injected by per-link duplication overrides (each such
  /// copy is delivered — or dropped — in addition to the original).
  uint64_t duplicated = 0;
  std::array<uint64_t, static_cast<size_t>(MessageKind::kCount)> by_kind{};
  std::array<uint64_t, static_cast<size_t>(DropCause::kCount)> dropped{};
  /// Messages per bucket of `bucket_width` simulated time.
  SimTime bucket_width = Millis(100);
  std::vector<uint64_t> per_bucket;
  /// Messages handled per destination site (load-balance indicator).
  PerSiteCounters per_site_delivered;
  /// Wire-codec round-trip failures (must stay zero).
  uint64_t codec_failures = 0;
  /// RPC sub-layer accounting (net/rpc.h). Attempts include the first
  /// transmission; retries are the retransmissions after an attempt
  /// timeout; failures are calls that exhausted every attempt.
  uint64_t rpc_calls = 0;
  uint64_t rpc_attempts = 0;
  uint64_t rpc_retries = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t rpc_failures = 0;
  uint64_t rpc_duplicates_suppressed = 0;
  /// Retransmissions whose id had been evicted from the suppression
  /// window (so no cached reply existed) and were served again rather
  /// than silently dropped.
  uint64_t rpc_stale_readmitted = 0;
  /// End-to-end latency (first send to reply) of successful RPC calls.
  Histogram rpc_latency;

  uint64_t total_dropped() const;
  uint64_t network_sent() const { return sent - local; }
  void RecordSend(const Message& m, SimTime now, size_t bytes_size);
  void RecordDeliver(const Message& m);
  void RecordDrop(DropCause cause);
  /// Adds `other`'s counters into this one (sharded-lane merge). All
  /// sums, histogram merges, and elementwise bucket adds; bucket_width
  /// is assumed equal.
  void MergeFrom(const NetworkStats& other);
  std::string Render() const;
};

/// Per-shard execution context the network records into. In sharded
/// mode each shard supplies its own simulator / trace log / structured
/// collector so a worker thread only ever writes shard-local state.
struct NetworkShardContext {
  Simulator* sim = nullptr;
  TraceLog* trace = nullptr;
  TraceCollector* collector = nullptr;
};

/// The simulated network: delivers typed messages between registered
/// sites with configurable latency, loss, link failures, and partitions.
/// This is the paper's "network simulator and fault/recovery injector"
/// substrate (the injector drives the control methods below).
///
/// Semantics:
///  * Messages in flight when a fault strikes are dropped if, at their
///    scheduled delivery instant, the destination is down or unreachable
///    from the source (checked again at delivery time).
///  * A crashed site neither sends nor receives.
///  * Partitions override per-link state: two sites communicate iff they
///    are in the same partition group AND the link is up.
///
/// ## Sharding & determinism
/// With EnableSharding, state splits into per-shard *lanes* (stats,
/// message pool, trace sinks, simulator) plus shared read-mostly fault
/// tables (links, partitions, overrides — mutated only from barrier
/// context, published to workers by the barrier handoff). Every
/// randomness draw (loss, latency, override jitter) comes from a
/// per-*site* RNG stream keyed by site id, and every message id is
/// (sender slot, per-sender sequence) — so each site's behaviour is a
/// pure function of its own history and the same seed produces the same
/// execution at any shard count. Cross-shard deliveries are posted to
/// the destination shard's mailbox, keyed by message id, and drained at
/// the next virtual-time barrier; intra-shard deliveries keep the
/// pooled zero-allocation fast path.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(Simulator* sim, LatencyConfig latency, Rng rng, TraceLog* trace);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Switches the network to sharded mode: one lane per entry in
  /// `shards` (shard 0's context replaces the constructor's sim/trace),
  /// cross-shard sends routed through `driver`'s mailboxes. Call before
  /// any traffic.
  void EnableSharding(ShardedSimulator* driver,
                      const std::vector<NetworkShardContext>& shards);

  /// Registers the message handler for `site`. One handler per site.
  /// Also sizes the per-site RNG / message-id tables — registration must
  /// precede traffic (workers never grow shared tables).
  void RegisterHandler(SiteId site, Handler handler);

  /// Sends `payload` from `from` to `to`. Delivery is asynchronous via
  /// the simulator. Silently drops (with accounting) if unreachable.
  void Send(SiteId from, SiteId to, Payload payload);

  /// Like Send but stamps the RPC correlation envelope (net/rpc.h).
  void SendRpc(SiteId from, SiteId to, Payload payload, uint64_t rpc_id,
               bool is_reply);

  /// Random per-message loss probability in [0,1].
  void set_loss_probability(double p) { loss_probability_ = p; }

  /// Round-trips every payload through the binary wire codec
  /// (net/codec.h) and delivers the decoded copy — proves the codec can
  /// carry the full protocol. Codec failures drop the message and are
  /// counted in stats().codec_failures.
  void set_verify_codec(bool on) { verify_codec_ = on; }

  /// Marks a site up/down. Down sites send and receive nothing.
  void SetSiteUp(SiteId site, bool up);
  bool IsSiteUp(SiteId site) const;

  /// Severs / restores the (bidirectional) link between `a` and `b`.
  void SetLinkUp(SiteId a, SiteId b, bool up);

  /// Severs / restores only the `from` → `to` direction: `to` can still
  /// reach `from`, which is exactly the asymmetric ("grey") failure mode
  /// bidirectional SetLinkUp cannot express.
  void SetLinkUpOneWay(SiteId from, SiteId to, bool up);

  /// Installs fault overrides on the directed link `from` → `to`
  /// (replacing any previous override there). Installing the identity
  /// override erases the entry, so the fast path recovers its zero-cost
  /// emptiness check. See LinkOverride.
  void SetLinkOverride(SiteId from, SiteId to, LinkOverride o);

  /// The override installed on `from` → `to`, or null.
  const LinkOverride* FindLinkOverride(SiteId from, SiteId to) const;

  /// Removes every per-link override (one-way down links are separate:
  /// restore those with SetLinkUpOneWay).
  void ClearLinkOverrides();
  bool has_link_overrides() const { return !link_overrides_.empty(); }

  /// Installs a partition: each inner vector is a group; sites in
  /// different groups cannot communicate. Sites not listed form an
  /// implicit extra group together.
  void SetPartitions(const std::vector<std::vector<SiteId>>& groups);

  /// Removes any partition.
  void HealPartitions();

  /// True if a message from `a` to `b` would currently be deliverable.
  bool Reachable(SiteId a, SiteId b) const;

  /// Aggregate traffic counters. With one lane this is the lane itself;
  /// in sharded mode it is a merge of every lane, rebuilt on each call
  /// (call from barrier/idle context only).
  const NetworkStats& stats() const;

  /// The stats lane that accounts for `site`'s activity — intake for
  /// the RPC sub-layer, which runs on the site's own shard.
  NetworkStats& stats_for(SiteId site);

  /// Sets the per_bucket histogram granularity on every lane.
  void set_stats_bucket_width(SimTime width);

  /// Conservative lower bound (µs) on the delay of any cross-site
  /// message under the *current* link overrides: the sharded kernel's
  /// barrier lookahead. Always ≥ 1.
  SimTime MinCrossShardDelay() const;

  Simulator* sim() { return lanes_[0].sim; }

  /// Structured tracing: at kFull detail every send/recv/drop is
  /// recorded against the payload's transaction. Optional; null
  /// disables. Sets lane 0's collector (sharded mode supplies per-lane
  /// collectors through EnableSharding). No cost on the hot path below
  /// kFull.
  void set_collector(TraceCollector* c) { lanes_[0].collector = c; }

 private:
  /// Per-shard execution lane: everything a worker thread writes while
  /// delivering traffic for its own sites.
  ///
  /// Thread-safety: lanes are *confined*, not locked. Lane `i` is
  /// touched only by shard `i`'s worker thread inside a barrier window
  /// (or by the driver thread between windows, when no worker runs), so
  /// no lane member needs a mutex or a RAINBOW_GUARDED_BY annotation.
  /// The only cross-thread path is a cross-shard send, which never
  /// touches the peer's lane: it posts into the destination shard's
  /// mailbox in sim/sharded_simulator.h — the mutex-protected,
  /// annotated handoff point — and the owner drains it at the next
  /// virtual-time barrier. Anything added to Lane must keep this
  /// property; state shared across shards belongs behind the driver's
  /// annotated mutexes instead.
  /// A same-tick delivery batch: the chain of pooled messages one
  /// sender addressed to one destination for one delivery instant. All
  /// of them ride a single event-queue entry (keyed by the first
  /// message's id) whose closure walks the chain — N same-tick sends
  /// cost one schedule/pop instead of N. Ordering is unchanged because
  /// a batch's message ids form a contiguous run of the destination's
  /// same-tick key set: per-sender ids are monotone in scheduling
  /// order and no other event can carry a key between them.
  struct Batch {
    uint32_t head = 0;         ///< first pool slot in the chain
    uint32_t tail = 0;         ///< last pool slot in the chain
    SimTime when = 0;          ///< delivery instant
    uint32_t sender_slot = 0;  ///< SiteSlot(from)
    uint32_t dst_slot = 0;     ///< SiteSlot(to)
    /// Accepting appends: cleared when the batch fires or when a later
    /// send to the same destination supersedes it.
    bool open = false;
  };

  struct Lane {
    Simulator* sim = nullptr;
    TraceLog* trace = nullptr;
    TraceCollector* collector = nullptr;
    NetworkStats stats;
    /// Message pool: ScheduleDelivery parks the message in a pool slot
    /// and the delivery closure captures only {this, lane, batch} —
    /// small enough for the event queue's inline callback storage, so
    /// an intra-shard send→deliver cycle allocates nothing in steady
    /// state. A deque keeps slots at stable addresses while handlers
    /// (which may send, acquiring new slots) hold a reference to the
    /// message being delivered.
    std::deque<Message> pool;
    std::vector<uint32_t> pool_free;
    /// pool_next[slot]: next pool slot in the slot's batch chain
    /// (kNoSlot terminates). Parallel to `pool`.
    std::vector<uint32_t> pool_next;
    /// Free-listed batch records, and the currently open batch per
    /// destination SiteSlot (kNoSlot when none).
    std::vector<Batch> batches;
    std::vector<uint32_t> batch_free;
    std::vector<uint32_t> open_batch;
    /// Reusable encode buffer for the codec-verification round trip
    /// (and any other transient per-lane encode): capacity persists
    /// across messages, so verified runs stop paying a per-message
    /// allocation.
    Arena arena;
  };

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  /// Dense table index shared by the flat site tables (handlers, the
  /// down-site flags, RNG streams): name server in slot 0, regular site
  /// s in s + 1.
  static size_t SiteSlot(SiteId site) {
    return site == kNameServerId ? 0 : static_cast<size_t>(site) + 1;
  }

  uint32_t ShardOf(SiteId site) const;
  Lane& LaneFor(SiteId site) { return lanes_[ShardOf(site)]; }

  /// Per-site deterministic RNG stream (seeded by site id, not draw
  /// order — the basis of shard-count invariance).
  Rng& SiteRng(size_t slot) { return site_rng_[slot]; }

  /// (sender slot + 1) << 40 | per-sender sequence: globally unique,
  /// monotone per sender, and the event-queue ordering key for the
  /// delivery — same-tick deliveries order by (sender, sequence).
  uint64_t NextMsgId(size_t slot) {
    return ((static_cast<uint64_t>(slot) + 1) << 40) | ++site_msg_seq_[slot];
  }

  void EnsureSiteTables(size_t slot);
  void SendMessage(Message msg);
  void ScheduleDelivery(Message msg, SimTime delay);
  /// Delivers every pooled message chained on lane `lane`'s batch
  /// `batch`, recycling the slots and the batch record.
  void DeliverBatch(uint32_t lane, uint32_t batch);
  void Deliver(const Message& msg);
  void EmitMessageEvent(Lane& lane, TraceEventKind kind, const Message& m,
                        SiteId at, const char* note);
  bool SameGroup(SiteId a, SiteId b) const;
  void RecomputeMinDelayMultiplier();

  uint32_t AcquireSlot(Lane& lane);
  void ReleaseSlot(Lane& lane, uint32_t slot);

  LatencyModel latency_;
  double loss_probability_ = 0;
  bool verify_codec_ = false;

  /// One lane when single-threaded; one per shard in sharded mode.
  /// A deque so Lane addresses are stable (closures capture indices,
  /// but EnableSharding rebuilds in place).
  std::deque<Lane> lanes_;
  ShardedSimulator* driver_ = nullptr;
  uint32_t num_shards_ = 1;

  /// Per-site streams indexed by SiteSlot; sized at registration time
  /// only (shared, read/written by the owning site's shard thereafter).
  uint64_t site_seed_base_;
  std::vector<Rng> site_rng_;
  std::vector<uint64_t> site_msg_seq_;

  /// Flat per-site tables indexed by SiteSlot (consulted on every send
  /// and delivery; the old unordered_map/set cost a hash probe each).
  /// Read-mostly: mutated only from barrier / between-runs context.
  std::vector<Handler> handlers_;
  std::vector<uint8_t> site_down_;
  /// Partition group per SiteSlot while partitioned_; -1 (also for
  /// sites beyond the table) is the implicit shared group.
  std::vector<int32_t> partition_group_;

  std::set<std::pair<SiteId, SiteId>> down_links_;
  /// Directed down links (from, to); disjoint bookkeeping from the
  /// bidirectional set so healing one never resurrects the other.
  std::set<std::pair<SiteId, SiteId>> down_links_oneway_;
  /// Directed per-link overrides. Empty in a fault-free run: the send
  /// path pays one emptiness branch and nothing else (bench_m5_nemesis
  /// holds this to zero allocations and no measurable slowdown).
  std::map<std::pair<SiteId, SiteId>, LinkOverride> link_overrides_;
  /// Smallest delay_multiplier among installed overrides (1.0 when
  /// none) — feeds MinCrossShardDelay, recomputed on override changes.
  double min_delay_multiplier_ = 1.0;
  bool partitioned_ = false;

  /// Merge target for stats() in sharded mode.
  mutable NetworkStats merged_stats_;
};

}  // namespace rainbow

#endif  // RAINBOW_NET_NETWORK_H_
