#include "net/rpc.h"

#include <algorithm>
#include <string>

#include "common/status.h"

namespace rainbow {

namespace {
/// Bounds each per-sender duplicate window; evicted ids fall below the
/// floor and are treated as old duplicates.
constexpr size_t kWindowCapacity = 256;
}  // namespace

RpcEndpoint::RpcEndpoint(Simulator* sim, Network* net, SiteId self,
                         uint64_t seed)
    : sim_(sim),
      net_(net),
      self_(self),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(self) + 1))) {
}

RpcEndpoint::~RpcEndpoint() { Reset(); }

uint64_t RpcEndpoint::Call(SiteId to, Payload request,
                           const RpcPolicy& policy, ReplyCallback cb) {
  uint64_t id = next_rpc_id_++;
  PendingCall& c = calls_[id];
  c.to = to;
  c.request = std::move(request);
  c.policy = policy;
  c.cb = std::move(cb);
  c.started_at = sim_->Now();
  net_->stats_for(self_).rpc_calls++;
  SendAttempt(id);
  return id;
}

bool RpcEndpoint::Cancel(uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return false;
  it->second.timer.Cancel();
  calls_.erase(it);
  return true;
}

void RpcEndpoint::SendAttempt(uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  PendingCall& c = it->second;
  c.attempts++;
  NetworkStats& stats = net_->stats_for(self_);
  stats.rpc_attempts++;
  if (c.attempts > 1) stats.rpc_retries++;
  if (collector_ && collector_->enabled()) {
    bool retry = c.attempts > 1;
    if (retry || collector_->full()) {
      collector_->Emit(TraceRecord{
          sim_->Now(),
          retry ? TraceEventKind::kRpcRetry : TraceEventKind::kRpcAttempt,
          PayloadTxnId(c.request), self_, c.to, kInvalidItem, c.attempts,
          std::string(MessageKindName(MessageKindOf(c.request)))});
    }
  }
  net_->SendRpc(self_, c.to, c.request, call_id, /*is_reply=*/false);
  c.timer = sim_->After(c.policy.timeout,
                        [this, call_id] { OnAttemptTimeout(call_id); });
}

void RpcEndpoint::OnAttemptTimeout(uint64_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  PendingCall& c = it->second;
  NetworkStats& stats = net_->stats_for(self_);
  stats.rpc_timeouts++;
  if (c.policy.max_attempts > 0 && c.attempts >= c.policy.max_attempts) {
    stats.rpc_failures++;
    if (collector_ && collector_->enabled()) {
      collector_->Emit(TraceRecord{
          sim_->Now(), TraceEventKind::kRpcFailure, PayloadTxnId(c.request),
          self_, c.to, kInvalidItem, c.attempts,
          std::string(MessageKindName(MessageKindOf(c.request)))});
    }
    ReplyCallback cb = std::move(c.cb);
    SiteId to = c.to;
    int attempts = c.attempts;
    calls_.erase(it);
    if (cb) {
      cb(Status::TimedOut("rpc to site " + std::to_string(to) + " failed (" +
                          std::to_string(attempts) + " attempts)"));
    }
    return;
  }
  SimTime delay = BackoffDelay(c.policy, c.attempts);
  c.timer = sim_->After(delay, [this, call_id] { SendAttempt(call_id); });
}

SimTime RetryBackoffDelay(const RpcPolicy& policy, int retries_so_far,
                          Rng& rng) {
  SimTime base = policy.backoff_base > 0 ? policy.backoff_base : Millis(1);
  int shift = std::min(retries_so_far - 1, 20);
  if (shift < 0) shift = 0;
  SimTime delay = base << shift;
  if (policy.backoff_cap > 0) delay = std::min(delay, policy.backoff_cap);
  if (policy.jitter > 0) {
    double factor = 1.0 + policy.jitter * (2.0 * rng.NextDouble() - 1.0);
    delay = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(delay) * factor));
  }
  return delay;
}

SimTime RpcEndpoint::BackoffDelay(const RpcPolicy& policy,
                                  int retries_so_far) {
  return RetryBackoffDelay(policy, retries_so_far, rng_);
}

RpcDelivery RpcEndpoint::Accept(const Message& m) {
  RpcDelivery out;
  if (m.rpc_id == 0) return out;  // raw message: dispatch normally

  if (m.rpc_is_reply) {
    out.consumed = true;
    auto it = calls_.find(m.rpc_id);
    if (it == calls_.end()) {
      // Late reply of a finished or cancelled call: dropped, but the
      // owner may need to release replica-side state it represents.
      if (late_reply_) late_reply_(m);
      return out;
    }
    PendingCall call = std::move(it->second);
    calls_.erase(it);
    call.timer.Cancel();
    net_->stats_for(self_).rpc_latency.Add(sim_->Now() - call.started_at);
    if (call.cb) call.cb(Payload(m.payload));
    return out;
  }

  // Request leg: suppress retransmitted duplicates per sender.
  SenderWindow& w = windows_[m.from];
  auto it = w.entries.find(m.rpc_id);
  if (it != w.entries.end()) {
    out.consumed = true;
    net_->stats_for(self_).rpc_duplicates_suppressed++;
    if (it->second.done) {
      // The original was already answered; the reply must have been
      // lost — resend the cached one so the exchange stays idempotent.
      net_->SendRpc(self_, m.from, it->second.reply, m.rpc_id,
                    /*is_reply=*/true);
    }
    return out;
  }
  if (m.rpc_id <= w.floor) {
    // The window rotated past this id and its cached reply is gone. The
    // sender is still retransmitting, so its call is still pending:
    // suppressing silently would starve it forever (fatal for
    // retry-forever calls such as decision queries). Request handlers
    // are duplicate-tolerant, so re-admit it as a fresh request and let
    // the application answer again.
    net_->stats_for(self_).rpc_stale_readmitted++;
  }
  w.entries[m.rpc_id] = ServedRequest{};
  TrimWindow(w);
  out.ctx = RpcContext{m.from, m.rpc_id};
  return out;
}

void RpcEndpoint::Reply(const RpcContext& ctx, Payload payload) {
  if (!ctx.valid()) return;
  SenderWindow& w = windows_[ctx.from];
  auto it = w.entries.find(ctx.rpc_id);
  if (it != w.entries.end()) {
    it->second.done = true;
    it->second.reply = payload;
  }
  net_->SendRpc(self_, ctx.from, std::move(payload), ctx.rpc_id,
                /*is_reply=*/true);
}

void RpcEndpoint::Reset() {
  for (auto& [id, call] : calls_) call.timer.Cancel();
  calls_.clear();
  windows_.clear();
}

void RpcEndpoint::TrimWindow(SenderWindow& w) {
  while (w.entries.size() > kWindowCapacity) {
    w.floor = std::max(w.floor, w.entries.begin()->first);
    w.entries.erase(w.entries.begin());
  }
}

}  // namespace rainbow
