#ifndef RAINBOW_NET_RPC_H_
#define RAINBOW_NET_RPC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace rainbow {

/// Retry/timeout policy for one RPC call. Each attempt gets `timeout`
/// to produce a reply; after a timeout the request is retransmitted with
/// exponential backoff: delay doubles per retry from `backoff_base` up
/// to `backoff_cap`, scaled by a deterministic jitter factor drawn
/// uniformly from [1 - jitter, 1 + jitter]. With `max_attempts == 0`
/// the call retries forever (used where the protocol must eventually
/// hear from a recovering peer, e.g. decision queries).
struct RpcPolicy {
  SimTime timeout = Millis(80);  ///< per-attempt reply deadline
  int max_attempts = 3;          ///< total attempts incl. the first; 0 = ∞
  SimTime backoff_base = Millis(2);
  SimTime backoff_cap = Millis(200);
  double jitter = 0.25;
};

/// Replica-side handle identifying the request a reply answers. Invalid
/// (rpc_id == 0) for messages that did not arrive as RPC requests, e.g.
/// one-way sends or raw messages injected by tests.
struct RpcContext {
  SiteId from = kInvalidSite;
  uint64_t rpc_id = 0;

  bool valid() const { return rpc_id != 0; }
};

/// Delay before retry number `retries_so_far` (1-based) under `policy`:
/// capped exponential backoff with jitter drawn from `rng`. Shared by
/// RpcEndpoint and the workload generator's client-level restarts.
SimTime RetryBackoffDelay(const RpcPolicy& policy, int retries_so_far,
                          Rng& rng);

/// Result of feeding a delivered message through RpcEndpoint::Accept.
struct RpcDelivery {
  /// True if the endpoint fully handled the message (a reply that
  /// completed a pending call, or a duplicate request that was
  /// suppressed). The application must not process consumed messages.
  bool consumed = false;
  /// Valid iff the message is a fresh RPC request; pass it back to
  /// Reply() once the application has an answer.
  RpcContext ctx;
};

/// One endpoint of the typed RPC sub-layer, layered on Network. Every
/// site (and the name server) owns one. It plays both roles:
///
///  * Client: Call() stamps a correlation id on the request, arms one
///    per-attempt timer, retransmits with exponential backoff +
///    deterministic jitter, and reports the reply — or terminal failure
///    after max_attempts — to the caller as a Result<Payload>. The
///    correlation id stays stable across retransmissions.
///  * Replica: Accept() routes delivered messages. Replies complete
///    pending calls; duplicate requests (retransmissions whose original
///    arrived) are suppressed via a per-sender window — if the original
///    was already answered the cached reply is resent, so resent
///    ReadRequest / PrewriteRequest / Decision messages are idempotent.
///
/// Everything is driven by the shared Simulator, and jitter comes from
/// a forked deterministic Rng, so runs remain reproducible.
class RpcEndpoint {
 public:
  using ReplyCallback = std::function<void(Result<Payload>)>;
  using LateReplyHandler = std::function<void(const Message&)>;

  RpcEndpoint(Simulator* sim, Network* net, SiteId self, uint64_t seed);
  ~RpcEndpoint();
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  /// Starts an RPC call to `to`; `cb` fires exactly once with the reply
  /// payload or a terminal Status, unless the call is cancelled first.
  /// Returns a call id usable with Cancel().
  uint64_t Call(SiteId to, Payload request, const RpcPolicy& policy,
                ReplyCallback cb);

  /// Cancels a pending call without firing its callback. Returns true
  /// if the call was still pending. Safe on unknown / completed ids.
  bool Cancel(uint64_t call_id);

  /// Feeds a message delivered to this site through the RPC layer.
  /// The caller (the site's network handler) should drop messages with
  /// `consumed == true` and otherwise dispatch normally, threading
  /// `ctx` through so request handlers can Reply().
  RpcDelivery Accept(const Message& m);

  /// Sends the reply for a request previously surfaced by Accept() and
  /// caches it so retransmitted duplicates are re-answered. No-op for
  /// invalid contexts (callers handle raw-message replies themselves).
  void Reply(const RpcContext& ctx, Payload payload);

  /// Observes replies that arrive for calls no longer pending (finished
  /// or cancelled). The RPC layer still consumes them, but the owner may
  /// need to compensate — e.g. a granted copy-access reply reaching a
  /// retired coordinator means the replica holds CC state that must be
  /// released explicitly, or it leaks until an orphan timer fires.
  void set_late_reply_handler(LateReplyHandler h) {
    late_reply_ = std::move(h);
  }

  /// Crash semantics: drops every pending call (no callbacks fire) and
  /// forgets the duplicate-suppression windows.
  void Reset();

  /// Structured tracing of retries and terminal failures (and, at full
  /// detail, every attempt). Optional; null disables.
  void set_collector(TraceCollector* c) { collector_ = c; }

  size_t pending_calls() const { return calls_.size(); }

 private:
  struct PendingCall {
    SiteId to = kInvalidSite;
    Payload request;
    RpcPolicy policy;
    ReplyCallback cb;
    int attempts = 0;
    SimTime started_at = 0;
    TimerHandle timer;
  };

  /// Replica-side record of a request: in-progress until Reply() caches
  /// the answer for duplicate resends.
  struct ServedRequest {
    bool done = false;
    Payload reply;
  };

  /// Per-sender duplicate-suppression window, bounded in size: ids at
  /// or below `floor` have been evicted and are treated as duplicates.
  struct SenderWindow {
    uint64_t floor = 0;
    std::map<uint64_t, ServedRequest> entries;
  };

  void SendAttempt(uint64_t call_id);
  void OnAttemptTimeout(uint64_t call_id);
  SimTime BackoffDelay(const RpcPolicy& policy, int retries_so_far);
  void TrimWindow(SenderWindow& w);

  Simulator* sim_;
  Network* net_;
  SiteId self_;
  TraceCollector* collector_ = nullptr;
  Rng rng_;
  uint64_t next_rpc_id_ = 1;
  LateReplyHandler late_reply_;
  std::map<uint64_t, PendingCall> calls_;
  std::unordered_map<SiteId, SenderWindow> windows_;
};

}  // namespace rainbow

#endif  // RAINBOW_NET_RPC_H_
