#include "rcp/rcp_policy.h"

#include <algorithm>
#include <numeric>

namespace rainbow {

const char* RcpKindName(RcpKind k) {
  switch (k) {
    case RcpKind::kRowa:
      return "ROWA";
    case RcpKind::kRowaAvailable:
      return "ROWA-A";
    case RcpKind::kQuorumConsensus:
      return "QC";
    case RcpKind::kPrimaryCopy:
      return "PRIMARY";
  }
  return "?";
}

int ReplicaView::total_votes() const {
  return std::accumulate(votes.begin(), votes.end(), 0);
}

int ReplicaView::VoteOf(SiteId site) const {
  for (size_t i = 0; i < copies.size(); ++i) {
    if (copies[i] == site) return votes[i];
  }
  return 0;
}

RcpPlanner::RcpPlanner(RcpKind kind, bool broadcast)
    : kind_(kind), broadcast_(broadcast) {}

std::vector<size_t> RcpPlanner::PreferenceOrder(
    const ReplicaView& view, SiteId self, const std::set<SiteId>& suspected) {
  std::vector<size_t> order(view.copies.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto rank = [&](size_t i) {
    SiteId s = view.copies[i];
    if (suspected.contains(s)) return 2;
    return s == self ? 0 : 1;
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ra = rank(a), rb = rank(b);
    if (ra != rb) return ra < rb;
    return view.copies[a] < view.copies[b];
  });
  return order;
}

Result<AccessPlan> RcpPlanner::QuorumSubset(const ReplicaView& view,
                                            SiteId self,
                                            const std::set<SiteId>& suspected,
                                            int quorum) {
  AccessPlan plan;
  plan.needed_votes = quorum;
  int gathered = 0;
  for (size_t i : PreferenceOrder(view, self, suspected)) {
    if (gathered >= quorum) break;
    plan.targets.push_back(view.copies[i]);
    gathered += view.votes[i];
  }
  if (gathered < quorum) {
    return Status::Unavailable("quorum unattainable: " +
                               std::to_string(gathered) + " of " +
                               std::to_string(quorum) + " votes reachable");
  }
  return plan;
}

Result<AccessPlan> RcpPlanner::PlanRead(const ReplicaView& view, SiteId self,
                                        const std::set<SiteId>& suspected) const {
  if (view.copies.empty()) {
    return Status::InvalidArgument("item has no copies");
  }
  switch (kind_) {
    case RcpKind::kRowa:
    case RcpKind::kRowaAvailable: {
      // Read any one copy, preferring local and unsuspected.
      AccessPlan plan;
      plan.require_all = true;
      plan.needed_votes = 1;
      size_t best = PreferenceOrder(view, self, suspected).front();
      if (kind_ == RcpKind::kRowaAvailable &&
          suspected.contains(view.copies[best])) {
        return Status::Unavailable("all copies suspected down");
      }
      plan.targets.push_back(view.copies[best]);
      return plan;
    }
    case RcpKind::kQuorumConsensus: {
      if (broadcast_) {
        AccessPlan plan;
        plan.targets = view.copies;
        plan.needed_votes = view.read_quorum;
        return plan;
      }
      return QuorumSubset(view, self, suspected, view.read_quorum);
    }
    case RcpKind::kPrimaryCopy: {
      // Reads go to the primary (the first copy in the schema) only.
      AccessPlan plan;
      plan.require_all = true;
      plan.cc_site = view.copies.front();
      plan.targets.push_back(view.copies.front());
      return plan;
    }
  }
  return Status::Internal("unknown RCP kind");
}

Result<AccessPlan> RcpPlanner::PlanWrite(const ReplicaView& view, SiteId self,
                                         const std::set<SiteId>& suspected) const {
  if (view.copies.empty()) {
    return Status::InvalidArgument("item has no copies");
  }
  switch (kind_) {
    case RcpKind::kRowa: {
      // Write ALL copies, regardless of suspicion — the protocol's
      // defining weakness: one dead copy blocks every write.
      AccessPlan plan;
      plan.targets = view.copies;
      plan.require_all = true;
      return plan;
    }
    case RcpKind::kRowaAvailable: {
      AccessPlan plan;
      plan.require_all = true;
      for (SiteId s : view.copies) {
        if (!suspected.contains(s)) plan.targets.push_back(s);
      }
      if (plan.targets.empty()) {
        return Status::Unavailable("all copies suspected down");
      }
      return plan;
    }
    case RcpKind::kQuorumConsensus: {
      if (broadcast_) {
        AccessPlan plan;
        plan.targets = view.copies;
        plan.needed_votes = view.write_quorum;
        return plan;
      }
      return QuorumSubset(view, self, suspected, view.write_quorum);
    }
    case RcpKind::kPrimaryCopy: {
      // Writes lock the primary and are pushed eagerly to every backup
      // (which buffer them without CC).
      AccessPlan plan;
      plan.targets = view.copies;
      plan.require_all = true;
      plan.cc_site = view.copies.front();
      return plan;
    }
  }
  return Status::Internal("unknown RCP kind");
}

}  // namespace rainbow
