#ifndef RAINBOW_RCP_RCP_POLICY_H_
#define RAINBOW_RCP_RCP_POLICY_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Which replication-control protocol a Rainbow instance runs.
enum class RcpKind {
  kRowa,             ///< read one copy, write ALL copies (write blocks on any failure)
  kRowaAvailable,    ///< read one, write all *available* copies (extension)
  kQuorumConsensus,  ///< weighted-vote read/write quorums (the paper's default)
  kPrimaryCopy,      ///< eager primary copy: all CC at the primary,
                     ///< reads at the primary, writes pushed to all
                     ///< backups inside the commit (extension)
};

const char* RcpKindName(RcpKind k);

/// Replication metadata for one item as the coordinator sees it (the
/// name server's NsLookupReply, or a cached copy of it).
struct ReplicaView {
  std::vector<SiteId> copies;
  std::vector<int> votes;  ///< parallel to copies
  int read_quorum = 0;
  int write_quorum = 0;

  int total_votes() const;
  int VoteOf(SiteId site) const;
};

/// The coordinator's plan for executing one operation under the RCP:
/// which replica sites to contact and what counts as success.
struct AccessPlan {
  std::vector<SiteId> targets;
  /// Votes that must be granted for success. Under require_all this is
  /// ignored — every target must grant.
  int needed_votes = 0;
  bool require_all = false;
  /// Primary copy only: the one site whose CC engine arbitrates this
  /// access; requests to the other targets bypass CC (their buffered
  /// writes ride on the primary's serialization). kInvalidSite = every
  /// target applies CC (the QC / ROWA behaviour).
  SiteId cc_site = kInvalidSite;
};

/// Pure planning logic for the three replication-control protocols.
/// Site selection prefers the coordinator's own site, then unsuspected
/// sites in ascending id order; suspected sites are used only when the
/// quorum is otherwise unreachable. With `broadcast_reads`, quorum reads
/// are sent to every copy and the coordinator takes the first replies
/// that reach the vote threshold (trades extra messages for latency and
/// fault tolerance — an ablation knob for experiment E3).
class RcpPlanner {
 public:
  RcpPlanner(RcpKind kind, bool broadcast);

  /// Plans a read of `item`'s copies. Fails with kUnavailable when no
  /// plan can possibly succeed (e.g. every copy suspected under ROWA-A).
  Result<AccessPlan> PlanRead(const ReplicaView& view, SiteId self,
                              const std::set<SiteId>& suspected) const;

  /// Plans a write (pre-write) of `item`'s copies.
  Result<AccessPlan> PlanWrite(const ReplicaView& view, SiteId self,
                               const std::set<SiteId>& suspected) const;

  RcpKind kind() const { return kind_; }
  std::string name() const { return RcpKindName(kind_); }

 private:
  /// Copies ordered by contact preference.
  static std::vector<size_t> PreferenceOrder(const ReplicaView& view,
                                             SiteId self,
                                             const std::set<SiteId>& suspected);

  /// Smallest preferred subset reaching `quorum` votes.
  static Result<AccessPlan> QuorumSubset(const ReplicaView& view, SiteId self,
                                         const std::set<SiteId>& suspected,
                                         int quorum);

  RcpKind kind_;
  bool broadcast_;
};

}  // namespace rainbow

#endif  // RAINBOW_RCP_RCP_POLICY_H_
