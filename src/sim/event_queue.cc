#include "sim/event_queue.h"

#include <cassert>

namespace rainbow {

EventQueue::EventId EventQueue::Schedule(SimTime when, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_.push(Entry{when, next_seq_++, slot, s.gen});
  ++live_count_;
  return MakeId(slot, s.gen);
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  RetireSlot(slot);
  --live_count_;
  return true;
}

void EventQueue::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback();
  ++s.gen;
  free_slots_.push_back(slot);
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !Live(heap_.top())) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  Slot& s = slots_[top.slot];
  Fired fired{top.time, std::move(s.cb)};
  // Retire before the caller runs the callback: a callback cancelling
  // its own id must see "already fired" (the generation moved on).
  RetireSlot(top.slot);
  --live_count_;
  return fired;
}

}  // namespace rainbow
