#include "sim/event_queue.h"

#include <cassert>

namespace rainbow {

EventQueue::EventId EventQueue::Schedule(SimTime when, uint64_t key,
                                         Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    // Keep (slot 0, generation 0) — the packed id 0 == kInvalidId —
    // unreachable: slot 0 starts life at generation 1.
    if (slot == 0) slots_[0].gen = 1;
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  heap_.push(Entry{when, key, next_seq_++, slot, s.gen});
  ++live_count_;
  return MakeId(slot, s.gen);
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidId) return false;
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  RetireSlot(slot);
  --live_count_;
  return true;
}

void EventQueue::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback();
  ++s.gen;
  // Generation wrap: slot 0 must never re-enter generation 0, or a
  // recycled id would equal kInvalidId.
  if (slot == 0 && s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !Live(heap_.top())) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  Slot& s = slots_[top.slot];
  Fired fired{top.time, std::move(s.cb)};
  // Retire before the caller runs the callback: a callback cancelling
  // its own id must see "already fired" (the generation moved on).
  RetireSlot(top.slot);
  --live_count_;
  return fired;
}

}  // namespace rainbow
