#include "sim/event_queue.h"

#include <cassert>

namespace rainbow {

EventQueue::EventId EventQueue::Schedule(SimTime when, Callback cb) {
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeMax : heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Fired fired{top.time, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace rainbow
