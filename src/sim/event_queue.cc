#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

EventQueue::EventId EventQueue::Schedule(SimTime when, uint64_t key,
                                         Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    // Keep (slot 0, generation 0) — the packed id 0 == kInvalidId —
    // unreachable: slot 0 starts life at generation 1.
    if (slot == 0) slots_[0].gen = 1;
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  Entry e{when, key, next_seq_++, slot, s.gen};

  // A physically empty queue lets the cursor snap to the new entry's
  // bucket: otherwise a queue whose clock "restarts" (fresh benchmark
  // round, re-used scratch queue) would funnel everything into the
  // active heap and degrade to the old binary-heap behaviour.
  if (active_.empty() && ring_count_ == 0 && overflow_.empty()) {
    cur_bucket_ = BucketOf(when);
  }

  const int64_t b = BucketOf(when);
  if (b <= cur_bucket_) {
    PushActive(e);
  } else if (b < cur_bucket_ + kNumBuckets) {
    ring_[b & kBucketMask].push_back(e);
    ++ring_count_;
  } else {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
  ++live_count_;
  return MakeId(slot, s.gen);
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidId) return false;
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu);
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  RetireSlot(slot);
  --live_count_;
  return true;
}

void EventQueue::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = Callback();
  ++s.gen;
  // Generation wrap: slot 0 must never re-enter generation 0, or a
  // recycled id would equal kInvalidId.
  if (slot == 0 && s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
}

void EventQueue::PushActive(Entry e) {
  active_.push_back(e);
  std::push_heap(active_.begin(), active_.end(), Later{});
}

void EventQueue::PullOverflow() {
  const int64_t horizon = cur_bucket_ + kNumBuckets;
  while (!overflow_.empty()) {
    const int64_t b = BucketOf(overflow_.front().time);
    if (b >= horizon) break;
    Entry e = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    overflow_.pop_back();
    if (!Live(e)) continue;  // tombstone: drop it here
    if (b <= cur_bucket_) {
      PushActive(e);
    } else {
      ring_[b & kBucketMask].push_back(e);
      ++ring_count_;
    }
  }
}

bool EventQueue::AdvanceToLive() {
  for (;;) {
    // Drop tombstones surfacing at the active front.
    while (!active_.empty() && !Live(active_.front())) {
      std::pop_heap(active_.begin(), active_.end(), Later{});
      active_.pop_back();
    }
    // Ring and overflow entries always lie in buckets strictly after
    // cur_bucket_, i.e. strictly later than every active entry, so a
    // live active front is the global minimum.
    if (!active_.empty()) return true;

    if (ring_count_ == 0) {
      while (!overflow_.empty() && !Live(overflow_.front())) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        overflow_.pop_back();
      }
      if (overflow_.empty()) return false;
      // The whole calendar is empty: jump the cursor straight to the
      // earliest overflow entry's bucket (always ahead of cur_bucket_
      // — overflow entries start beyond the horizon).
      cur_bucket_ = BucketOf(overflow_.front().time);
    } else {
      ++cur_bucket_;
      std::vector<Entry>& bucket = ring_[cur_bucket_ & kBucketMask];
      if (!bucket.empty()) {
        // Everything in this ring slot belongs to exactly the bucket
        // we just entered (inserts beyond one lap go to overflow), so
        // the drain is a straight swap. active_ is empty here; the
        // swap circulates capacity instead of allocating.
        ring_count_ -= bucket.size();
        active_.swap(bucket);
        std::make_heap(active_.begin(), active_.end(), Later{});
      }
    }
    PullOverflow();
  }
}

SimTime EventQueue::NextTime() {
  return AdvanceToLive() ? active_.front().time : kSimTimeMax;
}

EventQueue::Fired EventQueue::PopNext() {
  bool have = AdvanceToLive();
  assert(have);
  (void)have;
  std::pop_heap(active_.begin(), active_.end(), Later{});
  Entry top = active_.back();
  active_.pop_back();
  Slot& s = slots_[top.slot];
  Fired fired{top.time, std::move(s.cb)};
  // Retire before the caller runs the callback: a callback cancelling
  // its own id must see "already fired" (the generation moved on).
  RetireSlot(top.slot);
  --live_count_;
  return fired;
}

}  // namespace rainbow
