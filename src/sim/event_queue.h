#ifndef RAINBOW_SIM_EVENT_QUEUE_H_
#define RAINBOW_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rainbow {

/// Priority queue of timed callbacks, ordered by (time, insertion
/// sequence). The sequence tie-break makes execution order fully
/// deterministic: two events scheduled for the same instant fire in the
/// order they were scheduled.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancellation. Valid until the event fires or the
  /// queue is destroyed.
  using EventId = uint64_t;

  /// Schedules `cb` at absolute time `when`. Returns an id usable with
  /// Cancel().
  EventId Schedule(SimTime when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired
  /// or was already cancelled. Cancellation is O(1) (lazy removal).
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event; kSimTimeMax if none.
  SimTime NextTime();

  /// Pops the earliest event and returns it. Requires !empty().
  struct Fired {
    SimTime time;
    Callback cb;
  };
  Fired PopNext();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries sitting at the front of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_SIM_EVENT_QUEUE_H_
