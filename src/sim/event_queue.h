#ifndef RAINBOW_SIM_EVENT_QUEUE_H_
#define RAINBOW_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"

namespace rainbow {

/// Priority queue of timed callbacks, ordered by (time, key, insertion
/// sequence). The sequence tie-break makes execution order fully
/// deterministic: two events scheduled for the same instant (and the
/// same key) fire in the order they were scheduled.
///
/// The explicit ordering `key` exists for the sharded kernel: events
/// whose relative order must not depend on *when* they were inserted
/// (message deliveries drained from cross-shard mailboxes vs. scheduled
/// directly) carry a key derived from their origin — (sender site,
/// per-sender sequence) — so the execution order at a destination is a
/// pure function of virtual time, not of shard count or drain order.
/// Key 0 (the default) sorts before any message key, i.e. local timers
/// fire before same-tick message deliveries.
///
/// Implementation: a calendar queue. Near-future events hash into a
/// ring of time buckets (width 2^kBucketShift ticks) with O(1)
/// schedule; the bucket under the cursor is kept as a small binary
/// heap so pops surface in exact (time, key, seq) order; events beyond
/// the ring's horizon wait in an overflow heap and migrate into
/// buckets as the cursor reaches them. Amortised Schedule/PopNext is
/// O(1) for the simulator's timestamp distribution (deliveries and
/// timers clustered a few ms out) versus O(log n) for the old
/// std::priority_queue. The pop order is bit-identical to the old
/// heap's: equal-time events can never sit in two different tiers, and
/// the active tier orders them with the full comparator.
///
/// Storage is allocation-lean: callbacks live in a flat slot table
/// (reused through a free list) instead of a side unordered_map, and
/// the callback type keeps small closures inline (common/
/// inline_function.h). Bucket vectors and the active heap recycle
/// their capacity, so in steady state a Schedule/fire cycle performs
/// no heap allocation; bench_m6_hotpath gates this.
class EventQueue {
 public:
  /// Inline capture budget for event callbacks. Sized so the hot-path
  /// closures — network delivery (`this` + pool slot), RPC/site timers
  /// (`this` + a couple of ids) — stay inline; larger captures fall
  /// back to one heap allocation, the old std::function cost.
  static constexpr size_t kInlineCallbackBytes = 48;
  using Callback = InlineFunction<void(), kInlineCallbackBytes>;

  /// Opaque handle for cancellation: a slot index in the low 32 bits
  /// plus the slot's generation in the high 32. The generation is
  /// bumped whenever the slot's event fires or is cancelled, so stale
  /// ids from earlier occupants of a reused slot can never cancel the
  /// current one.
  using EventId = uint64_t;

  /// Reserved "no event" id. Schedule() never returns it: slot 0's
  /// generation starts at 1 (and skips 0 on wrap), so the packed id
  /// (slot 0, generation 0) — numerically 0 — cannot alias a real
  /// event. Default-constructed TimerHandles rely on this.
  static constexpr EventId kInvalidId = 0;

  EventQueue() : ring_(kNumBuckets) {}

  /// Schedules `cb` at absolute time `when` with ordering key 0.
  /// Returns an id usable with Cancel().
  EventId Schedule(SimTime when, Callback cb) {
    return Schedule(when, 0, std::move(cb));
  }

  /// Schedules `cb` at absolute time `when` with an explicit ordering
  /// key: events fire in (time, key, insertion sequence) order.
  EventId Schedule(SimTime when, uint64_t key, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired
  /// or was already cancelled (or `id` is kInvalidId). O(1): the queue
  /// entry is left behind as a generation-mismatched tombstone and
  /// skipped when it surfaces.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  /// Time of the earliest pending event; kSimTimeMax if none.
  SimTime NextTime();

  /// Pops the earliest event and returns it. Requires !empty().
  struct Fired {
    SimTime time;
    Callback cb;
  };
  Fired PopNext();

 private:
  struct Entry {
    SimTime time;
    uint64_t key;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback cb;
    uint32_t gen = 0;
  };

  /// Calendar geometry. 64-tick (64 µs) buckets, 256 of them: a 16 ms
  /// horizon, sized so message deliveries (~1 ms out) land a few
  /// buckets ahead and ordinary protocol timers stay inside the ring;
  /// long RPC timeouts ride the overflow heap. Both powers of two so
  /// bucket-of-time is a shift and ring indexing a mask.
  static constexpr int kBucketShift = 6;
  static constexpr int64_t kNumBuckets = 256;
  static constexpr int64_t kBucketMask = kNumBuckets - 1;

  /// Absolute bucket index of `t` (floor division; SimTime is signed
  /// and C++20 guarantees arithmetic right shift).
  static int64_t BucketOf(SimTime t) { return t >> kBucketShift; }

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// A queue entry is live iff its generation matches its slot's.
  bool Live(const Entry& e) const { return slots_[e.slot].gen == e.gen; }

  /// Destroys the slot's callback, bumps its generation (invalidating
  /// any outstanding EventId), and returns it to the free list.
  void RetireSlot(uint32_t slot);

  /// Heap-push onto the active tier.
  void PushActive(Entry e);

  /// Moves overflow entries whose bucket fell inside the ring's
  /// horizon into their bucket (or straight into the active tier when
  /// the cursor already reached it). Called after every cursor move.
  void PullOverflow();

  /// Advances the cursor until a live entry sits at active_.front().
  /// Returns false when no live entry remains anywhere.
  bool AdvanceToLive();

  /// Bucket `cur_bucket_` has been entered (and drained into active_)
  /// or passed; entries at or before it go to the active tier.
  std::vector<Entry> active_;
  /// ring_[b & kBucketMask] holds entries of absolute bucket b for
  /// cur_bucket_ < b < cur_bucket_ + kNumBuckets. Unsorted; sorted on
  /// drain (make_heap is O(k), cheaper than k heap pushes).
  std::vector<std::vector<Entry>> ring_;
  /// Min-heap (Later comparator, front = earliest) of entries beyond
  /// the ring horizon.
  std::vector<Entry> overflow_;
  int64_t cur_bucket_ = 0;
  /// Physical entries (live + tombstones) across all ring buckets.
  size_t ring_count_ = 0;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_SIM_EVENT_QUEUE_H_
