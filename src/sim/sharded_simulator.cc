#include "sim/sharded_simulator.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

ShardedSimulator::ShardedSimulator(uint32_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  shards_.reserve(num_shards_);
  for (uint32_t k = 0; k < num_shards_; ++k) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      MutexLock l(mu_);
      stop_ = true;
    }
    cv_work_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }
}

void ShardedSimulator::PostToShard(uint32_t shard, SimTime when, uint64_t key,
                                   EventQueue::Callback cb) {
  assert(shard < num_shards_);
  Shard& s = *shards_[shard];
  {
    MutexLock l(s.mb_mu);
    s.mailbox.push_back(Pending{when, key, std::move(cb)});
  }
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
}

SimTime ShardedSimulator::EarliestPending() {
  SimTime t = control_.NextEventTime();
  for (auto& sp : shards_) {
    t = std::min(t, sp->sim.NextEventTime());
    MutexLock l(sp->mb_mu);
    for (const Pending& p : sp->mailbox) t = std::min(t, p.when);
  }
  return t;
}

void ShardedSimulator::DrainMailbox(uint32_t k) {
  Shard& s = *shards_[k];
  {
    MutexLock l(s.mb_mu);
    if (s.mailbox.empty()) return;
    s.drain.swap(s.mailbox);
  }
  // Entry order in `drain` reflects real-thread push order and is NOT
  // deterministic — only insertion into the event queue happens here,
  // and the queue orders by (time, key, seq). Distinct mailbox entries
  // always differ in (time, key) (keys encode sender identity + a
  // per-sender sequence), so execution order is independent of this
  // drain order.
  for (Pending& p : s.drain) {
    s.sim.AtKeyed(p.when, p.key, std::move(p.cb));
  }
  s.drain.clear();
}

void ShardedSimulator::EnsureWorkers() {
  if (num_shards_ <= 1 || !workers_.empty()) return;
  workers_.reserve(num_shards_);
  for (uint32_t k = 0; k < num_shards_; ++k) {
    workers_.emplace_back([this, k] { WorkerLoop(k); });
  }
}

void ShardedSimulator::WorkerLoop(uint32_t k) {
  uint64_t seen = 0;
  for (;;) {
    SimTime run_to;
    {
      // Explicit wait loop (not the predicate overload): the guarded
      // reads of stop_/epoch_ stay inside this analyzed critical
      // section instead of a lambda the analysis treats as lock-free.
      MutexLock l(mu_);
      while (!stop_ && epoch_ == seen) cv_work_.Wait(mu_);
      if (stop_) return;
      seen = epoch_;
      run_to = window_run_to_;
    }
    DrainMailbox(k);
    shards_[k]->sim.RunUntil(run_to);
    {
      MutexLock l(mu_);
      if (--pending_workers_ == 0) cv_done_.NotifyOne();
    }
  }
}

bool ShardedSimulator::RunWindow(SimTime horizon) {
  SimTime barrier = EarliestPending();
  if (barrier >= horizon) return false;

  // Align every clock to the barrier time before anything runs, so
  // control callbacks (which may call into any site) and mailbox drains
  // observe a current Now().
  control_.AdvanceTo(barrier);
  for (auto& sp : shards_) sp->sim.AdvanceTo(barrier);

  // Control events due at the barrier run on this (driver) thread with
  // every worker parked — they may safely mutate shared state such as
  // link tables; the barrier mutex handoff publishes the writes.
  while (control_.NextEventTime() <= barrier) control_.Step();

  SimTime lookahead = 1;
  if (lookahead_provider_) {
    lookahead = std::max<SimTime>(1, lookahead_provider_());
  }
  SimTime window_end = barrier + lookahead;  // exclusive
  window_end = std::min(window_end, horizon);
  window_end = std::min(window_end, control_.NextEventTime());
  // window_end > barrier: lookahead >= 1, control drained through the
  // barrier, and barrier < horizon.
  SimTime run_to = window_end - 1;
  ++windows_;

  if (workers_.empty()) {
    DrainMailbox(0);
    shards_[0]->sim.RunUntil(run_to);
    return true;
  }
  {
    MutexLock l(mu_);
    window_run_to_ = run_to;
    pending_workers_ = num_shards_;
    ++epoch_;
  }
  cv_work_.NotifyAll();
  {
    MutexLock l(mu_);
    while (pending_workers_ != 0) cv_done_.Wait(mu_);
  }
  return true;
}

void ShardedSimulator::RunUntil(SimTime t) {
  assert(t >= Now());
  EnsureWorkers();
  while (RunWindow(t + 1)) {
  }
  // Nothing remains at or before t; land every clock on exactly t, the
  // same post-condition as Simulator::RunUntil.
  control_.AdvanceTo(t);
  for (auto& sp : shards_) sp->sim.AdvanceTo(t);
}

size_t ShardedSimulator::RunToQuiescence(size_t max_events) {
  EnsureWorkers();
  uint64_t start = executed_events();
  // The event cap is checked at window granularity (a worker never
  // stops mid-window), so it is a livelock guard, not an exact budget.
  while (executed_events() - start < max_events && RunWindow(kSimTimeMax)) {
  }
  return static_cast<size_t>(executed_events() - start);
}

bool ShardedSimulator::idle() { return EarliestPending() == kSimTimeMax; }

uint64_t ShardedSimulator::executed_events() {
  uint64_t n = control_.executed_events();
  for (auto& sp : shards_) n += sp->sim.executed_events();
  return n;
}

}  // namespace rainbow
