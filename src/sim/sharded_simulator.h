#ifndef RAINBOW_SIM_SHARDED_SIMULATOR_H_
#define RAINBOW_SIM_SHARDED_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace rainbow {

/// Conservative parallel discrete-event kernel: N per-shard Simulators
/// (each owning a partition of sites) advance in lockstep through
/// virtual-time barrier windows, plus one *control lane* Simulator whose
/// events (fault injection, system surgery) run on the driver thread at
/// barriers, with every worker parked — so control callbacks may touch
/// any shard's state.
///
/// ## Window rule
/// At each barrier the driver computes T = the earliest pending event
/// anywhere (shard queues, cross-shard mailboxes, control lane), aligns
/// every clock to T, runs control events due at T, then lets each
/// shard's worker execute its own events in [T, W) where
///
///   W = min(T + lookahead, next control event, horizon + 1)
///
/// and `lookahead` is the minimum cross-shard message delay (re-read
/// from the provider at every barrier, so LinkOverride multipliers that
/// shrink latency — applied at barriers via the control lane — shrink
/// the window with them). A message sent at u ∈ [T, W) arrives at
/// u + delay ≥ T + lookahead ≥ W, i.e. never inside the current window:
/// no shard can receive an event in its past, the classic conservative
/// PDES argument.
///
/// ## Determinism
/// Execution order inside a shard is (time, key, insertion seq) — the
/// EventQueue order. Cross-shard deliveries carry a key derived from
/// (sender site, per-sender sequence), so their order at the receiver is
/// a pure function of virtual time and message identity, independent of
/// which real thread pushed the mailbox entry first or how windows are
/// partitioned. Same seed + same shard count ⇒ identical executions;
/// with per-site RNG streams (see net/network) the per-site event
/// sequences are identical at *any* shard count.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(uint32_t num_shards);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Deterministic site→shard partitioner. The name server (and any
  /// other out-of-band SiteId) lands on shard 0; regular sites are
  /// striped round-robin so contiguous topologies spread evenly.
  static uint32_t ShardOfSite(SiteId site, uint32_t num_shards) {
    if (num_shards <= 1 || site >= kNameServerId) return 0;
    return site % num_shards;
  }

  uint32_t num_shards() const { return num_shards_; }
  Simulator& shard(uint32_t k) { return shards_[k]->sim; }
  /// The control lane. Events scheduled here run on the driver thread
  /// at barriers; RainbowSystem::sim() resolves to it in sharded mode
  /// so FaultInjector / test code works unchanged.
  Simulator& control() { return control_; }
  const Simulator& control() const { return control_; }

  /// Thread-safe cross-shard post: enqueues `cb` for execution on shard
  /// `shard` at virtual time `when` with ordering key `key`. Drained
  /// into the shard's event queue by its own worker at the next barrier
  /// (`when` must be at/after the next barrier time — guaranteed by the
  /// lookahead rule for message sends).
  void PostToShard(uint32_t shard, SimTime when, uint64_t key,
                   EventQueue::Callback cb);

  /// Provider for the conservative lookahead (minimum cross-shard
  /// delay, in µs); called on the driver thread at every barrier.
  /// Values < 1 are clamped to 1. Default without a provider: 1 µs
  /// (correct but slow — every window is one tick).
  void set_lookahead_provider(std::function<SimTime()> fn) {
    lookahead_provider_ = std::move(fn);
  }

  /// Runs barrier windows until every event at time <= t has executed,
  /// then aligns all clocks (shards + control) to exactly t.
  void RunUntil(SimTime t);

  /// Runs until no events remain anywhere. `max_events` is a livelock
  /// guard checked at window granularity. Returns events executed.
  size_t RunToQuiescence(size_t max_events = SIZE_MAX);

  /// Global virtual time (the control lane's clock; all shard clocks
  /// equal it whenever the driver is between runs).
  SimTime Now() const { return control_.Now(); }

  bool idle();
  uint64_t executed_events();
  uint64_t windows_run() const { return windows_; }
  uint64_t cross_shard_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    SimTime when;
    uint64_t key;
    EventQueue::Callback cb;
  };
  /// One shard lane. `sim` and `drain` are confined to the shard's own
  /// worker thread during a window (the barrier handoff through `mu_`
  /// publishes them to the driver between windows); only the mailbox —
  /// the one structure other shards' workers write — takes a lock.
  struct Shard {
    Simulator sim;
    Mutex mb_mu;
    std::vector<Pending> mailbox RAINBOW_GUARDED_BY(mb_mu);
    std::vector<Pending> drain;  // worker-local scratch
  };

  /// Earliest pending time across shard queues, mailboxes, and the
  /// control lane; kSimTimeMax when everything is idle.
  SimTime EarliestPending();

  /// Moves mailbox entries of shard k into its event queue. Runs on the
  /// shard's own worker (or the driver when single-threaded), after the
  /// shard clock is aligned to the barrier time.
  void DrainMailbox(uint32_t k);

  /// Executes one barrier window starting at T, bounded by `horizon`
  /// (exclusive: events at `horizon` itself stay pending when horizon
  /// == t+1 from RunUntil). Returns false if nothing is pending at or
  /// before `horizon` - 1.
  bool RunWindow(SimTime horizon);

  void EnsureWorkers();
  void WorkerLoop(uint32_t k);

  const uint32_t num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Simulator control_;
  std::function<SimTime()> lookahead_provider_;

  // Worker coordination. Workers start lazily at the first run and
  // persist until destruction; epoch_ increments per window. The
  // barrier state below is the driver↔worker rendezvous and every
  // field of it is guarded by mu_ (checked by clang -Wthread-safety).
  std::vector<std::thread> workers_;  // driver-only after EnsureWorkers
  Mutex mu_;
  CondVar cv_work_;
  CondVar cv_done_;
  uint64_t epoch_ RAINBOW_GUARDED_BY(mu_) = 0;
  SimTime window_run_to_ RAINBOW_GUARDED_BY(mu_) = 0;
  uint32_t pending_workers_ RAINBOW_GUARDED_BY(mu_) = 0;
  bool stop_ RAINBOW_GUARDED_BY(mu_) = false;

  // Driver-thread-only statistics; workers never touch these. The
  // control lane (control_) likewise runs exclusively on the driver
  // thread, with every worker parked at the barrier.
  uint64_t windows_ = 0;
  std::atomic<uint64_t> cross_posts_{0};
};

}  // namespace rainbow

#endif  // RAINBOW_SIM_SHARDED_SIMULATOR_H_
