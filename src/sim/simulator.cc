#include "sim/simulator.h"

#include <cassert>

namespace rainbow {

bool TimerHandle::Cancel() {
  if (queue_ == nullptr) return false;
  bool cancelled = queue_->Cancel(id_);
  queue_ = nullptr;
  return cancelled;
}

TimerHandle Simulator::After(SimTime delay, EventQueue::Callback fn) {
  assert(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

TimerHandle Simulator::At(SimTime when, EventQueue::Callback fn) {
  return AtKeyed(when, 0, std::move(fn));
}

TimerHandle Simulator::AtKeyed(SimTime when, uint64_t key,
                               EventQueue::Callback fn) {
  assert(when >= now_);
  EventQueue::EventId id = queue_.Schedule(when, key, std::move(fn));
  return TimerHandle(&queue_, id);
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired = queue_.PopNext();
  assert(fired.time >= now_);
  now_ = fired.time;
  ++executed_;
  fired.cb();
  return true;
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.NextTime() <= t) {
    Step();
  }
  if (now_ < t) now_ = t;
}

void Simulator::AdvanceTo(SimTime t) {
  assert(queue_.NextTime() >= t);
  if (now_ < t) now_ = t;
}

size_t Simulator::RunToQuiescence(size_t max_events) {
  size_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
  return n;
}

}  // namespace rainbow
