#ifndef RAINBOW_SIM_SIMULATOR_H_
#define RAINBOW_SIM_SIMULATOR_H_

#include <cstdint>

#include "common/types.h"
#include "sim/event_queue.h"

namespace rainbow {

/// Handle to a scheduled timer; allows cancellation. Default-constructed
/// handles are inert: id_ is EventQueue::kInvalidId, which Schedule()
/// never returns (slot 0 skips generation 0), so an inert handle can
/// never alias — and cancel — a real event.
class TimerHandle {
 public:
  TimerHandle() = default;

  bool valid() const { return queue_ != nullptr; }

  /// Cancels the timer if still pending; returns true if it was pending.
  /// Safe to call repeatedly.
  bool Cancel();

 private:
  friend class Simulator;
  TimerHandle(EventQueue* queue, EventQueue::EventId id)
      : queue_(queue), id_(id) {}
  EventQueue* queue_ = nullptr;
  EventQueue::EventId id_ = EventQueue::kInvalidId;
};

/// The discrete-event simulation kernel: a virtual clock plus an event
/// queue. All Rainbow "concurrency" — sites processing many
/// transactions, message delays, protocol timeouts — is expressed as
/// events on one Simulator, which makes whole-system executions
/// deterministic and reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay >= 0). Small
  /// closures are stored inline in the event queue (no allocation);
  /// see EventQueue::kInlineCallbackBytes.
  TimerHandle After(SimTime delay, EventQueue::Callback fn);

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  TimerHandle At(SimTime when, EventQueue::Callback fn);

  /// Schedules `fn` at `when` with an explicit ordering key: events
  /// fire in (time, key, insertion sequence) order. The sharded kernel
  /// keys message deliveries by (sender, per-sender sequence) so their
  /// order is independent of when they were inserted (directly vs.
  /// drained from a cross-shard mailbox). Key 0 == plain At().
  TimerHandle AtKeyed(SimTime when, uint64_t key, EventQueue::Callback fn);

  /// Runs the next pending event, advancing the clock. Returns false if
  /// no events are pending.
  bool Step();

  /// Runs events until the queue is empty or the clock would pass `t`;
  /// then sets the clock to `t`. The clock lands exactly on `t` in both
  /// exits — queue drained early *and* events remaining strictly after
  /// `t` — so back-to-back RunUntil windows observe contiguous time.
  void RunUntil(SimTime t);

  /// Jumps the clock forward to `t` without running anything. Requires
  /// that no pending event is earlier than `t` (it would otherwise fire
  /// in the past). The sharded driver uses this to align every shard's
  /// clock on the barrier time before a window runs, so events executed
  /// from a barrier context (control lane, mailbox drains) see a
  /// current Now().
  void AdvanceTo(SimTime t);

  /// Runs until no events remain. `max_events` guards against livelock
  /// in tests; returns the number of events executed.
  size_t RunToQuiescence(size_t max_events = SIZE_MAX);

  /// Time of the earliest pending event; kSimTimeMax when idle. The
  /// sharded driver uses this to pick barrier times.
  SimTime NextEventTime() { return queue_.NextTime(); }

  bool idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_SIM_SIMULATOR_H_
