#ifndef RAINBOW_SIM_SIMULATOR_H_
#define RAINBOW_SIM_SIMULATOR_H_

#include <cstdint>

#include "common/types.h"
#include "sim/event_queue.h"

namespace rainbow {

/// Handle to a scheduled timer; allows cancellation. Default-constructed
/// handles are inert.
class TimerHandle {
 public:
  TimerHandle() = default;

  bool valid() const { return queue_ != nullptr; }

  /// Cancels the timer if still pending; returns true if it was pending.
  /// Safe to call repeatedly.
  bool Cancel();

 private:
  friend class Simulator;
  TimerHandle(EventQueue* queue, EventQueue::EventId id)
      : queue_(queue), id_(id) {}
  EventQueue* queue_ = nullptr;
  EventQueue::EventId id_ = 0;
};

/// The discrete-event simulation kernel: a virtual clock plus an event
/// queue. All Rainbow "concurrency" — sites processing many
/// transactions, message delays, protocol timeouts — is expressed as
/// events on one Simulator, which makes whole-system executions
/// deterministic and reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay >= 0). Small
  /// closures are stored inline in the event queue (no allocation);
  /// see EventQueue::kInlineCallbackBytes.
  TimerHandle After(SimTime delay, EventQueue::Callback fn);

  /// Schedules `fn` at absolute virtual time `when` (>= Now()).
  TimerHandle At(SimTime when, EventQueue::Callback fn);

  /// Runs the next pending event, advancing the clock. Returns false if
  /// no events are pending.
  bool Step();

  /// Runs events until the queue is empty or the clock would pass `t`;
  /// then sets the clock to `t` (if it ran dry earlier).
  void RunUntil(SimTime t);

  /// Runs until no events remain. `max_events` guards against livelock
  /// in tests; returns the number of events executed.
  size_t RunToQuiescence(size_t max_events = SIZE_MAX);

  bool idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_SIM_SIMULATOR_H_
