#include "site/coordinator.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "site/site.h"

namespace rainbow {

Coordinator::Coordinator(Site* site, TxnId id, TxnTimestamp ts,
                         TxnProgram program, TxnCallback cb)
    : site_(site),
      id_(id),
      ts_(ts),
      program_(std::move(program)),
      cb_(std::move(cb)),
      submitted_at_(site->Now()) {}

Coordinator::~Coordinator() {
  // Cancel every outstanding RPC so no callback can touch a destroyed
  // coordinator (Finish() destroys *this from inside a callback).
  if (lookup_call_ != 0) site_->rpc().Cancel(lookup_call_);
  CancelCalls(access_calls_);
  CancelCalls(vote_calls_);
  CancelCalls(precommit_calls_);
}

void Coordinator::CancelCalls(std::map<SiteId, uint64_t>& calls) {
  for (auto& [s, call] : calls) site_->rpc().Cancel(call);
  calls.clear();
}

void Coordinator::Start() {
  site_->Trace(TraceCategory::kTxn,
               id_.ToString() + " arrived: " + program_.ToString());
  // Expand scan verbs into per-item reads: a scan of length L at item i
  // becomes reads of i..i+L-1, each served through the normal
  // replica-control path (the page engine feeds the copies from its B+
  // tree leaf chain at the participants).
  bool has_scan = false;
  for (const Op& op : program_.ops) {
    if (op.kind == OpKind::kScan) {
      has_scan = true;
      break;
    }
  }
  if (has_scan) {
    std::vector<Op> expanded;
    expanded.reserve(program_.ops.size());
    for (const Op& op : program_.ops) {
      if (op.kind != OpKind::kScan) {
        expanded.push_back(op);
        continue;
      }
      Value len = op.value < 1 ? 1 : op.value;
      for (Value k = 0; k < len; ++k) {
        expanded.push_back(Op::Read(op.item + static_cast<ItemId>(k)));
      }
    }
    program_.ops = std::move(expanded);
  }
  read_slots_.assign(program_.ops.size(), std::nullopt);
  exec_order_.resize(program_.ops.size());
  for (size_t i = 0; i < exec_order_.size(); ++i) exec_order_[i] = i;
  if (site_->config().ordered_access) {
    // Conservative discipline: one global (item-id) acquisition order
    // makes lock waits cycle-free. Stable sort keeps same-item ops in
    // program order, so read-own-write semantics are untouched.
    std::stable_sort(exec_order_.begin(), exec_order_.end(),
                     [this](size_t a, size_t b) {
                       return program_.ops[a].item < program_.ops[b].item;
                     });
  }
  NextOp();
}

void Coordinator::NextOp() {
  if (op_index_ >= exec_order_.size()) {
    BeginCommit();
    return;
  }
  cur_op_original_ = exec_order_[op_index_];
  const Op& op = program_.ops[cur_op_original_];
  switch (op.kind) {
    case OpKind::kRead: {
      auto buf = write_buffer_.find(op.item);
      if (buf != write_buffer_.end()) {
        // Read-own-write: served from the coordinator's buffer.
        read_slots_[cur_op_original_] = buf->second;
        ++op_index_;
        NextOp();
        return;
      }
      cur_increment_pending_ = false;
      WithView(op.item, AfterLookup::kRead);
      return;
    }
    case OpKind::kWrite:
      cur_increment_pending_ = false;
      cur_write_value_ = op.value;
      WithView(op.item, AfterLookup::kWrite);
      return;
    case OpKind::kIncrement: {
      auto buf = write_buffer_.find(op.item);
      if (buf != write_buffer_.end()) {
        read_slots_[cur_op_original_] = buf->second;
        cur_increment_pending_ = false;
        cur_write_value_ = buf->second + op.value;
        WithView(op.item, AfterLookup::kWrite);
        return;
      }
      // Read phase first; the write phase follows from the read value.
      cur_increment_pending_ = true;
      cur_increment_delta_ = op.value;
      WithView(op.item, AfterLookup::kRead);
      return;
    }
    case OpKind::kScan:
      // Scans were expanded into reads at Start(); none can reach the
      // per-op loop.
      assert(false && "unexpanded scan op");
      ++op_index_;
      NextOp();
      return;
  }
}

const ReplicaView* Coordinator::FindView(ItemId item) const {
  if (site_->config().cache_schema) {
    return site_->CachedView(item);
  }
  auto it = local_views_.find(item);
  return it == local_views_.end() ? nullptr : &it->second;
}

void Coordinator::WithView(ItemId item, AfterLookup next) {
  cur_item_ = item;
  after_lookup_ = next;
  if (const ReplicaView* view = FindView(item)) {
    (void)view;
    if (next == AfterLookup::kRead) {
      StartRead(item);
    } else {
      StartWrite(item, cur_write_value_);
    }
    return;
  }
  phase_ = Phase::kLookup;
  lookup_call_ = site_->rpc().Call(
      kNameServerId, NsLookupRequest{id_, item},
      site_->MakeRpcPolicy(site_->config().op_timeout),
      [this](Result<Payload> r) { OnLookupResult(std::move(r)); });
}

void Coordinator::OnLookupResult(Result<Payload> r) {
  lookup_call_ = 0;
  if (!r.ok()) {
    site_->Suspect(kNameServerId);
    AbortNow(AbortCause::kRcp, "name-server lookup timed out");
    return;
  }
  if (const auto* reply = std::get_if<NsLookupReply>(&*r)) {
    OnLookupReply(*reply);
  }
}

void Coordinator::OnLookupReply(const NsLookupReply& r) {
  if (phase_ != Phase::kLookup || r.item != cur_item_) return;
  ++round_trips_;
  if (!r.found) {
    AbortNow(AbortCause::kOther,
             "unknown item " + std::to_string(r.item));
    return;
  }
  ReplicaView view;
  view.copies = r.copies;
  view.votes = r.votes;
  view.read_quorum = r.read_quorum;
  view.write_quorum = r.write_quorum;
  if (site_->config().cache_schema) {
    site_->CacheView(r.item, view);
  } else {
    local_views_[r.item] = view;
  }
  if (after_lookup_ == AfterLookup::kRead) {
    StartRead(cur_item_);
  } else {
    StartWrite(cur_item_, cur_write_value_);
  }
}

void Coordinator::StartRead(ItemId item) {
  const ReplicaView* view = FindView(item);
  assert(view != nullptr);
  RcpPlanner planner(site_->config().rcp, site_->config().rcp_broadcast);
  auto plan = planner.PlanRead(*view, site_->id(), site_->SuspectedSet());
  if (!plan.ok()) {
    AbortNow(AbortCause::kRcp, plan.status().message());
    return;
  }
  phase_ = Phase::kReadOp;
  probe_forwarded_.clear();  // new wait epoch
  cur_is_write_ = false;
  cur_item_ = item;
  cur_require_all_ = plan->require_all;
  cur_votes_needed_ = plan->needed_votes;
  cur_votes_got_ = 0;
  cur_max_version_ = 0;
  cur_best_value_ = 0;
  cur_cc_site_ = plan->cc_site;
  cur_outstanding_.clear();
  for (SiteId s : plan->targets) cur_outstanding_.insert(s);
  site_->Trace(TraceCategory::kRcp,
               StringPrintf("%s read quorum for item %u: %zu targets",
                            id_.ToString().c_str(), item,
                            plan->targets.size()));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kQuorumPlan;
    rec.txn = id_;
    rec.item = item;
    rec.arg = static_cast<int64_t>(plan->targets.size());
    rec.detail = "read";
    site_->EmitTrace(std::move(rec));
  }
  SendAccessRequests();
}

void Coordinator::StartWrite(ItemId item, Value value) {
  const ReplicaView* view = FindView(item);
  assert(view != nullptr);
  RcpPlanner planner(site_->config().rcp, site_->config().rcp_broadcast);
  auto plan = planner.PlanWrite(*view, site_->id(), site_->SuspectedSet());
  if (!plan.ok()) {
    AbortNow(AbortCause::kRcp, plan.status().message());
    return;
  }
  phase_ = Phase::kWriteOp;
  probe_forwarded_.clear();  // new wait epoch
  cur_is_write_ = true;
  cur_item_ = item;
  cur_write_value_ = value;
  cur_require_all_ = plan->require_all;
  cur_votes_needed_ = plan->needed_votes;
  cur_votes_got_ = 0;
  cur_max_version_ = 0;
  cur_cc_site_ = plan->cc_site;
  cur_outstanding_.clear();
  for (SiteId s : plan->targets) cur_outstanding_.insert(s);
  site_->Trace(TraceCategory::kRcp,
               StringPrintf("%s write quorum for item %u: %zu targets",
                            id_.ToString().c_str(), item,
                            plan->targets.size()));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kQuorumPlan;
    rec.txn = id_;
    rec.item = item;
    rec.arg = static_cast<int64_t>(plan->targets.size());
    rec.detail = "write";
    site_->EmitTrace(std::move(rec));
  }
  SendAccessRequests();
}

void Coordinator::SendAccessRequests() {
  CancelCalls(access_calls_);
  RpcPolicy policy = site_->MakeRpcPolicy(site_->config().op_timeout);
  for (SiteId s : cur_outstanding_) {
    contacted_.insert(s);
    Payload request;
    if (cur_is_write_) {
      // Under primary copy, backups skip CC: the primary's lock already
      // serializes conflicting transactions.
      bool skip_cc = cur_cc_site_ != kInvalidSite && s != cur_cc_site_;
      request = PrewriteRequest{id_, ts_, cur_item_, cur_write_value_, skip_cc};
    } else {
      request = ReadRequest{id_, ts_, cur_item_};
    }
    access_calls_[s] = site_->rpc().Call(
        s, std::move(request), policy,
        [this, s](Result<Payload> r) { OnAccessResult(s, std::move(r)); });
  }
}

void Coordinator::OnAccessResult(SiteId from, Result<Payload> r) {
  access_calls_.erase(from);
  if (!r.ok()) {
    OnAccessFailure(from);
    return;
  }
  if (const auto* rr = std::get_if<ReadReply>(&*r)) {
    OnReadReply(from, *rr);
  } else if (const auto* pr = std::get_if<PrewriteReply>(&*r)) {
    OnPrewriteReply(from, *pr);
  }
}

void Coordinator::OnAccessFailure(SiteId from) {
  // The RPC layer exhausted its retries: suspect the target so the next
  // transactions plan around it, then check whether the quorum is still
  // attainable without it.
  site_->Suspect(from);
  cur_outstanding_.erase(from);
  if (cur_require_all_) {
    AbortNow(AbortCause::kRcp,
             StringPrintf("operation timeout (site %u silent)", from));
    return;
  }
  const ReplicaView* view = FindView(cur_item_);
  int possible = cur_votes_got_;
  if (view != nullptr) {
    for (SiteId s : cur_outstanding_) possible += view->VoteOf(s);
  }
  if (possible < cur_votes_needed_) {
    AbortNow(AbortCause::kRcp,
             StringPrintf("operation timeout (quorum unattainable after "
                          "site %u went silent)",
                          from));
  }
}

void Coordinator::OnReadReply(SiteId from, const ReadReply& r) {
  if (phase_ != Phase::kReadOp || r.item != cur_item_ ||
      !cur_outstanding_.contains(from)) {
    return;
  }
  ++round_trips_;
  cur_outstanding_.erase(from);
  if (!r.granted) {
    AccessDenied(from, r.reason);
    return;
  }
  if (!GrantEpochOk(from, r.epoch)) return;
  AccessGranted(from, r.version, r.value, true);
}

void Coordinator::OnPrewriteReply(SiteId from, const PrewriteReply& r) {
  if (phase_ != Phase::kWriteOp || r.item != cur_item_ ||
      !cur_outstanding_.contains(from)) {
    return;
  }
  ++round_trips_;
  cur_outstanding_.erase(from);
  if (!r.granted) {
    AccessDenied(from, r.reason);
    return;
  }
  if (!GrantEpochOk(from, r.epoch)) return;
  write_sites_[cur_item_].insert(from);
  AccessGranted(from, r.version, 0, false);
}

bool Coordinator::GrantEpochOk(SiteId from, uint64_t epoch) {
  if (!site_->config().epoch_fencing) return true;
  auto [it, inserted] = grant_epochs_.try_emplace(from, epoch);
  if (inserted || it->second == epoch) return true;
  // The replica restarted between two of our grants: every lock or
  // buffered prewrite it held for us died with its volatile state, so
  // the accesses we already counted there are void.
  AbortNow(AbortCause::kSiteFailure,
           StringPrintf("site %u restarted mid-transaction", from));
  return false;
}

void Coordinator::AccessGranted(SiteId from, Version version, Value value,
                                bool has_value) {
  participants_.insert(from);
  const ReplicaView* view = FindView(cur_item_);
  assert(view != nullptr);
  cur_votes_got_ += view->VoteOf(from);
  if (has_value) {
    read_site_versions_[cur_item_][from] = version;
  }
  if (has_value && (version >= cur_max_version_)) {
    // Highest-version copy wins (QC read rule). For equal versions any
    // copy is as good (they are identical under a validated schema).
    cur_best_value_ = value;
  }
  cur_max_version_ = std::max(cur_max_version_, version);
  bool done = cur_require_all_ ? cur_outstanding_.empty()
                               : cur_votes_got_ >= cur_votes_needed_;
  if (done) OpQuorumReached();
}

void Coordinator::AccessDenied(SiteId from, DenyReason reason) {
  (void)from;
  AbortCause cause = AbortCause::kCcp;
  if (reason == DenyReason::kSiteBusy || reason == DenyReason::kUnknownTxn) {
    cause = AbortCause::kOther;
  }
  AbortNow(cause, std::string("denied: ") + DenyReasonName(reason));
}

void Coordinator::OpQuorumReached() {
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kQuorumReached;
    rec.txn = id_;
    rec.item = cur_item_;
    rec.arg = cur_votes_got_;
    rec.detail = cur_is_write_ ? "write" : "read";
    site_->EmitTrace(std::move(rec));
  }
  // Surplus broadcast targets that have not answered are released right
  // away: their calls are cancelled (the RPC layer drops any in-flight
  // reply) and an AbortRequest frees the CC state a late grant holds.
  CancelCalls(access_calls_);
  for (SiteId s : cur_outstanding_) {
    if (!participants_.contains(s)) {
      site_->SendTo(s, AbortRequest{id_});
    }
  }
  cur_outstanding_.clear();
  if (cur_is_write_) {
    Version& base = write_base_version_[cur_item_];
    base = std::max(base, cur_max_version_);
    write_buffer_[cur_item_] = cur_write_value_;
    ++op_index_;
    NextOp();
    return;
  }
  // Read complete.
  read_slots_[cur_op_original_] = cur_best_value_;
  accesses_.push_back(CommittedAccess{cur_item_, false, cur_max_version_});
  if (site_->tracing()) {
    // The version the transaction logically read (max over the quorum) —
    // the history checker builds wr/rw precedence edges from this.
    TraceRecord rec;
    rec.kind = TraceEventKind::kReadDone;
    rec.txn = id_;
    rec.item = cur_item_;
    rec.arg = static_cast<int64_t>(cur_max_version_);
    site_->EmitTrace(std::move(rec));
  }
  if (cur_increment_pending_) {
    cur_increment_pending_ = false;
    // The read phase of the INCREMENT observed the value; the write
    // phase installs value + delta. This is still the same program op.
    StartWrite(cur_item_, cur_best_value_ + cur_increment_delta_);
    return;
  }
  ++op_index_;
  NextOp();
}

void Coordinator::BeginCommit() {
  if (participants_.empty()) {
    // Nothing was accessed remotely (empty program): trivial commit.
    if (site_->env().history && site_->env().history->enabled()) {
      site_->env().history->RecordCommit(id_, accesses_);
    }
    Finish(true, AbortCause::kNone, "");
    return;
  }
  // Finalize the version each written item will install.
  for (auto& [item, base] : write_base_version_) {
    accesses_.push_back(CommittedAccess{item, true, base + 1});
  }
  std::vector<SiteId> plist(participants_.begin(), participants_.end());
  votes_ = std::make_unique<VoteCollector>(plist);
  phase_ = Phase::kVoting;
  bool three_phase = site_->config().acp == AcpKind::kThreePhaseCommit;
  site_->Trace(TraceCategory::kAcp,
               StringPrintf("%s prepare -> %zu participants",
                            id_.ToString().c_str(), plist.size()));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kPrepare;
    rec.txn = id_;
    rec.arg = static_cast<int64_t>(plist.size());
    rec.detail = three_phase ? "3PC" : "2PC";
    site_->EmitTrace(std::move(rec));
  }
  bool occ = site_->config().cc == CcKind::kOptimistic;
  RpcPolicy policy = site_->MakeRpcPolicy(site_->config().vote_timeout);
  for (SiteId p : plist) {
    PrepareRequest prep;
    prep.txn = id_;
    prep.participants = plist;
    prep.three_phase = three_phase;
    for (const auto& [item, sites] : write_sites_) {
      if (sites.contains(p)) {
        prep.versions.push_back(PrepareRequest::WriteVersion{
            item, write_base_version_.at(item) + 1});
      }
    }
    if (occ) {
      // Backward validation set: the versions this transaction's reads
      // observed at participant `p`.
      for (const auto& [item, by_site] : read_site_versions_) {
        auto it = by_site.find(p);
        if (it != by_site.end()) {
          prep.validations.push_back(
              PrepareRequest::ReadValidation{item, it->second});
        }
      }
    }
    vote_calls_[p] = site_->rpc().Call(
        p, std::move(prep), policy,
        [this, p](Result<Payload> r) { OnVoteResult(p, std::move(r)); });
  }
}

void Coordinator::OnVoteResult(SiteId from, Result<Payload> r) {
  vote_calls_.erase(from);
  if (!r.ok()) {
    // A silent participant cannot have voted YES; 2PC and 3PC phase 1
    // both decide abort.
    site_->Suspect(from);
    Decide(false, AbortCause::kAcp, "vote collection timed out");
    return;
  }
  if (const auto* v = std::get_if<VoteReply>(&*r)) {
    OnVote(from, *v);
  }
}

void Coordinator::OnVote(SiteId from, const VoteReply& v) {
  if (phase_ != Phase::kVoting || !votes_) return;
  ++round_trips_;
  if (v.read_only && v.yes) readonly_voters_.insert(from);
  votes_->Record(from, v.yes);
  if (!v.yes) {
    Decide(false, AbortCause::kAcp,
           std::string("participant voted NO: ") + DenyReasonName(v.reason));
    return;
  }
  if (!votes_->AllYes()) return;
  if (site_->config().acp == AcpKind::kThreePhaseCommit) {
    phase_ = Phase::kPreCommit;
    std::vector<SiteId> remaining = DecisionParticipants();
    precommit_acks_ = std::make_unique<AckCollector>(remaining);
    if (remaining.empty()) {
      Decide(true, AbortCause::kNone, "");
      return;
    }
    RpcPolicy policy = site_->MakeRpcPolicy(site_->config().vote_timeout);
    for (SiteId p : remaining) {
      precommit_calls_[p] = site_->rpc().Call(
          p, PreCommitRequest{id_}, policy, [this, p](Result<Payload> r) {
            if (r.ok()) ++round_trips_;
            // Terminal failure counts as completion too: every
            // participant voted YES, so a silent one is prepared (or
            // better) and its termination protocol converges on commit.
            OnPreCommitResult(p);
          });
    }
    return;
  }
  Decide(true, AbortCause::kNone, "");
}

void Coordinator::OnPreCommitResult(SiteId from) {
  precommit_calls_.erase(from);
  if (phase_ != Phase::kPreCommit || !precommit_acks_) return;
  precommit_acks_->Record(from);
  if (precommit_acks_->Complete()) {
    Decide(true, AbortCause::kNone, "");
  }
}

void Coordinator::OnRemoteAbort(const RemoteAbortNotify& n) {
  if (voting()) {
    // A participant lost our CC state after granting but before prepare
    // reached it; its NO vote (unknown txn) aborts us. If the notify
    // arrives first, abort right away.
    Decide(false, AbortCause::kCcp,
           std::string("remote abort: ") + DenyReasonName(n.reason));
    return;
  }
  AbortNow(AbortCause::kCcp,
           std::string("remote abort: ") + DenyReasonName(n.reason));
}

void Coordinator::OnStrayGrant(SiteId from) {
  if (!voting()) {
    participants_.insert(from);
  } else if (!participants_.contains(from)) {
    site_->SendTo(from, AbortRequest{id_});
  }
}

std::vector<SiteId> Coordinator::DecisionParticipants() const {
  std::vector<SiteId> out;
  for (SiteId p : votes_->participants()) {
    if (!readonly_voters_.contains(p)) out.push_back(p);
  }
  return out;
}

void Coordinator::Decide(bool commit, AbortCause cause, std::string detail) {
  // Read-only voters already released everything; only the rest take
  // part in the decision round.
  std::vector<SiteId> plist = DecisionParticipants();
  site_->mutable_wal().Append(WalRecord::Protocol(
      commit ? WalRecordKind::kCommitDecision : WalRecordKind::kAbortDecision,
      id_,
      site_->id(),
      {},
      plist,
      false));
  site_->RememberDecision(id_, commit);
  site_->Trace(TraceCategory::kAcp,
               id_.ToString() + (commit ? " decision: COMMIT" : " decision: ABORT"));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kDecision;
    rec.txn = id_;
    rec.arg = commit ? 1 : 0;
    site_->EmitTrace(std::move(rec));
  }
  // The closer sends the decision to every participant and keeps
  // resending (via the RPC layer) until each one acks.
  site_->StartCloser(id_, commit, plist);
  if (commit && site_->env().history && site_->env().history->enabled()) {
    site_->env().history->RecordCommit(id_, accesses_);
  }
  Finish(commit, cause, std::move(detail));
}

void Coordinator::AbortNow(AbortCause cause, std::string detail) {
  std::set<SiteId> targets = contacted_;
  for (SiteId p : participants_) targets.insert(p);
  for (SiteId s : targets) {
    site_->SendTo(s, AbortRequest{id_});
  }
  Finish(false, cause, std::move(detail));
}

void Coordinator::Finish(bool committed, AbortCause cause,
                         std::string detail) {
  TxnOutcome outcome;
  outcome.id = id_;
  outcome.ts = ts_;
  outcome.committed = committed;
  outcome.abort_cause = committed ? AbortCause::kNone : cause;
  outcome.abort_detail = std::move(detail);
  outcome.submitted_at = submitted_at_;
  outcome.finished_at = site_->Now();
  outcome.home = site_->id();
  outcome.num_ops = static_cast<uint32_t>(program_.ops.size());
  outcome.round_trips = round_trips_;
  if (committed) {
    for (const auto& slot : read_slots_) {
      if (slot.has_value()) outcome.reads.push_back(*slot);
    }
  }

  site_->Trace(TraceCategory::kTxn, outcome.ToString());
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = committed ? TraceEventKind::kTxnCommit : TraceEventKind::kTxnAbort;
    rec.txn = id_;
    rec.arg = static_cast<int64_t>(round_trips_);
    if (!committed) {
      rec.detail = AbortCauseName(outcome.abort_cause);
      if (!outcome.abort_detail.empty()) {
        rec.detail += ": ";
        rec.detail += outcome.abort_detail;
      }
    }
    site_->EmitTrace(std::move(rec));
  }
  if (site_->env().monitor) site_->env().monitor->OnComplete(outcome);
  if (cb_) {
    // Deliver asynchronously so client code (e.g. a closed-loop workload
    // generator) never runs inside a half-destroyed coordinator.
    site_->env().sim->After(0, [cb = cb_, outcome] { cb(outcome); });
  }
  site_->CoordinatorFinished(id_);  // destroys *this; must be last
}

bool Coordinator::ShouldForwardProbe(TxnId initiator, SimTime now,
                                     SimTime min_gap) {
  auto [it, inserted] = probe_forwarded_.try_emplace(initiator, now);
  if (inserted) return true;
  if (now - it->second >= min_gap) {
    it->second = now;
    return true;
  }
  return false;
}

void Coordinator::AbortAsDeadlockVictim() {
  if (voting()) {
    // Prepared participants cannot be yanked out from under 2PC; the
    // vote round will settle the outcome on its own.
    return;
  }
  site_->Trace(TraceCategory::kCcp,
               id_.ToString() + " aborted: distributed deadlock (probe)");
  AbortNow(AbortCause::kCcp, "distributed deadlock detected by probe");
}

void Coordinator::OnSiteCrash() {
  TxnOutcome outcome;
  outcome.id = id_;
  outcome.ts = ts_;
  outcome.committed = false;
  outcome.abort_cause = AbortCause::kSiteFailure;
  outcome.abort_detail = "home site crashed";
  outcome.submitted_at = submitted_at_;
  outcome.finished_at = site_->Now();
  outcome.home = site_->id();
  outcome.num_ops = static_cast<uint32_t>(program_.ops.size());
  outcome.round_trips = round_trips_;
  if (site_->env().monitor) site_->env().monitor->OnComplete(outcome);
  if (cb_) {
    site_->env().sim->After(0, [cb = cb_, outcome] { cb(outcome); });
  }
  // The Site clears the coordinator map right after; no self-erase here.
}

}  // namespace rainbow
