#ifndef RAINBOW_SITE_COORDINATOR_H_
#define RAINBOW_SITE_COORDINATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "acp/acp_common.h"
#include "common/result.h"
#include "net/message.h"
#include "rcp/rcp_policy.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace rainbow {

class Site;

/// Drives one transaction homed at a site — the paper's "one thread per
/// transaction". Implements §2.1 exactly: for each operation in program
/// order the RCP builds a read or write quorum (replica sites apply the
/// CCP and return values / version numbers); when every operation is
/// done, the coordinator runs the ACP (2PC or 3PC) across all
/// participant sites; the decision is then handed to the Site's closer,
/// which collects acks and logs the end record.
///
/// Every request/reply exchange (name-server lookup, copy access, vote
/// collection, pre-commit round) is an RPC call on the site's endpoint:
/// the RPC layer owns per-attempt timeouts and retransmission, and the
/// coordinator reacts to replies or terminal failures per target.
class Coordinator {
 public:
  Coordinator(Site* site, TxnId id, TxnTimestamp ts, TxnProgram program,
              TxnCallback cb);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  void Start();

  /// A participant lost our CC state (victim); dispatched by Site.
  void OnRemoteAbort(const RemoteAbortNotify& n);

  /// A late granted copy-access reply (its RPC call was already
  /// cancelled — e.g. the surplus reply of a broadcast quorum): the
  /// replica holds CC state for us. Fold it into the commit protocol if
  /// that is still possible; otherwise release it immediately.
  void OnStrayGrant(SiteId from);

  /// Home site crashed: deliver a site-failure outcome to the client.
  /// The caller destroys the coordinator afterwards.
  void OnSiteCrash();

  TxnId id() const { return id_; }
  TxnTimestamp ts() const { return ts_; }

  /// True once the coordinator reached the voting phase (used by the
  /// Site to answer DecisionQuery with "still deciding").
  bool voting() const { return phase_ == Phase::kVoting || phase_ == Phase::kPreCommit; }

  /// True while the coordinator is waiting for copy-access replies
  /// (read/write quorum in progress) — the "blocked" state traversed by
  /// deadlock probes.
  bool in_data_op() const {
    return phase_ == Phase::kReadOp || phase_ == Phase::kWriteOp;
  }

  /// Sites the current operation is still waiting on.
  const std::set<SiteId>& outstanding_targets() const {
    return cur_outstanding_;
  }

  /// Aborts the whole transaction as a distributed-deadlock victim.
  void AbortAsDeadlockVictim();

  /// Probe dedup: true at most once per `min_gap` per initiator while
  /// this operation blocks. Without it, dense waits-for graphs amplify
  /// probes exponentially (every path, not every edge, gets traversed).
  bool ShouldForwardProbe(TxnId initiator, SimTime now, SimTime min_gap);

 private:
  enum class Phase {
    kIdle,
    kLookup,     ///< waiting for a name-server reply
    kReadOp,     ///< building a read quorum
    kWriteOp,    ///< building a write quorum
    kVoting,     ///< 2PC/3PC phase 1
    kPreCommit,  ///< 3PC phase 2
  };
  /// What to do once the pending name-server lookup returns.
  enum class AfterLookup { kRead, kWrite };

  void NextOp();
  /// Fetches the replica view for `item` (cache or name server), then
  /// continues with `next`.
  void WithView(ItemId item, AfterLookup next);
  const ReplicaView* FindView(ItemId item) const;

  void StartRead(ItemId item);
  void StartWrite(ItemId item, Value value);
  void SendAccessRequests();
  void OnLookupResult(Result<Payload> r);
  void OnLookupReply(const NsLookupReply& r);
  void OnAccessResult(SiteId from, Result<Payload> r);
  /// Terminal RPC failure of one access target: suspect it and abort if
  /// the quorum can no longer be assembled from the remaining targets.
  void OnAccessFailure(SiteId from);
  void OnReadReply(SiteId from, const ReadReply& r);
  void OnPrewriteReply(SiteId from, const PrewriteReply& r);
  /// Checks the replica-incarnation epoch a grant carried against the
  /// epoch of this transaction's earlier grants from the same site. A
  /// mismatch means the site restarted mid-transaction — the locks and
  /// buffered prewrites it held for us died with it — so the transaction
  /// aborts. Returns false when the transaction was aborted.
  bool GrantEpochOk(SiteId from, uint64_t epoch);
  void AccessGranted(SiteId from, Version version, Value value,
                     bool has_value);
  void AccessDenied(SiteId from, DenyReason reason);
  void OpQuorumReached();

  void BeginCommit();
  std::vector<SiteId> DecisionParticipants() const;
  void OnVoteResult(SiteId from, Result<Payload> r);
  void OnVote(SiteId from, const VoteReply& v);
  void OnPreCommitResult(SiteId from);
  void Decide(bool commit, AbortCause cause, std::string detail);

  /// Cancels every outstanding RPC call in `calls` and clears it.
  void CancelCalls(std::map<SiteId, uint64_t>& calls);

  /// Aborts before any prepare was sent: AbortRequests to every
  /// contacted site, then reports the outcome.
  void AbortNow(AbortCause cause, std::string detail);

  /// Delivers the outcome to the client (async) and retires this
  /// coordinator. Must be the caller's final action.
  void Finish(bool committed, AbortCause cause, std::string detail);

  Site* site_;
  TxnId id_;
  TxnTimestamp ts_;
  TxnProgram program_;
  TxnCallback cb_;
  SimTime submitted_at_;

  Phase phase_ = Phase::kIdle;
  size_t op_index_ = 0;

  // Current-operation state.
  ItemId cur_item_ = kInvalidItem;
  bool cur_is_write_ = false;
  Value cur_write_value_ = 0;
  bool cur_require_all_ = false;
  int cur_votes_needed_ = 0;
  int cur_votes_got_ = 0;
  std::set<SiteId> cur_outstanding_;
  Version cur_max_version_ = 0;
  Value cur_best_value_ = 0;
  bool cur_increment_pending_ = false;  ///< write phase of an INCREMENT follows
  Value cur_increment_delta_ = 0;
  SiteId cur_cc_site_ = kInvalidSite;  ///< primary copy: sole CC arbiter
  std::map<TxnId, SimTime> probe_forwarded_;  ///< per-op probe dedup
  AfterLookup after_lookup_ = AfterLookup::kRead;

  // Outstanding RPC calls (cancelled by the destructor, so no callback
  // can outlive the coordinator).
  uint64_t lookup_call_ = 0;
  std::map<SiteId, uint64_t> access_calls_;
  std::map<SiteId, uint64_t> vote_calls_;
  std::map<SiteId, uint64_t> precommit_calls_;

  // Transaction-wide state.
  std::map<ItemId, ReplicaView> local_views_;  ///< when schema caching is off
  std::set<SiteId> contacted_;
  std::set<SiteId> participants_;
  std::map<SiteId, uint64_t> grant_epochs_;  ///< replica epoch per grant site
  std::map<ItemId, Value> write_buffer_;
  std::map<ItemId, Version> write_base_version_;
  std::map<ItemId, std::set<SiteId>> write_sites_;
  /// Versions observed per (item, replica site) by this transaction's
  /// reads; under OCC they are shipped with the prepare for backward
  /// validation.
  std::map<ItemId, std::map<SiteId, Version>> read_site_versions_;
  std::vector<CommittedAccess> accesses_;
  /// Observed read value per program op (reads/increments only), keyed
  /// by the op's original index so ordered_access does not reorder the
  /// values the client sees.
  std::vector<std::optional<Value>> read_slots_;
  /// Execution order over program op indices (identity, or sorted by
  /// item under ProtocolConfig::ordered_access).
  std::vector<size_t> exec_order_;
  size_t cur_op_original_ = 0;
  uint32_t round_trips_ = 0;

  // ACP state.
  std::unique_ptr<VoteCollector> votes_;
  std::unique_ptr<AckCollector> precommit_acks_;
  std::set<SiteId> readonly_voters_;
};

}  // namespace rainbow

#endif  // RAINBOW_SITE_COORDINATOR_H_
