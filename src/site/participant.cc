#include "site/participant.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/string_util.h"
#include "site/site.h"

namespace rainbow {

ParticipantManager::ParticipantManager(Site* site) : site_(site) {}

ParticipantManager::~ParticipantManager() { Shutdown(); }

void ParticipantManager::Shutdown() {
  for (auto& [id, t] : txns_) CancelAll(t);
  txns_.clear();
}

void ParticipantManager::CancelAll(PTxn& t) {
  t.decision_timer.Cancel();
  t.activity_timer.Cancel();
  t.window_timer.Cancel();
  t.wait_timer.Cancel();
  t.probe_timer.Cancel();
  for (uint64_t c : t.query_calls) site_->rpc().Cancel(c);
  t.query_calls.clear();
  if (t.coord_query_call != 0) {
    site_->rpc().Cancel(t.coord_query_call);
    t.coord_query_call = 0;
  }
}

void ParticipantManager::EmitCcOutcome(TxnId txn, ItemId item,
                                       const CcGrant& g) {
  if (!site_->tracing()) return;
  TraceRecord rec;
  rec.kind = g.granted ? TraceEventKind::kCcGrant : TraceEventKind::kCcDeny;
  rec.txn = txn;
  rec.item = item;
  if (!g.granted) rec.detail = DenyReasonName(g.reason);
  site_->EmitTrace(std::move(rec));
}

void ParticipantManager::EmitCcBlocked(TxnId txn, ItemId item) {
  if (!site_->tracing()) return;
  TraceRecord rec;
  rec.kind = TraceEventKind::kCcBlock;
  rec.txn = txn;
  rec.item = item;
  site_->EmitTrace(std::move(rec));
}

void ParticipantManager::EmitVote(TxnId txn, SiteId coordinator, bool yes,
                                  const char* note) {
  if (!site_->tracing()) return;
  TraceRecord rec;
  rec.kind = TraceEventKind::kVote;
  rec.txn = txn;
  rec.peer = coordinator;
  rec.arg = yes ? 1 : 0;
  rec.detail = note;
  site_->EmitTrace(std::move(rec));
}

ParticipantManager::PTxn& ParticipantManager::Ensure(TxnId txn,
                                                     TxnTimestamp ts,
                                                     SiteId coordinator) {
  auto [it, inserted] = txns_.try_emplace(txn);
  PTxn& t = it->second;
  if (inserted) {
    t.id = txn;
    t.ts = ts;
    t.coordinator = coordinator;
    t.state = AcpState::kActive;
  }
  return t;
}

void ParticipantManager::ArmActivityTimer(PTxn& t) {
  t.activity_timer.Cancel();
  TxnId id = t.id;
  t.activity_timer = site_->env().sim->After(
      site_->config().active_timeout, [this, id] { OnActivityTimeout(id); });
}

void ParticipantManager::ArmDecisionTimer(PTxn& t) {
  t.decision_timer.Cancel();
  TxnId id = t.id;
  t.decision_timer = site_->env().sim->After(
      site_->config().decision_timeout, [this, id] { OnDecisionTimeout(id); });
}

void ParticipantManager::ArmProbeTimer(TxnId txn) {
  if (site_->config().deadlock != DeadlockPolicy::kEdgeChasing) return;
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  it->second.probe_timer.Cancel();
  it->second.probe_timer =
      site_->env().sim->After(site_->config().probe_delay, [this, txn] {
        auto it2 = txns_.find(txn);
        if (it2 == txns_.end()) return;
        std::vector<TxnId> holders = site_->cc()->WaitingFor(txn);
        if (holders.empty()) return;  // wait resolved meanwhile
        site_->Trace(TraceCategory::kCcp,
                     txn.ToString() + " still blocked: emitting " +
                         std::to_string(holders.size()) + " deadlock probes");
        for (TxnId h : holders) {
          site_->SendTo(h.home, DeadlockProbe{txn, h, 0});
        }
        // Re-arm: long waits keep probing (the graph may only later
        // close into a cycle).
        ArmProbeTimer(txn);
      });
}

void ParticipantManager::OnRead(SiteId from, const ReadRequest& req,
                                const RpcContext& ctx) {
  if (doomed_.contains(req.txn)) {
    // This site already aborted the transaction unilaterally; recreating
    // state for it now would resurrect it after its locks were freed.
    site_->Respond(ctx, from,
                   ReadReply{req.txn, req.item, false, DenyReason::kUnknownTxn,
                             0, 0, site_->epoch()});
    return;
  }
  PTxn& t = Ensure(req.txn, req.ts, from);
  if (t.state != AcpState::kActive) return;  // stray after prepare
  ArmActivityTimer(t);

  TxnId id = req.txn;
  ItemId item = req.item;
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kReadRequest;
    rec.txn = id;
    rec.peer = from;
    rec.item = item;
    site_->EmitTrace(std::move(rec));
  }
  // Detect whether the CC engine answers synchronously; if not, a
  // lock-wait timer bounds the wait.
  auto decided = std::make_shared<bool>(false);
  site_->cc()->RequestRead(
      id, req.ts, item,
      [this, id, item, from, ctx, decided](const CcGrant& g) {
        *decided = true;
        auto it = txns_.find(id);
        if (it == txns_.end()) return;  // aborted while waiting
        it->second.wait_timer.Cancel();
        it->second.probe_timer.Cancel();
        if (g.granted) it->second.granted_any = true;
        EmitCcOutcome(id, item, g);
        ReadReply reply;
        reply.txn = id;
        reply.item = item;
        reply.granted = g.granted;
        reply.reason = g.reason;
        reply.epoch = site_->epoch();
        if (g.granted) {
          if (g.has_value) {
            reply.value = g.value;
            reply.version = g.version;
          } else {
            auto copy = site_->store().Get(item);
            if (!copy.ok()) {
              reply.granted = false;
              reply.reason = DenyReason::kSiteBusy;
            } else {
              reply.value = copy->value;
              reply.version = copy->version;
            }
          }
        }
        site_->Respond(ctx, from, reply);
        if (!reply.granted) {
          if (it->second.granted_any) doomed_.insert(id);
          LocalAbort(id);
        }
      });
  if (!*decided) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;  // denied synchronously and cleaned up
    EmitCcBlocked(id, item);
    ArmProbeTimer(id);
    it->second.wait_timer = site_->env().sim->After(
        site_->config().lock_wait_timeout, [this, id, item, from, ctx] {
          auto it2 = txns_.find(id);
          if (it2 == txns_.end()) return;
          site_->Trace(TraceCategory::kCcp,
                       id.ToString() + " read wait timeout on item " +
                           std::to_string(item));
          if (it2->second.granted_any) doomed_.insert(id);
          LocalAbort(id);
          site_->Respond(ctx, from,
                         ReadReply{id, item, false, DenyReason::kWaitTimeout,
                                   0, 0, site_->epoch()});
        });
  }
}

void ParticipantManager::OnPrewrite(SiteId from, const PrewriteRequest& req,
                                    const RpcContext& ctx) {
  if (doomed_.contains(req.txn)) {
    site_->Respond(ctx, from,
                   PrewriteReply{req.txn, req.item, false,
                                 DenyReason::kUnknownTxn, 0, site_->epoch()});
    return;
  }
  PTxn& t = Ensure(req.txn, req.ts, from);
  if (t.state != AcpState::kActive) return;
  ArmActivityTimer(t);

  TxnId id = req.txn;
  ItemId item = req.item;
  Value value = req.value;
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kPrewriteRequest;
    rec.txn = id;
    rec.peer = from;
    rec.item = item;
    if (req.skip_cc) rec.detail = "skip_cc";
    site_->EmitTrace(std::move(rec));
  }

  if (req.skip_cc) {
    // Primary-copy backup path: buffer the write without CC — the
    // primary's lock serialized conflicting transactions already.
    t.buffered[item] = value;
    site_->mutable_store().LogPrewrite(id, item, value);
    t.granted_any = true;
    PrewriteReply reply;
    reply.txn = id;
    reply.item = item;
    reply.granted = true;
    reply.epoch = site_->epoch();
    auto copy = site_->store().Get(item);
    reply.version = copy.ok() ? copy->version : 0;
    site_->Respond(ctx, from, reply);
    return;
  }

  auto decided = std::make_shared<bool>(false);
  site_->cc()->RequestWrite(
      id, req.ts, item,
      [this, id, item, value, from, ctx, decided](const CcGrant& g) {
        *decided = true;
        auto it = txns_.find(id);
        if (it == txns_.end()) return;
        it->second.wait_timer.Cancel();
        it->second.probe_timer.Cancel();
        if (g.granted) it->second.granted_any = true;
        EmitCcOutcome(id, item, g);
        PrewriteReply reply;
        reply.txn = id;
        reply.item = item;
        reply.granted = g.granted;
        reply.reason = g.reason;
        reply.epoch = site_->epoch();
        if (g.granted) {
          it->second.buffered[item] = value;
          site_->mutable_store().LogPrewrite(id, item, value);
          auto copy = site_->store().Get(item);
          reply.version = copy.ok() ? copy->version : 0;
        }
        site_->Respond(ctx, from, reply);
        if (!reply.granted) {
          if (it->second.granted_any) doomed_.insert(id);
          LocalAbort(id);
        }
      });
  if (!*decided) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;
    EmitCcBlocked(id, item);
    ArmProbeTimer(id);
    it->second.wait_timer = site_->env().sim->After(
        site_->config().lock_wait_timeout, [this, id, item, from, ctx] {
          auto it2 = txns_.find(id);
          if (it2 == txns_.end()) return;
          site_->Trace(TraceCategory::kCcp,
                       id.ToString() + " write wait timeout on item " +
                           std::to_string(item));
          if (it2->second.granted_any) doomed_.insert(id);
          LocalAbort(id);
          site_->Respond(ctx, from,
                         PrewriteReply{id, item, false,
                                       DenyReason::kWaitTimeout, 0,
                                       site_->epoch()});
        });
  }
}

void ParticipantManager::OnAbortRequest(const AbortRequest& req) {
  auto it = txns_.find(req.txn);
  if (it == txns_.end()) return;
  if (it->second.state == AcpState::kPrepared ||
      it->second.state == AcpState::kPreCommitted) {
    // A coordinator never plain-aborts a prepared participant, but a
    // recovered one might; treat as an abort decision (logged).
    ApplyDecision(req.txn, false);
    return;
  }
  LocalAbort(req.txn);
}

void ParticipantManager::OnPrepare(SiteId from, const PrepareRequest& req,
                                   const RpcContext& ctx) {
  auto it = txns_.find(req.txn);
  if (it == txns_.end()) {
    // We lost this transaction (crash, victim, orphan cleanup): vote NO.
    EmitVote(req.txn, from, false, DenyReasonName(DenyReason::kUnknownTxn));
    site_->Respond(ctx, from,
                   VoteReply{req.txn, false, DenyReason::kUnknownTxn});
    return;
  }
  PTxn& t = it->second;
  if (t.state != AcpState::kActive) {
    // Duplicate prepare; re-vote YES if prepared.
    if (t.state == AcpState::kPrepared || t.state == AcpState::kPreCommitted) {
      site_->Respond(ctx, from, VoteReply{req.txn, true, DenyReason::kNone});
    }
    return;
  }
  t.coordinator = from;
  t.participants = req.participants;
  t.three_phase = req.three_phase;
  for (const auto& wv : req.versions) {
    t.versions[wv.item] = wv.version;
  }
  // OCC backward validation: every read this transaction performed here
  // must still be current, and the commit window needs non-waiting
  // shared (reads) / exclusive (writes) locks. Any conflict => NO vote.
  // Pessimistic engines send no validations and grant all commit locks.
  bool valid = true;
  for (const auto& rv : req.validations) {
    auto copy = site_->store().Get(rv.item);
    if (!copy.ok() || copy->version != rv.version) {
      valid = false;
      break;
    }
  }
  if (valid) {
    for (const auto& rv : req.validations) {
      if (!site_->cc()->TryCommitLock(req.txn, rv.item, false)) {
        valid = false;
        break;
      }
    }
  }
  if (valid) {
    for (const auto& [item, value] : t.buffered) {
      if (!site_->cc()->TryCommitLock(req.txn, item, true)) {
        valid = false;
        break;
      }
    }
  }
  if (!valid) {
    site_->Trace(TraceCategory::kCcp,
                 req.txn.ToString() + " failed OCC validation");
    EmitVote(req.txn, from, false,
             DenyReasonName(DenyReason::kValidationFailed));
    site_->Respond(ctx, from,
                   VoteReply{req.txn, false, DenyReason::kValidationFailed});
    if (t.granted_any) doomed_.insert(req.txn);
    LocalAbort(req.txn);  // releases any commit locks taken above
    return;
  }
  // The read-only optimization is 2PC-only: under 3PC a vanished
  // read-only participant would be indistinguishable from a crashed
  // unprepared one during termination, which decides ABORT on kUnknown.
  if (site_->config().readonly_optimization && !req.three_phase &&
      t.buffered.empty()) {
    // Read-only participant: vote YES-read-only, release everything now
    // and drop out of phase 2 (no prepared record, no decision needed).
    site_->Trace(TraceCategory::kAcp,
                 req.txn.ToString() + " voted READ-ONLY (early release)");
    EmitVote(req.txn, from, true, "read-only");
    site_->Respond(ctx, from,
                   VoteReply{req.txn, true, DenyReason::kNone, true});
    LocalAbort(req.txn);  // releases CC holds; nothing was written
    return;
  }
  // Force-log the prepared record (with writes and participants) before
  // voting YES — the WAL survives crashes.
  WalRecord rec;
  rec.kind = WalRecordKind::kPrepared;
  rec.txn = req.txn;
  rec.coordinator = from;
  rec.three_phase = req.three_phase;
  rec.participants = req.participants;
  for (const auto& [item, value] : t.buffered) {
    auto vi = t.versions.find(item);
    rec.writes.push_back(WalRecord::Write{
        item, value, vi == t.versions.end() ? 0 : vi->second});
  }
  site_->mutable_wal().Append(std::move(rec));

  t.state = AcpState::kPrepared;
  t.prepared_at = site_->Now();
  site_->cc()->MarkPrepared(req.txn);
  t.activity_timer.Cancel();
  // A pending orphan probe no longer applies once prepared.
  for (uint64_t c : t.query_calls) site_->rpc().Cancel(c);
  t.query_calls.clear();
  ArmDecisionTimer(t);
  site_->Trace(TraceCategory::kAcp, req.txn.ToString() + " voted YES");
  EmitVote(req.txn, from, true, "");
  site_->Respond(ctx, from, VoteReply{req.txn, true, DenyReason::kNone});
}

void ParticipantManager::OnPreCommit(SiteId from, const PreCommitRequest& req,
                                     const RpcContext& ctx) {
  auto it = txns_.find(req.txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  if (t.state != AcpState::kPrepared && t.state != AcpState::kPreCommitted) {
    return;
  }
  if (t.state == AcpState::kPrepared) {
    site_->mutable_wal().Append(
        WalRecord::Protocol(WalRecordKind::kPreCommitted, req.txn, t.coordinator, {},
                  {}, true));
    t.state = AcpState::kPreCommitted;
  }
  ArmDecisionTimer(t);  // reset patience
  site_->Respond(ctx, from, PreCommitAck{req.txn});
}

void ParticipantManager::OnDecision(SiteId from, const Decision& d,
                                    const RpcContext& ctx) {
  auto it = txns_.find(d.txn);
  if (it == txns_.end()) {
    // Already applied (duplicate / resend): ack idempotently.
    site_->Respond(ctx, from, Ack{d.txn});
    return;
  }
  ApplyDecision(d.txn, d.commit, ctx, from);
}

void ParticipantManager::OnDecisionInfo(const DecisionInfo& info) {
  auto it = txns_.find(info.txn);
  if (it == txns_.end()) return;
  if (!info.known) return;  // keep waiting; query machinery is armed
  HandleDecisionNews(info.txn, info);
}

void ParticipantManager::HandleDecisionNews(TxnId txn,
                                            const DecisionInfo& info) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !info.known) return;
  if (it->second.state == AcpState::kActive) {
    // Orphan probe answered: the transaction is finished at the
    // coordinator. If it committed, this site's grant was a surplus one
    // (never in the participant list), so its buffered state is simply
    // discarded — the committed write quorum does not include us.
    LocalAbort(txn);
    return;
  }
  ApplyDecision(txn, info.commit);
}

void ParticipantManager::ApplyDecision(TxnId txn, bool commit,
                                       const RpcContext& ack_ctx,
                                       SiteId ack_to) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  CancelAll(t);

  site_->mutable_wal().Append(WalRecord::Protocol(
      commit ? WalRecordKind::kCommitDecision : WalRecordKind::kAbortDecision,
      txn,
      t.coordinator,
      {},
      {},
      t.three_phase));
  site_->RememberDecision(txn, commit);

  if ((t.state == AcpState::kPrepared || t.state == AcpState::kPreCommitted) &&
      site_->env().monitor) {
    site_->env().monitor->OnBlockedTime(txn, site_->Now() - t.prepared_at);
  }

  if (commit) {
    for (const auto& [item, value] : t.buffered) {
      auto vi = t.versions.find(item);
      if (vi == t.versions.end()) continue;  // stray prewrite, no version
      site_->mutable_store().Apply(item, value, vi->second, txn);
      site_->cc()->OnApply(txn, item, value, vi->second);
      if (site_->tracing()) {
        TraceRecord rec;
        rec.kind = TraceEventKind::kWriteApplied;
        rec.txn = txn;
        rec.item = item;
        rec.arg = static_cast<int64_t>(vi->second);
        site_->EmitTrace(std::move(rec));
      }
    }
    site_->mutable_store().CommitStorageTxn(txn);
  } else {
    site_->mutable_store().AbortStorageTxn(txn);
  }
  if (!commit) doomed_.insert(txn);
  site_->cc()->Finish(txn, commit);
  site_->mutable_wal().Append(
      WalRecord::Protocol(WalRecordKind::kApplied, txn, t.coordinator, {}, {}, false));
  site_->Trace(TraceCategory::kAcp,
               txn.ToString() + (commit ? " applied COMMIT" : " applied ABORT"));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kDecisionApplied;
    rec.txn = txn;
    rec.peer = t.coordinator;
    rec.arg = commit ? 1 : 0;
    site_->EmitTrace(std::move(rec));
  }
  txns_.erase(it);
  if (ack_ctx.valid()) {
    site_->Respond(ack_ctx, ack_ctx.from, Ack{txn});
  } else if (ack_to != kInvalidSite) {
    site_->SendTo(ack_to, Ack{txn});
  }
}

void ParticipantManager::LocalAbort(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  CancelAll(it->second);
  site_->mutable_store().AbortStorageTxn(txn);
  site_->cc()->Finish(txn, false);
  txns_.erase(it);
}

void ParticipantManager::OnCcVictim(TxnId txn, DenyReason reason) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  SiteId home = it->second.id.home;
  site_->Trace(TraceCategory::kCcp,
               txn.ToString() + std::string(" chosen as CC victim: ") +
                   DenyReasonName(reason));
  if (site_->tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kCcVictim;
    rec.txn = txn;
    rec.peer = home;
    rec.detail = DenyReasonName(reason);
    site_->EmitTrace(std::move(rec));
  }
  // The CC engine already dropped the transaction's holds; clean up the
  // rest and tell the home site so the whole transaction aborts. If the
  // victim held grants here, remember it: should the notify be lost, a
  // later operation of the same transaction must be denied rather than
  // silently recreating state with the released locks gone. A victim that
  // was only waiting held nothing, so a retransmission may start over.
  if (it->second.granted_any) doomed_.insert(txn);
  CancelAll(it->second);
  site_->mutable_store().AbortStorageTxn(txn);
  txns_.erase(it);
  site_->SendTo(home, RemoteAbortNotify{txn, AbortCause::kCcp, reason});
}

AcpState ParticipantManager::StateOf(TxnId txn) const {
  auto it = txns_.find(txn);
  if (it != txns_.end()) return it->second.state;
  auto decided = site_->KnownDecision(txn);
  if (decided.has_value()) {
    return *decided ? AcpState::kCommitted : AcpState::kAborted;
  }
  return AcpState::kUnknown;
}

void ParticipantManager::OnActivityTimeout(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.state != AcpState::kActive) return;
  PTxn& t = it->second;
  // One orphan probe RPC to the home site. The RPC layer retries with
  // backoff; terminal failure means the home is unreachable and the
  // unprepared transaction can be aborted unilaterally.
  RpcPolicy policy = site_->MakeRpcPolicy(site_->config().active_timeout);
  TxnId id = txn;
  t.query_calls.push_back(site_->rpc().Call(
      txn.home, DecisionQuery{txn, site_->id()}, policy,
      [this, id](Result<Payload> r) { OnOrphanQueryResult(id, r); }));
}

void ParticipantManager::OnOrphanQueryResult(TxnId txn,
                                             const Result<Payload>& r) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.state != AcpState::kActive) return;
  PTxn& t = it->second;
  if (r.ok()) {
    if (const auto* info = std::get_if<DecisionInfo>(&*r);
        info && info->txn == txn && info->known) {
      HandleDecisionNews(txn, *info);
      return;
    }
    // Inconclusive ("still deciding"): give the coordinator more time,
    // but not forever — a home that can never vouch for the transaction
    // (e.g. it crashed and lost the coordinator) leaves an orphan.
    if (++t.orphan_rounds < 3) {
      ArmActivityTimer(t);
      return;
    }
  }
  // Home unreachable or repeatedly unable to answer: unilateral abort is
  // safe before prepare. This is the "orphan transaction" statistic.
  site_->Trace(TraceCategory::kTxn,
               txn.ToString() + " orphan-cleaned at participant");
  if (site_->env().monitor) {
    site_->env().monitor->OnOrphanCleanup(txn, site_->id());
  }
  LocalAbort(txn);
}

void ParticipantManager::OnDecisionTimeout(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  if (t.state != AcpState::kPrepared && t.state != AcpState::kPreCommitted) {
    return;
  }
  if (t.three_phase) {
    StartTerminationRound(txn);
    return;
  }
  // 2PC: query the coordinator (presumed abort answers authoritatively),
  // and optionally the peer participants (cooperative termination). The
  // coordinator query retries forever — a prepared participant may only
  // resolve through the decision — while peer queries are best-effort.
  TxnId id = txn;
  if (t.coord_query_call == 0) {
    RpcPolicy forever = site_->MakeRpcPolicy(site_->config().decision_retry);
    forever.max_attempts = 0;
    forever.backoff_cap =
        std::min(forever.backoff_cap, site_->config().decision_retry);
    t.coord_query_call = site_->rpc().Call(
        t.coordinator, DecisionQuery{txn, site_->id()}, forever,
        [this, id](Result<Payload> r) {
          auto it2 = txns_.find(id);
          if (it2 != txns_.end()) it2->second.coord_query_call = 0;
          OnDecisionQueryResult(id, r);
        });
  }
  if (site_->config().cooperative_termination) {
    RpcPolicy peer_policy =
        site_->MakeRpcPolicy(site_->config().decision_retry);
    for (SiteId p : t.participants) {
      if (p == site_->id()) continue;
      t.query_calls.push_back(site_->rpc().Call(
          p, DecisionQuery{txn, site_->id()}, peer_policy,
          [this, id](Result<Payload> r) { OnDecisionQueryResult(id, r); }));
    }
  }
}

void ParticipantManager::OnDecisionQueryResult(TxnId txn,
                                               const Result<Payload>& r) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  if (t.state != AcpState::kPrepared && t.state != AcpState::kPreCommitted) {
    return;
  }
  if (!r.ok()) return;  // peer unreachable; other queries keep going
  const auto* info = std::get_if<DecisionInfo>(&*r);
  if (!info || info->txn != txn) return;
  if (info->known) {
    HandleDecisionNews(txn, *info);
    return;
  }
  // "Still deciding": pace the next query round.
  TxnId id = txn;
  t.decision_timer.Cancel();
  t.decision_timer = site_->env().sim->After(
      site_->config().decision_retry, [this, id] { OnDecisionTimeout(id); });
}

void ParticipantManager::StartTerminationRound(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  if (t.termination_running) return;
  t.termination_running = true;
  t.peer_states.clear();
  t.peer_states[site_->id()] = t.state;
  site_->Trace(TraceCategory::kAcp,
               txn.ToString() + " starting 3PC termination round");
  // One single-attempt StateQuery RPC per peer; silence within the
  // window is treated as "no state" when the round closes.
  RpcPolicy policy = site_->MakeRpcPolicy(site_->config().termination_window);
  policy.max_attempts = 1;
  TxnId id = txn;
  for (SiteId p : t.participants) {
    if (p == site_->id()) continue;
    t.query_calls.push_back(site_->rpc().Call(
        p, StateQuery{txn, site_->id()}, policy,
        [this, id, p](Result<Payload> r) {
          if (!r.ok()) return;
          if (const auto* reply = std::get_if<StateReply>(&*r);
              reply && reply->txn == id) {
            OnTerminationStateReply(id, p, reply->state);
          }
        }));
  }
  t.window_timer = site_->env().sim->After(
      site_->config().termination_window,
      [this, id] { FinishTerminationRound(id); });
}

void ParticipantManager::OnTerminationStateReply(TxnId txn, SiteId from,
                                                 AcpState state) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  if (!t.termination_running) return;
  t.peer_states[from] = state;
  // A peer that already knows the decision short-circuits the round.
  if (state == AcpState::kCommitted) {
    t.window_timer.Cancel();
    t.termination_running = false;
    ApplyDecision(txn, true);
    return;
  }
  if (state == AcpState::kAborted) {
    t.window_timer.Cancel();
    t.termination_running = false;
    ApplyDecision(txn, false);
    return;
  }
}

void ParticipantManager::FinishTerminationRound(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  t.termination_running = false;
  for (uint64_t c : t.query_calls) site_->rpc().Cancel(c);
  t.query_calls.clear();

  // Leadership: the lowest-id responder leads; everyone else re-arms and
  // waits for that site's decision.
  SiteId lowest = site_->id();
  for (const auto& [s, st] : t.peer_states) lowest = std::min(lowest, s);
  if (lowest != site_->id()) {
    ArmDecisionTimer(t);
    return;
  }

  std::vector<AcpState> states;
  states.reserve(t.peer_states.size());
  for (const auto& [s, st] : t.peer_states) states.push_back(st);
  auto decision = ThreePcTerminationDecision(states);
  if (!decision.has_value()) {
    ArmDecisionTimer(t);
    return;
  }
  site_->Trace(TraceCategory::kAcp,
               txn.ToString() + " termination decision: " +
                   (*decision ? "COMMIT" : "ABORT"));
  if (!*decision) {
    std::vector<SiteId> peers = t.participants;
    site_->mutable_wal().Append(WalRecord::Protocol(WalRecordKind::kAbortDecision, txn,
                                          t.coordinator, {}, peers, true));
    // The closer's Decision RPCs notify the peers (and retry until
    // acked); our own copy is applied directly.
    site_->StartCloser(txn, false, peers);
    ApplyDecision(txn, false);
    return;
  }
  // Commit path: first move every live peer (and ourselves) to the
  // pre-committed state, so that if this leader fails mid-termination
  // the next round still converges on commit.
  if (t.state == AcpState::kPrepared) {
    site_->mutable_wal().Append(WalRecord::Protocol(WalRecordKind::kPreCommitted, txn,
                                          t.coordinator, {}, {}, true));
    t.state = AcpState::kPreCommitted;
  }
  for (SiteId p : t.participants) {
    if (p != site_->id()) site_->SendTo(p, PreCommitRequest{txn});
  }
  TxnId id = txn;
  t.window_timer = site_->env().sim->After(
      site_->config().termination_window,
      [this, id] { FinishTerminationCommit(id); });
}

void ParticipantManager::FinishTerminationCommit(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;
  PTxn& t = it->second;
  std::vector<SiteId> peers = t.participants;
  site_->mutable_wal().Append(WalRecord::Protocol(WalRecordKind::kCommitDecision, txn,
                                        t.coordinator, {}, peers, true));
  site_->StartCloser(txn, true, peers);
  ApplyDecision(txn, true);
}

void ParticipantManager::ReinstateInDoubt(const WalRecord& prepared,
                                          bool precommitted) {
  PTxn& t = Ensure(prepared.txn, TxnTimestamp{0, prepared.txn.home},
                   prepared.coordinator);
  t.state = precommitted ? AcpState::kPreCommitted : AcpState::kPrepared;
  t.granted_any = true;
  t.three_phase = prepared.three_phase;
  t.participants = prepared.participants;
  t.prepared_at = site_->Now();
  for (const auto& w : prepared.writes) {
    t.buffered[w.item] = w.value;
    t.versions[w.item] = w.version;
  }
  // Re-acquire write access in the fresh CC engine: it is empty of
  // conflicting state for these items only if no new transaction touched
  // them yet; requests that cannot be granted synchronously are a
  // protocol violation we surface loudly in tests.
  for (const auto& w : prepared.writes) {
    site_->cc()->RequestWrite(prepared.txn, t.ts, w.item,
                              [](const CcGrant&) {});
    // OCC: the commit-window locks were volatile; re-take them so other
    // transactions cannot validate against copies this in-doubt
    // transaction may still overwrite.
    site_->cc()->TryCommitLock(prepared.txn, w.item, /*exclusive=*/true);
  }
  site_->cc()->MarkPrepared(prepared.txn);
  // Ask for the outcome immediately.
  TxnId id = prepared.txn;
  t.decision_timer =
      site_->env().sim->After(Micros(1), [this, id] { OnDecisionTimeout(id); });
}

}  // namespace rainbow
