#ifndef RAINBOW_SITE_PARTICIPANT_H_
#define RAINBOW_SITE_PARTICIPANT_H_

#include <map>
#include <set>
#include <vector>

#include "net/message.h"
#include "sim/simulator.h"
#include "storage/wal.h"
#include "txn/transaction.h"

namespace rainbow {

class Site;

/// The replica/participant half of a Rainbow site: serves copy accesses
/// under the local CC engine, buffers prewrites, and runs the
/// participant side of 2PC/3PC including the termination protocol and
/// orphan cleanup. All of its state is volatile — Site::Crash() destroys
/// the manager; prepared transactions are reinstated from the WAL at
/// recovery.
class ParticipantManager {
 public:
  explicit ParticipantManager(Site* site);
  ~ParticipantManager();

  ParticipantManager(const ParticipantManager&) = delete;
  ParticipantManager& operator=(const ParticipantManager&) = delete;

  // --- message handlers (dispatched by Site) ---
  void OnRead(SiteId from, const ReadRequest& req);
  void OnPrewrite(SiteId from, const PrewriteRequest& req);
  void OnAbortRequest(const AbortRequest& req);
  void OnPrepare(SiteId from, const PrepareRequest& req);
  void OnPreCommit(SiteId from, const PreCommitRequest& req);
  void OnDecision(SiteId from, const Decision& d);
  void OnDecisionInfo(SiteId from, const DecisionInfo& info);
  void OnStateReply(SiteId from, const StateReply& reply);

  /// Local commit-protocol state of `txn`, for answering StateQuery.
  AcpState StateOf(TxnId txn) const;

  /// CC engine victim channel: a granted transaction was aborted locally
  /// (wounded / deadlock victim). Cleans up and notifies the home site.
  void OnCcVictim(TxnId txn, DenyReason reason);

  /// Recovery: reinstates a prepared-but-undecided transaction from its
  /// WAL record, re-acquiring write access in the fresh CC engine, and
  /// immediately starts the decision/termination machinery.
  void ReinstateInDoubt(const WalRecord& prepared, bool precommitted);

  /// Cancels every timer (site crash). The manager is unusable after.
  void Shutdown();

  size_t size() const { return txns_.size(); }

 private:
  struct PTxn {
    TxnId id;
    TxnTimestamp ts;
    SiteId coordinator = kInvalidSite;
    AcpState state = AcpState::kActive;
    bool three_phase = false;
    std::map<ItemId, Value> buffered;    ///< prewritten values
    std::map<ItemId, Version> versions;  ///< final versions (from prepare)
    std::vector<SiteId> participants;
    SimTime prepared_at = 0;
    TimerHandle decision_timer;
    TimerHandle activity_timer;
    TimerHandle window_timer;
    TimerHandle wait_timer;  ///< bounds the current CC wait (one op at a time)
    TimerHandle probe_timer;  ///< edge-chasing: fires a deadlock probe
    int orphan_queries = 0;
    /// 3PC termination: collected peer states for the current round.
    std::map<SiteId, AcpState> peer_states;
    bool termination_running = false;
  };

  PTxn& Ensure(TxnId txn, TxnTimestamp ts, SiteId coordinator);

  /// Applies a learned decision: installs/discards buffered writes,
  /// releases CC state, logs, acks `ack_to` (if valid), erases the txn.
  void ApplyDecision(TxnId txn, bool commit, SiteId ack_to);

  /// Aborts local state without a coordinator decision (victim, orphan
  /// cleanup). Does not ack anyone.
  void LocalAbort(TxnId txn);

  void ArmActivityTimer(PTxn& t);
  void ArmDecisionTimer(PTxn& t);
  /// Edge-chasing: after probe_delay, if `txn` is still blocked in the
  /// local CC, emit a probe towards each transaction it waits for.
  void ArmProbeTimer(TxnId txn);
  void OnActivityTimeout(TxnId txn);
  void OnDecisionTimeout(TxnId txn);
  /// 3PC: runs (or defers) a termination round.
  void StartTerminationRound(TxnId txn);
  void FinishTerminationRound(TxnId txn);
  /// 3PC termination leader, second phase: all live peers were moved to
  /// pre-commit; broadcast and apply the commit decision.
  void FinishTerminationCommit(TxnId txn);

  Site* site_;
  std::map<TxnId, PTxn> txns_;
};

}  // namespace rainbow

#endif  // RAINBOW_SITE_PARTICIPANT_H_
