#ifndef RAINBOW_SITE_PARTICIPANT_H_
#define RAINBOW_SITE_PARTICIPANT_H_

#include <map>
#include <set>
#include <vector>

#include "net/message.h"
#include "net/rpc.h"
#include "sim/simulator.h"
#include "storage/wal.h"
#include "txn/transaction.h"

namespace rainbow {

class Site;
struct CcGrant;

/// The replica/participant half of a Rainbow site: serves copy accesses
/// under the local CC engine, buffers prewrites, and runs the
/// participant side of 2PC/3PC including the termination protocol and
/// orphan cleanup. All of its state is volatile — Site::Crash() destroys
/// the manager; prepared transactions are reinstated from the WAL at
/// recovery.
///
/// Request handlers receive the RpcContext of the incoming request and
/// answer through Site::Respond, so replies correlate with their
/// request (and retransmitted requests are answered idempotently by the
/// RPC layer). Its own recovery queries (decision queries, cooperative
/// peer queries, 3PC state queries) are RPC calls; the remaining timers
/// are patience/pacing timers, not resend loops.
class ParticipantManager {
 public:
  explicit ParticipantManager(Site* site);
  ~ParticipantManager();

  ParticipantManager(const ParticipantManager&) = delete;
  ParticipantManager& operator=(const ParticipantManager&) = delete;

  // --- message handlers (dispatched by Site) ---
  void OnRead(SiteId from, const ReadRequest& req, const RpcContext& ctx);
  void OnPrewrite(SiteId from, const PrewriteRequest& req,
                  const RpcContext& ctx);
  void OnAbortRequest(const AbortRequest& req);
  void OnPrepare(SiteId from, const PrepareRequest& req,
                 const RpcContext& ctx);
  void OnPreCommit(SiteId from, const PreCommitRequest& req,
                   const RpcContext& ctx);
  void OnDecision(SiteId from, const Decision& d, const RpcContext& ctx);
  /// Raw (non-RPC) decision info; RPC replies run through the query
  /// callbacks and land in HandleDecisionNews directly.
  void OnDecisionInfo(const DecisionInfo& info);

  /// Local commit-protocol state of `txn`, for answering StateQuery.
  AcpState StateOf(TxnId txn) const;

  /// CC engine victim channel: a granted transaction was aborted locally
  /// (wounded / deadlock victim). Cleans up and notifies the home site.
  void OnCcVictim(TxnId txn, DenyReason reason);

  /// Recovery: reinstates a prepared-but-undecided transaction from its
  /// WAL record, re-acquiring write access in the fresh CC engine, and
  /// immediately starts the decision/termination machinery.
  void ReinstateInDoubt(const WalRecord& prepared, bool precommitted);

  /// Cancels every timer and pending RPC call (site crash). The manager
  /// is unusable after.
  void Shutdown();

  size_t size() const { return txns_.size(); }

 private:
  struct PTxn {
    TxnId id;
    TxnTimestamp ts;
    SiteId coordinator = kInvalidSite;
    AcpState state = AcpState::kActive;
    bool three_phase = false;
    /// True once any CC request was granted here. A unilateral abort only
    /// needs to doom the transaction (see `doomed_`) when it released
    /// something; aborting a purely-waiting transaction leaves nothing a
    /// retransmitted request could unsafely resurrect.
    bool granted_any = false;
    std::map<ItemId, Value> buffered;    ///< prewritten values
    std::map<ItemId, Version> versions;  ///< final versions (from prepare)
    std::vector<SiteId> participants;
    SimTime prepared_at = 0;
    TimerHandle decision_timer;  ///< patience before querying for a decision
    TimerHandle activity_timer;  ///< idle bound before the orphan probe
    TimerHandle window_timer;    ///< 3PC termination round window
    TimerHandle wait_timer;  ///< bounds the current CC wait (one op at a time)
    TimerHandle probe_timer;  ///< edge-chasing: fires a deadlock probe
    /// Outstanding recovery RPCs (decision/state queries); cancelled
    /// whenever the transaction resolves.
    std::vector<uint64_t> query_calls;
    /// The one retry-forever DecisionQuery to the coordinator (2PC);
    /// nonzero while outstanding so rounds do not stack duplicates.
    uint64_t coord_query_call = 0;
    /// Inconclusive orphan-probe rounds ("still deciding" answers); a
    /// third one means the home cannot vouch for the transaction and it
    /// is cleaned up as an orphan.
    int orphan_rounds = 0;
    /// 3PC termination: collected peer states for the current round.
    std::map<SiteId, AcpState> peer_states;
    bool termination_running = false;
  };

  PTxn& Ensure(TxnId txn, TxnTimestamp ts, SiteId coordinator);

  /// Applies a learned decision: installs/discards buffered writes,
  /// releases CC state, logs, acks through `ack_ctx` (RPC) or to
  /// `ack_to` (raw), erases the txn.
  void ApplyDecision(TxnId txn, bool commit, const RpcContext& ack_ctx = {},
                     SiteId ack_to = kInvalidSite);

  /// Aborts local state without a coordinator decision (victim, orphan
  /// cleanup). Does not ack anyone.
  void LocalAbort(TxnId txn);

  /// Cancels every timer and outstanding query call of `t`.
  void CancelAll(PTxn& t);

  /// Structured tracing of the local CC's answer (grant / deny / victim)
  /// and of a request parked behind a conflict.
  void EmitCcOutcome(TxnId txn, ItemId item, const CcGrant& g);
  void EmitCcBlocked(TxnId txn, ItemId item);
  void EmitVote(TxnId txn, SiteId coordinator, bool yes, const char* note);

  void ArmActivityTimer(PTxn& t);
  void ArmDecisionTimer(PTxn& t);
  /// Edge-chasing: after probe_delay, if `txn` is still blocked in the
  /// local CC, emit a probe towards each transaction it waits for.
  void ArmProbeTimer(TxnId txn);
  void OnActivityTimeout(TxnId txn);
  void OnDecisionTimeout(TxnId txn);
  /// Completion of the orphan probe RPC fired by the activity timeout.
  void OnOrphanQueryResult(TxnId txn, const Result<Payload>& r);
  /// Completion of a 2PC decision query (coordinator or peer).
  void OnDecisionQueryResult(TxnId txn, const Result<Payload>& r);
  /// Acts on a decision-query answer (or a raw DecisionInfo).
  void HandleDecisionNews(TxnId txn, const DecisionInfo& info);
  /// 3PC: runs (or defers) a termination round.
  void StartTerminationRound(TxnId txn);
  void OnTerminationStateReply(TxnId txn, SiteId from, AcpState state);
  void FinishTerminationRound(TxnId txn);
  /// 3PC termination leader, second phase: all live peers were moved to
  /// pre-commit; broadcast and apply the commit decision.
  void FinishTerminationCommit(TxnId txn);

  Site* site_;
  std::map<TxnId, PTxn> txns_;
  /// Transactions this site aborted unilaterally (CC victim, wait
  /// timeout, orphan cleanup, abort decision). A later request for one
  /// of them — a retransmission whose deny reply was lost, or a next
  /// operation racing the abort notify — must NOT recreate fresh state:
  /// the locks it once held are gone and conflicting work may have
  /// slipped through, so resurrecting it silently breaks two-phase
  /// locking. Requests for doomed transactions are denied instead.
  std::set<TxnId> doomed_;
};

}  // namespace rainbow

#endif  // RAINBOW_SITE_PARTICIPANT_H_
