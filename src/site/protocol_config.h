#ifndef RAINBOW_SITE_PROTOCOL_CONFIG_H_
#define RAINBOW_SITE_PROTOCOL_CONFIG_H_

#include "acp/acp_common.h"
#include "cc/cc_engine.h"
#include "common/types.h"
#include "rcp/rcp_policy.h"

namespace rainbow {

/// Which committed-data engine each site runs underneath the protocols.
enum class StorageEngineKind {
  kMap,   ///< legacy std::map store (recovery restores from snapshots)
  kPage,  ///< page/buffer-pool engine with ARIES-style restart (default)
};

inline const char* StorageEngineKindName(StorageEngineKind k) {
  switch (k) {
    case StorageEngineKind::kMap:
      return "map";
    case StorageEngineKind::kPage:
      return "page";
  }
  return "?";
}

/// The "Protocols Configuration" panel of the Rainbow GUI: which RCP /
/// CCP / ACP variant every site runs, plus the protocol timeouts. One
/// ProtocolConfig applies uniformly to a Rainbow instance.
struct ProtocolConfig {
  // --- protocol selection ---
  RcpKind rcp = RcpKind::kQuorumConsensus;  ///< paper default: QC
  CcKind cc = CcKind::kTwoPhaseLocking;
  DeadlockPolicy deadlock = DeadlockPolicy::kWaitDie;
  AcpKind acp = AcpKind::kTwoPhaseCommit;  ///< paper default: 2PC

  // --- protocol options ---
  /// QC reads/writes contact every copy and take the first quorum of
  /// replies (more messages, fewer timeout aborts) instead of a minimal
  /// preferred subset.
  bool rcp_broadcast = false;
  /// Coordinators cache name-server lookups (per site). Off = one
  /// lookup message pair per item per transaction.
  bool cache_schema = true;
  /// Blocked 2PC participants also query peer participants, not only
  /// the coordinator (cooperative termination).
  bool cooperative_termination = true;
  /// Recovering sites refresh their item copies from a live peer.
  bool recovery_refresh = true;
  /// 2PC read-only optimization: a participant with no buffered writes
  /// votes YES, releases its locks immediately, and skips phase 2.
  bool readonly_optimization = false;
  /// Incarnation-epoch fencing: replica grants carry the site's epoch
  /// and the coordinator aborts a transaction whose replica restarted
  /// mid-flight (the "resurrected grant" fix). Leave on; turning it off
  /// re-exposes the resurrection bug as a known target for the nemesis
  /// fuzzer's bug-hunt validation.
  bool epoch_fencing = true;
  /// Conservative ordered access: coordinators execute operations in
  /// ascending item order (same-item order preserved), so lock
  /// acquisition follows one global order and 2PL deadlocks become
  /// impossible — the classic static/conservative locking discipline.
  /// Observable results (read values, installed versions) are unchanged.
  bool ordered_access = false;

  // --- storage engine ---
  /// Committed-data engine under each site. kPage is the default; kMap
  /// keeps the legacy map store for comparison in the lab exercises.
  StorageEngineKind storage_engine = StorageEngineKind::kPage;
  /// Page size in bytes for the page engine (>= 64).
  uint32_t page_size = 4096;
  /// Frames in each site's buffer pool (>= 8).
  uint32_t buffer_pool_pages = 64;
  /// K of the LRU-K replacer (>= 1).
  uint32_t lru_k = 2;
  /// The page engine takes a fuzzy checkpoint whenever this many LSNs
  /// accumulated since the last one (0 disables the cadence; >= 8
  /// otherwise). Checkpoints bound restart's log scan.
  uint64_t checkpoint_interval = 256;
  /// Per-page CRC32 verification plus the doublewrite journal. Leave
  /// on; turning it off re-exposes torn/corrupt pages to recovery as a
  /// known target for the nemesis fuzzer's storage bug hunts.
  bool page_checksums = true;

  // --- timeouts (simulated time) ---
  /// Coordinator's per-operation deadline for assembling a quorum.
  SimTime op_timeout = Millis(80);
  /// Replica-side bound on CC waits; exceeded waits deny with
  /// kWaitTimeout (counted as a CCP abort).
  SimTime lock_wait_timeout = Millis(30);
  /// Coordinator's phase-1 (vote collection) deadline.
  SimTime vote_timeout = Millis(80);
  /// How long a prepared participant waits before starting the
  /// termination protocol.
  SimTime decision_timeout = Millis(100);
  /// Period between repeated decision queries while blocked.
  SimTime decision_retry = Millis(100);
  /// Idle time after which an unprepared participant suspects its
  /// transaction is an orphan and asks the home site.
  SimTime active_timeout = Millis(500);
  /// Coordinator resend period for unacknowledged decisions.
  SimTime ack_retry = Millis(100);
  /// Max decision resends before the coordinator leaves completion to
  /// the participants' own recovery queries.
  int max_ack_resends = 10;
  /// How long a timeout keeps a site on the coordinator's suspected
  /// list (a crude failure detector).
  SimTime suspicion_ttl = Millis(2000);
  /// Window the 3PC termination leader waits for StateReplys.
  SimTime termination_window = Millis(60);
  /// Edge-chasing deadlock detection: how long a CC wait must last
  /// before probes are emitted (and the re-probe period).
  SimTime probe_delay = Millis(8);

  // --- RPC sub-layer (net/rpc.h) ---
  /// Attempts (first transmission + retries) an RPC makes before
  /// reporting terminal failure to its caller.
  int rpc_max_attempts = 3;
  /// First retry backoff; doubles per retry (with jitter) up to
  /// rpc_backoff_cap.
  SimTime rpc_backoff_base = Millis(2);
  /// Upper bound on the exponential retry backoff.
  SimTime rpc_backoff_cap = Millis(200);
};

}  // namespace rainbow

#endif  // RAINBOW_SITE_PROTOCOL_CONFIG_H_
