#include "site/site.h"

#include <cassert>

#include "cc/mvto_manager.h"
#include "common/string_util.h"
#include "site/coordinator.h"

namespace rainbow {

Site::Site(SiteId id, Env env) : id_(id), env_(env) {
  assert(env_.sim && env_.net && env_.config);
  if (env_.config->storage_engine == StorageEngineKind::kPage) {
    PageStoreOptions opts;
    opts.page_size = env_.config->page_size;
    opts.pool_pages = env_.config->buffer_pool_pages;
    opts.lru_k = env_.config->lru_k;
    opts.checkpoint_interval = env_.config->checkpoint_interval;
    opts.page_checksums = env_.config->page_checksums;
    // Every site's disk gets its own fault stream, decorrelated from
    // the RPC jitter streams that also fork env_.seed.
    opts.fault_seed = env_.seed * 0x9e3779b97f4a7c15ULL + id_ + 1;
    store_ = std::make_unique<PageStore>(&wal_, opts);
  } else {
    store_ = std::make_unique<MapStore>();
  }
  rpc_ = std::make_unique<RpcEndpoint>(env_.sim, env_.net, id_, env_.seed);
  rpc_->set_collector(env_.collector);
  rpc_->set_late_reply_handler(
      [this](const Message& m) { OnLateRpcReply(m); });
  BuildVolatileState();
}

Site::~Site() = default;

void Site::BuildVolatileState() {
  cc_ = CreateCcEngine(env_.config->cc, env_.config->deadlock);
  if (env_.config->cc == CcKind::kMultiversionTso) {
    auto* mvto = static_cast<MvtoManager*>(cc_.get());
    for (const auto& [item, copy] : store_->Snapshot()) {
      mvto->LoadInitial(item, copy.value, copy.version);
    }
  }
  participants_ = std::make_unique<ParticipantManager>(this);
  cc_->set_victim_handler([this](TxnId txn, DenyReason reason) {
    participants_->OnCcVictim(txn, reason);
  });
}

void Site::LoadItem(ItemId item, Value initial) {
  store_->Load(item, initial);
  if (env_.config->cc == CcKind::kMultiversionTso) {
    static_cast<MvtoManager*>(cc_.get())->LoadInitial(item, initial, 0);
  }
}

void Site::Start() {
  if (started_) return;
  started_ = true;
  // Checkpoint the freshly loaded database: Load() is not logged, so
  // the initial values must be on disk before the first crash for the
  // restart pass to redo against.
  store_->FlushAll();
  env_.net->RegisterHandler(id_, [this](const Message& m) {
    if (crashed_) return;  // belt and braces; the network already drops
    // Hearing from a site clears its suspicion — any message counts,
    // including RPC replies the endpoint consumes below.
    suspected_until_.erase(m.from);
    RpcDelivery d = rpc_->Accept(m);
    if (d.consumed) return;  // completed a call / suppressed a duplicate
    HandleMessage(m, d.ctx);
  });
}

SimTime Site::Now() const { return env_.sim->Now(); }

void Site::SendTo(SiteId to, Payload payload) {
  env_.net->Send(id_, to, std::move(payload));
}

RpcPolicy Site::MakeRpcPolicy(SimTime timeout) const {
  RpcPolicy p;
  p.timeout = timeout;
  p.max_attempts = config().rpc_max_attempts;
  p.backoff_base = config().rpc_backoff_base;
  p.backoff_cap = config().rpc_backoff_cap;
  return p;
}

void Site::Respond(const RpcContext& ctx, SiteId to, Payload payload) {
  if (ctx.valid()) {
    rpc_->Reply(ctx, std::move(payload));
  } else {
    SendTo(to, std::move(payload));
  }
}

void Site::Trace(TraceCategory cat, const std::string& text) {
  if (env_.trace && env_.trace->enabled()) {
    env_.trace->Record(Now(), cat, id_, text);
  }
}

void Site::EmitTrace(TraceRecord rec) {
  if (!tracing()) return;
  rec.time = Now();
  if (rec.site == kInvalidSite) rec.site = id_;
  env_.collector->Emit(std::move(rec));
}

bool Site::IsSuspected(SiteId s) const {
  auto it = suspected_until_.find(s);
  return it != suspected_until_.end() && it->second > Now();
}

void Site::Suspect(SiteId s) {
  if (s == id_) return;
  suspected_until_[s] = Now() + env_.config->suspicion_ttl;
  Trace(TraceCategory::kSite, StringPrintf("suspecting site %u", s));
}

std::set<SiteId> Site::SuspectedSet() const {
  std::set<SiteId> out;
  for (const auto& [s, until] : suspected_until_) {
    if (until > Now()) out.insert(s);
  }
  return out;
}

const ReplicaView* Site::CachedView(ItemId item) const {
  auto it = schema_cache_.find(item);
  return it == schema_cache_.end() ? nullptr : &it->second;
}

void Site::CacheView(ItemId item, ReplicaView view) {
  schema_cache_[item] = std::move(view);
}

std::optional<bool> Site::KnownDecision(TxnId txn) const {
  auto it = decided_cache_.find(txn);
  if (it == decided_cache_.end()) return std::nullopt;
  return it->second;
}

void Site::RememberDecision(TxnId txn, bool commit) {
  decided_cache_[txn] = commit;
}

size_t Site::active_participants() const {
  return participants_ ? participants_->size() : 0;
}

// ---------------------------------------------------------------------------
// Client API
// ---------------------------------------------------------------------------

void Site::Submit(TxnProgram program, TxnCallback cb,
                  std::optional<TxnTimestamp> inherit_ts) {
  if (env_.monitor) env_.monitor->OnSubmit(id_, Now());
  if (crashed_) {
    TxnOutcome outcome;
    outcome.id = TxnId{id_, next_txn_seq_++};
    outcome.committed = false;
    outcome.abort_cause = AbortCause::kSiteFailure;
    outcome.abort_detail = "home site is down";
    outcome.submitted_at = Now();
    outcome.finished_at = Now();
    outcome.home = id_;
    outcome.num_ops = static_cast<uint32_t>(program.ops.size());
    if (env_.monitor) env_.monitor->OnComplete(outcome);
    if (cb) env_.sim->After(0, [cb, outcome] { cb(outcome); });
    return;
  }
  TxnId id{id_, next_txn_seq_++};
  TxnTimestamp ts;
  if (inherit_ts.has_value()) {
    // Restart under the original timestamp (wait-die fairness); the
    // previous incarnation is globally dead, so reuse is safe.
    ts = *inherit_ts;
  } else {
    // Timestamps must be unique and monotone per site: nudge the clock
    // component forward if several transactions arrive at one instant.
    SimTime ts_time = std::max(Now(), last_ts_time_ + 1);
    last_ts_time_ = ts_time;
    ts = TxnTimestamp{ts_time, id_};
  }
  if (tracing()) {
    TraceRecord rec;
    rec.kind = TraceEventKind::kTxnSubmit;
    rec.txn = id;
    rec.arg = static_cast<int64_t>(program.ops.size());
    if (inherit_ts.has_value()) rec.detail = "restart";
    EmitTrace(std::move(rec));
  }
  auto coord = std::make_unique<Coordinator>(this, id, ts, std::move(program),
                                             std::move(cb));
  Coordinator* raw = coord.get();
  coordinators_[id] = std::move(coord);
  raw->Start();
}

void Site::CoordinatorFinished(TxnId txn) { coordinators_.erase(txn); }

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void Site::Crash() {
  if (crashed_) return;
  crashed_ = true;
  Trace(TraceCategory::kSite, "CRASH");
  env_.net->SetSiteUp(id_, false);
  // Volatile state dies. Clients of in-flight homed transactions get a
  // site-failure outcome.
  for (auto& [id, coord] : coordinators_) {
    coord->OnSiteCrash();
  }
  coordinators_.clear();
  participants_->Shutdown();
  participants_.reset();
  cc_.reset();
  store_->OnCrash();  // buffer pool frames and pending-txn table die
  closers_.clear();
  rpc_->Reset();  // drops every pending call and the duplicate windows
  decided_cache_.clear();
  schema_cache_.clear();
  suspected_until_.clear();
}

void Site::Recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  Trace(TraceCategory::kSite, "RECOVER");
  env_.net->SetSiteUp(id_, true);

  // Storage restart first: the page engine's ARIES pass (analysis ->
  // redo -> undo) rebuilds the committed pages from the log before any
  // protocol-level recovery reads the store. (No-op for the map store.)
  if (env_.config->storage_engine == StorageEngineKind::kPage) {
    RestartSummary rs = store_->Restart();
    // Append-only trace line: tools grep the leading tokens by name.
    Trace(TraceCategory::kSite,
          StringPrintf("restart: analyzed=%zu in_doubt=%zu losers=%zu "
                       "redo=%zu redo_skipped=%zu undo_clrs=%zu "
                       "scanned=%zu redo_start=%llu quarantined=%zu",
                       rs.analyzed_txns, rs.in_doubt, rs.losers,
                       rs.redo_applied, rs.redo_skipped, rs.undo_clrs,
                       rs.log_scanned,
                       static_cast<unsigned long long>(rs.redo_start),
                       rs.pages_quarantined));
  }

  auto scan = wal_.Scan();
  // Redo: apply committed-but-unapplied writes from prepared records
  // (the crash hit between logging/learning the decision and applying).
  // Store versioning makes re-application idempotent.
  for (const auto& [txn, st] : scan) {
    if (st.prepared && st.decided && st.commit && !st.applied) {
      for (const auto& w : st.prepared_record.writes) {
        store_->Apply(w.item, w.value, w.version);
      }
      wal_.Append(WalRecord::Protocol(WalRecordKind::kApplied, txn,
                            st.prepared_record.coordinator, {}, {}, false));
      Trace(TraceCategory::kAcp, txn.ToString() + " redo-applied at recovery");
    }
  }
  // Fresh volatile state (the CC engine seeds itself from the redone
  // store), then decision knowledge from the log.
  BuildVolatileState();
  for (const auto& [txn, st] : scan) {
    if (st.decided) decided_cache_[txn] = st.commit;
  }
  // Reinstate in-doubt (prepared, undecided) transactions.
  for (const WalRecord& rec : wal_.InDoubt()) {
    bool precommitted = scan.at(rec.txn).precommitted;
    Trace(TraceCategory::kAcp,
          rec.txn.ToString() + " reinstated in doubt after recovery");
    participants_->ReinstateInDoubt(rec, precommitted);
  }
  // Re-propagate decisions this site made as coordinator but never
  // finished acknowledging.
  for (const auto& d : wal_.DecidedUnended()) {
    StartCloser(d.txn, d.commit, d.participants);
  }
  // Refresh item copies from a live peer.
  if (env_.config->recovery_refresh) {
    RequestRefresh();
  }
}

void Site::RequestRefresh() {
  if (store_->size() == 0) return;
  RefreshRequest req;
  for (const auto& [item, copy] : store_->Snapshot()) req.items.push_back(item);
  // Ask every other site that could hold copies; peers that hold none of
  // the items reply with an empty list. A site does not know the full
  // schema locally, so it asks its schema cache first and falls back to
  // a broadcast.
  std::set<SiteId> peers;
  for (const auto& [item, view] : schema_cache_) {
    for (SiteId s : view.copies) {
      if (s != id_) peers.insert(s);
    }
  }
  if (peers.empty()) {
    // Cache was wiped by the crash: broadcast to all registered sites
    // via the refresh targets the system configured.
    peers = refresh_peers_;
  }
  for (SiteId p : peers) {
    if (p != id_ && env_.net->IsSiteUp(p)) SendTo(p, req);
  }
}

void Site::SetRefreshPeers(std::set<SiteId> peers) {
  refresh_peers_ = std::move(peers);
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void Site::HandleMessage(const Message& m, const RpcContext& ctx) {
  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, ReadRequest>) {
          participants_->OnRead(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, PrewriteRequest>) {
          participants_->OnPrewrite(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, AbortRequest>) {
          participants_->OnAbortRequest(p);
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          participants_->OnPrepare(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, PreCommitRequest>) {
          participants_->OnPreCommit(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, Decision>) {
          participants_->OnDecision(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, DecisionInfo>) {
          // Raw (non-RPC) decision info; normal replies arrive through
          // the participant's query-call callbacks.
          participants_->OnDecisionInfo(p);
        } else if constexpr (std::is_same_v<T, RemoteAbortNotify>) {
          auto it = coordinators_.find(p.txn);
          if (it != coordinators_.end()) it->second->OnRemoteAbort(p);
        } else if constexpr (std::is_same_v<T, DecisionQuery>) {
          HandleDecisionQuery(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, StateQuery>) {
          HandleStateQuery(m.from, p, ctx);
        } else if constexpr (std::is_same_v<T, RefreshRequest>) {
          HandleRefreshRequest(m.from, p);
        } else if constexpr (std::is_same_v<T, RefreshReply>) {
          HandleRefreshReply(p);
        } else if constexpr (std::is_same_v<T, DeadlockProbe>) {
          HandleDeadlockProbe(p);
        } else if constexpr (std::is_same_v<T, DeadlockProbeCheck>) {
          HandleDeadlockProbeCheck(p);
        } else {
          // Reply kinds (NsLookupReply, ReadReply, PrewriteReply,
          // VoteReply, PreCommitAck, StateReply, Ack) reach their
          // callers through the RPC layer; a raw copy (e.g. injected by
          // a test, or a surplus termination ack) is ignored.
          // NsLookupRequest: sites are not the name server.
        }
      },
      m.payload);
}

void Site::OnLateRpcReply(const Message& m) {
  // A reply whose call already finished or was cancelled. Most are
  // harmless (surplus votes, stale lookups), but a granted copy access
  // means the replica holds CC state on our behalf: if the transaction
  // can still use it, fold it into the commit protocol; otherwise tell
  // the replica to abort right away, or its locks sit until an orphan
  // timer fires. (A known-committed transaction's replicas get the
  // decision from the closer.)
  TxnId txn;
  bool granted = false;
  if (const auto* r = std::get_if<ReadReply>(&m.payload)) {
    txn = r->txn;
    granted = r->granted;
  } else if (const auto* p = std::get_if<PrewriteReply>(&m.payload)) {
    txn = p->txn;
    granted = p->granted;
  } else {
    return;
  }
  if (!granted) return;
  auto it = coordinators_.find(txn);
  if (it != coordinators_.end()) {
    it->second->OnStrayGrant(m.from);
    return;
  }
  auto decided = KnownDecision(txn);
  if (!decided.has_value() || !*decided) {
    SendTo(m.from, AbortRequest{txn});
  }
}

void Site::HandleDecisionQuery(SiteId from, const DecisionQuery& q,
                               const RpcContext& ctx) {
  DecisionInfo info;
  info.txn = q.txn;
  auto decided = KnownDecision(q.txn);
  if (decided.has_value()) {
    info.known = true;
    info.commit = *decided;
  } else if (coordinators_.contains(q.txn)) {
    info.known = false;  // still deciding
  } else if (q.txn.home == id_ &&
             env_.config->acp == AcpKind::kTwoPhaseCommit) {
    // Presumed abort: we are the coordinator, we have no decision record
    // — we cannot have decided commit.
    info.known = true;
    info.commit = false;
  } else {
    info.known = false;
  }
  Respond(ctx, from, info);
}

void Site::HandleStateQuery(SiteId from, const StateQuery& q,
                            const RpcContext& ctx) {
  Respond(ctx, from, StateReply{q.txn, participants_->StateOf(q.txn)});
}

void Site::HandleRefreshRequest(SiteId from, const RefreshRequest& r) {
  RefreshReply reply;
  for (ItemId item : r.items) {
    auto copy = store_->Get(item);
    if (copy.ok()) {
      reply.entries.push_back(RefreshReply::Entry{item, copy->value,
                                                  copy->version});
    }
  }
  SendTo(from, reply);
}

void Site::HandleRefreshReply(const RefreshReply& r) {
  size_t adopted = 0;
  for (const auto& e : r.entries) {
    if (store_->AdoptIfNewer(e.item, e.value, e.version)) ++adopted;
  }
  if (adopted > 0) {
    Trace(TraceCategory::kSite,
          StringPrintf("refresh adopted %zu newer copies", adopted));
    if (env_.config->cc == CcKind::kMultiversionTso) {
      auto* mvto = static_cast<MvtoManager*>(cc_.get());
      for (const auto& e : r.entries) {
        auto copy = store_->Get(e.item);
        if (copy.ok() && copy->version == e.version) {
          mvto->LoadInitial(e.item, e.value, e.version);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Edge-chasing distributed deadlock detection (Chandy–Misra–Haas)
// ---------------------------------------------------------------------------

namespace {
// Probe traversal depth cap: cycles are found well before this; it only
// bounds wandering probes racing against state changes.
constexpr uint32_t kMaxProbeHops = 32;
}  // namespace

void Site::HandleDeadlockProbe(const DeadlockProbe& p) {
  // Delivered at the holder's home site.
  if (p.holder == p.initiator) {
    // The waits-for path closed back on the initiator: deadlock.
    auto it = coordinators_.find(p.initiator);
    if (it != coordinators_.end()) it->second->AbortAsDeadlockVictim();
    return;
  }
  if (p.hops >= kMaxProbeHops) return;
  auto it = coordinators_.find(p.holder);
  if (it == coordinators_.end()) return;  // holder finished: no edge
  Coordinator* c = it->second.get();
  if (!c->in_data_op()) return;  // holder is not blocked: path ends
  // Rate-limit per (blocked op, initiator): dense waits-for graphs have
  // exponentially many paths, and one traversal per edge is enough.
  if (!c->ShouldForwardProbe(p.initiator, Now(),
                             env_.config->probe_delay / 2)) {
    return;
  }
  // Forward: ask every site the holder is waiting on who it is queued
  // behind there.
  for (SiteId s : c->outstanding_targets()) {
    SendTo(s, DeadlockProbeCheck{p.initiator, p.holder, p.hops + 1});
  }
}

void Site::HandleDeadlockProbeCheck(const DeadlockProbeCheck& p) {
  if (p.hops >= kMaxProbeHops || cc_ == nullptr) return;
  for (TxnId next : cc_->WaitingFor(p.waiter)) {
    if (next == p.initiator) {
      // Cycle: tell the initiator's home directly.
      SendTo(p.initiator.home,
             DeadlockProbe{p.initiator, p.initiator, p.hops + 1});
    } else {
      SendTo(next.home, DeadlockProbe{p.initiator, next, p.hops + 1});
    }
  }
}

// ---------------------------------------------------------------------------
// Closers
// ---------------------------------------------------------------------------

void Site::StartCloser(TxnId txn, bool commit,
                       std::vector<SiteId> participants) {
  auto [it, inserted] = closers_.insert_or_assign(txn, Closer{});
  (void)inserted;
  Closer& closer = it->second;
  closer.commit = commit;
  for (SiteId p : participants) closer.pending.insert(p);
  if (closer.pending.empty()) {
    wal_.Append(WalRecord::Protocol(WalRecordKind::kEnd, txn, id_, {}, {}, false));
    Trace(TraceCategory::kAcp, txn.ToString() + " fully acknowledged (end)");
    closers_.erase(it);
    return;
  }
  // One Decision RPC per participant: the RPC layer resends until the
  // ack arrives, pacing resends at ack_retry and giving up after
  // max_ack_resends retransmissions.
  RpcPolicy policy = MakeRpcPolicy(env_.config->ack_retry);
  policy.max_attempts = env_.config->max_ack_resends + 1;
  policy.backoff_cap = std::min(policy.backoff_cap, env_.config->ack_retry);
  for (SiteId p : closer.pending) {
    closer.calls[p] = rpc_->Call(
        p, Decision{txn, commit}, policy,
        [this, txn, p](Result<Payload> r) { OnCloserReply(txn, p, r.ok()); });
  }
}

void Site::OnCloserReply(TxnId txn, SiteId participant, bool ok) {
  auto it = closers_.find(txn);
  if (it == closers_.end()) return;
  Closer& closer = it->second;
  closer.calls.erase(participant);
  if (!ok) {
    // Leave completion to the participants' own recovery machinery.
    Trace(TraceCategory::kAcp,
          txn.ToString() + " closer gave up resending (participant down)");
    for (auto& [s, call] : closer.calls) rpc_->Cancel(call);
    closers_.erase(it);
    return;
  }
  closer.pending.erase(participant);
  if (!closer.pending.empty()) return;
  wal_.Append(WalRecord::Protocol(WalRecordKind::kEnd, txn, id_, {}, {}, false));
  Trace(TraceCategory::kAcp, txn.ToString() + " fully acknowledged (end)");
  closers_.erase(it);
}

}  // namespace rainbow
