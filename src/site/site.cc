#include "site/site.h"

#include <cassert>

#include "cc/mvto_manager.h"
#include "common/string_util.h"
#include "site/coordinator.h"

namespace rainbow {

Site::Site(SiteId id, Env env) : id_(id), env_(env) {
  assert(env_.sim && env_.net && env_.config);
  BuildVolatileState();
}

Site::~Site() = default;

void Site::BuildVolatileState() {
  cc_ = CreateCcEngine(env_.config->cc, env_.config->deadlock);
  if (env_.config->cc == CcKind::kMultiversionTso) {
    auto* mvto = static_cast<MvtoManager*>(cc_.get());
    for (const auto& [item, copy] : store_.copies()) {
      mvto->LoadInitial(item, copy.value, copy.version);
    }
  }
  participants_ = std::make_unique<ParticipantManager>(this);
  cc_->set_victim_handler([this](TxnId txn, DenyReason reason) {
    participants_->OnCcVictim(txn, reason);
  });
}

void Site::LoadItem(ItemId item, Value initial) {
  store_.Load(item, initial);
  if (env_.config->cc == CcKind::kMultiversionTso) {
    static_cast<MvtoManager*>(cc_.get())->LoadInitial(item, initial, 0);
  }
}

void Site::Start() {
  if (started_) return;
  started_ = true;
  env_.net->RegisterHandler(id_, [this](const Message& m) { HandleMessage(m); });
}

SimTime Site::Now() const { return env_.sim->Now(); }

void Site::SendTo(SiteId to, Payload payload) {
  env_.net->Send(id_, to, std::move(payload));
}

void Site::Trace(TraceCategory cat, const std::string& text) {
  if (env_.trace && env_.trace->enabled()) {
    env_.trace->Record(Now(), cat, id_, text);
  }
}

bool Site::IsSuspected(SiteId s) const {
  auto it = suspected_until_.find(s);
  return it != suspected_until_.end() && it->second > Now();
}

void Site::Suspect(SiteId s) {
  if (s == id_) return;
  suspected_until_[s] = Now() + env_.config->suspicion_ttl;
  Trace(TraceCategory::kSite, StringPrintf("suspecting site %u", s));
}

std::set<SiteId> Site::SuspectedSet() const {
  std::set<SiteId> out;
  for (const auto& [s, until] : suspected_until_) {
    if (until > Now()) out.insert(s);
  }
  return out;
}

const ReplicaView* Site::CachedView(ItemId item) const {
  auto it = schema_cache_.find(item);
  return it == schema_cache_.end() ? nullptr : &it->second;
}

void Site::CacheView(ItemId item, ReplicaView view) {
  schema_cache_[item] = std::move(view);
}

std::optional<bool> Site::KnownDecision(TxnId txn) const {
  auto it = decided_cache_.find(txn);
  if (it == decided_cache_.end()) return std::nullopt;
  return it->second;
}

void Site::RememberDecision(TxnId txn, bool commit) {
  decided_cache_[txn] = commit;
}

size_t Site::active_participants() const {
  return participants_ ? participants_->size() : 0;
}

// ---------------------------------------------------------------------------
// Client API
// ---------------------------------------------------------------------------

void Site::Submit(TxnProgram program, TxnCallback cb,
                  std::optional<TxnTimestamp> inherit_ts) {
  if (env_.monitor) env_.monitor->OnSubmit(id_, Now());
  if (crashed_) {
    TxnOutcome outcome;
    outcome.id = TxnId{id_, next_txn_seq_++};
    outcome.committed = false;
    outcome.abort_cause = AbortCause::kSiteFailure;
    outcome.abort_detail = "home site is down";
    outcome.submitted_at = Now();
    outcome.finished_at = Now();
    outcome.home = id_;
    outcome.num_ops = static_cast<uint32_t>(program.ops.size());
    if (env_.monitor) env_.monitor->OnComplete(outcome);
    if (cb) env_.sim->After(0, [cb, outcome] { cb(outcome); });
    return;
  }
  TxnId id{id_, next_txn_seq_++};
  TxnTimestamp ts;
  if (inherit_ts.has_value()) {
    // Restart under the original timestamp (wait-die fairness); the
    // previous incarnation is globally dead, so reuse is safe.
    ts = *inherit_ts;
  } else {
    // Timestamps must be unique and monotone per site: nudge the clock
    // component forward if several transactions arrive at one instant.
    SimTime ts_time = std::max(Now(), last_ts_time_ + 1);
    last_ts_time_ = ts_time;
    ts = TxnTimestamp{ts_time, id_};
  }
  auto coord = std::make_unique<Coordinator>(this, id, ts, std::move(program),
                                             std::move(cb));
  Coordinator* raw = coord.get();
  coordinators_[id] = std::move(coord);
  raw->Start();
}

void Site::CoordinatorFinished(TxnId txn) { coordinators_.erase(txn); }

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void Site::Crash() {
  if (crashed_) return;
  crashed_ = true;
  Trace(TraceCategory::kSite, "CRASH");
  env_.net->SetSiteUp(id_, false);
  // Volatile state dies. Clients of in-flight homed transactions get a
  // site-failure outcome.
  for (auto& [id, coord] : coordinators_) {
    coord->OnSiteCrash();
  }
  coordinators_.clear();
  participants_->Shutdown();
  participants_.reset();
  cc_.reset();
  for (auto& [txn, closer] : closers_) closer.retry.Cancel();
  closers_.clear();
  decided_cache_.clear();
  schema_cache_.clear();
  suspected_until_.clear();
}

void Site::Recover() {
  if (!crashed_) return;
  crashed_ = false;
  Trace(TraceCategory::kSite, "RECOVER");
  env_.net->SetSiteUp(id_, true);

  auto scan = wal_.Scan();
  // Redo: apply committed-but-unapplied writes from prepared records
  // (the crash hit between logging/learning the decision and applying).
  // Store versioning makes re-application idempotent.
  for (const auto& [txn, st] : scan) {
    if (st.prepared && st.decided && st.commit && !st.applied) {
      for (const auto& w : st.prepared_record.writes) {
        store_.Apply(w.item, w.value, w.version);
      }
      wal_.Append(WalRecord{WalRecordKind::kApplied, txn,
                            st.prepared_record.coordinator, {}, {}, false});
      Trace(TraceCategory::kAcp, txn.ToString() + " redo-applied at recovery");
    }
  }
  // Fresh volatile state (the CC engine seeds itself from the redone
  // store), then decision knowledge from the log.
  BuildVolatileState();
  for (const auto& [txn, st] : scan) {
    if (st.decided) decided_cache_[txn] = st.commit;
  }
  // Reinstate in-doubt (prepared, undecided) transactions.
  for (const WalRecord& rec : wal_.InDoubt()) {
    bool precommitted = scan.at(rec.txn).precommitted;
    Trace(TraceCategory::kAcp,
          rec.txn.ToString() + " reinstated in doubt after recovery");
    participants_->ReinstateInDoubt(rec, precommitted);
  }
  // Re-propagate decisions this site made as coordinator but never
  // finished acknowledging.
  for (const auto& d : wal_.DecidedUnended()) {
    StartCloser(d.txn, d.commit, d.participants);
    for (SiteId p : d.participants) {
      SendTo(p, Decision{d.txn, d.commit});
    }
  }
  // Refresh item copies from a live peer.
  if (env_.config->recovery_refresh) {
    RequestRefresh();
  }
}

void Site::RequestRefresh() {
  if (store_.copies().empty()) return;
  RefreshRequest req;
  for (const auto& [item, copy] : store_.copies()) req.items.push_back(item);
  // Ask every other site that could hold copies; peers that hold none of
  // the items reply with an empty list. A site does not know the full
  // schema locally, so it asks its schema cache first and falls back to
  // a broadcast.
  std::set<SiteId> peers;
  for (const auto& [item, view] : schema_cache_) {
    for (SiteId s : view.copies) {
      if (s != id_) peers.insert(s);
    }
  }
  if (peers.empty()) {
    // Cache was wiped by the crash: broadcast to all registered sites
    // via the refresh targets the system configured.
    peers = refresh_peers_;
  }
  for (SiteId p : peers) {
    if (p != id_ && env_.net->IsSiteUp(p)) SendTo(p, req);
  }
}

void Site::SetRefreshPeers(std::set<SiteId> peers) {
  refresh_peers_ = std::move(peers);
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

template <typename T>
void Site::ToCoordinator(const Message& m, const T& payload) {
  auto it = coordinators_.find(payload.txn);
  if (it == coordinators_.end()) {
    // Late reply for a finished transaction. A granted access means the
    // replica holds CC state that would otherwise leak until its orphan
    // timer fires; tell it to abort right away when the transaction is
    // known-aborted (a known-committed transaction's replicas get the
    // decision from the closer).
    if constexpr (std::is_same_v<T, ReadReply> ||
                  std::is_same_v<T, PrewriteReply>) {
      auto decided = KnownDecision(payload.txn);
      if (payload.granted && (!decided.has_value() || !*decided)) {
        SendTo(m.from, AbortRequest{payload.txn});
      }
    }
    return;
  }
  Coordinator* c = it->second.get();
  if constexpr (std::is_same_v<T, NsLookupReply>) {
    c->OnLookupReply(payload);
  } else if constexpr (std::is_same_v<T, ReadReply>) {
    c->OnReadReply(m.from, payload);
  } else if constexpr (std::is_same_v<T, PrewriteReply>) {
    c->OnPrewriteReply(m.from, payload);
  } else if constexpr (std::is_same_v<T, VoteReply>) {
    c->OnVote(m.from, payload);
  } else if constexpr (std::is_same_v<T, PreCommitAck>) {
    c->OnPreCommitAck(m.from);
  } else if constexpr (std::is_same_v<T, RemoteAbortNotify>) {
    c->OnRemoteAbort(payload);
  }
}

void Site::HandleMessage(const Message& m) {
  if (crashed_) return;  // belt and braces; the network already drops
  // Hearing from a site clears its suspicion.
  suspected_until_.erase(m.from);

  std::visit(
      [&](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, NsLookupReply> ||
                      std::is_same_v<T, ReadReply> ||
                      std::is_same_v<T, PrewriteReply> ||
                      std::is_same_v<T, VoteReply> ||
                      std::is_same_v<T, PreCommitAck> ||
                      std::is_same_v<T, RemoteAbortNotify>) {
          ToCoordinator(m, p);
        } else if constexpr (std::is_same_v<T, ReadRequest>) {
          participants_->OnRead(m.from, p);
        } else if constexpr (std::is_same_v<T, PrewriteRequest>) {
          participants_->OnPrewrite(m.from, p);
        } else if constexpr (std::is_same_v<T, AbortRequest>) {
          participants_->OnAbortRequest(p);
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          participants_->OnPrepare(m.from, p);
        } else if constexpr (std::is_same_v<T, PreCommitRequest>) {
          participants_->OnPreCommit(m.from, p);
        } else if constexpr (std::is_same_v<T, Decision>) {
          participants_->OnDecision(m.from, p);
        } else if constexpr (std::is_same_v<T, DecisionInfo>) {
          participants_->OnDecisionInfo(m.from, p);
        } else if constexpr (std::is_same_v<T, StateReply>) {
          participants_->OnStateReply(m.from, p);
        } else if constexpr (std::is_same_v<T, DecisionQuery>) {
          HandleDecisionQuery(m.from, p);
        } else if constexpr (std::is_same_v<T, StateQuery>) {
          HandleStateQuery(m.from, p);
        } else if constexpr (std::is_same_v<T, Ack>) {
          HandleAck(m.from, p);
        } else if constexpr (std::is_same_v<T, RefreshRequest>) {
          HandleRefreshRequest(m.from, p);
        } else if constexpr (std::is_same_v<T, RefreshReply>) {
          HandleRefreshReply(p);
        } else if constexpr (std::is_same_v<T, DeadlockProbe>) {
          HandleDeadlockProbe(p);
        } else if constexpr (std::is_same_v<T, DeadlockProbeCheck>) {
          HandleDeadlockProbeCheck(p);
        } else if constexpr (std::is_same_v<T, NsLookupRequest>) {
          // Sites are not the name server; ignore.
        }
      },
      m.payload);
}

void Site::HandleDecisionQuery(SiteId from, const DecisionQuery& q) {
  DecisionInfo info;
  info.txn = q.txn;
  auto decided = KnownDecision(q.txn);
  if (decided.has_value()) {
    info.known = true;
    info.commit = *decided;
  } else if (coordinators_.contains(q.txn)) {
    info.known = false;  // still deciding
  } else if (q.txn.home == id_ &&
             env_.config->acp == AcpKind::kTwoPhaseCommit) {
    // Presumed abort: we are the coordinator, we have no decision record
    // — we cannot have decided commit.
    info.known = true;
    info.commit = false;
  } else {
    info.known = false;
  }
  SendTo(from, info);
}

void Site::HandleStateQuery(SiteId from, const StateQuery& q) {
  SendTo(from, StateReply{q.txn, participants_->StateOf(q.txn)});
}

void Site::HandleAck(SiteId from, const Ack& a) {
  auto it = closers_.find(a.txn);
  if (it == closers_.end()) return;
  it->second.acks->Record(from);
  CloserMaybeFinish(a.txn);
}

void Site::HandleRefreshRequest(SiteId from, const RefreshRequest& r) {
  RefreshReply reply;
  for (ItemId item : r.items) {
    auto copy = store_.Get(item);
    if (copy.ok()) {
      reply.entries.push_back(RefreshReply::Entry{item, copy->value,
                                                  copy->version});
    }
  }
  SendTo(from, reply);
}

void Site::HandleRefreshReply(const RefreshReply& r) {
  size_t adopted = 0;
  for (const auto& e : r.entries) {
    if (store_.AdoptIfNewer(e.item, e.value, e.version)) ++adopted;
  }
  if (adopted > 0) {
    Trace(TraceCategory::kSite,
          StringPrintf("refresh adopted %zu newer copies", adopted));
    if (env_.config->cc == CcKind::kMultiversionTso) {
      auto* mvto = static_cast<MvtoManager*>(cc_.get());
      for (const auto& e : r.entries) {
        auto copy = store_.Get(e.item);
        if (copy.ok() && copy->version == e.version) {
          mvto->LoadInitial(e.item, e.value, e.version);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Edge-chasing distributed deadlock detection (Chandy–Misra–Haas)
// ---------------------------------------------------------------------------

namespace {
// Probe traversal depth cap: cycles are found well before this; it only
// bounds wandering probes racing against state changes.
constexpr uint32_t kMaxProbeHops = 32;
}  // namespace

void Site::HandleDeadlockProbe(const DeadlockProbe& p) {
  // Delivered at the holder's home site.
  if (p.holder == p.initiator) {
    // The waits-for path closed back on the initiator: deadlock.
    auto it = coordinators_.find(p.initiator);
    if (it != coordinators_.end()) it->second->AbortAsDeadlockVictim();
    return;
  }
  if (p.hops >= kMaxProbeHops) return;
  auto it = coordinators_.find(p.holder);
  if (it == coordinators_.end()) return;  // holder finished: no edge
  Coordinator* c = it->second.get();
  if (!c->in_data_op()) return;  // holder is not blocked: path ends
  // Rate-limit per (blocked op, initiator): dense waits-for graphs have
  // exponentially many paths, and one traversal per edge is enough.
  if (!c->ShouldForwardProbe(p.initiator, Now(),
                             env_.config->probe_delay / 2)) {
    return;
  }
  // Forward: ask every site the holder is waiting on who it is queued
  // behind there.
  for (SiteId s : c->outstanding_targets()) {
    SendTo(s, DeadlockProbeCheck{p.initiator, p.holder, p.hops + 1});
  }
}

void Site::HandleDeadlockProbeCheck(const DeadlockProbeCheck& p) {
  if (p.hops >= kMaxProbeHops || cc_ == nullptr) return;
  for (TxnId next : cc_->WaitingFor(p.waiter)) {
    if (next == p.initiator) {
      // Cycle: tell the initiator's home directly.
      SendTo(p.initiator.home,
             DeadlockProbe{p.initiator, p.initiator, p.hops + 1});
    } else {
      SendTo(next.home, DeadlockProbe{p.initiator, next, p.hops + 1});
    }
  }
}

// ---------------------------------------------------------------------------
// Closers
// ---------------------------------------------------------------------------

void Site::StartCloser(TxnId txn, bool commit,
                       std::vector<SiteId> participants) {
  Closer closer;
  closer.commit = commit;
  closer.acks = std::make_unique<AckCollector>(std::move(participants));
  auto [it, inserted] = closers_.insert_or_assign(txn, std::move(closer));
  (void)inserted;
  TxnId id = txn;
  it->second.retry = env_.sim->After(env_.config->ack_retry,
                                     [this, id] { CloserResend(id); });
}

void Site::CloserResend(TxnId txn) {
  auto it = closers_.find(txn);
  if (it == closers_.end()) return;
  Closer& closer = it->second;
  if (closer.acks->Complete()) {
    CloserMaybeFinish(txn);
    return;
  }
  if (++closer.resends > env_.config->max_ack_resends) {
    // Leave completion to the participants' own recovery machinery.
    Trace(TraceCategory::kAcp,
          txn.ToString() + " closer gave up resending (participant down)");
    closers_.erase(it);
    return;
  }
  for (SiteId p : closer.acks->Missing()) {
    SendTo(p, Decision{txn, closer.commit});
  }
  TxnId id = txn;
  closer.retry = env_.sim->After(env_.config->ack_retry,
                                 [this, id] { CloserResend(id); });
}

void Site::CloserMaybeFinish(TxnId txn) {
  auto it = closers_.find(txn);
  if (it == closers_.end()) return;
  if (!it->second.acks->Complete()) return;
  it->second.retry.Cancel();
  wal_.Append(WalRecord{WalRecordKind::kEnd, txn, id_, {}, {}, false});
  Trace(TraceCategory::kAcp, txn.ToString() + " fully acknowledged (end)");
  closers_.erase(it);
}

}  // namespace rainbow
