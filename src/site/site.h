#ifndef RAINBOW_SITE_SITE_H_
#define RAINBOW_SITE_SITE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/cc_engine.h"
#include "common/trace.h"
#include "common/types.h"
#include "net/network.h"
#include "net/rpc.h"
#include "rcp/rcp_policy.h"
#include "site/participant.h"
#include "site/protocol_config.h"
#include "sim/simulator.h"
#include "stats/progress_monitor.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "txn/transaction.h"
#include "verify/history.h"

namespace rainbow {

class Coordinator;

/// A Rainbow site: holds item copies, processes transactions homed here
/// (one Coordinator per in-flight transaction — the paper's "one thread
/// per transaction"), and serves as an RCP/ACP participant for
/// transactions homed elsewhere.
///
/// All request/reply messaging runs through the site's RpcEndpoint
/// (net/rpc.h): outgoing requests carry correlation ids and retry with
/// backoff; incoming duplicates are suppressed. One-way messages
/// (aborts, notifies, refresh, deadlock probes) use plain sends.
///
/// Crash semantics: Crash() destroys all volatile state (CC engine,
/// participant and coordinator records, schema cache, timers, pending
/// RPC calls, the page engine's buffer pool) and stops network
/// delivery; the storage engine's durable half (disk image, B+ tree
/// skeleton) and the Wal persist. Recover() first runs the engine's
/// ARIES restart pass (analysis -> redo -> undo over the shared WAL),
/// then rebuilds the volatile state, reinstates in-doubt transactions
/// from the WAL, re-propagates unfinished decisions, and optionally
/// refreshes item copies from a live peer.
class Site {
 public:
  /// Shared infrastructure injected by RainbowSystem.
  struct Env {
    Simulator* sim = nullptr;
    Network* net = nullptr;
    TraceLog* trace = nullptr;
    TraceCollector* collector = nullptr;  ///< structured per-txn tracing
    ProgressMonitor* monitor = nullptr;
    HistoryRecorder* history = nullptr;
    const ProtocolConfig* config = nullptr;
    uint64_t seed = 0;  ///< system seed; forked per site for RPC jitter
  };

  Site(SiteId id, Env env);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Loads the initial copy of an item (configuration time).
  void LoadItem(ItemId item, Value initial);

  /// Registers the network handler. Call once after construction.
  void Start();

  // --- client API (the WLG / manual panel entry point) ---

  /// Submits a transaction with this site as home. The callback fires
  /// exactly once, when the transaction commits or aborts. Submitting to
  /// a crashed site aborts immediately with kSiteFailure.
  ///
  /// `inherit_ts` re-runs a restarted transaction under its original
  /// timestamp — the classic fairness requirement of wait-die /
  /// wound-wait (a restarted transaction keeps ageing, so it cannot be
  /// starved by forever being the youngest).
  void Submit(TxnProgram program, TxnCallback cb,
              std::optional<TxnTimestamp> inherit_ts = std::nullopt);

  // --- fault injection ---
  void Crash();
  void Recover();
  bool crashed() const { return crashed_; }

  /// Incarnation number: bumped on every recovery. Copy-access grants
  /// carry it so a coordinator can tell that a replica restarted between
  /// two of its grants (all volatile CC state it held for the
  /// transaction — locks, buffered prewrites, timestamp table entries —
  /// died with the crash) and abort instead of committing on amnesia.
  uint64_t epoch() const { return epoch_; }

  /// Sites a recovering node may ask for fresh item copies (configured
  /// by RainbowSystem to the set of peers sharing any item with us).
  void SetRefreshPeers(std::set<SiteId> peers);

  // --- introspection ---
  SiteId id() const { return id_; }
  const StorageEngine& store() const { return *store_; }
  StorageEngine& mutable_store() { return *store_; }
  const Wal& wal() const { return wal_; }
  CcEngine* cc() { return cc_.get(); }
  size_t active_coordinators() const { return coordinators_.size(); }
  size_t active_participants() const;

  // --- services used by Coordinator and ParticipantManager ---
  Env& env() { return env_; }
  const ProtocolConfig& config() const { return *env_.config; }
  SimTime Now() const;
  void SendTo(SiteId to, Payload payload);
  void Trace(TraceCategory cat, const std::string& text);

  /// Structured tracing. Check tracing() BEFORE constructing a
  /// TraceRecord so disabled tracing costs one branch, no allocations.
  bool tracing() const {
    return env_.collector && env_.collector->enabled();
  }
  /// Stamps time and site, then forwards to the collector. Callers may
  /// leave `rec.site` set when the event concerns a different site.
  void EmitTrace(TraceRecord rec);

  /// The site's RPC endpoint (request/reply messaging).
  RpcEndpoint& rpc() { return *rpc_; }
  /// An RpcPolicy with the given per-attempt timeout and the configured
  /// rpc_max_attempts / rpc_backoff_* knobs.
  RpcPolicy MakeRpcPolicy(SimTime timeout) const;
  /// Replies through the RPC layer when `ctx` is valid (the request
  /// arrived as an RPC), else falls back to a plain send to `to` (raw
  /// requests, e.g. injected by tests).
  void Respond(const RpcContext& ctx, SiteId to, Payload payload);

  Wal& mutable_wal() { return wal_; }

  /// Crude failure detector: sites that recently timed out on us.
  bool IsSuspected(SiteId s) const;
  void Suspect(SiteId s);
  std::set<SiteId> SuspectedSet() const;

  /// Site-level schema cache (when config.cache_schema).
  const ReplicaView* CachedView(ItemId item) const;
  void CacheView(ItemId item, ReplicaView view);

  /// Decision knowledge: decisions this site logged (as coordinator or
  /// participant). Used to answer DecisionQuery.
  std::optional<bool> KnownDecision(TxnId txn) const;
  void RememberDecision(TxnId txn, bool commit);

  /// Registers the post-decision "closer": one Decision RPC per
  /// participant (the RPC layer retries until acked), then logs kEnd.
  void StartCloser(TxnId txn, bool commit, std::vector<SiteId> participants);

  /// Called by a Coordinator when it is completely finished.
  void CoordinatorFinished(TxnId txn);

  ParticipantManager* participants() { return participants_.get(); }

 private:
  friend class Coordinator;

  void HandleMessage(const Message& m, const RpcContext& ctx);
  void OnLateRpcReply(const Message& m);
  void HandleDecisionQuery(SiteId from, const DecisionQuery& q,
                           const RpcContext& ctx);
  void HandleStateQuery(SiteId from, const StateQuery& q,
                        const RpcContext& ctx);
  void HandleRefreshRequest(SiteId from, const RefreshRequest& r);
  void HandleRefreshReply(const RefreshReply& r);
  void HandleDeadlockProbe(const DeadlockProbe& p);
  void HandleDeadlockProbeCheck(const DeadlockProbeCheck& p);

  void BuildVolatileState();

  struct Closer {
    bool commit = false;
    std::set<SiteId> pending;            ///< participants not yet acked
    std::map<SiteId, uint64_t> calls;    ///< outstanding Decision RPCs
  };
  void OnCloserReply(TxnId txn, SiteId participant, bool ok);
  void RequestRefresh();

  SiteId id_;
  Env env_;
  bool crashed_ = false;
  uint64_t epoch_ = 0;
  bool started_ = false;

  // Durable state. The engine logs into wal_, so wal_ is declared (and
  // constructed) first.
  Wal wal_;
  std::unique_ptr<StorageEngine> store_;

  // The RPC endpoint outlives coordinators/participants (their
  // destructors cancel pending calls), so it is declared first.
  std::unique_ptr<RpcEndpoint> rpc_;

  // Volatile state (rebuilt on recovery).
  std::unique_ptr<CcEngine> cc_;
  std::unique_ptr<ParticipantManager> participants_;
  std::map<TxnId, std::unique_ptr<Coordinator>> coordinators_;
  std::map<TxnId, Closer> closers_;
  std::map<TxnId, bool> decided_cache_;
  std::map<ItemId, ReplicaView> schema_cache_;
  std::map<SiteId, SimTime> suspected_until_;
  std::set<SiteId> refresh_peers_;
  uint64_t next_txn_seq_ = 1;
  SimTime last_ts_time_ = -1;
};

}  // namespace rainbow

#endif  // RAINBOW_SITE_SITE_H_
