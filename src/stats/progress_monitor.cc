#include "stats/progress_monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "common/table.h"
#include "common/trace.h"

namespace rainbow {

void ProgressMonitor::OnSubmit(SiteId home, SimTime now) {
  (void)now;
  ++submitted_;
  ++homed_per_site_[home];
}

void ProgressMonitor::OnComplete(const TxnOutcome& outcome) {
  response_all_.Add(outcome.response_time());
  round_trips_ += outcome.round_trips;
  if (outcome.committed) {
    ++committed_;
    response_committed_.Add(outcome.response_time());
    size_t bucket = static_cast<size_t>(outcome.finished_at / bucket_width_);
    if (bucket >= commit_buckets_.size()) commit_buckets_.resize(bucket + 1, 0);
    commit_buckets_[bucket]++;
  } else {
    ++aborted_by_cause_[static_cast<size_t>(outcome.abort_cause)];
  }
  if (keep_outcomes_) outcomes_.push_back(outcome);
}

void ProgressMonitor::OnOrphanCleanup(TxnId txn, SiteId site) {
  (void)txn;
  (void)site;
  ++orphans_;
}

void ProgressMonitor::OnBlockedTime(TxnId txn, SimTime duration) {
  (void)txn;
  blocked_.Add(duration);
}

void ProgressMonitor::OnFaultInjected(FaultEvent::Kind kind) {
  ++faults_by_kind_[static_cast<size_t>(kind)];
}

uint64_t ProgressMonitor::faults_injected_total() const {
  uint64_t n = 0;
  for (uint64_t f : faults_by_kind_) n += f;
  return n;
}

uint64_t ProgressMonitor::aborted_total() const {
  uint64_t n = 0;
  for (uint64_t a : aborted_by_cause_) n += a;
  return n;
}

uint64_t ProgressMonitor::aborted(AbortCause cause) const {
  return aborted_by_cause_[static_cast<size_t>(cause)];
}

double ProgressMonitor::commit_rate() const {
  uint64_t finished = committed_ + aborted_total();
  return finished
             ? static_cast<double>(committed_) / static_cast<double>(finished)
             : 0.0;
}

double ProgressMonitor::abort_rate(AbortCause cause) const {
  uint64_t finished = committed_ + aborted_total();
  return finished ? static_cast<double>(aborted(cause)) /
                        static_cast<double>(finished)
                  : 0.0;
}

double ProgressMonitor::throughput_tps(SimTime duration) const {
  if (duration <= 0) return 0.0;
  return static_cast<double>(committed_) /
         (static_cast<double>(duration) / 1e6);
}

double ProgressMonitor::home_load_cv() const {
  if (homed_per_site_.empty()) return 0.0;
  double n = static_cast<double>(homed_per_site_.size());
  double sum = 0;
  for (const auto& [s, c] : homed_per_site_) sum += static_cast<double>(c);
  double mean = sum / n;
  if (mean == 0) return 0.0;
  double var = 0;
  for (const auto& [s, c] : homed_per_site_) {
    double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= n;
  return std::sqrt(var) / mean;
}

double ProgressMonitor::net_load_cv(const NetworkStats& net) {
  double n = 0, sum = 0;
  net.per_site_delivered.ForEach([&](SiteId site, uint64_t count) {
    if (site == kNameServerId) return;
    n += 1;
    sum += static_cast<double>(count);
  });
  if (n == 0 || sum == 0) return 0.0;
  double mean = sum / n;
  double var = 0;
  net.per_site_delivered.ForEach([&](SiteId site, uint64_t count) {
    if (site == kNameServerId) return;
    double d = static_cast<double>(count) - mean;
    var += d * d;
  });
  var /= n;
  return std::sqrt(var) / mean;
}

std::string ProgressMonitor::RenderStatistics(const NetworkStats& net,
                                              SimTime duration) const {
  TablePrinter t({"statistic", "value"});
  uint64_t finished = committed_ + aborted_total();
  t.AddRow({"transactions submitted", TablePrinter::Cell(submitted_).text});
  t.AddRow({"transactions finished", TablePrinter::Cell(finished).text});
  t.AddRow({"committed transactions", TablePrinter::Cell(committed_).text});
  t.AddRow({"aborted transactions", TablePrinter::Cell(aborted_total()).text});
  t.AddRow({"  aborts due to CCP", TablePrinter::Cell(aborted(AbortCause::kCcp)).text});
  t.AddRow({"  aborts due to RCP", TablePrinter::Cell(aborted(AbortCause::kRcp)).text});
  t.AddRow({"  aborts due to ACP", TablePrinter::Cell(aborted(AbortCause::kAcp)).text});
  t.AddRow({"  aborts due to site failure",
            TablePrinter::Cell(aborted(AbortCause::kSiteFailure)).text});
  t.AddRow({"commit rate", FormatDouble(commit_rate() * 100, 1) + "%"});
  t.AddRow({"abort rate (CCP)",
            FormatDouble(abort_rate(AbortCause::kCcp) * 100, 1) + "%"});
  t.AddRow({"abort rate (RCP)",
            FormatDouble(abort_rate(AbortCause::kRcp) * 100, 1) + "%"});
  t.AddRow({"abort rate (ACP)",
            FormatDouble(abort_rate(AbortCause::kAcp) * 100, 1) + "%"});
  t.AddRow({"orphan transactions", TablePrinter::Cell(orphans_).text});
  t.AddRow({"round-trip message pairs", TablePrinter::Cell(round_trips_).text});
  t.AddRow({"network messages sent", TablePrinter::Cell(net.network_sent()).text});
  t.AddRow({"messages delivered", TablePrinter::Cell(net.delivered).text});
  t.AddRow({"messages dropped", TablePrinter::Cell(net.total_dropped()).text});
  t.AddRow({"message bytes", TablePrinter::Cell(net.bytes).text});
  t.AddRow({"rpc calls", TablePrinter::Cell(net.rpc_calls).text});
  t.AddRow({"rpc attempts", TablePrinter::Cell(net.rpc_attempts).text});
  t.AddRow({"rpc retries", TablePrinter::Cell(net.rpc_retries).text});
  t.AddRow({"rpc timeouts", TablePrinter::Cell(net.rpc_timeouts).text});
  t.AddRow({"rpc terminal failures", TablePrinter::Cell(net.rpc_failures).text});
  t.AddRow({"rpc duplicates suppressed",
            TablePrinter::Cell(net.rpc_duplicates_suppressed).text});
  t.AddRow({"mean rpc latency (us)",
            FormatDouble(net.rpc_latency.count() > 0 ? net.rpc_latency.mean() : 0,
                         0)});
  double secs = static_cast<double>(duration) / 1e6;
  t.AddRow({"messages per second",
            FormatDouble(secs > 0 ? static_cast<double>(net.network_sent()) / secs : 0, 1)});
  t.AddRow({"throughput (committed tps)", FormatDouble(throughput_tps(duration), 2)});
  t.AddRow({"mean response time (us)", FormatDouble(response_committed_.mean(), 0)});
  t.AddRow({"p95 response time (us)",
            TablePrinter::Cell(response_committed_.Percentile(0.95)).text});
  t.AddRow({"p99 response time (us)",
            TablePrinter::Cell(response_committed_.Percentile(0.99)).text});
  t.AddRow({"home-load imbalance (CV)", FormatDouble(home_load_cv(), 3)});
  t.AddRow({"message-load imbalance (CV)", FormatDouble(net_load_cv(net), 3)});
  t.AddRow({"faults injected", TablePrinter::Cell(faults_injected_total()).text});
  for (size_t k = 0; k < kNumFaultKinds; ++k) {
    if (faults_by_kind_[k] == 0) continue;
    t.AddRow({std::string("  faults: ") +
                  FaultKindName(static_cast<FaultEvent::Kind>(k)),
              TablePrinter::Cell(faults_by_kind_[k]).text});
  }
  return t.ToString();
}

std::string ProgressMonitor::RenderSessionLog() const {
  std::ostringstream os;
  for (const TxnOutcome& o : outcomes_) {
    os << StringPrintf("%10lld  ", static_cast<long long>(o.finished_at))
       << o.ToString() << "\n";
  }
  return os.str();
}

std::string ProgressMonitor::RenderThroughputChart() const {
  std::vector<std::pair<double, double>> series;
  for (size_t i = 0; i < commit_buckets_.size(); ++i) {
    series.emplace_back(
        static_cast<double>(i) * static_cast<double>(bucket_width_) / 1000.0,
        static_cast<double>(commit_buckets_[i]));
  }
  return AsciiChart("commits per bucket (x = time in ms)", series);
}

std::string ProgressMonitor::RenderMessageChart(const NetworkStats& net) {
  std::vector<std::pair<double, double>> series;
  for (size_t i = 0; i < net.per_bucket.size(); ++i) {
    series.emplace_back(
        static_cast<double>(i) * static_cast<double>(net.bucket_width) /
            1000.0,
        static_cast<double>(net.per_bucket[i]));
  }
  return AsciiChart("network messages per bucket (x = time in ms)", series);
}

std::string ProgressMonitor::RenderExecutionWindow(
    const TraceCollector& collector, size_t last_n) {
  const std::vector<TraceRecord>& all = collector.records();
  size_t begin = (last_n == 0 || all.size() <= last_n) ? 0
                                                       : all.size() - last_n;
  TablePrinter t({"time_us", "txn", "site", "event", "item", "detail"});
  for (size_t i = begin; i < all.size(); ++i) {
    const TraceRecord& r = all[i];
    t.AddRow({r.time, r.txn.valid() ? r.txn.ToString() : std::string("-"),
              r.site == kInvalidSite ? std::string("-")
                                     : std::to_string(r.site),
              TraceEventKindName(r.kind),
              r.item == kInvalidItem ? std::string("-")
                                     : std::to_string(r.item),
              r.detail});
  }
  std::ostringstream os;
  os << "execution window (" << (all.size() - begin) << " of " << all.size()
     << " events)\n"
     << t.ToString();
  return os.str();
}

void ProgressMonitor::Reset() {
  submitted_ = committed_ = orphans_ = round_trips_ = 0;
  aborted_by_cause_ = {};
  faults_by_kind_ = {};
  response_committed_.Reset();
  response_all_.Reset();
  blocked_.Reset();
  commit_buckets_.clear();
  homed_per_site_.clear();
  outcomes_.clear();
}

void ProgressMonitor::MergeFrom(const ProgressMonitor& other) {
  submitted_ += other.submitted_;
  committed_ += other.committed_;
  orphans_ += other.orphans_;
  round_trips_ += other.round_trips_;
  for (size_t i = 0; i < aborted_by_cause_.size(); ++i) {
    aborted_by_cause_[i] += other.aborted_by_cause_[i];
  }
  for (size_t i = 0; i < faults_by_kind_.size(); ++i) {
    faults_by_kind_[i] += other.faults_by_kind_[i];
  }
  response_committed_.Merge(other.response_committed_);
  response_all_.Merge(other.response_all_);
  blocked_.Merge(other.blocked_);
  if (other.commit_buckets_.size() > commit_buckets_.size()) {
    commit_buckets_.resize(other.commit_buckets_.size(), 0);
  }
  for (size_t b = 0; b < other.commit_buckets_.size(); ++b) {
    commit_buckets_[b] += other.commit_buckets_[b];
  }
  for (const auto& [site, count] : other.homed_per_site_) {
    homed_per_site_[site] += count;
  }
  outcomes_.insert(outcomes_.end(), other.outcomes_.begin(),
                   other.outcomes_.end());
}

void ProgressMonitor::CanonicalizeOutcomes() {
  std::stable_sort(outcomes_.begin(), outcomes_.end(),
                   [](const TxnOutcome& a, const TxnOutcome& b) {
                     if (a.submitted_at != b.submitted_at) {
                       return a.submitted_at < b.submitted_at;
                     }
                     return a.id < b.id;
                   });
}

}  // namespace rainbow
