#ifndef RAINBOW_STATS_PROGRESS_MONITOR_H_
#define RAINBOW_STATS_PROGRESS_MONITOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "txn/transaction.h"

namespace rainbow {

class TraceCollector;

/// The paper's Progress Monitor (PM): collects execution statistics for
/// a Rainbow instance and renders them — the C++ stand-in for the GUI's
/// "Tx Processing" and "Display" menus. The §3 list of output statistics
/// maps to the accessors below.
class ProgressMonitor {
 public:
  /// Width of the time buckets used for the "messages / commits per
  /// time unit" series.
  void set_bucket_width(SimTime w) { bucket_width_ = w; }

  /// Keep every TxnOutcome for the session log (Figure 5 view). Off by
  /// default to bound memory in long sweeps.
  void set_keep_outcomes(bool keep) { keep_outcomes_ = keep; }

  // --- event intake (called by sites / the session driver) ---

  void OnSubmit(SiteId home, SimTime now);
  void OnComplete(const TxnOutcome& outcome);
  /// A participant unilaterally cleaned up a transaction orphaned by a
  /// home-site failure.
  void OnOrphanCleanup(TxnId txn, SiteId site);
  /// A prepared participant was blocked for `duration` waiting for a
  /// decision it could not learn immediately (E7's metric).
  void OnBlockedTime(TxnId txn, SimTime duration);
  /// The fault injector applied an event of `kind` (no-op transitions —
  /// crashing an already-down site — are not reported).
  void OnFaultInjected(FaultEvent::Kind kind);

  // --- the §3 statistics ---

  uint64_t submitted() const { return submitted_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted_total() const;
  uint64_t aborted(AbortCause cause) const;
  uint64_t orphans() const { return orphans_; }
  uint64_t round_trips() const { return round_trips_; }
  uint64_t faults_injected(FaultEvent::Kind kind) const {
    return faults_by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t faults_injected_total() const;

  /// Fraction of finished transactions that committed, in [0,1].
  double commit_rate() const;
  /// Fraction of finished transactions aborted with `cause`.
  double abort_rate(AbortCause cause) const;

  /// Committed transactions per simulated second over [0, duration].
  double throughput_tps(SimTime duration) const;

  const Histogram& response_times() const { return response_committed_; }
  const Histogram& response_times_all() const { return response_all_; }
  const Histogram& blocked_times() const { return blocked_; }

  /// Committed-transaction counts per time bucket.
  const std::vector<uint64_t>& commits_per_bucket() const {
    return commit_buckets_;
  }

  /// Load-balance indicator: coefficient of variation of per-site homed
  /// transaction counts (0 = perfectly balanced).
  double home_load_cv() const;

  /// Load-balance indicator over message handling: CV of per-site
  /// delivered message counts (name server excluded).
  static double net_load_cv(const NetworkStats& net);
  const std::map<SiteId, uint64_t>& homed_per_site() const {
    return homed_per_site_;
  }

  const std::vector<TxnOutcome>& outcomes() const { return outcomes_; }

  // --- rendering ---

  /// The full §3 statistics table for a finished run.
  std::string RenderStatistics(const NetworkStats& net,
                               SimTime duration) const;

  /// The Figure-5 style session log: one line per transaction (requires
  /// set_keep_outcomes(true)).
  std::string RenderSessionLog() const;

  /// ASCII chart of committed transactions per time bucket — the
  /// "Display menu" throughput graph.
  std::string RenderThroughputChart() const;

  /// ASCII chart of network messages per time bucket (series kept by
  /// the NetworkStats passed in).
  static std::string RenderMessageChart(const NetworkStats& net);

  /// The GUI's live "execution window": the most recent `last_n`
  /// structured trace events as an aligned table (all of them when
  /// last_n is 0). Requires tracing enabled on the collector.
  static std::string RenderExecutionWindow(const TraceCollector& collector,
                                           size_t last_n = 40);

  void Reset();

  /// Adds another monitor's counters/histograms into this one (per-shard
  /// merge for the sharded kernel). Outcomes are appended; call
  /// CanonicalizeOutcomes() after the last merge.
  void MergeFrom(const ProgressMonitor& other);

  /// Stable-sorts kept outcomes by (submission time, txn id) — the
  /// canonical, shard-count-invariant session-log order.
  void CanonicalizeOutcomes();

 private:
  SimTime bucket_width_ = Millis(100);
  bool keep_outcomes_ = false;

  uint64_t submitted_ = 0;
  uint64_t committed_ = 0;
  std::array<uint64_t, 6> aborted_by_cause_{};  // indexed by AbortCause
  uint64_t orphans_ = 0;
  uint64_t round_trips_ = 0;
  std::array<uint64_t, kNumFaultKinds> faults_by_kind_{};

  Histogram response_committed_;
  Histogram response_all_;
  Histogram blocked_;
  std::vector<uint64_t> commit_buckets_;
  /// Sorted map, not unordered: home_load_cv() accumulates doubles in
  /// iteration order and MergeFrom() rebuilds the table shard by shard,
  /// so hash-order iteration would make the reported CV (and anything
  /// rendered from this table) depend on shard count (rainbow_lint D1).
  std::map<SiteId, uint64_t> homed_per_site_;
  std::vector<TxnOutcome> outcomes_;
};

}  // namespace rainbow

#endif  // RAINBOW_STATS_PROGRESS_MONITOR_H_
