#include "stats/trace_export.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/table.h"
#include "core/system.h"
#include "workload/workload.h"

namespace rainbow {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// pid assignment: 0 = "system" (events without a transaction), then
/// 1.. in order of first appearance — emission order, so deterministic.
std::map<TxnId, int> AssignPids(const TraceCollector& collector) {
  std::map<TxnId, int> pids;
  int next = 1;
  for (const TraceRecord& r : collector.records()) {
    if (r.txn.valid() && pids.emplace(r.txn, next).second) ++next;
  }
  return pids;
}

int64_t TidOf(const TraceRecord& r) {
  return r.site == kInvalidSite ? -1 : static_cast<int64_t>(r.site);
}

}  // namespace

std::string ChromeTraceJson(const TraceCollector& raw) {
  // Canonicalize: the single kernel stores records in execution order,
  // the sharded kernel in merge order — (time, site) stable order makes
  // the export (and the pid first-appearance assignment below) a pure
  // function of the simulated execution, invariant under sim_shards.
  TraceCollector collector = raw;
  collector.CanonicalSort();
  std::map<TxnId, int> pids = AssignPids(collector);

  // (pid, tid) pairs in use, for thread_name metadata.
  std::set<std::pair<int, int64_t>> threads;
  for (const TraceRecord& r : collector.records()) {
    int pid = r.txn.valid() ? pids.at(r.txn) : 0;
    threads.emplace(pid, TidOf(r));
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  auto sep = [&]() {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: process names in pid order (std::map iteration order on
  // TxnId is deterministic), then thread names.
  std::map<int, TxnId> by_pid;
  for (const auto& [txn, pid] : pids) by_pid[pid] = txn;
  sep();
  os << R"({"name":"process_name","ph":"M","pid":0,"tid":0,)"
     << R"("args":{"name":"system"}})";
  for (const auto& [pid, txn] : by_pid) {
    sep();
    os << R"({"name":"process_name","ph":"M","pid":)" << pid
       << R"(,"tid":0,"args":{"name":")" << txn.ToString() << R"("}})";
  }
  for (const auto& [pid, tid] : threads) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
       << tid << R"(,"args":{"name":")"
       << (tid < 0 ? std::string("nowhere") : "site " + std::to_string(tid))
       << R"("}})";
  }

  for (const TraceRecord& r : collector.records()) {
    sep();
    int pid = r.txn.valid() ? pids.at(r.txn) : 0;
    os << R"({"name":")" << TraceEventKindName(r.kind)
       << R"(","ph":"i","s":"t","pid":)" << pid << R"(,"tid":)" << TidOf(r)
       << R"(,"ts":)" << r.time << R"(,"args":{"arg":)" << r.arg;
    if (r.item != kInvalidItem) os << R"(,"item":)" << r.item;
    if (r.peer != kInvalidSite) os << R"(,"peer":)" << r.peer;
    if (!r.detail.empty()) {
      os << R"(,"detail":")" << JsonEscape(r.detail) << '"';
    }
    os << "}}";
  }
  os << "\n]\n";
  return os.str();
}

std::string RenderTxnTimeline(const TraceCollector& collector, TxnId txn) {
  std::vector<TraceRecord> events = collector.ForTxn(txn);
  std::ostringstream os;
  os << "timeline of " << txn.ToString() << " (" << events.size()
     << " events)\n";
  if (events.empty()) return os.str();
  TablePrinter t({"time_us", "+us", "site", "event", "item", "peer", "arg",
                  "detail"});
  SimTime prev = events.front().time;
  for (const TraceRecord& r : events) {
    t.AddRow({r.time, r.time - prev,
              r.site == kInvalidSite ? std::string("-")
                                     : std::to_string(r.site),
              TraceEventKindName(r.kind),
              r.item == kInvalidItem ? std::string("-")
                                     : std::to_string(r.item),
              r.peer == kInvalidSite ? std::string("-")
                                     : std::to_string(r.peer),
              r.arg, r.detail});
    prev = r.time;
  }
  os << t.ToString();
  return os.str();
}

std::string RenderTraceSummary(const TraceCollector& collector) {
  TablePrinter t({"txn", "events", "sites", "blocks", "retries", "outcome",
                  "span_us"});
  for (TxnId txn : collector.Transactions()) {
    std::vector<TraceRecord> events = collector.ForTxn(txn);
    std::set<SiteId> sites;
    size_t blocks = 0, retries = 0;
    std::string outcome = "in-flight";
    for (const TraceRecord& r : events) {
      if (r.site != kInvalidSite) sites.insert(r.site);
      if (r.kind == TraceEventKind::kCcBlock) ++blocks;
      if (r.kind == TraceEventKind::kRpcRetry) ++retries;
      if (r.kind == TraceEventKind::kTxnCommit) outcome = "commit";
      if (r.kind == TraceEventKind::kTxnAbort) outcome = "abort";
    }
    SimTime span = events.empty() ? 0 : events.back().time - events.front().time;
    t.AddRow({txn.ToString(), static_cast<uint64_t>(events.size()),
              static_cast<uint64_t>(sites.size()),
              static_cast<uint64_t>(blocks), static_cast<uint64_t>(retries),
              outcome, span});
  }
  std::ostringstream os;
  os << t.ToString();
  if (collector.dropped() > 0) {
    os << "(" << collector.dropped()
       << " events dropped at the capacity cap; earliest timelines are "
          "incomplete)\n";
  }
  return os.str();
}

std::string TraceDiff::Describe() const {
  if (identical) return "identical (" + std::to_string(left_lines) + " lines)";
  std::ostringstream os;
  os << "first divergence at line " << line << " (left " << left_lines
     << " lines, right " << right_lines << " lines)\n";
  os << "  left:  " << left << "\n";
  os << "  right: " << right << "\n";
  return os.str();
}

TraceDiff DiffTraceText(const std::string& a, const std::string& b) {
  TraceDiff d;
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  size_t line = 0;
  bool more_a = true, more_b = true;
  while (true) {
    more_a = static_cast<bool>(std::getline(sa, la));
    more_b = static_cast<bool>(std::getline(sb, lb));
    if (more_a) ++d.left_lines;
    if (more_b) ++d.right_lines;
    ++line;
    if (!more_a && !more_b) break;
    if (!more_a || !more_b || la != lb) {
      d.line = line;
      d.left = more_a ? la : "<end of input>";
      d.right = more_b ? lb : "<end of input>";
      // Keep counting so Describe() reports full sizes.
      while (std::getline(sa, la)) ++d.left_lines;
      while (std::getline(sb, lb)) ++d.right_lines;
      return d;
    }
  }
  d.identical = true;
  return d;
}

Result<std::string> RunAndExportChromeTrace(const SystemConfig& config,
                                            const WorkloadConfig& workload) {
  SystemConfig traced = config;
  traced.trace_enabled = true;
  traced.trace_detail = TraceDetail::kFull;
  RAINBOW_ASSIGN_OR_RETURN(std::unique_ptr<RainbowSystem> sys,
                           RainbowSystem::Create(std::move(traced)));
  WorkloadGenerator gen(sys.get(), workload);
  gen.Run();
  sys->RunToQuiescence();
  return ChromeTraceJson(sys->collector());
}

Result<TraceDiff> SameSeedTraceDiff(const SystemConfig& config,
                                    const WorkloadConfig& workload) {
  RAINBOW_ASSIGN_OR_RETURN(std::string first,
                           RunAndExportChromeTrace(config, workload));
  RAINBOW_ASSIGN_OR_RETURN(std::string second,
                           RunAndExportChromeTrace(config, workload));
  return DiffTraceText(first, second);
}

Result<TraceDiff> ShardCountTraceDiff(const SystemConfig& config,
                                      const WorkloadConfig& workload,
                                      uint32_t shards_a, uint32_t shards_b) {
  WorkloadConfig wl = workload;
  wl.per_site_clients = true;
  SystemConfig a = config;
  a.sim_shards = shards_a;
  SystemConfig b = config;
  b.sim_shards = shards_b;
  RAINBOW_ASSIGN_OR_RETURN(std::string first,
                           RunAndExportChromeTrace(a, wl));
  RAINBOW_ASSIGN_OR_RETURN(std::string second,
                           RunAndExportChromeTrace(b, wl));
  return DiffTraceText(first, second);
}

}  // namespace rainbow
