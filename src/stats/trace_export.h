#ifndef RAINBOW_STATS_TRACE_EXPORT_H_
#define RAINBOW_STATS_TRACE_EXPORT_H_

#include <string>

#include "common/result.h"
#include "common/trace.h"

namespace rainbow {

struct SystemConfig;
struct WorkloadConfig;

/// Serializes the collector as Chrome trace_event JSON (the array
/// format), loadable in chrome://tracing and Perfetto. Mapping:
///   pid = transaction (process_name "T<seq>@<home>"; pid 0 = "system"
///         for events not tied to a transaction)
///   tid = site (thread_name "site N")
///   ts  = virtual time in microseconds, ph "i" (instant, scope "t")
/// One event per line so exports of two runs diff line-by-line. The
/// records are canonicalized — stable-sorted by (time, site) — before
/// serialization, so same-seed runs produce byte-identical files at any
/// sim_shards setting, not just for identical shard counts.
std::string ChromeTraceJson(const TraceCollector& collector);

/// ASCII timeline of one transaction: its events in time order, one row
/// each, the per-transaction "execution window" of the paper's GUI.
std::string RenderTxnTimeline(const TraceCollector& collector, TxnId txn);

/// One summary row per traced transaction (events, sites touched,
/// blocks, retries, outcome).
std::string RenderTraceSummary(const TraceCollector& collector);

/// First divergence between two line-oriented exports.
struct TraceDiff {
  bool identical = false;
  size_t line = 0;  ///< 1-based first differing line (0 if identical)
  std::string left;
  std::string right;
  size_t left_lines = 0;
  size_t right_lines = 0;

  std::string Describe() const;
};

TraceDiff DiffTraceText(const std::string& a, const std::string& b);

/// The determinism gate: builds the system + workload twice from the
/// same configs (tracing forced to kFull), runs both to quiescence, and
/// diffs the Chrome-trace exports. Identical configs must yield
/// `identical == true`; anything else is a determinism regression.
Result<TraceDiff> SameSeedTraceDiff(const SystemConfig& config,
                                    const WorkloadConfig& workload);

/// The sharded-kernel determinism gate: runs (config, workload) once
/// with sim_shards = shards_a and once with shards_b (same seed) and
/// diffs the canonical Chrome-trace exports. The sharded kernel's
/// headline claim is `identical == true` for any pair of shard counts.
/// Forces per-site workload clients so both runs use the same client
/// model.
Result<TraceDiff> ShardCountTraceDiff(const SystemConfig& config,
                                      const WorkloadConfig& workload,
                                      uint32_t shards_a, uint32_t shards_b);

/// Single run of (config, workload) to quiescence with tracing forced
/// to kFull; returns the Chrome-trace JSON. Shared by SameSeedTraceDiff
/// and the trace_explorer example.
Result<std::string> RunAndExportChromeTrace(const SystemConfig& config,
                                            const WorkloadConfig& workload);

}  // namespace rainbow

#endif  // RAINBOW_STATS_TRACE_EXPORT_H_
