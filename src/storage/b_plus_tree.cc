#include "storage/b_plus_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rainbow {

namespace {

struct LeafEntry {
  ItemId item;
  Value value;
  Version version;
};

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, DiskManager* disk)
    : pool_(pool), disk_(disk) {
  uint32_t page_size = disk_->page_size();
  assert(page_size >= kOffEntries + 2 * kLeafEntryBytes);
  leaf_cap_ = (page_size - kOffEntries) / kLeafEntryBytes;
  internal_cap_ = (page_size - kOffEntries) / kInternalEntryBytes;
}

// --- entry accessors -------------------------------------------------------

static uint32_t LeafOff(uint32_t i) { return 24 + i * 20; }
static uint32_t InternalOff(uint32_t i) { return 24 + i * 8; }

static LeafEntry ReadLeaf(const Page& p, uint32_t i) {
  LeafEntry e;
  e.item = p.ReadU32(LeafOff(i));
  e.value = p.ReadI64(LeafOff(i) + 4);
  e.version = p.ReadU64(LeafOff(i) + 12);
  return e;
}

static void WriteLeaf(Page& p, uint32_t i, const LeafEntry& e) {
  p.WriteU32(LeafOff(i), e.item);
  p.WriteI64(LeafOff(i) + 4, e.value);
  p.WriteU64(LeafOff(i) + 12, e.version);
}

/// Index of the first leaf entry with item >= `item`.
static uint32_t LeafLowerBound(const Page& p, uint32_t count, ItemId item) {
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (p.ReadU32(LeafOff(mid)) < item) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId BPlusTree::ChildFor(const Page& page, ItemId item) {
  // Clamp to physical capacity: a corrupt count (reachable only with
  // page checksums off) must not index past the page.
  uint32_t count = std::min(
      Count(page), (page.size() - kOffEntries) / kInternalEntryBytes);
  // Entries sorted by separator key; child = last entry with key <= item,
  // or the leftmost child when item precedes every separator.
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (page.ReadU32(InternalOff(mid)) <= item) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return page.ReadU32(kOffLink);
  return page.ReadU32(InternalOff(lo - 1) + 4);
}

PageId BPlusTree::FindLeaf(ItemId item) const {
  PageId cur = root_;
  // Hop bound: a healthy descent visits at most `height` pages; corrupt
  // link bytes (checksums off) could otherwise cycle forever.
  uint32_t hops = disk_->allocated_pages() + 2;
  while (cur != kInvalidPageId && hops-- > 0) {
    Page* page = pool_->FetchPage(cur);
    if (page == nullptr) return kInvalidPageId;  // pool exhausted
    if (page->ReadU8(kOffType) == kLeaf) {
      pool_->UnpinPage(cur, false);
      return cur;
    }
    PageId next = ChildFor(*page, item);
    pool_->UnpinPage(cur, false);
    cur = next;
  }
  return kInvalidPageId;
}

// --- reads -----------------------------------------------------------------

std::optional<ItemCopy> BPlusTree::Get(ItemId item) const {
  PageId leaf = FindLeaf(item);
  if (leaf == kInvalidPageId) return std::nullopt;
  Page* page = pool_->FetchPage(leaf);
  if (page == nullptr) return std::nullopt;
  uint32_t count = std::min(Count(*page), leaf_cap_);
  uint32_t i = LeafLowerBound(*page, count, item);
  std::optional<ItemCopy> out;
  if (i < count && page->ReadU32(LeafOff(i)) == item) {
    LeafEntry e = ReadLeaf(*page, i);
    out = ItemCopy{e.value, e.version};
  }
  pool_->UnpinPage(leaf, false);
  return out;
}

std::optional<PageId> BPlusTree::LeafOf(ItemId item) const {
  PageId leaf = FindLeaf(item);
  if (leaf == kInvalidPageId) return std::nullopt;
  return leaf;
}

void BPlusTree::Scan(ItemId from, size_t limit,
                     std::vector<std::pair<ItemId, ItemCopy>>& out) const {
  PageId cur = FindLeaf(from);
  if (cur == kInvalidPageId) cur = leftmost_leaf_;
  // Leaf-chain hop bound, for the same reason as FindLeaf's.
  uint32_t hops = disk_->allocated_pages() + 1;
  while (cur != kInvalidPageId && out.size() < limit && hops-- > 0) {
    Page* page = pool_->FetchPage(cur);
    if (page == nullptr) return;
    uint32_t count = std::min(Count(*page), leaf_cap_);
    for (uint32_t i = LeafLowerBound(*page, count, from);
         i < count && out.size() < limit; ++i) {
      LeafEntry e = ReadLeaf(*page, i);
      out.emplace_back(e.item, ItemCopy{e.value, e.version});
    }
    PageId next = page->ReadU32(kOffLink);
    pool_->UnpinPage(cur, false);
    cur = next;
  }
}

uint32_t BPlusTree::height() const {
  uint32_t h = 0;
  PageId cur = root_;
  uint32_t hops = disk_->allocated_pages() + 2;
  while (cur != kInvalidPageId && hops-- > 0) {
    Page* page = pool_->FetchPage(cur);
    if (page == nullptr) break;
    ++h;
    bool leaf = page->ReadU8(kOffType) == kLeaf;
    PageId next = leaf ? kInvalidPageId : page->ReadU32(kOffLink);
    pool_->UnpinPage(cur, false);
    cur = next;
  }
  return h;
}

// --- updates ---------------------------------------------------------------

bool BPlusTree::Update(ItemId item, Value value, Version version, Lsn lsn,
                       PageId* dirtied) {
  PageId leaf = FindLeaf(item);
  if (leaf == kInvalidPageId) return false;
  Page* page = pool_->FetchPage(leaf);
  if (page == nullptr) return false;
  uint32_t count = std::min(Count(*page), leaf_cap_);
  uint32_t i = LeafLowerBound(*page, count, item);
  bool found = i < count && page->ReadU32(LeafOff(i)) == item;
  if (found) {
    WriteLeaf(*page, i, LeafEntry{item, value, version});
    if (lsn > page->page_lsn()) page->set_page_lsn(lsn);
    if (dirtied != nullptr) *dirtied = leaf;
  }
  pool_->UnpinPage(leaf, found);
  return found;
}

bool BPlusTree::RedoUpdate(ItemId item, Value value, Version version, Lsn lsn,
                           PageId* dirtied) {
  PageId leaf = FindLeaf(item);
  if (leaf == kInvalidPageId) return false;
  Page* page = pool_->FetchPage(leaf);
  if (page == nullptr) return false;
  bool applied = false;
  if (page->page_lsn() < lsn) {
    uint32_t count = std::min(Count(*page), leaf_cap_);
    uint32_t i = LeafLowerBound(*page, count, item);
    if (i < count && page->ReadU32(LeafOff(i)) == item) {
      WriteLeaf(*page, i, LeafEntry{item, value, version});
      page->set_page_lsn(lsn);
      applied = true;
      if (dirtied != nullptr) *dirtied = leaf;
    }
  }
  pool_->UnpinPage(leaf, applied);
  return applied;
}

// --- inserts ---------------------------------------------------------------

void BPlusTree::Put(ItemId item, Value value, Version version) {
  if (root_ == kInvalidPageId) {
    PageId id;
    Page* page = pool_->NewPage(&id);
    assert(page != nullptr);
    page->WriteU8(kOffType, kLeaf);
    SetCount(*page, 1);
    page->WriteU32(kOffLink, kInvalidPageId);
    WriteLeaf(*page, 0, LeafEntry{item, value, version});
    pool_->UnpinPage(id, true);
    root_ = id;
    leftmost_leaf_ = id;
    size_ = 1;
    return;
  }
  bool inserted_new = false;
  auto split = InsertRec(root_, item, value, version, &inserted_new);
  if (inserted_new) ++size_;
  if (split.has_value()) {
    // Root split: new internal root with the old root as leftmost child.
    PageId id;
    Page* page = pool_->NewPage(&id);
    assert(page != nullptr);
    page->WriteU8(kOffType, kInternal);
    SetCount(*page, 1);
    page->WriteU32(kOffLink, root_);
    page->WriteU32(InternalOff(0), split->key);
    page->WriteU32(InternalOff(0) + 4, split->page);
    pool_->UnpinPage(id, true);
    root_ = id;
  }
}

std::optional<BPlusTree::SplitResult> BPlusTree::LeafInsert(
    Page* page, PageId page_id, ItemId item, Value value, Version version,
    bool* inserted_new) {
  uint32_t count = std::min(Count(*page), leaf_cap_);
  uint32_t i = LeafLowerBound(*page, count, item);
  if (i < count && page->ReadU32(LeafOff(i)) == item) {
    // Overwrite (configuration-time reload).
    WriteLeaf(*page, i, LeafEntry{item, value, version});
    return std::nullopt;
  }
  *inserted_new = true;
  if (count < leaf_cap_) {
    std::memmove(page->data() + LeafOff(i + 1), page->data() + LeafOff(i),
                 static_cast<size_t>(count - i) * kLeafEntryBytes);
    WriteLeaf(*page, i, LeafEntry{item, value, version});
    SetCount(*page, count + 1);
    return std::nullopt;
  }
  // Full leaf: split into (left = lower half, right = upper half), then
  // place the new entry on the side its key belongs to.
  PageId right_id;
  Page* right = pool_->NewPage(&right_id);
  assert(right != nullptr);
  right->WriteU8(kOffType, kLeaf);
  uint32_t keep = count / 2;
  uint32_t moved = count - keep;
  std::memcpy(right->data() + LeafOff(0), page->data() + LeafOff(keep),
              static_cast<size_t>(moved) * kLeafEntryBytes);
  SetCount(*right, moved);
  SetCount(*page, keep);
  right->WriteU32(kOffLink, page->ReadU32(kOffLink));
  page->WriteU32(kOffLink, right_id);
  // Split carries existing effects: the new page inherits the source
  // page's LSN so redo gating stays sound for the moved entries.
  right->set_page_lsn(page->page_lsn());
  ItemId right_first = right->ReadU32(LeafOff(0));
  Page* target = item < right_first ? page : right;
  PageId target_id = item < right_first ? page_id : right_id;
  uint32_t tcount = Count(*target);
  uint32_t ti = LeafLowerBound(*target, tcount, item);
  std::memmove(target->data() + LeafOff(ti + 1), target->data() + LeafOff(ti),
               static_cast<size_t>(tcount - ti) * kLeafEntryBytes);
  WriteLeaf(*target, ti, LeafEntry{item, value, version});
  SetCount(*target, tcount + 1);
  (void)target_id;
  pool_->UnpinPage(right_id, true);
  return SplitResult{right_first, right_id};
}

std::optional<BPlusTree::SplitResult> BPlusTree::InsertRec(
    PageId page_id, ItemId item, Value value, Version version,
    bool* inserted_new) {
  Page* page = pool_->FetchPage(page_id);
  assert(page != nullptr);
  if (page->ReadU8(kOffType) == kLeaf) {
    auto split = LeafInsert(page, page_id, item, value, version, inserted_new);
    pool_->UnpinPage(page_id, true);
    return split;
  }
  PageId child = ChildFor(*page, item);
  // Unpin across the recursion (child splits may fetch/allocate pages);
  // re-fetch afterwards to install a promoted separator.
  pool_->UnpinPage(page_id, false);
  auto child_split = InsertRec(child, item, value, version, inserted_new);
  if (!child_split.has_value()) return std::nullopt;

  page = pool_->FetchPage(page_id);
  assert(page != nullptr);
  uint32_t count = std::min(Count(*page), internal_cap_);
  // Position of the new separator among the sorted keys.
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (page->ReadU32(InternalOff(mid)) < child_split->key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (count < internal_cap_) {
    std::memmove(page->data() + InternalOff(lo + 1),
                 page->data() + InternalOff(lo),
                 static_cast<size_t>(count - lo) * kInternalEntryBytes);
    page->WriteU32(InternalOff(lo), child_split->key);
    page->WriteU32(InternalOff(lo) + 4, child_split->page);
    SetCount(*page, count + 1);
    pool_->UnpinPage(page_id, true);
    return std::nullopt;
  }
  // Internal split: keep the lower half, move the upper half right; the
  // middle separator moves up (B+ internal nodes do not duplicate it).
  PageId right_id;
  Page* right = pool_->NewPage(&right_id);
  assert(right != nullptr);
  right->WriteU8(kOffType, kInternal);
  uint32_t keep = count / 2;          // entries kept on the left
  ItemId up_key = page->ReadU32(InternalOff(keep));
  PageId up_child = page->ReadU32(InternalOff(keep) + 4);
  uint32_t moved = count - keep - 1;  // entries after the promoted one
  right->WriteU32(kOffLink, up_child);
  std::memcpy(right->data() + InternalOff(0),
              page->data() + InternalOff(keep + 1),
              static_cast<size_t>(moved) * kInternalEntryBytes);
  SetCount(*right, moved);
  SetCount(*page, keep);
  // Insert the pending separator into the proper half.
  Page* target = child_split->key < up_key ? page : right;
  PageId target_id = child_split->key < up_key ? page_id : right_id;
  uint32_t tcount = Count(*target);
  uint32_t tlo = 0, thi = tcount;
  while (tlo < thi) {
    uint32_t mid = (tlo + thi) / 2;
    if (target->ReadU32(InternalOff(mid)) < child_split->key) {
      tlo = mid + 1;
    } else {
      thi = mid;
    }
  }
  std::memmove(target->data() + InternalOff(tlo + 1),
               target->data() + InternalOff(tlo),
               static_cast<size_t>(tcount - tlo) * kInternalEntryBytes);
  target->WriteU32(InternalOff(tlo), child_split->key);
  target->WriteU32(InternalOff(tlo) + 4, child_split->page);
  SetCount(*target, tcount + 1);
  (void)target_id;
  pool_->UnpinPage(right_id, true);
  pool_->UnpinPage(page_id, true);
  return SplitResult{up_key, right_id};
}

}  // namespace rainbow
