#ifndef RAINBOW_STORAGE_B_PLUS_TREE_H_
#define RAINBOW_STORAGE_B_PLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/local_store.h"
#include "storage/page.h"

namespace rainbow {

/// B+ tree primary index over ItemId -> ItemCopy {value, version},
/// stored in fixed-size pages through the buffer pool. Leaves form a
/// singly linked sibling chain for range scans. Inserts split bottom-up;
/// deletes are not needed (the item population is fixed at configuration
/// time), so nodes never merge.
///
/// The tree's skeleton metadata (root page id, leftmost leaf, entry
/// count) lives in this object, which — like the Wal and DiskManager —
/// survives Site::Crash(); only the buffer pool's frames are volatile.
/// Page content reflects whatever reached disk plus whatever the
/// restart pass redoes from the log.
///
/// Page layout (all little-endian via memcpy):
///   [0..8)   page LSN
///   [8..12)  page CRC32 (owned by the disk layer; see page.h)
///   [12]     node type (1 = leaf, 2 = internal)
///   [16..20) entry count
///   [20..24) leaf: next-leaf page id; internal: leftmost child page id
///   [24..)   entries — leaf: (item u32, value i64, version u64) = 20 B;
///            internal: (separator key u32, child page id u32) = 8 B
///
/// Read paths are hardened against corrupt page bytes (reachable only
/// when page checksums are disabled and a storage fault lands): entry
/// counts are clamped to capacity and descents/leaf-chain walks are
/// hop-bounded, so garbage degrades to wrong answers the verification
/// oracle can see — never out-of-bounds access or an unbounded loop.
class BPlusTree {
 public:
  BPlusTree(BufferPool* pool, DiskManager* disk);

  /// Inserts or overwrites (configuration-time load; stamps no LSN).
  void Put(ItemId item, Value value, Version version);

  std::optional<ItemCopy> Get(ItemId item) const;
  bool Has(ItemId item) const { return Get(item).has_value(); }

  /// Overwrites an existing item in place and stamps the leaf's page
  /// LSN. Returns false if the item is not in the tree. On success
  /// `dirtied` (optional) receives the written leaf's page id — the
  /// dirty-page-table hook for fuzzy checkpoints.
  bool Update(ItemId item, Value value, Version version, Lsn lsn,
              PageId* dirtied = nullptr);

  /// Redo-path update: applies only when the leaf's page LSN < `lsn`
  /// (the ARIES redo test). Returns true if the page was written; on
  /// true `dirtied` (optional) receives the leaf's page id.
  bool RedoUpdate(ItemId item, Value value, Version version, Lsn lsn,
                  PageId* dirtied = nullptr);

  /// The leaf page currently holding `item` (for logging page ids).
  std::optional<PageId> LeafOf(ItemId item) const;

  /// Appends up to `limit` entries with item >= `from`, ascending,
  /// walking the leaf chain.
  void Scan(ItemId from, size_t limit,
            std::vector<std::pair<ItemId, ItemCopy>>& out) const;

  size_t size() const { return size_; }
  PageId root_page_id() const { return root_; }
  uint32_t height() const;

  uint32_t leaf_capacity() const { return leaf_cap_; }

 private:
  static constexpr uint32_t kOffType = kPageHeaderLsnBytes;
  static constexpr uint32_t kOffCount = 16;
  static constexpr uint32_t kOffLink = 20;
  static constexpr uint32_t kOffEntries = 24;
  static constexpr uint32_t kLeafEntryBytes = 20;
  static constexpr uint32_t kInternalEntryBytes = 8;
  static constexpr uint8_t kLeaf = 1;
  static constexpr uint8_t kInternal = 2;

  struct SplitResult {
    ItemId key = kInvalidItem;  ///< first key of the new right sibling
    PageId page = kInvalidPageId;
  };

  /// Recursive insert; returns the split to install in the parent, if
  /// the node overflowed.
  std::optional<SplitResult> InsertRec(PageId page_id, ItemId item,
                                       Value value, Version version,
                                       bool* inserted_new);

  std::optional<SplitResult> LeafInsert(Page* page, PageId page_id,
                                        ItemId item, Value value,
                                        Version version, bool* inserted_new);

  /// Descends to the leaf that would hold `item`; returns its page id.
  PageId FindLeaf(ItemId item) const;

  /// Child of an internal node for `item`.
  static PageId ChildFor(const Page& page, ItemId item);

  static uint32_t Count(const Page& p) { return p.ReadU32(kOffCount); }
  static void SetCount(Page& p, uint32_t c) { p.WriteU32(kOffCount, c); }

  BufferPool* pool_;
  DiskManager* disk_;
  uint32_t leaf_cap_;
  uint32_t internal_cap_;
  // Durable skeleton (survives crash with the disk image).
  PageId root_ = kInvalidPageId;
  PageId leftmost_leaf_ = kInvalidPageId;
  size_t size_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_B_PLUS_TREE_H_
