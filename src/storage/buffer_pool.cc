#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace rainbow {

void DiskManager::ReadPage(PageId page_id, Page& out) const {
  ++reads_;
  auto it = pages_.find(page_id);
  if (it == pages_.end()) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  assert(it->second.size() == out.size());
  std::memcpy(out.data(), it->second.data(), out.size());
}

void DiskManager::WritePage(PageId page_id, const Page& in) {
  ++writes_;
  pages_[page_id] = in.bytes();
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames, size_t lru_k)
    : disk_(disk), frames_(num_frames), replacer_(num_frames, lru_k) {
  free_list_.reserve(num_frames);
  // Stack order: frame 0 is handed out first.
  for (size_t i = num_frames; i > 0; --i) free_list_.push_back(i - 1);
}

size_t BufferPool::AcquireFrame() {
  if (!free_list_.empty()) {
    size_t f = free_list_.back();
    free_list_.pop_back();
    return f;
  }
  std::optional<size_t> victim = replacer_.Evict();
  if (!victim.has_value()) return static_cast<size_t>(-1);
  Frame& fr = frames_[*victim];
  ++stats_.evictions;
  if (fr.dirty) {
    ++stats_.dirty_evictions;
    disk_->WritePage(fr.page_id, *fr.page);
  }
  page_table_.erase(fr.page_id);
  fr.page_id = kInvalidPageId;
  fr.dirty = false;
  return *victim;
}

Page* BufferPool::FetchPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& fr = frames_[it->second];
    ++fr.pin_count;
    replacer_.RecordAccess(it->second);
    replacer_.SetEvictable(it->second, false);
    return fr.page.get();
  }
  ++stats_.misses;
  size_t f = AcquireFrame();
  if (f == static_cast<size_t>(-1)) {
    ++stats_.pin_failures;
    return nullptr;
  }
  Frame& fr = frames_[f];
  if (!fr.page) fr.page = std::make_unique<Page>(disk_->page_size());
  disk_->ReadPage(page_id, *fr.page);
  fr.page_id = page_id;
  fr.pin_count = 1;
  fr.dirty = false;
  page_table_[page_id] = f;
  replacer_.RecordAccess(f);
  replacer_.SetEvictable(f, false);
  return fr.page.get();
}

Page* BufferPool::NewPage(PageId* page_id) {
  size_t f = AcquireFrame();
  if (f == static_cast<size_t>(-1)) {
    ++stats_.pin_failures;
    return nullptr;
  }
  PageId id = disk_->AllocatePage();
  Frame& fr = frames_[f];
  if (!fr.page) fr.page = std::make_unique<Page>(disk_->page_size());
  std::memset(fr.page->data(), 0, fr.page->size());
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = true;  // a new page must reach disk even if never updated
  page_table_[id] = f;
  replacer_.RecordAccess(f);
  replacer_.SetEvictable(f, false);
  *page_id = id;
  return fr.page.get();
}

bool BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return false;
  Frame& fr = frames_[it->second];
  if (fr.pin_count <= 0) return false;
  fr.dirty = fr.dirty || dirty;
  if (--fr.pin_count == 0) replacer_.SetEvictable(it->second, true);
  return true;
}

bool BufferPool::FlushPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return false;
  Frame& fr = frames_[it->second];
  disk_->WritePage(page_id, *fr.page);
  fr.dirty = false;
  ++stats_.flushes;
  return true;
}

void BufferPool::FlushAll() {
  for (const auto& [page_id, f] : page_table_) {
    Frame& fr = frames_[f];
    if (!fr.dirty) continue;
    disk_->WritePage(page_id, *fr.page);
    fr.dirty = false;
    ++stats_.flushes;
  }
}

void BufferPool::Reset() {
  page_table_.clear();
  free_list_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    size_t f = i - 1;
    frames_[f].page_id = kInvalidPageId;
    frames_[f].pin_count = 0;
    frames_[f].dirty = false;
    replacer_.Remove(f);
    free_list_.push_back(f);
  }
}

int BufferPool::PinCountOf(PageId page_id) const {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return -1;
  return frames_[it->second].pin_count;
}

}  // namespace rainbow
