#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/crc32.h"

namespace rainbow {

const char* PageReadStatusName(PageReadStatus status) {
  switch (status) {
    case PageReadStatus::kOk:
      return "ok";
    case PageReadStatus::kNeverWritten:
      return "never-written";
    case PageReadStatus::kRecovered:
      return "recovered";
    case PageReadStatus::kCorrupt:
      return "corrupt";
  }
  return "?";
}

const char* StorageFaultKindName(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kTornWrite:
      return "torn-write";
    case StorageFaultKind::kShortWrite:
      return "short-write";
    case StorageFaultKind::kLostWrite:
      return "lost-write";
    case StorageFaultKind::kReadBitFlip:
      return "read-bit-flip";
  }
  return "?";
}

std::vector<uint8_t> DiskManager::Stamp(const Page& in) const {
  std::vector<uint8_t> bytes = in.bytes();
  uint32_t crc = 0;
  if (checksums_) {
    // CRC over everything except the CRC field itself, chained.
    crc = Crc32(bytes.data(), kPageCrcOffset);
    crc = Crc32(bytes.data() + kPageHeaderLsnBytes,
                bytes.size() - kPageHeaderLsnBytes, crc);
  }
  std::memcpy(bytes.data() + kPageCrcOffset, &crc, sizeof(crc));
  return bytes;
}

bool DiskManager::Verify(const std::vector<uint8_t>& bytes) const {
  if (bytes.size() != page_size_ || bytes.size() < kPageHeaderLsnBytes) {
    return false;
  }
  uint32_t stored;
  std::memcpy(&stored, bytes.data() + kPageCrcOffset, sizeof(stored));
  uint32_t crc = Crc32(bytes.data(), kPageCrcOffset);
  crc = Crc32(bytes.data() + kPageHeaderLsnBytes,
              bytes.size() - kPageHeaderLsnBytes, crc);
  return stored == crc;
}

Lsn DiskManager::LsnOf(const std::vector<uint8_t>& bytes) {
  Lsn lsn;
  std::memcpy(&lsn, bytes.data(), sizeof(lsn));
  return lsn;
}

PageReadStatus DiskManager::ReadPage(PageId page_id, Page& out) {
  ++reads_;
  auto pit = pages_.find(page_id);
  auto jit = journal_.find(page_id);
  if (pit == pages_.end() && jit == journal_.end()) {
    std::memset(out.data(), 0, out.size());
    return PageReadStatus::kNeverWritten;
  }
  if (!checksums_) {
    // Defense disabled: the primary bytes are taken on faith and the
    // journal is never consulted — the configuration that lets nemesis
    // demonstrate what torn writes do to an unprotected page file.
    if (pit == pages_.end()) {
      std::memset(out.data(), 0, out.size());
      return PageReadStatus::kNeverWritten;
    }
    assert(pit->second.size() == out.size());
    std::memcpy(out.data(), pit->second.data(), out.size());
    return PageReadStatus::kOk;
  }
  bool p_ok = pit != pages_.end() && Verify(pit->second);
  bool j_ok = jit != journal_.end() && Verify(jit->second);
  if (p_ok && (!j_ok || LsnOf(jit->second) <= LsnOf(pit->second))) {
    std::memcpy(out.data(), pit->second.data(), out.size());
    return PageReadStatus::kOk;
  }
  if (j_ok) {
    // The journal supplies the bytes: the primary is corrupt or missing
    // (quarantine-and-rebuild) or stale (a lost write — the journal saw
    // a newer image). Heal the primary so each fault costs one read.
    if (p_ok) {
      ++lost_write_restores_;
    } else {
      ++quarantined_;
    }
    pages_[page_id] = jit->second;
    std::memcpy(out.data(), jit->second.data(), out.size());
    return PageReadStatus::kRecovered;
  }
  ++corrupt_reads_;
  std::memset(out.data(), 0, out.size());
  return PageReadStatus::kCorrupt;
}

void DiskManager::WritePage(PageId page_id, const Page& in) {
  ++writes_;
  std::vector<uint8_t> stamped = Stamp(in);
  journal_[page_id] = stamped;
  pages_[page_id] = std::move(stamped);
}

FaultyDiskManager::FaultyDiskManager(uint32_t page_size, bool checksums,
                                     uint64_t seed)
    : DiskManager(page_size, checksums), rng_(seed) {}

void FaultyDiskManager::Arm(StorageFaultKind kind, double probability) {
  assert(probability >= 0.0 && probability <= 1.0);
  prob_[static_cast<size_t>(kind)] = probability;
}

void FaultyDiskManager::ArmWriteLimit(uint64_t remaining) {
  write_limit_armed_ = true;
  writes_remaining_ = remaining;
}

void FaultyDiskManager::DisarmWriteLimit() {
  write_limit_armed_ = false;
  writes_remaining_ = 0;
}

void FaultyDiskManager::WritePage(PageId page_id, const Page& in) {
  if (write_limit_armed_) {
    if (writes_remaining_ == 0) {
      // The machine died: nothing (journal included) persists anymore.
      ++dropped_writes_;
      return;
    }
    --writes_remaining_;
  }
  ++writes_;
  std::vector<uint8_t> stamped = Stamp(in);
  // The journal half of the doublewrite always lands intact; per-write
  // faults below corrupt only the primary. (A fault striking both
  // copies of the same write is what the write limit above models.)
  journal_[page_id] = stamped;
  const size_t half = stamped.size() / 2;
  auto armed = [&](StorageFaultKind k) {
    double p = prob_[static_cast<size_t>(k)];
    return p > 0.0 && rng_.NextBool(p);
  };
  if (armed(StorageFaultKind::kLostWrite)) {
    ++lost_writes_;
    return;  // primary keeps its previous content (or stays absent)
  }
  if (armed(StorageFaultKind::kTornWrite)) {
    ++torn_writes_;
    std::vector<uint8_t>& primary = pages_[page_id];
    if (primary.size() != stamped.size()) {
      primary.assign(stamped.size(), 0);  // tear over a hole: rest zeros
    }
    std::memcpy(primary.data(), stamped.data(), half);
    return;
  }
  if (armed(StorageFaultKind::kShortWrite)) {
    ++short_writes_;
    std::vector<uint8_t> img(stamped.size(), 0);
    std::memcpy(img.data(), stamped.data(), half);
    pages_[page_id] = std::move(img);
    return;
  }
  pages_[page_id] = std::move(stamped);
}

PageReadStatus FaultyDiskManager::ReadPage(PageId page_id, Page& out) {
  double p = prob_[static_cast<size_t>(StorageFaultKind::kReadBitFlip)];
  if (p > 0.0 && rng_.NextBool(p)) {
    auto it = pages_.find(page_id);
    if (it != pages_.end() && !it->second.empty()) {
      ++read_flips_;
      uint64_t bit = rng_.NextUint(it->second.size() * 8);
      it->second[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  return DiskManager::ReadPage(page_id, out);
}

bool FaultyDiskManager::FlipPrimaryByte(PageId page_id, uint32_t offset) {
  auto it = pages_.find(page_id);
  if (it == pages_.end() || offset >= it->second.size()) return false;
  it->second[offset] ^= 0xff;
  return true;
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames, size_t lru_k)
    : disk_(disk), frames_(num_frames), replacer_(num_frames, lru_k) {
  free_list_.reserve(num_frames);
  // Stack order: frame 0 is handed out first.
  for (size_t i = num_frames; i > 0; --i) free_list_.push_back(i - 1);
}

size_t BufferPool::AcquireFrame() {
  if (!free_list_.empty()) {
    size_t f = free_list_.back();
    free_list_.pop_back();
    return f;
  }
  std::optional<size_t> victim = replacer_.Evict();
  if (!victim.has_value()) return static_cast<size_t>(-1);
  Frame& fr = frames_[*victim];
  ++stats_.evictions;
  if (fr.dirty) {
    ++stats_.dirty_evictions;
    disk_->WritePage(fr.page_id, *fr.page);
    if (flush_listener_) flush_listener_(fr.page_id);
  }
  page_table_.erase(fr.page_id);
  fr.page_id = kInvalidPageId;
  fr.dirty = false;
  return *victim;
}

Page* BufferPool::FetchPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& fr = frames_[it->second];
    ++fr.pin_count;
    replacer_.RecordAccess(it->second);
    replacer_.SetEvictable(it->second, false);
    return fr.page.get();
  }
  ++stats_.misses;
  size_t f = AcquireFrame();
  if (f == static_cast<size_t>(-1)) {
    ++stats_.pin_failures;
    return nullptr;
  }
  Frame& fr = frames_[f];
  if (!fr.page) fr.page = std::make_unique<Page>(disk_->page_size());
  disk_->ReadPage(page_id, *fr.page);
  fr.page_id = page_id;
  fr.pin_count = 1;
  fr.dirty = false;
  page_table_[page_id] = f;
  replacer_.RecordAccess(f);
  replacer_.SetEvictable(f, false);
  return fr.page.get();
}

Page* BufferPool::NewPage(PageId* page_id) {
  size_t f = AcquireFrame();
  if (f == static_cast<size_t>(-1)) {
    ++stats_.pin_failures;
    return nullptr;
  }
  PageId id = disk_->AllocatePage();
  Frame& fr = frames_[f];
  if (!fr.page) fr.page = std::make_unique<Page>(disk_->page_size());
  std::memset(fr.page->data(), 0, fr.page->size());
  fr.page_id = id;
  fr.pin_count = 1;
  fr.dirty = true;  // a new page must reach disk even if never updated
  page_table_[id] = f;
  replacer_.RecordAccess(f);
  replacer_.SetEvictable(f, false);
  *page_id = id;
  return fr.page.get();
}

bool BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return false;
  Frame& fr = frames_[it->second];
  if (fr.pin_count <= 0) return false;
  fr.dirty = fr.dirty || dirty;
  if (--fr.pin_count == 0) replacer_.SetEvictable(it->second, true);
  return true;
}

bool BufferPool::FlushPage(PageId page_id) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return false;
  Frame& fr = frames_[it->second];
  disk_->WritePage(page_id, *fr.page);
  fr.dirty = false;
  ++stats_.flushes;
  if (flush_listener_) flush_listener_(page_id);
  return true;
}

void BufferPool::FlushAll() {
  for (const auto& [page_id, f] : page_table_) {
    Frame& fr = frames_[f];
    if (!fr.dirty) continue;
    disk_->WritePage(page_id, *fr.page);
    fr.dirty = false;
    ++stats_.flushes;
    if (flush_listener_) flush_listener_(page_id);
  }
}

std::vector<PageId> BufferPool::DirtyPages() const {
  std::vector<PageId> dirty;
  for (const auto& [page_id, f] : page_table_) {
    if (frames_[f].dirty) dirty.push_back(page_id);
  }
  return dirty;
}

void BufferPool::Reset() {
  page_table_.clear();
  free_list_.clear();
  for (size_t i = frames_.size(); i > 0; --i) {
    size_t f = i - 1;
    frames_[f].page_id = kInvalidPageId;
    frames_[f].pin_count = 0;
    frames_[f].dirty = false;
    replacer_.Remove(f);
    free_list_.push_back(f);
  }
}

int BufferPool::PinCountOf(PageId page_id) const {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return -1;
  return frames_[it->second].pin_count;
}

}  // namespace rainbow
