#ifndef RAINBOW_STORAGE_BUFFER_POOL_H_
#define RAINBOW_STORAGE_BUFFER_POOL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "storage/lru_k_replacer.h"
#include "storage/page.h"

namespace rainbow {

/// What a DiskManager read actually delivered. Callers that only want
/// bytes can ignore it; recovery and the checksum machinery care.
enum class PageReadStatus {
  kOk,            ///< primary copy read (and verified, if checksums on)
  kNeverWritten,  ///< no durable copy exists; `out` is zero-filled
  kRecovered,     ///< primary missing/corrupt/stale — healed from journal
  kCorrupt,       ///< no intact copy anywhere; `out` is zero-filled
};

const char* PageReadStatusName(PageReadStatus status);

/// Storage fault kinds a FaultyDiskManager can inject (probabilistic,
/// armed per kind by the nemesis through the fault injector).
enum class StorageFaultKind : uint8_t {
  kTornWrite = 0,    ///< first half of the write persists, rest is stale
  kShortWrite = 1,   ///< first half persists, rest reads back as zeros
  kLostWrite = 2,    ///< primary never updated ("fsync lie")
  kReadBitFlip = 3,  ///< one stored bit flips (persistently) on a read
};
inline constexpr size_t kStorageFaultKinds = 4;

const char* StorageFaultKindName(StorageFaultKind kind);

/// The durable page file of one site, simulated in memory. Like the Wal
/// object, a DiskManager intentionally survives Site::Crash(): only the
/// buffer pool (volatile frames) is wiped, so a restart sees exactly
/// the pages that were flushed (or evicted dirty) before the crash —
/// the honest no-force starting point for the ARIES redo pass.
///
/// With `checksums` on (the default), every write-out stamps a CRC32
/// into the page header ([8..12), see page.h) and goes to TWO places:
/// a doublewrite journal first, then the primary page file. Reads
/// verify the primary's CRC; a torn/corrupt/lost primary is healed
/// from the journal copy (quarantine-and-rebuild), so a single
/// mid-write fault never surfaces garbage. With checksums off, reads
/// return the primary bytes unverified — the configuration nemesis
/// uses to demonstrate why the defense exists.
class DiskManager {
 public:
  explicit DiskManager(uint32_t page_size, bool checksums = true)
      : page_size_(page_size), checksums_(checksums) {}
  virtual ~DiskManager() = default;

  uint32_t page_size() const { return page_size_; }
  bool checksums() const { return checksums_; }

  PageId AllocatePage() { return next_page_id_++; }
  uint32_t allocated_pages() const { return next_page_id_; }

  /// Reads `page_id` into `out`; the status says which copy (if any)
  /// supplied the bytes. Never-written pages are zero-filled and
  /// reported as such — indistinguishability from an all-zero page was
  /// a real bug (quarantine must not "heal" pages that never existed).
  virtual PageReadStatus ReadPage(PageId page_id, Page& out);

  virtual void WritePage(PageId page_id, const Page& in);

  bool HasPage(PageId page_id) const { return pages_.contains(page_id); }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  /// Primary copies found corrupt and rebuilt from the journal.
  uint64_t quarantined() const { return quarantined_; }
  /// Stale primaries (journal LSN newer) restored — lost-write catches.
  uint64_t lost_write_restores() const { return lost_write_restores_; }
  /// Reads with no intact copy anywhere (zero-filled).
  uint64_t corrupt_reads() const { return corrupt_reads_; }

 protected:
  /// Copy of `in`'s bytes with the header CRC stamped (checksums on)
  /// or cleared (checksums off, so stored images stay comparable).
  std::vector<uint8_t> Stamp(const Page& in) const;

  /// True iff the stored image's CRC matches its contents.
  bool Verify(const std::vector<uint8_t>& bytes) const;

  static Lsn LsnOf(const std::vector<uint8_t>& bytes);

  uint32_t page_size_;
  bool checksums_;
  PageId next_page_id_ = 0;
  std::map<PageId, std::vector<uint8_t>> pages_;    ///< primary file
  std::map<PageId, std::vector<uint8_t>> journal_;  ///< doublewrite area
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t lost_write_restores_ = 0;
  uint64_t corrupt_reads_ = 0;
};

/// DiskManager that injects storage faults on the write/read path,
/// driven by its own seeded Rng stream so runs replay exactly. The
/// journal half of the doublewrite is kept intact by every per-write
/// fault (that is what makes recovery possible); only the write limit
/// — modelling the machine dying mid-sequence — silences both copies.
class FaultyDiskManager : public DiskManager {
 public:
  FaultyDiskManager(uint32_t page_size, bool checksums = true,
                    uint64_t seed = 1);

  /// Sets the per-write (or per-read, for kReadBitFlip) probability of
  /// `kind`; 0 disarms it. Probabilities are independent per kind.
  void Arm(StorageFaultKind kind, double probability);

  /// After `remaining` more WritePage calls, drop every subsequent
  /// write entirely (journal included) until DisarmWriteLimit() — the
  /// crash-sweep hook for double-crash-during-redo tests.
  void ArmWriteLimit(uint64_t remaining);
  void DisarmWriteLimit();

  PageReadStatus ReadPage(PageId page_id, Page& out) override;
  void WritePage(PageId page_id, const Page& in) override;

  /// Deterministic test hook: XORs 0xff into one byte of the stored
  /// primary copy. Returns false if the page has no primary copy.
  bool FlipPrimaryByte(PageId page_id, uint32_t offset);

  uint64_t torn_writes() const { return torn_writes_; }
  uint64_t short_writes() const { return short_writes_; }
  uint64_t lost_writes() const { return lost_writes_; }
  uint64_t read_flips() const { return read_flips_; }
  uint64_t dropped_writes() const { return dropped_writes_; }

 private:
  Rng rng_;
  std::array<double, kStorageFaultKinds> prob_{};
  bool write_limit_armed_ = false;
  uint64_t writes_remaining_ = 0;
  uint64_t torn_writes_ = 0;
  uint64_t short_writes_ = 0;
  uint64_t lost_writes_ = 0;
  uint64_t read_flips_ = 0;
  uint64_t dropped_writes_ = 0;
};

/// Fixed-size page buffer pool with pin/unpin/dirty accounting and an
/// LRU-K replacer. Volatile: Reset() models a crash (all frames dropped
/// without flushing). All internal iteration is structural (frame
/// index / page-id order), never hash order, so eviction and flush
/// sequences are deterministic.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t num_frames, size_t lru_k);

  /// Pins and returns the page (fetched from disk on a miss, possibly
  /// evicting). Returns nullptr only when every frame is pinned.
  Page* FetchPage(PageId page_id);

  /// Allocates a fresh page on disk, pins an empty frame for it.
  /// Returns nullptr when every frame is pinned.
  Page* NewPage(PageId* page_id);

  /// Drops one pin; `dirty` accumulates (a false unpin never clears a
  /// previous true). Returns false if the page is not resident.
  bool UnpinPage(PageId page_id, bool dirty);

  /// Writes the page back if resident (regardless of pin state).
  bool FlushPage(PageId page_id);

  /// Flushes every resident dirty page (page-id order).
  void FlushAll();

  /// Crash: drop every frame without flushing. Pin counts reset.
  void Reset();

  /// Invoked with the page id after every write-back (explicit flush or
  /// dirty eviction) — the dirty-page-table maintenance hook.
  void SetFlushListener(std::function<void(PageId)> listener) {
    flush_listener_ = std::move(listener);
  }

  /// Page ids of resident dirty frames, ascending (checkpoint support).
  std::vector<PageId> DirtyPages() const;

  size_t num_frames() const { return frames_.size(); }
  size_t resident_pages() const { return page_table_.size(); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_evictions = 0;
    uint64_t flushes = 0;
    uint64_t pin_failures = 0;  ///< fetch/new with all frames pinned
  };
  const Stats& stats() const { return stats_; }

  /// Pin count of a resident page, -1 if not resident (tests).
  int PinCountOf(PageId page_id) const;

 private:
  struct Frame {
    std::unique_ptr<Page> page;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
  };

  /// Finds a frame for a new resident page: free list first, then the
  /// replacer; flushes a dirty victim. Returns SIZE_MAX if all pinned.
  size_t AcquireFrame();

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_list_;  ///< stack of unused frame indices
  std::map<PageId, size_t> page_table_;
  LruKReplacer replacer_;
  Stats stats_;
  std::function<void(PageId)> flush_listener_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_BUFFER_POOL_H_
