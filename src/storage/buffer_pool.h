#ifndef RAINBOW_STORAGE_BUFFER_POOL_H_
#define RAINBOW_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "storage/lru_k_replacer.h"
#include "storage/page.h"

namespace rainbow {

/// The durable page file of one site, simulated in memory. Like the Wal
/// object, a DiskManager intentionally survives Site::Crash(): only the
/// buffer pool (volatile frames) is wiped, so a restart sees exactly
/// the pages that were flushed (or evicted dirty) before the crash —
/// the honest no-force starting point for the ARIES redo pass.
class DiskManager {
 public:
  explicit DiskManager(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size() const { return page_size_; }

  PageId AllocatePage() { return next_page_id_++; }
  uint32_t allocated_pages() const { return next_page_id_; }

  /// Reads `page_id` into `out` (zero-filled if never written).
  void ReadPage(PageId page_id, Page& out) const;
  void WritePage(PageId page_id, const Page& in);
  bool HasPage(PageId page_id) const { return pages_.contains(page_id); }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  uint32_t page_size_;
  PageId next_page_id_ = 0;
  std::map<PageId, std::vector<uint8_t>> pages_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

/// Fixed-size page buffer pool with pin/unpin/dirty accounting and an
/// LRU-K replacer. Volatile: Reset() models a crash (all frames dropped
/// without flushing). All internal iteration is structural (frame
/// index / page-id order), never hash order, so eviction and flush
/// sequences are deterministic.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t num_frames, size_t lru_k);

  /// Pins and returns the page (fetched from disk on a miss, possibly
  /// evicting). Returns nullptr only when every frame is pinned.
  Page* FetchPage(PageId page_id);

  /// Allocates a fresh page on disk, pins an empty frame for it.
  /// Returns nullptr when every frame is pinned.
  Page* NewPage(PageId* page_id);

  /// Drops one pin; `dirty` accumulates (a false unpin never clears a
  /// previous true). Returns false if the page is not resident.
  bool UnpinPage(PageId page_id, bool dirty);

  /// Writes the page back if resident (regardless of pin state).
  bool FlushPage(PageId page_id);

  /// Flushes every resident dirty page (page-id order).
  void FlushAll();

  /// Crash: drop every frame without flushing. Pin counts reset.
  void Reset();

  size_t num_frames() const { return frames_.size(); }
  size_t resident_pages() const { return page_table_.size(); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_evictions = 0;
    uint64_t flushes = 0;
    uint64_t pin_failures = 0;  ///< fetch/new with all frames pinned
  };
  const Stats& stats() const { return stats_; }

  /// Pin count of a resident page, -1 if not resident (tests).
  int PinCountOf(PageId page_id) const;

 private:
  struct Frame {
    std::unique_ptr<Page> page;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
  };

  /// Finds a frame for a new resident page: free list first, then the
  /// replacer; flushes a dirty victim. Returns SIZE_MAX if all pinned.
  size_t AcquireFrame();

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_list_;  ///< stack of unused frame indices
  std::map<PageId, size_t> page_table_;
  LruKReplacer replacer_;
  Stats stats_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_BUFFER_POOL_H_
