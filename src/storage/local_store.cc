#include "storage/local_store.h"

namespace rainbow {

void LocalStore::Load(ItemId item, Value initial) {
  copies_[item] = ItemCopy{initial, 0};
}

Result<ItemCopy> LocalStore::Get(ItemId item) const {
  auto it = copies_.find(item);
  if (it == copies_.end()) {
    return Status::NotFound("no copy of item " + std::to_string(item));
  }
  return it->second;
}

bool LocalStore::Apply(ItemId item, Value value, Version version) {
  auto it = copies_.find(item);
  if (it == copies_.end()) return false;
  if (version <= it->second.version) return false;  // stale / duplicate
  it->second = ItemCopy{value, version};
  return true;
}

bool LocalStore::AdoptIfNewer(ItemId item, Value value, Version version) {
  auto it = copies_.find(item);
  if (it == copies_.end()) return false;
  if (version <= it->second.version) return false;
  it->second = ItemCopy{value, version};
  return true;
}

}  // namespace rainbow
