#ifndef RAINBOW_STORAGE_LOCAL_STORE_H_
#define RAINBOW_STORAGE_LOCAL_STORE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// One committed copy of a database item at a site.
struct ItemCopy {
  Value value = 0;
  Version version = 0;

  bool operator==(const ItemCopy&) const = default;
};

/// The durable committed database at one Rainbow site: item copies with
/// their version numbers. Survives site crashes (only volatile protocol
/// state is lost); mutations happen exclusively when transactions commit
/// or during recovery refresh.
class LocalStore {
 public:
  /// Creates the copy of `item` with its initial value at version 0.
  /// Loading an existing item resets it (used at configuration time).
  void Load(ItemId item, Value initial);

  /// True if this site holds a copy of `item`.
  bool Has(ItemId item) const { return copies_.contains(item); }

  /// Reads the committed copy.
  Result<ItemCopy> Get(ItemId item) const;

  /// Installs a committed write. `version` must be strictly greater than
  /// the stored version (enforced: stale applies are ignored, which makes
  /// re-application after recovery idempotent). Returns true if applied.
  bool Apply(ItemId item, Value value, Version version);

  /// Adopts `entry` if it is newer than the local copy (recovery
  /// refresh). Items not hosted here are ignored. Returns true if adopted.
  bool AdoptIfNewer(ItemId item, Value value, Version version);

  size_t size() const { return copies_.size(); }
  const std::map<ItemId, ItemCopy>& copies() const { return copies_; }

 private:
  std::map<ItemId, ItemCopy> copies_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_LOCAL_STORE_H_
