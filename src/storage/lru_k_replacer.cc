#include "storage/lru_k_replacer.h"

#include <cassert>

namespace rainbow {

LruKReplacer::LruKReplacer(size_t num_frames, size_t k)
    : k_(k == 0 ? 1 : k), frames_(num_frames) {
  for (FrameInfo& f : frames_) f.history.resize(k_, 0);
}

void LruKReplacer::RecordAccess(size_t frame) {
  assert(frame < frames_.size());
  FrameInfo& f = frames_[frame];
  f.present = true;
  uint64_t now = ++clock_;
  if (f.count < k_) {
    f.history[(f.head + f.count) % k_] = now;
    ++f.count;
  } else {
    f.history[f.head] = now;
    f.head = (f.head + 1) % k_;
  }
}

void LruKReplacer::SetEvictable(size_t frame, bool evictable) {
  assert(frame < frames_.size());
  FrameInfo& f = frames_[frame];
  if (!f.present || f.evictable == evictable) return;
  f.evictable = evictable;
  evictable_count_ += evictable ? 1 : static_cast<size_t>(-1);
}

std::optional<size_t> LruKReplacer::Evict() {
  // Scan all frames: the pool is small (tens to a few thousand frames)
  // and the scan is branch-light; determinism matters more here than
  // a heap. Victim = largest backward k-distance; frames with < k
  // accesses are the +inf class and win over any full-history frame,
  // ties within the class broken by earliest (oldest) recorded access.
  std::optional<size_t> victim;
  bool victim_inf = false;
  uint64_t victim_key = 0;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const FrameInfo& f = frames_[i];
    if (!f.present || !f.evictable) continue;
    bool inf = f.count < k_;
    // Key: for +inf frames the earliest access (smaller = older =
    // better victim); for full frames the k-th most recent access
    // (smaller = larger backward distance = better victim).
    uint64_t key = inf ? f.Oldest() : f.KthRecent();
    if (!victim.has_value() || (inf && !victim_inf) ||
        (inf == victim_inf && key < victim_key)) {
      victim = i;
      victim_inf = inf;
      victim_key = key;
    }
  }
  if (victim.has_value()) Remove(*victim);
  return victim;
}

void LruKReplacer::Remove(size_t frame) {
  assert(frame < frames_.size());
  FrameInfo& f = frames_[frame];
  if (!f.present) return;
  if (f.evictable) --evictable_count_;
  f.present = false;
  f.evictable = false;
  f.head = 0;
  f.count = 0;
}

}  // namespace rainbow
