#ifndef RAINBOW_STORAGE_LRU_K_REPLACER_H_
#define RAINBOW_STORAGE_LRU_K_REPLACER_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace rainbow {

/// LRU-K frame replacer for the buffer pool. Tracks, per frame, the
/// timestamps (a logical access counter, so eviction order is a pure
/// function of the access sequence — deterministic across runs and
/// shard counts) of the last K accesses. The eviction victim is the
/// evictable frame with the largest backward K-distance: frames with
/// fewer than K recorded accesses count as +inf distance and are
/// evicted first, ties broken by the earliest recorded access (classic
/// LRU among the +inf class).
class LruKReplacer {
 public:
  LruKReplacer(size_t num_frames, size_t k);

  /// Records an access to `frame` (on fetch/creation). The frame stays
  /// non-evictable until SetEvictable(frame, true).
  void RecordAccess(size_t frame);

  /// Marks whether `frame` may be chosen as an eviction victim (a
  /// pinned frame is not evictable).
  void SetEvictable(size_t frame, bool evictable);

  /// Picks and removes the eviction victim; nullopt if no frame is
  /// evictable.
  std::optional<size_t> Evict();

  /// Forgets `frame` entirely (page deleted / pool reset path).
  void Remove(size_t frame);

  /// Number of currently evictable frames.
  size_t evictable_count() const { return evictable_count_; }

  size_t k() const { return k_; }

 private:
  struct FrameInfo {
    /// Ring buffer of the last up-to-k access timestamps; `count` of
    /// them are valid, the oldest at index `head`.
    std::vector<uint64_t> history;
    size_t head = 0;
    size_t count = 0;
    bool evictable = false;
    bool present = false;

    uint64_t Oldest() const { return history[head]; }
    /// Timestamp of the k-th most recent access (only valid when
    /// count == k): with a full ring, that is the oldest entry.
    uint64_t KthRecent() const { return history[head]; }
  };

  size_t k_;
  uint64_t clock_ = 0;  ///< logical access counter
  std::vector<FrameInfo> frames_;
  size_t evictable_count_ = 0;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_LRU_K_REPLACER_H_
