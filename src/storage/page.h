#ifndef RAINBOW_STORAGE_PAGE_H_
#define RAINBOW_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/wal.h"

namespace rainbow {

/// Identifier of a fixed-size page in a site's local page file.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// One fixed-size page frame. Header layout:
///   [0..8)   page LSN — the LSN of the last logged update applied to
///            this page; the redo pass of restart replays exactly the
///            records with lsn > page_lsn.
///   [8..12)  page CRC32 — stamped by the disk layer on every write-out
///            over all other bytes, verified on read-in. In-pool frames
///            carry whatever CRC the last disk round-trip left; it is
///            authoritative only on the durable copy.
/// All multi-byte fields are accessed through memcpy so the layout is
/// well-defined regardless of alignment.
class Page {
 public:
  explicit Page(uint32_t page_size) : data_(page_size, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  Lsn page_lsn() const { return ReadU64(0); }
  void set_page_lsn(Lsn lsn) { WriteU64(0, lsn); }

  uint8_t ReadU8(uint32_t off) const { return data_[off]; }
  void WriteU8(uint32_t off, uint8_t v) { data_[off] = v; }

  uint32_t ReadU32(uint32_t off) const {
    uint32_t v;
    std::memcpy(&v, data_.data() + off, sizeof(v));
    return v;
  }
  void WriteU32(uint32_t off, uint32_t v) {
    std::memcpy(data_.data() + off, &v, sizeof(v));
  }

  uint64_t ReadU64(uint32_t off) const {
    uint64_t v;
    std::memcpy(&v, data_.data() + off, sizeof(v));
    return v;
  }
  void WriteU64(uint32_t off, uint64_t v) {
    std::memcpy(data_.data() + off, &v, sizeof(v));
  }

  int64_t ReadI64(uint32_t off) const {
    int64_t v;
    std::memcpy(&v, data_.data() + off, sizeof(v));
    return v;
  }
  void WriteI64(uint32_t off, int64_t v) {
    std::memcpy(data_.data() + off, &v, sizeof(v));
  }

  std::vector<uint8_t>& bytes() { return data_; }
  const std::vector<uint8_t>& bytes() const { return data_; }

 private:
  std::vector<uint8_t> data_;
};

/// Byte offset of the page CRC32 field (after the LSN).
inline constexpr uint32_t kPageCrcOffset = 8;
inline constexpr uint32_t kPageCrcBytes = 4;

/// Byte offset where page-type-specific content begins (after the LSN
/// and the CRC field). The name is historic — it is the full header
/// size, not just the LSN's.
inline constexpr uint32_t kPageHeaderLsnBytes =
    kPageCrcOffset + kPageCrcBytes;

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_PAGE_H_
