#include "storage/storage_engine.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

void MapStore::Range(ItemId from, size_t limit,
                     std::vector<std::pair<ItemId, ItemCopy>>& out) const {
  for (auto it = store_.copies().lower_bound(from);
       it != store_.copies().end() && out.size() < limit; ++it) {
    out.emplace_back(it->first, it->second);
  }
}

PageStore::PageStore(Wal* wal, uint32_t page_size, size_t pool_pages,
                     size_t lru_k)
    : wal_(wal),
      disk_(page_size),
      pool_(&disk_, pool_pages, lru_k),
      tree_(&pool_, &disk_) {}

void PageStore::Load(ItemId item, Value initial) {
  tree_.Put(item, initial, 0);
}

Result<ItemCopy> PageStore::Get(ItemId item) const {
  std::optional<ItemCopy> copy = tree_.Get(item);
  if (!copy.has_value()) {
    return Status::NotFound("no copy of item " + std::to_string(item));
  }
  return *copy;
}

std::map<ItemId, ItemCopy> PageStore::Snapshot() const {
  std::map<ItemId, ItemCopy> out;
  std::vector<std::pair<ItemId, ItemCopy>> entries;
  tree_.Scan(0, tree_.size(), entries);
  for (const auto& [item, copy] : entries) out.emplace(item, copy);
  return out;
}

void PageStore::Range(ItemId from, size_t limit,
                      std::vector<std::pair<ItemId, ItemCopy>>& out) const {
  tree_.Scan(from, out.size() + limit, out);
}

Lsn PageStore::ChainFor(TxnId txn) {
  auto it = att_.find(txn);
  if (it != att_.end()) return it->second;
  WalRecord begin;
  begin.kind = WalRecordKind::kStoreBegin;
  begin.txn = txn;
  begin.prev_lsn = kNoLsn;
  Lsn lsn = wal_->Append(std::move(begin));
  att_[txn] = lsn;
  return lsn;
}

void PageStore::LogPrewrite(TxnId txn, ItemId item, Value value) {
  std::optional<ItemCopy> committed = tree_.Get(item);
  if (!committed.has_value()) return;  // not hosted here
  Lsn prev = ChainFor(txn);
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreUpdate;
  rec.txn = txn;
  rec.prev_lsn = prev;
  rec.store.item = item;
  rec.store.page_id = tree_.LeafOf(item).value_or(kInvalidPageId);
  rec.store.before_value = committed->value;
  rec.store.before_version = committed->version;
  rec.store.value = value;
  // A unique tentative tag: restart's repeating-history pass installs
  // it for losers, and the matching CLR only fires while the page still
  // holds exactly this version.
  rec.store.version = kTentativeBit | wal_->NextLsn();
  rec.store.tentative = true;
  att_[txn] = wal_->Append(std::move(rec));
}

bool PageStore::Apply(ItemId item, Value value, Version version, TxnId txn) {
  std::optional<ItemCopy> committed = tree_.Get(item);
  if (!committed.has_value()) return false;
  if (version <= committed->version) return false;  // stale / duplicate
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreUpdate;
  rec.txn = txn;
  rec.prev_lsn = txn.valid() ? ChainFor(txn) : kNoLsn;
  rec.store.item = item;
  rec.store.page_id = tree_.LeafOf(item).value_or(kInvalidPageId);
  rec.store.before_value = committed->value;
  rec.store.before_version = committed->version;
  rec.store.value = value;
  rec.store.version = version;
  rec.store.tentative = false;
  Lsn lsn = wal_->Append(std::move(rec));
  if (txn.valid()) att_[txn] = lsn;
  bool ok = tree_.Update(item, value, version, lsn);
  assert(ok);
  (void)ok;
  return true;
}

bool PageStore::AdoptIfNewer(ItemId item, Value value, Version version) {
  return Apply(item, value, version, TxnId{});
}

void PageStore::CommitStorageTxn(TxnId txn) {
  auto it = att_.find(txn);
  if (it == att_.end()) return;
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreCommit;
  rec.txn = txn;
  rec.prev_lsn = it->second;
  wal_->Append(std::move(rec));
  att_.erase(it);
}

std::vector<Lsn> PageStore::PendingUpdates(Lsn last) const {
  // Walk the backward chain; a CLR short-circuits to undo_next_lsn, so
  // already-compensated updates are skipped (crash-during-undo safe).
  std::vector<Lsn> pending;
  Lsn cur = last;
  while (cur != kNoLsn) {
    const WalRecord& rec = wal_->records()[cur - 1];
    if (rec.kind == WalRecordKind::kStoreClr) {
      cur = rec.undo_next_lsn;
      continue;
    }
    if (rec.kind == WalRecordKind::kStoreUpdate) pending.push_back(cur);
    cur = rec.prev_lsn;
  }
  return pending;
}

bool PageStore::ApplyClrGuarded(const WalRecord& rec, Lsn lsn) {
  std::optional<ItemCopy> current = tree_.Get(rec.store.item);
  if (!current.has_value()) return false;
  // Only compensate the exact image this CLR was written against; an
  // interleaved committed write (different version) must survive.
  if (current->version != rec.store.before_version) return false;
  return tree_.Update(rec.store.item, rec.store.value, rec.store.version, lsn);
}

void PageStore::AbortStorageTxn(TxnId txn) {
  auto it = att_.find(txn);
  if (it == att_.end()) return;
  Lsn last = it->second;
  WalRecord abort;
  abort.kind = WalRecordKind::kStoreAbort;
  abort.txn = txn;
  abort.prev_lsn = last;
  Lsn tail = wal_->Append(std::move(abort));
  for (Lsn ulsn : PendingUpdates(last)) {  // newest first
    const WalRecord& upd = wal_->records()[ulsn - 1];
    WalRecord clr;
    clr.kind = WalRecordKind::kStoreClr;
    clr.txn = txn;
    clr.prev_lsn = tail;
    clr.undo_next_lsn = upd.prev_lsn;
    clr.store.item = upd.store.item;
    clr.store.page_id = upd.store.page_id;
    clr.store.value = upd.store.before_value;      // image restored
    clr.store.version = upd.store.before_version;
    clr.store.before_value = upd.store.value;      // image compensated
    clr.store.before_version = upd.store.version;
    Lsn clr_lsn = wal_->Append(clr);
    tail = clr_lsn;
    // At runtime pages never held the tentative image, so this is a
    // no-op; during restart undo it reverts the repeated history.
    ApplyClrGuarded(clr, clr_lsn);
  }
  WalRecord end;
  end.kind = WalRecordKind::kStoreEnd;
  end.txn = txn;
  end.prev_lsn = tail;
  wal_->Append(std::move(end));
  att_.erase(it);
}

void PageStore::OnCrash() {
  pool_.Reset();
  att_.clear();
}

RestartSummary PageStore::Restart() {
  RestartSummary summary;
  const std::vector<WalRecord>& log = wal_->records();

  // --- Analysis: rebuild the active storage-transaction table. ---
  std::map<TxnId, Lsn> att;
  for (size_t i = 0; i < log.size(); ++i) {
    const WalRecord& rec = log[i];
    if (!rec.txn.valid()) continue;
    Lsn lsn = static_cast<Lsn>(i) + 1;
    switch (rec.kind) {
      case WalRecordKind::kStoreBegin:
      case WalRecordKind::kStoreUpdate:
      case WalRecordKind::kStoreAbort:
      case WalRecordKind::kStoreClr:
        att[rec.txn] = lsn;
        break;
      case WalRecordKind::kStoreCommit:
      case WalRecordKind::kStoreEnd:
        att.erase(rec.txn);
        break;
      default:
        break;
    }
  }
  summary.analyzed_txns = att.size();

  // Prepared-but-undecided txns stay pending: the commit protocol's
  // recovery (cooperative termination) owns their fate.
  std::map<TxnId, Lsn> in_doubt;
  std::map<TxnId, Lsn> losers;
  auto protocol = wal_->Scan();
  for (const auto& [txn, last] : att) {
    auto pit = protocol.find(txn);
    bool doubt = pit != protocol.end() && pit->second.prepared &&
                 !pit->second.decided;
    (doubt ? in_doubt : losers)[txn] = last;
  }
  summary.in_doubt = in_doubt.size();
  summary.losers = losers.size();

  // --- Redo: repeat history in LSN order. Tentative updates replay
  // only for losers (so undo has real history to compensate); winners'
  // effects are covered by their final non-tentative records, and
  // in-doubt tentative data must stay off the pages.
  for (size_t i = 0; i < log.size(); ++i) {
    const WalRecord& rec = log[i];
    Lsn lsn = static_cast<Lsn>(i) + 1;
    if (rec.kind == WalRecordKind::kStoreUpdate) {
      if (rec.store.tentative && !losers.contains(rec.txn)) {
        ++summary.redo_skipped;
        continue;
      }
      if (tree_.RedoUpdate(rec.store.item, rec.store.value, rec.store.version,
                           lsn)) {
        ++summary.redo_applied;
      } else {
        ++summary.redo_skipped;
      }
    } else if (rec.kind == WalRecordKind::kStoreClr) {
      if (ApplyClrGuarded(rec, lsn)) {
        ++summary.redo_applied;
      } else {
        ++summary.redo_skipped;
      }
    }
  }

  // --- Undo: roll losers back, newest update first across all of
  // them, appending guarded CLRs; then close each with kStoreEnd.
  std::vector<std::pair<Lsn, TxnId>> to_undo;
  for (const auto& [txn, last] : losers) {
    for (Lsn lsn : PendingUpdates(last)) to_undo.emplace_back(lsn, txn);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [ulsn, txn] : to_undo) {
    const WalRecord& upd = wal_->records()[ulsn - 1];
    WalRecord clr;
    clr.kind = WalRecordKind::kStoreClr;
    clr.txn = txn;
    clr.prev_lsn = losers[txn];
    clr.undo_next_lsn = upd.prev_lsn;
    clr.store.item = upd.store.item;
    clr.store.page_id = upd.store.page_id;
    clr.store.value = upd.store.before_value;
    clr.store.version = upd.store.before_version;
    clr.store.before_value = upd.store.value;
    clr.store.before_version = upd.store.version;
    Lsn clr_lsn = wal_->Append(clr);
    losers[txn] = clr_lsn;
    ++summary.undo_clrs;
    ApplyClrGuarded(clr, clr_lsn);
  }
  for (auto& [txn, last] : losers) {
    WalRecord end;
    end.kind = WalRecordKind::kStoreEnd;
    end.txn = txn;
    end.prev_lsn = last;
    wal_->Append(std::move(end));
  }

  // In-doubt chains stay open so a later decision commits or aborts
  // them through the normal hooks.
  att_ = in_doubt;

  // Invariant sweep: after undo no page may hold a tentative version.
  std::vector<std::pair<ItemId, ItemCopy>> all;
  tree_.Scan(0, tree_.size(), all);
  for (const auto& [item, copy] : all) {
    (void)item;
    if ((copy.version & kTentativeBit) != 0) ++summary.tentative_leaks;
  }
  assert(summary.tentative_leaks == 0);
  return summary;
}

}  // namespace rainbow
