#include "storage/storage_engine.h"

#include <algorithm>
#include <cassert>

namespace rainbow {

void MapStore::Range(ItemId from, size_t limit,
                     std::vector<std::pair<ItemId, ItemCopy>>& out) const {
  for (auto it = store_.copies().lower_bound(from);
       it != store_.copies().end() && out.size() < limit; ++it) {
    out.emplace_back(it->first, it->second);
  }
}

PageStore::PageStore(Wal* wal, PageStoreOptions options)
    : wal_(wal),
      opts_(options),
      disk_(options.page_size, options.page_checksums, options.fault_seed),
      pool_(&disk_, options.pool_pages, options.lru_k),
      tree_(&pool_, &disk_) {
  // Once a page reaches disk it no longer needs redo; drop it from the
  // dirty-page table on every write-back (flush or dirty eviction).
  pool_.SetFlushListener([this](PageId page) { dpt_.erase(page); });
}

void PageStore::NoteWrite(PageId page, Lsn lsn) {
  if (page == kInvalidPageId) return;
  dpt_.try_emplace(page, lsn);  // first dirtier's LSN is the recLSN
}

void PageStore::Load(ItemId item, Value initial) {
  tree_.Put(item, initial, 0);
}

Result<ItemCopy> PageStore::Get(ItemId item) const {
  std::optional<ItemCopy> copy = tree_.Get(item);
  if (!copy.has_value()) {
    return Status::NotFound("no copy of item " + std::to_string(item));
  }
  return *copy;
}

std::map<ItemId, ItemCopy> PageStore::Snapshot() const {
  std::map<ItemId, ItemCopy> out;
  std::vector<std::pair<ItemId, ItemCopy>> entries;
  tree_.Scan(0, tree_.size(), entries);
  for (const auto& [item, copy] : entries) out.emplace(item, copy);
  return out;
}

void PageStore::Range(ItemId from, size_t limit,
                      std::vector<std::pair<ItemId, ItemCopy>>& out) const {
  tree_.Scan(from, out.size() + limit, out);
}

Lsn PageStore::ChainFor(TxnId txn) {
  auto it = att_.find(txn);
  if (it != att_.end()) return it->second;
  WalRecord begin;
  begin.kind = WalRecordKind::kStoreBegin;
  begin.txn = txn;
  begin.prev_lsn = kNoLsn;
  Lsn lsn = wal_->Append(std::move(begin));
  att_[txn] = lsn;
  return lsn;
}

void PageStore::LogPrewrite(TxnId txn, ItemId item, Value value) {
  std::optional<ItemCopy> committed = tree_.Get(item);
  if (!committed.has_value()) return;  // not hosted here
  Lsn prev = ChainFor(txn);
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreUpdate;
  rec.txn = txn;
  rec.prev_lsn = prev;
  rec.store.item = item;
  rec.store.page_id = tree_.LeafOf(item).value_or(kInvalidPageId);
  rec.store.before_value = committed->value;
  rec.store.before_version = committed->version;
  rec.store.value = value;
  // A unique tentative tag: restart's repeating-history pass installs
  // it for losers, and the matching CLR only fires while the page still
  // holds exactly this version.
  rec.store.version = kTentativeBit | wal_->NextLsn();
  rec.store.tentative = true;
  att_[txn] = wal_->Append(std::move(rec));
}

bool PageStore::Apply(ItemId item, Value value, Version version, TxnId txn) {
  std::optional<ItemCopy> committed = tree_.Get(item);
  if (!committed.has_value()) return false;
  if (version <= committed->version) return false;  // stale / duplicate
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreUpdate;
  rec.txn = txn;
  rec.prev_lsn = txn.valid() ? ChainFor(txn) : kNoLsn;
  rec.store.item = item;
  rec.store.page_id = tree_.LeafOf(item).value_or(kInvalidPageId);
  rec.store.before_value = committed->value;
  rec.store.before_version = committed->version;
  rec.store.value = value;
  rec.store.version = version;
  rec.store.tentative = false;
  Lsn lsn = wal_->Append(std::move(rec));
  if (txn.valid()) att_[txn] = lsn;
  PageId dirtied = kInvalidPageId;
  bool ok = tree_.Update(item, value, version, lsn, &dirtied);
  // With checksums off a storage fault can corrupt the tree badly
  // enough that the item is unreachable; that mode exists to let the
  // verification oracle see the damage, not to die on it.
  assert(ok || !opts_.page_checksums);
  if (ok) NoteWrite(dirtied, lsn);
  return ok;
}

bool PageStore::AdoptIfNewer(ItemId item, Value value, Version version) {
  return Apply(item, value, version, TxnId{});
}

void PageStore::CommitStorageTxn(TxnId txn) {
  auto it = att_.find(txn);
  if (it == att_.end()) return;
  WalRecord rec;
  rec.kind = WalRecordKind::kStoreCommit;
  rec.txn = txn;
  rec.prev_lsn = it->second;
  wal_->Append(std::move(rec));
  att_.erase(it);
  MaybeCheckpoint();
}

std::vector<Lsn> PageStore::PendingUpdates(Lsn last) const {
  // Walk the backward chain; a CLR short-circuits to undo_next_lsn, so
  // already-compensated updates are skipped (crash-during-undo safe).
  std::vector<Lsn> pending;
  Lsn cur = last;
  while (cur != kNoLsn) {
    const WalRecord& rec = wal_->At(cur);
    if (rec.kind == WalRecordKind::kStoreClr) {
      cur = rec.undo_next_lsn;
      continue;
    }
    if (rec.kind == WalRecordKind::kStoreUpdate) pending.push_back(cur);
    cur = rec.prev_lsn;
  }
  return pending;
}

bool PageStore::ApplyClrGuarded(const WalRecord& rec, Lsn lsn) {
  std::optional<ItemCopy> current = tree_.Get(rec.store.item);
  if (!current.has_value()) return false;
  // Only compensate the exact image this CLR was written against; an
  // interleaved committed write (different version) must survive.
  if (current->version != rec.store.before_version) return false;
  PageId dirtied = kInvalidPageId;
  bool ok = tree_.Update(rec.store.item, rec.store.value, rec.store.version,
                         lsn, &dirtied);
  if (ok) NoteWrite(dirtied, lsn);
  return ok;
}

void PageStore::AbortStorageTxn(TxnId txn) {
  auto it = att_.find(txn);
  if (it == att_.end()) return;
  Lsn last = it->second;
  WalRecord abort;
  abort.kind = WalRecordKind::kStoreAbort;
  abort.txn = txn;
  abort.prev_lsn = last;
  Lsn tail = wal_->Append(std::move(abort));
  for (Lsn ulsn : PendingUpdates(last)) {  // newest first
    const WalRecord& upd = wal_->At(ulsn);
    WalRecord clr;
    clr.kind = WalRecordKind::kStoreClr;
    clr.txn = txn;
    clr.prev_lsn = tail;
    clr.undo_next_lsn = upd.prev_lsn;
    clr.store.item = upd.store.item;
    clr.store.page_id = upd.store.page_id;
    clr.store.value = upd.store.before_value;      // image restored
    clr.store.version = upd.store.before_version;
    clr.store.before_value = upd.store.value;      // image compensated
    clr.store.before_version = upd.store.version;
    Lsn clr_lsn = wal_->Append(clr);
    tail = clr_lsn;
    // At runtime pages never held the tentative image, so this is a
    // no-op; during restart undo it reverts the repeated history.
    ApplyClrGuarded(clr, clr_lsn);
  }
  WalRecord end;
  end.kind = WalRecordKind::kStoreEnd;
  end.txn = txn;
  end.prev_lsn = tail;
  wal_->Append(std::move(end));
  att_.erase(it);
  MaybeCheckpoint();
}

Lsn PageStore::BeginCheckpoint() {
  WalRecord begin;
  begin.kind = WalRecordKind::kCheckpointBegin;
  return wal_->Append(std::move(begin));
}

void PageStore::EndCheckpoint(Lsn begin_lsn) {
  WalRecord end;
  end.kind = WalRecordKind::kCheckpointEnd;
  end.prev_lsn = begin_lsn;
  // att_ and dpt_ are std::maps, so both tables serialize key-sorted.
  for (const auto& [txn, lsn] : att_) end.checkpoint.att.emplace_back(txn, lsn);
  for (const auto& [page, lsn] : dpt_) {
    end.checkpoint.dpt.emplace_back(page, lsn);
  }
  wal_->Append(std::move(end));
  // Only once the end record exists does the checkpoint count: restart
  // ignores a begin with no matching end (crash mid-checkpoint) by
  // falling back to the previous master.
  wal_->SetMaster(begin_lsn);

  // With the checkpoint durable, reclaim the log head. The barrier is
  // the earliest LSN any future restart could still dereference:
  //   - the master record itself (analysis is seeded from it),
  //   - the minimum recLSN in the dirty-page table (redo may start
  //     before the checkpoint for a page that never got flushed),
  //   - the earliest record of any open storage txn's backward chain
  //     (undo walks the whole chain if that txn loses), and
  //   - the commit protocol's own floor (prepared-undecided and
  //     decided-unacknowledged transactions must keep their records).
  // Crash-between-halves stays safe by construction: truncation only
  // ever happens after SetMaster, so the log always retains everything
  // from the last COMPLETE checkpoint's barrier onward.
  Lsn barrier = begin_lsn;
  for (const auto& [page, rec_lsn] : dpt_) {
    if (rec_lsn != kNoLsn && rec_lsn < barrier) barrier = rec_lsn;
  }
  for (const auto& [txn, last] : att_) {
    Lsn floor_lsn = ChainFloor(last);
    if (floor_lsn < barrier) barrier = floor_lsn;
  }
  Lsn proto = wal_->ProtocolBarrier();
  if (proto < barrier) barrier = proto;
  wal_->TruncateBefore(barrier);
}

Lsn PageStore::ChainFloor(Lsn last) const {
  Lsn floor_lsn = last;
  Lsn cur = last;
  while (cur != kNoLsn) {
    floor_lsn = cur;
    const WalRecord& rec = wal_->At(cur);
    cur = rec.kind == WalRecordKind::kStoreClr ? rec.undo_next_lsn
                                               : rec.prev_lsn;
  }
  return floor_lsn;
}

Lsn PageStore::Checkpoint() {
  // Flush-behind: a fuzzy checkpoint bounds the ANALYSIS scan, but redo
  // starts at the minimum recLSN in the dirty-page table — and a hot
  // page that never leaves the pool keeps an arbitrarily old recLSN.
  // Writing out just the pages dirtied before the previous interval
  // keeps min-recLSN (and with it restart time) within a bounded window
  // of the checkpoint without the latency spike of a sharp FlushAll.
  if (opts_.checkpoint_interval > 0) {
    const Lsn next = wal_->NextLsn();
    const Lsn floor_lsn = next > opts_.checkpoint_interval
                              ? next - opts_.checkpoint_interval
                              : kNoLsn;
    std::vector<PageId> aged;
    for (const auto& [page, rec_lsn] : dpt_) {
      if (rec_lsn <= floor_lsn) aged.push_back(page);
    }
    for (PageId page : aged) pool_.FlushPage(page);  // listener prunes dpt_
  }
  Lsn begin = BeginCheckpoint();
  EndCheckpoint(begin);
  return begin;
}

void PageStore::MaybeCheckpoint() {
  if (opts_.checkpoint_interval == 0) return;
  if (wal_->NextLsn() >= wal_->master() + opts_.checkpoint_interval) {
    Checkpoint();
  }
}

void PageStore::OnCrash() {
  pool_.Reset();
  att_.clear();
  dpt_.clear();
}

RestartSummary PageStore::Restart() {
  RestartSummary summary;
  uint64_t quarantined_before = disk_.quarantined();
  // Oldest retained LSN and newest LSN: checkpoint-end truncation may
  // have reclaimed the log head, so every walk below is LSN-based (via
  // Wal::At) rather than raw vector indexing.
  const Lsn first_lsn = wal_->base() + 1;
  const Lsn last_lsn = wal_->LastLsn();

  // --- Checkpoint lookup: the master pointer names the begin record of
  // the last COMPLETE checkpoint. Seed the ATT and dirty-page table
  // from its end record and scan only the log suffix after the begin —
  // this is what keeps restart time bounded as the log grows. A begin
  // with no matching end (crash mid-checkpoint) is never the master,
  // so a full-log scan is the fallback only when no checkpoint ever
  // completed.
  std::map<TxnId, Lsn> att;
  dpt_.clear();
  Lsn scan_from = first_lsn;  // LSN analysis starts at
  Lsn master = wal_->master();
  if (master != kNoLsn && wal_->Contains(master) &&
      wal_->At(master).kind == WalRecordKind::kCheckpointBegin) {
    for (Lsn l = master + 1; l <= last_lsn; ++l) {
      const WalRecord& rec = wal_->At(l);
      if (rec.kind == WalRecordKind::kCheckpointEnd &&
          rec.prev_lsn == master) {
        for (const auto& [txn, lsn] : rec.checkpoint.att) att[txn] = lsn;
        for (const auto& [page, lsn] : rec.checkpoint.dpt) dpt_[page] = lsn;
        scan_from = master + 1;  // records with LSN > master
        break;
      }
    }
  }
  summary.log_scanned =
      last_lsn >= scan_from ? static_cast<size_t>(last_lsn - scan_from + 1) : 0;

  // --- Analysis: rebuild the active storage-transaction table (and
  // grow the dirty-page table conservatively: any page a post-
  // checkpoint record touched may have been dirty at the crash; the
  // page-LSN gate makes an unnecessary redo visit a no-op). ---
  for (Lsn lsn = scan_from; lsn <= last_lsn; ++lsn) {
    const WalRecord& rec = wal_->At(lsn);
    if (rec.kind == WalRecordKind::kStoreUpdate ||
        rec.kind == WalRecordKind::kStoreClr) {
      if (rec.store.page_id != kInvalidPageId) {
        dpt_.try_emplace(rec.store.page_id, lsn);
      }
    }
    if (!rec.txn.valid()) continue;
    switch (rec.kind) {
      case WalRecordKind::kStoreBegin:
      case WalRecordKind::kStoreUpdate:
      case WalRecordKind::kStoreAbort:
      case WalRecordKind::kStoreClr:
        att[rec.txn] = lsn;
        break;
      case WalRecordKind::kStoreCommit:
      case WalRecordKind::kStoreEnd:
        att.erase(rec.txn);
        break;
      default:
        break;
    }
  }
  summary.analyzed_txns = att.size();

  // Prepared-but-undecided txns stay pending: the commit protocol's
  // recovery (cooperative termination) owns their fate. The WAL's
  // incremental prepared/decided index answers this without rescanning
  // the protocol records.
  std::map<TxnId, Lsn> in_doubt;
  std::map<TxnId, Lsn> losers;
  for (const auto& [txn, last] : att) {
    (wal_->IsPreparedUndecided(txn) ? in_doubt : losers)[txn] = last;
  }
  summary.in_doubt = in_doubt.size();
  summary.losers = losers.size();

  // --- Redo: repeat history in LSN order, starting at the smallest
  // recLSN in the dirty-page table (a dirty page's earliest unflushed
  // update may precede the checkpoint). Tentative updates replay only
  // for losers (so undo has real history to compensate); winners'
  // effects are covered by their final non-tentative records, and
  // in-doubt tentative data must stay off the pages. A loser's
  // tentative update before the redo window was never applied to any
  // page, so skipping it is safe: its CLR's exact-version guard
  // no-ops.
  Lsn redo_from = scan_from;
  for (const auto& [page, rec_lsn] : dpt_) {
    (void)page;
    if (rec_lsn != kNoLsn && rec_lsn < redo_from) redo_from = rec_lsn;
  }
  // A recLSN below the retained head would point at a truncated record;
  // the truncation barrier guarantees that never names work redo still
  // owes, so clamp defensively.
  if (redo_from < first_lsn) redo_from = first_lsn;
  summary.redo_start = redo_from;
  for (Lsn lsn = redo_from; lsn <= last_lsn; ++lsn) {
    const WalRecord& rec = wal_->At(lsn);
    if (rec.kind == WalRecordKind::kStoreUpdate) {
      if (rec.store.tentative && !losers.contains(rec.txn)) {
        ++summary.redo_skipped;
        continue;
      }
      PageId dirtied = kInvalidPageId;
      if (tree_.RedoUpdate(rec.store.item, rec.store.value, rec.store.version,
                           lsn, &dirtied)) {
        NoteWrite(dirtied, lsn);
        ++summary.redo_applied;
      } else {
        ++summary.redo_skipped;
      }
    } else if (rec.kind == WalRecordKind::kStoreClr) {
      if (ApplyClrGuarded(rec, lsn)) {
        ++summary.redo_applied;
      } else {
        ++summary.redo_skipped;
      }
    }
  }

  // --- Undo: roll losers back, newest update first across all of
  // them, appending guarded CLRs; then close each with kStoreEnd.
  std::vector<std::pair<Lsn, TxnId>> to_undo;
  for (const auto& [txn, last] : losers) {
    for (Lsn lsn : PendingUpdates(last)) to_undo.emplace_back(lsn, txn);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [ulsn, txn] : to_undo) {
    const WalRecord& upd = wal_->At(ulsn);
    WalRecord clr;
    clr.kind = WalRecordKind::kStoreClr;
    clr.txn = txn;
    clr.prev_lsn = losers[txn];
    clr.undo_next_lsn = upd.prev_lsn;
    clr.store.item = upd.store.item;
    clr.store.page_id = upd.store.page_id;
    clr.store.value = upd.store.before_value;
    clr.store.version = upd.store.before_version;
    clr.store.before_value = upd.store.value;
    clr.store.before_version = upd.store.version;
    Lsn clr_lsn = wal_->Append(clr);
    losers[txn] = clr_lsn;
    ++summary.undo_clrs;
    ApplyClrGuarded(clr, clr_lsn);
  }
  for (auto& [txn, last] : losers) {
    WalRecord end;
    end.kind = WalRecordKind::kStoreEnd;
    end.txn = txn;
    end.prev_lsn = last;
    wal_->Append(std::move(end));
  }

  // In-doubt chains stay open so a later decision commits or aborts
  // them through the normal hooks.
  att_ = in_doubt;

  // Reconcile the dirty-page table with the pool: analysis seeded it
  // conservatively (it lists pages whose updates did reach disk), and
  // a stale entry would pin the next checkpoint's redo window forever.
  {
    std::map<uint32_t, Lsn> live;
    for (PageId page : pool_.DirtyPages()) {
      auto it = dpt_.find(page);
      // Unknown recLSN: pin to the oldest retained record. Anything
      // older was truncated precisely because no dirty page needed it.
      live[page] = it != dpt_.end() ? it->second : first_lsn;
    }
    dpt_ = std::move(live);
  }

  summary.pages_quarantined = disk_.quarantined() - quarantined_before;

  // Invariant sweep: after undo no page may hold a tentative version.
  // (With checksums disabled a storage fault can forge arbitrary page
  // bytes, so the invariant only binds when the defense is on.)
  std::vector<std::pair<ItemId, ItemCopy>> all;
  tree_.Scan(0, tree_.size(), all);
  for (const auto& [item, copy] : all) {
    (void)item;
    if ((copy.version & kTentativeBit) != 0) ++summary.tentative_leaks;
  }
  assert(summary.tentative_leaks == 0 || !opts_.page_checksums);
  return summary;
}

}  // namespace rainbow
