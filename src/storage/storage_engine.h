#ifndef RAINBOW_STORAGE_STORAGE_ENGINE_H_
#define RAINBOW_STORAGE_STORAGE_ENGINE_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "storage/b_plus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/local_store.h"
#include "storage/wal.h"

namespace rainbow {

/// High bit of a Version: marks a tentative (prewrite-time) after-image
/// version in the WAL. Pages only ever hold a tentative version while
/// the restart pass is repeating a loser's history; the undo pass
/// removes them all before the site comes back up. Coordinator-assigned
/// versions are commit timestamps and never reach this bit.
inline constexpr Version kTentativeBit = 1ull << 63;

/// What one storage restart (analysis -> redo -> undo) did.
struct RestartSummary {
  size_t analyzed_txns = 0;  ///< storage txns alive in the log at crash
  size_t in_doubt = 0;       ///< of those, prepared-undecided (kept pending)
  size_t losers = 0;         ///< of those, rolled back by the undo pass
  size_t redo_applied = 0;   ///< page writes performed by the redo pass
  size_t redo_skipped = 0;   ///< redo records gated out (page LSN / guard)
  size_t undo_clrs = 0;      ///< compensation records appended by undo
  size_t tentative_leaks = 0;  ///< post-restart tentative versions (must be 0)
  size_t log_scanned = 0;    ///< records the analysis pass visited (bounded
                             ///< by the last checkpoint, not the log length)
  Lsn redo_start = kNoLsn;   ///< first LSN the redo pass considered
  size_t pages_quarantined = 0;  ///< corrupt primaries healed from the
                                 ///< journal while restart read pages
};

/// Construction knobs for a PageStore (mirrors the config's storage
/// block; Site fills one in from its ProtocolConfig).
struct PageStoreOptions {
  uint32_t page_size = 4096;
  size_t pool_pages = 64;
  size_t lru_k = 2;
  /// Take a fuzzy checkpoint whenever this many LSNs accumulated since
  /// the last one (checked at storage-txn commit/abort boundaries);
  /// 0 disables automatic checkpoints.
  uint64_t checkpoint_interval = 0;
  /// Stamp/verify per-page CRC32 and keep the doublewrite journal.
  bool page_checksums = true;
  /// Seed for the disk fault injector's private Rng stream.
  uint64_t fault_seed = 1;
};

/// The committed database at one Rainbow site, behind an interface so a
/// site can run either the legacy map store or the page-based engine.
/// Both expose LocalStore's contract: Apply/AdoptIfNewer ignore stale
/// versions (version <= stored), which keeps re-application idempotent.
///
/// The kStore hooks are the ARIES protocol surface; the map engine
/// implements them as no-ops (its recovery path restores from the
/// protocol log's prepared records instead of replaying page updates).
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual const char* name() const = 0;

  /// Creates the copy of `item` at `initial`, version 0 (configuration
  /// time; reloading an existing item resets it).
  virtual void Load(ItemId item, Value initial) = 0;

  virtual bool Has(ItemId item) const = 0;
  virtual Result<ItemCopy> Get(ItemId item) const = 0;

  /// Installs a committed write (stale versions ignored; returns true if
  /// applied). A valid `txn` ties the write into that storage
  /// transaction's log chain; an invalid one logs a standalone update
  /// (legacy-recovery redo, refresh adoption).
  virtual bool Apply(ItemId item, Value value, Version version,
                     TxnId txn = TxnId{}) = 0;

  /// Adopts a newer copy during recovery refresh (standalone write).
  virtual bool AdoptIfNewer(ItemId item, Value value, Version version) = 0;

  virtual size_t size() const = 0;

  /// Full committed contents, item order (MVTO reseed, refresh).
  virtual std::map<ItemId, ItemCopy> Snapshot() const = 0;

  /// Up to `limit` committed copies with item >= `from`, ascending.
  virtual void Range(ItemId from, size_t limit,
                     std::vector<std::pair<ItemId, ItemCopy>>& out) const = 0;

  // --- ARIES storage-transaction hooks ---

  /// Called when a prewrite is granted: force-logs the intent (begin +
  /// tentative update with the committed before-image). No page write.
  virtual void LogPrewrite(TxnId txn, ItemId item, Value value) = 0;

  /// Closes a storage txn whose writes were all applied (commit record).
  virtual void CommitStorageTxn(TxnId txn) = 0;

  /// Rolls a storage txn back: abort record, one CLR per pending
  /// update, end record. Runtime pages never hold tentative data, so
  /// the CLRs' guarded page writes are no-ops outside restart.
  virtual void AbortStorageTxn(TxnId txn) = 0;

  /// Models the crash: volatile state (buffer pool frames, pending txn
  /// table) is dropped; disk image and log survive.
  virtual void OnCrash() = 0;

  /// ARIES restart pass: analysis -> redo -> undo against the shared
  /// site WAL. Unended storage txns that the protocol log shows as
  /// prepared-undecided stay pending (in doubt); the rest are losers
  /// and are rolled back with CLRs.
  virtual RestartSummary Restart() = 0;

  /// Writes every dirty page back (graceful-start checkpointing).
  virtual void FlushAll() = 0;

  /// Takes a fuzzy checkpoint and returns its begin LSN; engines
  /// without a log have nothing to checkpoint and return kNoLsn.
  virtual Lsn Checkpoint() { return kNoLsn; }

  /// Arms a storage fault (probability per write/read) on the engine's
  /// disk; no-op for engines without a disk. Nemesis drives this
  /// through the fault injector.
  virtual void SetStorageFault(StorageFaultKind kind, double probability) {
    (void)kind;
    (void)probability;
  }
};

/// Legacy engine: LocalStore behind the interface, ARIES hooks no-ops.
class MapStore : public StorageEngine {
 public:
  const char* name() const override { return "map"; }

  void Load(ItemId item, Value initial) override { store_.Load(item, initial); }
  bool Has(ItemId item) const override { return store_.Has(item); }
  Result<ItemCopy> Get(ItemId item) const override { return store_.Get(item); }
  bool Apply(ItemId item, Value value, Version version,
             TxnId txn = TxnId{}) override {
    (void)txn;
    return store_.Apply(item, value, version);
  }
  bool AdoptIfNewer(ItemId item, Value value, Version version) override {
    return store_.AdoptIfNewer(item, value, version);
  }
  size_t size() const override { return store_.size(); }
  std::map<ItemId, ItemCopy> Snapshot() const override {
    return store_.copies();
  }
  void Range(ItemId from, size_t limit,
             std::vector<std::pair<ItemId, ItemCopy>>& out) const override;

  void LogPrewrite(TxnId, ItemId, Value) override {}
  void CommitStorageTxn(TxnId) override {}
  void AbortStorageTxn(TxnId) override {}
  void OnCrash() override {}
  RestartSummary Restart() override { return RestartSummary{}; }
  void FlushAll() override {}

 private:
  LocalStore store_;
};

/// Page-based engine: B+ tree over a buffer pool, sharing the site's
/// WAL for ARIES-style physiological logging. The engine object itself
/// (disk image, tree skeleton) survives Site::Crash(); OnCrash() wipes
/// only the buffer pool and the pending-transaction table, and
/// Restart() replays the log.
class PageStore : public StorageEngine {
 public:
  explicit PageStore(Wal* wal, PageStoreOptions options = {});

  /// Legacy signature (tests, pre-checkpoint call sites).
  PageStore(Wal* wal, uint32_t page_size, size_t pool_pages, size_t lru_k)
      : PageStore(wal, PageStoreOptions{page_size, pool_pages, lru_k}) {}

  const char* name() const override { return "page"; }

  void Load(ItemId item, Value initial) override;
  bool Has(ItemId item) const override { return tree_.Has(item); }
  Result<ItemCopy> Get(ItemId item) const override;
  bool Apply(ItemId item, Value value, Version version,
             TxnId txn = TxnId{}) override;
  bool AdoptIfNewer(ItemId item, Value value, Version version) override;
  size_t size() const override { return tree_.size(); }
  std::map<ItemId, ItemCopy> Snapshot() const override;
  void Range(ItemId from, size_t limit,
             std::vector<std::pair<ItemId, ItemCopy>>& out) const override;

  void LogPrewrite(TxnId txn, ItemId item, Value value) override;
  void CommitStorageTxn(TxnId txn) override;
  void AbortStorageTxn(TxnId txn) override;
  void OnCrash() override;
  RestartSummary Restart() override;
  void FlushAll() override { pool_.FlushAll(); }

  /// Fuzzy checkpoint: kCheckpointBegin, then kCheckpointEnd carrying
  /// the ATT and dirty-page table, then the WAL's master pointer moves
  /// to the begin record. Returns the begin LSN. The two halves are
  /// also exposed separately so crash tests can die between them.
  Lsn Checkpoint() override;
  Lsn BeginCheckpoint();
  void EndCheckpoint(Lsn begin_lsn);

  void SetStorageFault(StorageFaultKind kind, double probability) override {
    disk_.Arm(kind, probability);
  }

  const BufferPool& pool() const { return pool_; }
  const FaultyDiskManager& disk() const { return disk_; }
  /// Mutable disk access for fault hooks (write limits, byte flips).
  FaultyDiskManager& mutable_disk() { return disk_; }
  const BPlusTree& tree() const { return tree_; }
  const PageStoreOptions& options() const { return opts_; }
  /// Storage txns with logged-but-undecided updates (tests).
  size_t pending_txns() const { return att_.size(); }
  /// Current dirty-page table (page -> recLSN), for tests.
  const std::map<uint32_t, Lsn>& dirty_page_table() const { return dpt_; }

 private:
  /// Ensures `txn` has a storage-txn entry (logging kStoreBegin on the
  /// first touch) and returns its chain tail.
  Lsn ChainFor(TxnId txn);

  /// Records `page` in the dirty-page table with recLSN `lsn` (first
  /// dirtier wins) — called after every successful tree write.
  void NoteWrite(PageId page, Lsn lsn);

  /// Takes a checkpoint if the cadence knob says one is due.
  void MaybeCheckpoint();

  /// Applies a CLR's restore image iff the page still holds exactly the
  /// image the CLR compensates. Returns true if the page was written.
  bool ApplyClrGuarded(const WalRecord& rec, Lsn lsn);

  /// LSNs of `txn`'s not-yet-compensated updates, walking the backward
  /// chain from `last` and skipping through CLRs' undo_next_lsn.
  std::vector<Lsn> PendingUpdates(Lsn last) const;

  /// Earliest LSN reachable from chain tail `last` (normally the
  /// transaction's kStoreBegin) — the record undo could still need, so
  /// head truncation must not pass it.
  Lsn ChainFloor(Lsn last) const;

  Wal* wal_;
  PageStoreOptions opts_;
  FaultyDiskManager disk_;
  BufferPool pool_;
  BPlusTree tree_;

  /// Active storage-transaction table: chain tail per open txn.
  std::map<TxnId, Lsn> att_;
  /// Dirty-page table: page -> recLSN (LSN of the update that first
  /// dirtied the resident frame). Maintained by NoteWrite and the
  /// pool's flush listener; snapshotted into kCheckpointEnd records.
  std::map<uint32_t, Lsn> dpt_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_STORAGE_ENGINE_H_
