#include "storage/wal.h"

#include <algorithm>
#include <cstdio>

#include "common/binary_io.h"

namespace rainbow {

const char* WalRecordKindName(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kPrepared:
      return "prepared";
    case WalRecordKind::kPreCommitted:
      return "precommitted";
    case WalRecordKind::kCommitDecision:
      return "commit_decision";
    case WalRecordKind::kAbortDecision:
      return "abort_decision";
    case WalRecordKind::kApplied:
      return "applied";
    case WalRecordKind::kEnd:
      return "end";
    case WalRecordKind::kStoreBegin:
      return "store_begin";
    case WalRecordKind::kStoreUpdate:
      return "store_update";
    case WalRecordKind::kStoreCommit:
      return "store_commit";
    case WalRecordKind::kStoreAbort:
      return "store_abort";
    case WalRecordKind::kStoreClr:
      return "store_clr";
    case WalRecordKind::kStoreEnd:
      return "store_end";
  }
  return "?";
}

Lsn Wal::Append(WalRecord record) {
  records_.push_back(std::move(record));
  return static_cast<Lsn>(records_.size());
}

std::unordered_map<TxnId, Wal::TxnLogState> Wal::Scan() const {
  std::unordered_map<TxnId, TxnLogState> out;
  for (const WalRecord& r : records_) {
    switch (r.kind) {
      case WalRecordKind::kPrepared: {
        TxnLogState& st = out[r.txn];
        st.prepared = true;
        st.prepared_record = r;
        break;
      }
      case WalRecordKind::kPreCommitted:
        out[r.txn].precommitted = true;
        break;
      case WalRecordKind::kCommitDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = true;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kAbortDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = false;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kApplied:
        out[r.txn].applied = true;
        break;
      case WalRecordKind::kEnd:
        out[r.txn].ended = true;
        break;
      case WalRecordKind::kStoreBegin:
      case WalRecordKind::kStoreUpdate:
      case WalRecordKind::kStoreCommit:
      case WalRecordKind::kStoreAbort:
      case WalRecordKind::kStoreClr:
      case WalRecordKind::kStoreEnd:
        // Storage-engine records are not protocol state; the page
        // engine's restart analysis scans them itself.
        break;
    }
  }
  return out;
}

std::vector<WalRecord> Wal::InDoubt() const {
  std::vector<WalRecord> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.prepared && !st.decided) {
      out.push_back(st.prepared_record);
    }
  }
  // Scan() iterates a hash map; sort so recovery reinstates in-doubt
  // transactions in one canonical (TxnId) order on every run.
  std::sort(out.begin(), out.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.txn < b.txn; });
  return out;
}

std::vector<Wal::UnendedDecision> Wal::DecidedUnended() const {
  std::vector<UnendedDecision> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.decided && !st.ended && !st.decision_participants.empty()) {
      out.push_back(UnendedDecision{txn, st.commit, st.decision_participants});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UnendedDecision& a, const UnendedDecision& b) {
              return a.txn < b.txn;
            });
  return out;
}

namespace {
// "RWAL". Version 2 added the storage-engine record kinds with their
// per-record StoreOp payload and LSN chain fields.
constexpr uint32_t kWalMagic = 0x4c415752;
constexpr uint32_t kWalVersion = 2;
}  // namespace

std::vector<uint8_t> Wal::Serialize() const {
  Encoder e;
  e.PutU32(kWalMagic);
  e.PutU32(kWalVersion);
  e.PutU32(static_cast<uint32_t>(records_.size()));
  for (const WalRecord& r : records_) {
    e.PutU8(static_cast<uint8_t>(r.kind));
    e.PutTxnId(r.txn);
    e.PutU32(r.coordinator);
    e.PutVector(r.writes, [&](const WalRecord::Write& w) {
      e.PutU32(w.item);
      e.PutI64(w.value);
      e.PutU64(w.version);
    });
    e.PutVector(r.participants, [&](SiteId s) { e.PutU32(s); });
    e.PutBool(r.three_phase);
    e.PutU32(r.store.item);
    e.PutU32(r.store.page_id);
    e.PutI64(r.store.before_value);
    e.PutU64(r.store.before_version);
    e.PutI64(r.store.value);
    e.PutU64(r.store.version);
    e.PutBool(r.store.tentative);
    e.PutU64(r.prev_lsn);
    e.PutU64(r.undo_next_lsn);
  }
  return e.Take();
}

Status Wal::Deserialize(const std::vector<uint8_t>& buffer) {
  Decoder d(buffer);
  RAINBOW_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kWalMagic) return Status::InvalidArgument("not a WAL file");
  RAINBOW_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version != 1 && version != kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version));
  }
  RAINBOW_ASSIGN_OR_RETURN(uint32_t count, d.GetU32());
  std::vector<WalRecord> records;
  records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WalRecord r;
    RAINBOW_ASSIGN_OR_RETURN(uint8_t kind, d.GetU8());
    uint8_t max_kind = version == 1
                           ? static_cast<uint8_t>(WalRecordKind::kEnd)
                           : static_cast<uint8_t>(WalRecordKind::kStoreEnd);
    if (kind > max_kind) {
      return Status::InvalidArgument("bad record kind");
    }
    r.kind = static_cast<WalRecordKind>(kind);
    RAINBOW_ASSIGN_OR_RETURN(r.txn, d.GetTxnId());
    RAINBOW_ASSIGN_OR_RETURN(r.coordinator, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(uint32_t writes, d.GetU32());
    for (uint32_t w = 0; w < writes; ++w) {
      WalRecord::Write write;
      RAINBOW_ASSIGN_OR_RETURN(write.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(write.value, d.GetI64());
      RAINBOW_ASSIGN_OR_RETURN(write.version, d.GetU64());
      r.writes.push_back(write);
    }
    RAINBOW_ASSIGN_OR_RETURN(uint32_t participants, d.GetU32());
    for (uint32_t p = 0; p < participants; ++p) {
      RAINBOW_ASSIGN_OR_RETURN(SiteId s, d.GetU32());
      r.participants.push_back(s);
    }
    RAINBOW_ASSIGN_OR_RETURN(r.three_phase, d.GetBool());
    if (version >= 2) {
      RAINBOW_ASSIGN_OR_RETURN(r.store.item, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(r.store.page_id, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(r.store.before_value, d.GetI64());
      RAINBOW_ASSIGN_OR_RETURN(r.store.before_version, d.GetU64());
      RAINBOW_ASSIGN_OR_RETURN(r.store.value, d.GetI64());
      RAINBOW_ASSIGN_OR_RETURN(r.store.version, d.GetU64());
      RAINBOW_ASSIGN_OR_RETURN(r.store.tentative, d.GetBool());
      RAINBOW_ASSIGN_OR_RETURN(r.prev_lsn, d.GetU64());
      RAINBOW_ASSIGN_OR_RETURN(r.undo_next_lsn, d.GetU64());
    }
    records.push_back(std::move(r));
  }
  if (!d.exhausted()) {
    return Status::InvalidArgument("trailing bytes in WAL file");
  }
  records_ = std::move(records);
  return Status::OK();
}

Status Wal::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int rc = std::fclose(f);
  if (written != bytes.size() || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status Wal::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  // fread returning 0 means EOF *or* error; without this check a
  // mid-file read error would surface as a confusing decode failure (or
  // silently truncate at a record boundary).
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read error on " + path);
  return Deserialize(bytes);
}

}  // namespace rainbow
