#include "storage/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace rainbow {

const char* WalRecordKindName(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kPrepared:
      return "prepared";
    case WalRecordKind::kPreCommitted:
      return "precommitted";
    case WalRecordKind::kCommitDecision:
      return "commit_decision";
    case WalRecordKind::kAbortDecision:
      return "abort_decision";
    case WalRecordKind::kApplied:
      return "applied";
    case WalRecordKind::kEnd:
      return "end";
    case WalRecordKind::kStoreBegin:
      return "store_begin";
    case WalRecordKind::kStoreUpdate:
      return "store_update";
    case WalRecordKind::kStoreCommit:
      return "store_commit";
    case WalRecordKind::kStoreAbort:
      return "store_abort";
    case WalRecordKind::kStoreClr:
      return "store_clr";
    case WalRecordKind::kStoreEnd:
      return "store_end";
    case WalRecordKind::kCheckpointBegin:
      return "checkpoint_begin";
    case WalRecordKind::kCheckpointEnd:
      return "checkpoint_end";
  }
  return "?";
}

Lsn Wal::Append(WalRecord record) {
  IndexRecord(record);
  records_.push_back(std::move(record));
  return static_cast<Lsn>(records_.size());
}

void Wal::IndexRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kPrepared:
      proto_index_[record.txn].prepared = true;
      break;
    case WalRecordKind::kCommitDecision:
    case WalRecordKind::kAbortDecision:
      proto_index_[record.txn].decided = true;
      break;
    default:
      break;
  }
}

bool Wal::IsPreparedUndecided(const TxnId& txn) const {
  auto it = proto_index_.find(txn);
  return it != proto_index_.end() && it->second.prepared &&
         !it->second.decided;
}

std::unordered_map<TxnId, Wal::TxnLogState> Wal::Scan() const {
  std::unordered_map<TxnId, TxnLogState> out;
  for (const WalRecord& r : records_) {
    switch (r.kind) {
      case WalRecordKind::kPrepared: {
        TxnLogState& st = out[r.txn];
        st.prepared = true;
        st.prepared_record = r;
        break;
      }
      case WalRecordKind::kPreCommitted:
        out[r.txn].precommitted = true;
        break;
      case WalRecordKind::kCommitDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = true;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kAbortDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = false;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kApplied:
        out[r.txn].applied = true;
        break;
      case WalRecordKind::kEnd:
        out[r.txn].ended = true;
        break;
      case WalRecordKind::kStoreBegin:
      case WalRecordKind::kStoreUpdate:
      case WalRecordKind::kStoreCommit:
      case WalRecordKind::kStoreAbort:
      case WalRecordKind::kStoreClr:
      case WalRecordKind::kStoreEnd:
      case WalRecordKind::kCheckpointBegin:
      case WalRecordKind::kCheckpointEnd:
        // Storage-engine records are not protocol state; the page
        // engine's restart analysis scans them itself.
        break;
    }
  }
  return out;
}

std::vector<WalRecord> Wal::InDoubt() const {
  std::vector<WalRecord> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.prepared && !st.decided) {
      out.push_back(st.prepared_record);
    }
  }
  // Scan() iterates a hash map; sort so recovery reinstates in-doubt
  // transactions in one canonical (TxnId) order on every run.
  std::sort(out.begin(), out.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.txn < b.txn; });
  return out;
}

std::vector<Wal::UnendedDecision> Wal::DecidedUnended() const {
  std::vector<UnendedDecision> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.decided && !st.ended && !st.decision_participants.empty()) {
      out.push_back(UnendedDecision{txn, st.commit, st.decision_participants});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UnendedDecision& a, const UnendedDecision& b) {
              return a.txn < b.txn;
            });
  return out;
}

namespace {
// "RWAL". Version 2 added the storage-engine record kinds with their
// per-record StoreOp payload and LSN chain fields. Version 3 frames
// every record as [len u32][crc32 u32][payload] (so a torn tail is
// detectable and truncatable), adds the checkpoint master pointer to
// the header, and adds the checkpoint record kinds with their ATT /
// dirty-page-table payload.
constexpr uint32_t kWalMagic = 0x4c415752;
constexpr uint32_t kWalVersion = 3;
// magic + version + master + count.
constexpr size_t kWalHeaderBytes = 4 + 4 + 8 + 4;

void EncodeRecordPayload(Encoder& e, const WalRecord& r) {
  e.PutU8(static_cast<uint8_t>(r.kind));
  e.PutTxnId(r.txn);
  e.PutU32(r.coordinator);
  e.PutVector(r.writes, [&](const WalRecord::Write& w) {
    e.PutU32(w.item);
    e.PutI64(w.value);
    e.PutU64(w.version);
  });
  e.PutVector(r.participants, [&](SiteId s) { e.PutU32(s); });
  e.PutBool(r.three_phase);
  e.PutU32(r.store.item);
  e.PutU32(r.store.page_id);
  e.PutI64(r.store.before_value);
  e.PutU64(r.store.before_version);
  e.PutI64(r.store.value);
  e.PutU64(r.store.version);
  e.PutBool(r.store.tentative);
  e.PutU64(r.prev_lsn);
  e.PutU64(r.undo_next_lsn);
  if (r.kind == WalRecordKind::kCheckpointEnd) {
    e.PutVector(r.checkpoint.att, [&](const std::pair<TxnId, Lsn>& a) {
      e.PutTxnId(a.first);
      e.PutU64(a.second);
    });
    e.PutVector(r.checkpoint.dpt, [&](const std::pair<uint32_t, Lsn>& p) {
      e.PutU32(p.first);
      e.PutU64(p.second);
    });
  }
}

Result<WalRecord> DecodeRecordPayload(Decoder& d, uint32_t version) {
  WalRecord r;
  RAINBOW_ASSIGN_OR_RETURN(uint8_t kind, d.GetU8());
  uint8_t max_kind = static_cast<uint8_t>(WalRecordKind::kCheckpointEnd);
  if (version == 1) max_kind = static_cast<uint8_t>(WalRecordKind::kEnd);
  if (version == 2) max_kind = static_cast<uint8_t>(WalRecordKind::kStoreEnd);
  if (kind > max_kind) {
    return Status::InvalidArgument("bad record kind");
  }
  r.kind = static_cast<WalRecordKind>(kind);
  RAINBOW_ASSIGN_OR_RETURN(r.txn, d.GetTxnId());
  RAINBOW_ASSIGN_OR_RETURN(r.coordinator, d.GetU32());
  RAINBOW_ASSIGN_OR_RETURN(uint32_t writes, d.GetU32());
  for (uint32_t w = 0; w < writes; ++w) {
    WalRecord::Write write;
    RAINBOW_ASSIGN_OR_RETURN(write.item, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(write.value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(write.version, d.GetU64());
    r.writes.push_back(write);
  }
  RAINBOW_ASSIGN_OR_RETURN(uint32_t participants, d.GetU32());
  for (uint32_t p = 0; p < participants; ++p) {
    RAINBOW_ASSIGN_OR_RETURN(SiteId s, d.GetU32());
    r.participants.push_back(s);
  }
  RAINBOW_ASSIGN_OR_RETURN(r.three_phase, d.GetBool());
  if (version >= 2) {
    RAINBOW_ASSIGN_OR_RETURN(r.store.item, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(r.store.page_id, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(r.store.before_value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.before_version, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.version, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.tentative, d.GetBool());
    RAINBOW_ASSIGN_OR_RETURN(r.prev_lsn, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.undo_next_lsn, d.GetU64());
  }
  if (r.kind == WalRecordKind::kCheckpointEnd) {
    RAINBOW_ASSIGN_OR_RETURN(uint32_t att, d.GetU32());
    for (uint32_t a = 0; a < att; ++a) {
      std::pair<TxnId, Lsn> entry;
      RAINBOW_ASSIGN_OR_RETURN(entry.first, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(entry.second, d.GetU64());
      r.checkpoint.att.push_back(entry);
    }
    RAINBOW_ASSIGN_OR_RETURN(uint32_t dpt, d.GetU32());
    for (uint32_t p = 0; p < dpt; ++p) {
      std::pair<uint32_t, Lsn> entry;
      RAINBOW_ASSIGN_OR_RETURN(entry.first, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(entry.second, d.GetU64());
      r.checkpoint.dpt.push_back(entry);
    }
  }
  return r;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, sizeof(v));
  out.insert(out.end(), b, b + sizeof(v));
}

}  // namespace

std::vector<uint8_t> Wal::Serialize() const {
  Encoder header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalVersion);
  header.PutU64(master_);
  header.PutU32(static_cast<uint32_t>(records_.size()));
  std::vector<uint8_t> out = header.Take();
  for (const WalRecord& r : records_) {
    Encoder pe;
    EncodeRecordPayload(pe, r);
    std::vector<uint8_t> payload = pe.Take();
    AppendU32(out, static_cast<uint32_t>(payload.size()));
    AppendU32(out, Crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Status Wal::Deserialize(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl(buffer, /*tolerant=*/false, nullptr);
}

Status Wal::DeserializeTolerant(const std::vector<uint8_t>& buffer,
                                size_t* dropped) {
  return DeserializeImpl(buffer, /*tolerant=*/true, dropped);
}

Status Wal::DeserializeImpl(const std::vector<uint8_t>& buffer, bool tolerant,
                            size_t* dropped) {
  if (dropped != nullptr) *dropped = 0;
  Decoder d(buffer);
  RAINBOW_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kWalMagic) return Status::InvalidArgument("not a WAL file");
  RAINBOW_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version < 1 || version > kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version));
  }
  if (version < 3) {
    // Legacy formats: records inline, no framing, no master pointer.
    RAINBOW_ASSIGN_OR_RETURN(uint32_t count, d.GetU32());
    std::vector<WalRecord> records;
    records.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      RAINBOW_ASSIGN_OR_RETURN(WalRecord r, DecodeRecordPayload(d, version));
      records.push_back(std::move(r));
    }
    if (!d.exhausted()) {
      return Status::InvalidArgument("trailing bytes in WAL file");
    }
    records_ = std::move(records);
    master_ = kNoLsn;
    proto_index_.clear();
    for (const WalRecord& r : records_) IndexRecord(r);
    return Status::OK();
  }
  if (buffer.size() < kWalHeaderBytes) {
    // A file this short never finished its very first save; even the
    // tolerant path has nothing to salvage.
    return tolerant ? Status::IoError("truncated WAL header")
                    : Status::InvalidArgument("truncated WAL header");
  }
  RAINBOW_ASSIGN_OR_RETURN(uint64_t master, d.GetU64());
  RAINBOW_ASSIGN_OR_RETURN(uint32_t count, d.GetU32());
  std::vector<WalRecord> records;
  records.reserve(count);
  size_t off = kWalHeaderBytes;
  size_t drop = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (buffer.size() - off < 8) {
      // Frame header overruns the file: a record that never finished
      // being appended. Tolerant mode truncates the log here.
      if (!tolerant) {
        return Status::InvalidArgument("truncated WAL record header");
      }
      drop = count - i;
      break;
    }
    uint32_t len, crc;
    std::memcpy(&len, buffer.data() + off, sizeof(len));
    std::memcpy(&crc, buffer.data() + off + 4, sizeof(crc));
    if (buffer.size() - off - 8 < len) {
      if (!tolerant) return Status::InvalidArgument("truncated WAL record");
      drop = count - i;
      break;
    }
    const uint8_t* payload = buffer.data() + off + 8;
    if (Crc32(payload, len) != crc) {
      if (!tolerant) {
        return Status::InvalidArgument("WAL record CRC mismatch");
      }
      if (i + 1 == count) {
        // Torn final record: the crash landed mid-append.
        drop = 1;
        break;
      }
      // Intact records follow the damage, so this is NOT an interrupted
      // append — it is media corruption, and truncating here would
      // silently drop committed records.
      return Status::IoError("WAL corruption at record " +
                             std::to_string(i + 1) + " of " +
                             std::to_string(count));
    }
    Decoder pd(payload, len);
    Result<WalRecord> rec = DecodeRecordPayload(pd, version);
    if (!rec.ok()) {
      // The CRC matched, so the bytes are what was written — the record
      // itself is malformed. Never a torn tail.
      return tolerant ? Status::IoError("bad WAL record payload")
                      : rec.status();
    }
    if (!pd.exhausted()) {
      return tolerant ? Status::IoError("trailing bytes in WAL record")
                      : Status::InvalidArgument("trailing bytes in WAL record");
    }
    records.push_back(std::move(rec).value());
    off += 8 + len;
  }
  if (!tolerant && off != buffer.size()) {
    return Status::InvalidArgument("trailing bytes in WAL file");
  }
  records_ = std::move(records);
  // The master is advisory (analysis falls back to a full scan when it
  // finds no checkpoint); clamp rather than fail if the tail truncation
  // dropped the records it pointed at.
  master_ = std::min<Lsn>(master, static_cast<Lsn>(records_.size()));
  proto_index_.clear();
  for (const WalRecord& r : records_) IndexRecord(r);
  if (dropped != nullptr) *dropped = drop;
  return Status::OK();
}

Status Wal::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fwrite can report success while the data sits in the stdio buffer;
  // fflush forces it down and surfaces ENOSPC-style failures, and
  // ferror catches an error either call absorbed. Without these a full
  // disk looked like a successful save.
  bool flushed = std::fflush(f) == 0;
  bool stream_error = std::ferror(f) != 0;
  int rc = std::fclose(f);
  if (written != bytes.size() || !flushed || stream_error || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status Wal::LoadFromFile(const std::string& path, size_t* dropped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  // fread returning 0 means EOF *or* error; without this check a
  // mid-file read error would surface as a confusing decode failure (or
  // silently truncate at a record boundary).
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read error on " + path);
  return DeserializeTolerant(bytes, dropped);
}

}  // namespace rainbow
