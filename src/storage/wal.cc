#include "storage/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace rainbow {

const char* WalRecordKindName(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kPrepared:
      return "prepared";
    case WalRecordKind::kPreCommitted:
      return "precommitted";
    case WalRecordKind::kCommitDecision:
      return "commit_decision";
    case WalRecordKind::kAbortDecision:
      return "abort_decision";
    case WalRecordKind::kApplied:
      return "applied";
    case WalRecordKind::kEnd:
      return "end";
    case WalRecordKind::kStoreBegin:
      return "store_begin";
    case WalRecordKind::kStoreUpdate:
      return "store_update";
    case WalRecordKind::kStoreCommit:
      return "store_commit";
    case WalRecordKind::kStoreAbort:
      return "store_abort";
    case WalRecordKind::kStoreClr:
      return "store_clr";
    case WalRecordKind::kStoreEnd:
      return "store_end";
    case WalRecordKind::kCheckpointBegin:
      return "checkpoint_begin";
    case WalRecordKind::kCheckpointEnd:
      return "checkpoint_end";
  }
  return "?";
}

Lsn Wal::Append(WalRecord record) {
  Lsn lsn = NextLsn();
  IndexRecord(record, lsn);
  records_.push_back(std::move(record));
  return lsn;
}

void Wal::IndexRecord(const WalRecord& record, Lsn lsn) {
  switch (record.kind) {
    case WalRecordKind::kPrepared:
    case WalRecordKind::kPreCommitted:
    case WalRecordKind::kCommitDecision:
    case WalRecordKind::kAbortDecision:
    case WalRecordKind::kApplied:
    case WalRecordKind::kEnd:
      break;
    default:
      return;  // storage records carry no protocol state
  }
  ProtoState& st = proto_index_[record.txn];
  if (st.first_lsn == kNoLsn || lsn < st.first_lsn) st.first_lsn = lsn;
  switch (record.kind) {
    case WalRecordKind::kPrepared:
      st.prepared = true;
      break;
    case WalRecordKind::kPreCommitted:
      st.precommitted = true;
      break;
    case WalRecordKind::kCommitDecision:
      st.decided = true;
      st.commit = true;
      if (!record.participants.empty()) st.coordinator = true;
      break;
    case WalRecordKind::kAbortDecision:
      st.decided = true;
      st.commit = false;
      if (!record.participants.empty()) st.coordinator = true;
      break;
    case WalRecordKind::kApplied:
      st.applied = true;
      break;
    case WalRecordKind::kEnd:
      st.ended = true;
      break;
    default:
      break;
  }
}

size_t Wal::TruncateBefore(Lsn lsn) {
  if (lsn <= base_ + 1) return 0;
  Lsn limit = std::min(lsn, NextLsn());
  size_t drop = static_cast<size_t>(limit - base_ - 1);
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(drop));
  base_ = limit - 1;
  // A master inside the reclaimed prefix no longer names a record;
  // analysis would fall back to a full (retained-log) scan anyway, so
  // clear it rather than leave a dangling pointer. The storage engine's
  // barrier keeps the master record retained, so this only fires for
  // direct (test / tool) truncation calls.
  if (master_ != kNoLsn && master_ <= base_) master_ = kNoLsn;
  return drop;
}

Lsn Wal::ProtocolBarrier() const {
  Lsn barrier = NextLsn();
  for (const auto& [txn, st] : proto_index_) {
    if (!st.Closed() && st.first_lsn != kNoLsn && st.first_lsn < barrier) {
      barrier = st.first_lsn;
    }
  }
  return barrier;
}

bool Wal::IsPreparedUndecided(const TxnId& txn) const {
  auto it = proto_index_.find(txn);
  return it != proto_index_.end() && it->second.prepared &&
         !it->second.decided;
}

std::unordered_map<TxnId, Wal::TxnLogState> Wal::Scan() const {
  std::unordered_map<TxnId, TxnLogState> out;
  // Seed from the per-transaction digest so transactions whose records
  // were head-truncated still report their (closed) protocol state —
  // recovery's decision-cache rebuild must see the same answers before
  // and after a truncation. The record walk below then overlays the
  // payload-bearing fields (prepared_record, decision_participants),
  // which only recovery paths for non-truncatable transactions read.
  for (const auto& [txn, st] : proto_index_) {
    TxnLogState& s = out[txn];
    s.prepared = st.prepared;
    s.precommitted = st.precommitted;
    s.decided = st.decided;
    s.commit = st.commit;
    s.applied = st.applied;
    s.ended = st.ended;
  }
  for (const WalRecord& r : records_) {
    switch (r.kind) {
      case WalRecordKind::kPrepared: {
        TxnLogState& st = out[r.txn];
        st.prepared = true;
        st.prepared_record = r;
        break;
      }
      case WalRecordKind::kPreCommitted:
        out[r.txn].precommitted = true;
        break;
      case WalRecordKind::kCommitDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = true;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kAbortDecision: {
        TxnLogState& st = out[r.txn];
        st.decided = true;
        st.commit = false;
        if (!r.participants.empty()) st.decision_participants = r.participants;
        break;
      }
      case WalRecordKind::kApplied:
        out[r.txn].applied = true;
        break;
      case WalRecordKind::kEnd:
        out[r.txn].ended = true;
        break;
      case WalRecordKind::kStoreBegin:
      case WalRecordKind::kStoreUpdate:
      case WalRecordKind::kStoreCommit:
      case WalRecordKind::kStoreAbort:
      case WalRecordKind::kStoreClr:
      case WalRecordKind::kStoreEnd:
      case WalRecordKind::kCheckpointBegin:
      case WalRecordKind::kCheckpointEnd:
        // Storage-engine records are not protocol state; the page
        // engine's restart analysis scans them itself.
        break;
    }
  }
  return out;
}

std::vector<WalRecord> Wal::InDoubt() const {
  std::vector<WalRecord> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.prepared && !st.decided) {
      out.push_back(st.prepared_record);
    }
  }
  // Scan() iterates a hash map; sort so recovery reinstates in-doubt
  // transactions in one canonical (TxnId) order on every run.
  std::sort(out.begin(), out.end(),
            [](const WalRecord& a, const WalRecord& b) { return a.txn < b.txn; });
  return out;
}

std::vector<Wal::UnendedDecision> Wal::DecidedUnended() const {
  std::vector<UnendedDecision> out;
  // RAINBOW_LINT(allow:D1 reason=result is sorted by TxnId below)
  for (const auto& [txn, st] : Scan()) {
    if (st.decided && !st.ended && !st.decision_participants.empty()) {
      out.push_back(UnendedDecision{txn, st.commit, st.decision_participants});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UnendedDecision& a, const UnendedDecision& b) {
              return a.txn < b.txn;
            });
  return out;
}

namespace {
// "RWAL". Version 2 added the storage-engine record kinds with their
// per-record StoreOp payload and LSN chain fields. Version 3 frames
// every record as [len u32][crc32 u32][payload] (so a torn tail is
// detectable and truncatable), adds the checkpoint master pointer to
// the header, and adds the checkpoint record kinds with their ATT /
// dirty-page-table payload. Version 4 supports head-truncated logs:
// the header gains the base LSN (records reclaimed before the first
// retained one) and a protocol digest — one compact entry per
// transaction whose records were truncated — so Scan() answers
// identically after a save/load round trip of a truncated log.
constexpr uint32_t kWalMagic = 0x4c415752;
constexpr uint32_t kWalVersion = 4;
// v3 fixed header: magic + version + master + count. v4's header is
// variable-length (digest), so its record offset is computed from the
// decoder instead.
constexpr size_t kWalHeaderBytesV3 = 4 + 4 + 8 + 4;

// ProtoState flag bits in a serialized digest entry.
constexpr uint8_t kDigestPrepared = 1u << 0;
constexpr uint8_t kDigestPrecommitted = 1u << 1;
constexpr uint8_t kDigestDecided = 1u << 2;
constexpr uint8_t kDigestCommit = 1u << 3;
constexpr uint8_t kDigestApplied = 1u << 4;
constexpr uint8_t kDigestEnded = 1u << 5;
constexpr uint8_t kDigestCoordinator = 1u << 6;

void EncodeRecordPayload(Encoder& e, const WalRecord& r) {
  e.PutU8(static_cast<uint8_t>(r.kind));
  e.PutTxnId(r.txn);
  e.PutU32(r.coordinator);
  e.PutVector(r.writes, [&](const WalRecord::Write& w) {
    e.PutU32(w.item);
    e.PutI64(w.value);
    e.PutU64(w.version);
  });
  e.PutVector(r.participants, [&](SiteId s) { e.PutU32(s); });
  e.PutBool(r.three_phase);
  e.PutU32(r.store.item);
  e.PutU32(r.store.page_id);
  e.PutI64(r.store.before_value);
  e.PutU64(r.store.before_version);
  e.PutI64(r.store.value);
  e.PutU64(r.store.version);
  e.PutBool(r.store.tentative);
  e.PutU64(r.prev_lsn);
  e.PutU64(r.undo_next_lsn);
  if (r.kind == WalRecordKind::kCheckpointEnd) {
    e.PutVector(r.checkpoint.att, [&](const std::pair<TxnId, Lsn>& a) {
      e.PutTxnId(a.first);
      e.PutU64(a.second);
    });
    e.PutVector(r.checkpoint.dpt, [&](const std::pair<uint32_t, Lsn>& p) {
      e.PutU32(p.first);
      e.PutU64(p.second);
    });
  }
}

Result<WalRecord> DecodeRecordPayload(Decoder& d, uint32_t version) {
  WalRecord r;
  RAINBOW_ASSIGN_OR_RETURN(uint8_t kind, d.GetU8());
  uint8_t max_kind = static_cast<uint8_t>(WalRecordKind::kCheckpointEnd);
  if (version == 1) max_kind = static_cast<uint8_t>(WalRecordKind::kEnd);
  if (version == 2) max_kind = static_cast<uint8_t>(WalRecordKind::kStoreEnd);
  if (kind > max_kind) {
    return Status::InvalidArgument("bad record kind");
  }
  r.kind = static_cast<WalRecordKind>(kind);
  RAINBOW_ASSIGN_OR_RETURN(r.txn, d.GetTxnId());
  RAINBOW_ASSIGN_OR_RETURN(r.coordinator, d.GetU32());
  RAINBOW_ASSIGN_OR_RETURN(uint32_t writes, d.GetU32());
  for (uint32_t w = 0; w < writes; ++w) {
    WalRecord::Write write;
    RAINBOW_ASSIGN_OR_RETURN(write.item, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(write.value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(write.version, d.GetU64());
    r.writes.push_back(write);
  }
  RAINBOW_ASSIGN_OR_RETURN(uint32_t participants, d.GetU32());
  for (uint32_t p = 0; p < participants; ++p) {
    RAINBOW_ASSIGN_OR_RETURN(SiteId s, d.GetU32());
    r.participants.push_back(s);
  }
  RAINBOW_ASSIGN_OR_RETURN(r.three_phase, d.GetBool());
  if (version >= 2) {
    RAINBOW_ASSIGN_OR_RETURN(r.store.item, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(r.store.page_id, d.GetU32());
    RAINBOW_ASSIGN_OR_RETURN(r.store.before_value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.before_version, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.value, d.GetI64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.version, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.store.tentative, d.GetBool());
    RAINBOW_ASSIGN_OR_RETURN(r.prev_lsn, d.GetU64());
    RAINBOW_ASSIGN_OR_RETURN(r.undo_next_lsn, d.GetU64());
  }
  if (r.kind == WalRecordKind::kCheckpointEnd) {
    RAINBOW_ASSIGN_OR_RETURN(uint32_t att, d.GetU32());
    for (uint32_t a = 0; a < att; ++a) {
      std::pair<TxnId, Lsn> entry;
      RAINBOW_ASSIGN_OR_RETURN(entry.first, d.GetTxnId());
      RAINBOW_ASSIGN_OR_RETURN(entry.second, d.GetU64());
      r.checkpoint.att.push_back(entry);
    }
    RAINBOW_ASSIGN_OR_RETURN(uint32_t dpt, d.GetU32());
    for (uint32_t p = 0; p < dpt; ++p) {
      std::pair<uint32_t, Lsn> entry;
      RAINBOW_ASSIGN_OR_RETURN(entry.first, d.GetU32());
      RAINBOW_ASSIGN_OR_RETURN(entry.second, d.GetU64());
      r.checkpoint.dpt.push_back(entry);
    }
  }
  return r;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  uint8_t b[4];
  std::memcpy(b, &v, sizeof(v));
  out.insert(out.end(), b, b + sizeof(v));
}

}  // namespace

std::vector<uint8_t> Wal::Serialize() const {
  Encoder header;
  header.PutU32(kWalMagic);
  header.PutU32(kWalVersion);
  header.PutU64(master_);
  header.PutU64(base_);
  // Digest: only transactions with truncated records need their bits
  // carried in the header — everything else is rebuilt from the
  // retained records on load.
  uint32_t digest_count = 0;
  for (const auto& [txn, st] : proto_index_) {
    if (st.first_lsn != kNoLsn && st.first_lsn <= base_) ++digest_count;
  }
  header.PutU32(digest_count);
  for (const auto& [txn, st] : proto_index_) {
    if (st.first_lsn == kNoLsn || st.first_lsn > base_) continue;
    header.PutTxnId(txn);
    uint8_t flags = 0;
    if (st.prepared) flags |= kDigestPrepared;
    if (st.precommitted) flags |= kDigestPrecommitted;
    if (st.decided) flags |= kDigestDecided;
    if (st.commit) flags |= kDigestCommit;
    if (st.applied) flags |= kDigestApplied;
    if (st.ended) flags |= kDigestEnded;
    if (st.coordinator) flags |= kDigestCoordinator;
    header.PutU8(flags);
    header.PutU64(st.first_lsn);
  }
  header.PutU32(static_cast<uint32_t>(records_.size()));
  std::vector<uint8_t> out = header.Take();
  for (const WalRecord& r : records_) {
    Encoder pe;
    EncodeRecordPayload(pe, r);
    std::vector<uint8_t> payload = pe.Take();
    AppendU32(out, static_cast<uint32_t>(payload.size()));
    AppendU32(out, Crc32(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Status Wal::Deserialize(const std::vector<uint8_t>& buffer) {
  return DeserializeImpl(buffer, /*tolerant=*/false, nullptr);
}

Status Wal::DeserializeTolerant(const std::vector<uint8_t>& buffer,
                                size_t* dropped) {
  return DeserializeImpl(buffer, /*tolerant=*/true, dropped);
}

Status Wal::DeserializeImpl(const std::vector<uint8_t>& buffer, bool tolerant,
                            size_t* dropped) {
  if (dropped != nullptr) *dropped = 0;
  Decoder d(buffer);
  RAINBOW_ASSIGN_OR_RETURN(uint32_t magic, d.GetU32());
  if (magic != kWalMagic) return Status::InvalidArgument("not a WAL file");
  RAINBOW_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version < 1 || version > kWalVersion) {
    return Status::InvalidArgument("unsupported WAL version " +
                                   std::to_string(version));
  }
  if (version < 3) {
    // Legacy formats: records inline, no framing, no master pointer.
    RAINBOW_ASSIGN_OR_RETURN(uint32_t count, d.GetU32());
    std::vector<WalRecord> records;
    records.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      RAINBOW_ASSIGN_OR_RETURN(WalRecord r, DecodeRecordPayload(d, version));
      records.push_back(std::move(r));
    }
    if (!d.exhausted()) {
      return Status::InvalidArgument("trailing bytes in WAL file");
    }
    records_ = std::move(records);
    base_ = 0;
    master_ = kNoLsn;
    proto_index_.clear();
    Lsn lsn = 0;
    for (const WalRecord& r : records_) IndexRecord(r, ++lsn);
    return Status::OK();
  }
  // A header cut short never finished its very first save; even the
  // tolerant path has nothing to salvage.
  auto header_err = [tolerant]() {
    return tolerant ? Status::IoError("truncated WAL header")
                    : Status::InvalidArgument("truncated WAL header");
  };
  if (buffer.size() < kWalHeaderBytesV3) return header_err();
  Result<uint64_t> master_r = d.GetU64();
  if (!master_r.ok()) return header_err();
  uint64_t master = master_r.value();
  uint64_t base = 0;
  std::map<TxnId, ProtoState> digest;
  if (version >= 4) {
    Result<uint64_t> base_r = d.GetU64();
    if (!base_r.ok()) return header_err();
    base = base_r.value();
    Result<uint32_t> digest_count = d.GetU32();
    if (!digest_count.ok()) return header_err();
    for (uint32_t i = 0; i < digest_count.value(); ++i) {
      Result<TxnId> txn = d.GetTxnId();
      if (!txn.ok()) return header_err();
      Result<uint8_t> flags_r = d.GetU8();
      if (!flags_r.ok()) return header_err();
      Result<uint64_t> first = d.GetU64();
      if (!first.ok()) return header_err();
      uint8_t flags = flags_r.value();
      ProtoState st;
      st.first_lsn = first.value();
      st.prepared = (flags & kDigestPrepared) != 0;
      st.precommitted = (flags & kDigestPrecommitted) != 0;
      st.decided = (flags & kDigestDecided) != 0;
      st.commit = (flags & kDigestCommit) != 0;
      st.applied = (flags & kDigestApplied) != 0;
      st.ended = (flags & kDigestEnded) != 0;
      st.coordinator = (flags & kDigestCoordinator) != 0;
      digest[txn.value()] = st;
    }
  }
  Result<uint32_t> count_r = d.GetU32();
  if (!count_r.ok()) return header_err();
  uint32_t count = count_r.value();
  std::vector<WalRecord> records;
  records.reserve(count);
  size_t off = buffer.size() - d.remaining();
  size_t drop = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (buffer.size() - off < 8) {
      // Frame header overruns the file: a record that never finished
      // being appended. Tolerant mode truncates the log here.
      if (!tolerant) {
        return Status::InvalidArgument("truncated WAL record header");
      }
      drop = count - i;
      break;
    }
    uint32_t len, crc;
    std::memcpy(&len, buffer.data() + off, sizeof(len));
    std::memcpy(&crc, buffer.data() + off + 4, sizeof(crc));
    if (buffer.size() - off - 8 < len) {
      if (!tolerant) return Status::InvalidArgument("truncated WAL record");
      drop = count - i;
      break;
    }
    const uint8_t* payload = buffer.data() + off + 8;
    if (Crc32(payload, len) != crc) {
      if (!tolerant) {
        return Status::InvalidArgument("WAL record CRC mismatch");
      }
      if (i + 1 == count) {
        // Torn final record: the crash landed mid-append.
        drop = 1;
        break;
      }
      // Intact records follow the damage, so this is NOT an interrupted
      // append — it is media corruption, and truncating here would
      // silently drop committed records.
      return Status::IoError("WAL corruption at record " +
                             std::to_string(i + 1) + " of " +
                             std::to_string(count));
    }
    Decoder pd(payload, len);
    Result<WalRecord> rec = DecodeRecordPayload(pd, version);
    if (!rec.ok()) {
      // The CRC matched, so the bytes are what was written — the record
      // itself is malformed. Never a torn tail.
      return tolerant ? Status::IoError("bad WAL record payload")
                      : rec.status();
    }
    if (!pd.exhausted()) {
      return tolerant ? Status::IoError("trailing bytes in WAL record")
                      : Status::InvalidArgument("trailing bytes in WAL record");
    }
    records.push_back(std::move(rec).value());
    off += 8 + len;
  }
  if (!tolerant && off != buffer.size()) {
    return Status::InvalidArgument("trailing bytes in WAL file");
  }
  records_ = std::move(records);
  base_ = static_cast<Lsn>(base);
  // The master is advisory (analysis falls back to a full scan when it
  // finds no checkpoint); clamp rather than fail if the tail truncation
  // dropped the records it pointed at, and clear it if it points into
  // the head-truncated prefix (a malformed header, not a real save).
  master_ = std::min<Lsn>(master, LastLsn());
  if (master_ <= base_) master_ = kNoLsn;
  // Digest entries cover the truncated prefix; retained records rebuild
  // the rest incrementally, min-merging first_lsn where both exist.
  proto_index_ = std::move(digest);
  Lsn lsn = base_;
  for (const WalRecord& r : records_) IndexRecord(r, ++lsn);
  if (dropped != nullptr) *dropped = drop;
  return Status::OK();
}

Status Wal::SaveToFile(const std::string& path) const {
  std::vector<uint8_t> bytes = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fwrite can report success while the data sits in the stdio buffer;
  // fflush forces it down and surfaces ENOSPC-style failures, and
  // ferror catches an error either call absorbed. Without these a full
  // disk looked like a successful save.
  bool flushed = std::fflush(f) == 0;
  bool stream_error = std::ferror(f) != 0;
  int rc = std::fclose(f);
  if (written != bytes.size() || !flushed || stream_error || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Status Wal::LoadFromFile(const std::string& path, size_t* dropped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  // fread returning 0 means EOF *or* error; without this check a
  // mid-file read error would surface as a confusing decode failure (or
  // silently truncate at a record boundary).
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read error on " + path);
  return DeserializeTolerant(bytes, dropped);
}

}  // namespace rainbow
