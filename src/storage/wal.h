#ifndef RAINBOW_STORAGE_WAL_H_
#define RAINBOW_STORAGE_WAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Record types in a site's write-ahead log.
enum class WalRecordKind {
  kPrepared,        ///< participant force-logged YES vote + buffered writes
  kPreCommitted,    ///< 3PC participant entered the pre-commit state
  kCommitDecision,  ///< coordinator (or participant) learned: commit
  kAbortDecision,   ///< coordinator (or participant) learned: abort
  kApplied,         ///< participant applied the decision locally
  kEnd,             ///< coordinator received all acks; txn closed
};

const char* WalRecordKindName(WalRecordKind k);

/// One WAL record. Prepared records carry the buffered writes (with the
/// final versions from the coordinator) and the participant list needed
/// for cooperative termination after a crash.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kEnd;
  TxnId txn;
  SiteId coordinator = kInvalidSite;
  struct Write {
    ItemId item = kInvalidItem;
    Value value = 0;
    Version version = 0;
  };
  std::vector<Write> writes;          ///< kPrepared only
  std::vector<SiteId> participants;   ///< kPrepared only
  bool three_phase = false;           ///< kPrepared only
};

/// Per-site write-ahead log. In this simulation "durable" means the Wal
/// object intentionally survives Site::Crash() (which wipes all volatile
/// protocol state); recovery scans it to find transactions that were
/// prepared but undecided, and decisions that were made but not fully
/// acknowledged.
class Wal {
 public:
  void Append(WalRecord record);

  const std::vector<WalRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Recovery summary for one transaction found in the log.
  struct TxnLogState {
    bool prepared = false;
    bool precommitted = false;
    bool decided = false;
    bool commit = false;  ///< valid if decided
    bool applied = false;
    bool ended = false;
    WalRecord prepared_record;  ///< valid if prepared
    /// Non-empty iff this site logged the decision as the coordinator
    /// (coordinator decision records carry the participant list).
    std::vector<SiteId> decision_participants;
  };

  /// Scans the log and summarizes every transaction that appears in it.
  std::unordered_map<TxnId, TxnLogState> Scan() const;

  /// Transactions that this site prepared (voted YES) but whose outcome
  /// it never learned — the "in doubt" set the recovery protocol must
  /// resolve.
  std::vector<WalRecord> InDoubt() const;

  /// Decisions this site (as coordinator) logged but never closed with
  /// an End record; after recovery the decision must be re-propagated to
  /// the recorded participants.
  struct UnendedDecision {
    TxnId txn;
    bool commit = false;
    std::vector<SiteId> participants;
  };
  std::vector<UnendedDecision> DecidedUnended() const;

  // --- on-disk persistence ---
  // The simulation treats the in-memory Wal as durable; these let a
  // session's logs be written out and reloaded across process runs
  // (e.g. to archive an experiment or hand a crash scenario to
  // students). The format is the length-prefixed binary record encoding
  // of common/binary_io.h with a magic header.

  /// Serializes all records.
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer produced by Serialize(), replacing the current
  /// records. Fails (leaving the log unchanged) on any corruption.
  Status Deserialize(const std::vector<uint8_t>& buffer);

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  std::vector<WalRecord> records_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_WAL_H_
