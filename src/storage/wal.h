#ifndef RAINBOW_STORAGE_WAL_H_
#define RAINBOW_STORAGE_WAL_H_

#include <cassert>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rainbow {

/// Log sequence number: 1-based position in the site's WAL. LSNs are
/// stable across head truncation: after TruncateBefore() the record at
/// records()[i] has LSN base() + i + 1, and At(lsn) resolves an LSN
/// regardless of how much head has been reclaimed. kNoLsn marks "no
/// record" in backward chains and in freshly loaded page headers.
using Lsn = uint64_t;
inline constexpr Lsn kNoLsn = 0;

/// Record types in a site's write-ahead log. The first six are the
/// commit-protocol records; the kStore* kinds are the storage engine's
/// ARIES-style physiological records (begin / update / commit / abort /
/// compensation / end) that the page engine's restart pass replays.
enum class WalRecordKind {
  kPrepared,        ///< participant force-logged YES vote + buffered writes
  kPreCommitted,    ///< 3PC participant entered the pre-commit state
  kCommitDecision,  ///< coordinator (or participant) learned: commit
  kAbortDecision,   ///< coordinator (or participant) learned: abort
  kApplied,         ///< participant applied the decision locally
  kEnd,             ///< coordinator received all acks; txn closed
  kStoreBegin,      ///< storage txn opened (first logged page update)
  kStoreUpdate,     ///< physiological page update (before/after images)
  kStoreCommit,     ///< storage txn committed; its updates are winners
  kStoreAbort,      ///< storage txn rollback started
  kStoreClr,        ///< compensation record written while undoing
  kStoreEnd,        ///< storage txn rollback complete
  kCheckpointBegin, ///< fuzzy checkpoint opened
  kCheckpointEnd,   ///< checkpoint closed; carries the ATT + dirty-page
                    ///< table (prev_lsn points back at the begin record)
};

const char* WalRecordKindName(WalRecordKind k);

/// One WAL record. Prepared records carry the buffered writes (with the
/// final versions from the coordinator) and the participant list needed
/// for cooperative termination after a crash. Store records carry one
/// physiological page update (kStoreUpdate/kStoreClr) and the backward
/// LSN chain of their storage transaction.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kEnd;
  TxnId txn;
  SiteId coordinator = kInvalidSite;
  struct Write {
    ItemId item = kInvalidItem;
    Value value = 0;
    Version version = 0;
  };
  std::vector<Write> writes;          ///< kPrepared only
  std::vector<SiteId> participants;   ///< kPrepared only
  bool three_phase = false;           ///< kPrepared only

  /// Payload of kStoreUpdate / kStoreClr. For an update, (value,
  /// version) is the after-image and (before_value, before_version) the
  /// committed image it replaced. For a CLR, (value, version) is the
  /// image being restored and (before_value, before_version) the image
  /// being compensated away — restart undo only writes the page when it
  /// still holds exactly that compensated image, so a CLR can never
  /// clobber an interleaved committed write.
  struct StoreOp {
    ItemId item = kInvalidItem;
    uint32_t page_id = 0;     ///< leaf page holding the item at log time
    Value before_value = 0;
    Version before_version = 0;
    Value value = 0;
    Version version = 0;
    /// Prewrite-time image logged before the commit decision: its
    /// version is a unique tentative tag, superseded by the final
    /// kStoreUpdate written when the decision applies.
    bool tentative = false;
  };
  StoreOp store;                ///< kStoreUpdate / kStoreClr only
  Lsn prev_lsn = kNoLsn;        ///< backward chain within the storage txn
  Lsn undo_next_lsn = kNoLsn;   ///< kStoreClr: next record left to undo

  /// Payload of kCheckpointEnd: the active (storage) transaction table
  /// — txn -> LSN of its latest log record — and the dirty-page table —
  /// page -> recLSN, the LSN whose update first dirtied the resident
  /// page — as captured while the checkpoint was open. Both are sorted
  /// by key so the record is byte-stable across runs.
  struct CheckpointData {
    std::vector<std::pair<TxnId, Lsn>> att;
    std::vector<std::pair<uint32_t, Lsn>> dpt;
  };
  CheckpointData checkpoint;    ///< kCheckpointEnd only

  /// Convenience constructor for commit-protocol records (the storage
  /// fields keep their defaults).
  static WalRecord Protocol(WalRecordKind kind, TxnId txn, SiteId coordinator,
                            std::vector<Write> writes,
                            std::vector<SiteId> participants,
                            bool three_phase) {
    WalRecord r;
    r.kind = kind;
    r.txn = txn;
    r.coordinator = coordinator;
    r.writes = std::move(writes);
    r.participants = std::move(participants);
    r.three_phase = three_phase;
    return r;
  }
};

/// Per-site write-ahead log. In this simulation "durable" means the Wal
/// object intentionally survives Site::Crash() (which wipes all volatile
/// protocol state); recovery scans it to find transactions that were
/// prepared but undecided, and decisions that were made but not fully
/// acknowledged. The page storage engine shares this log: its kStore*
/// records interleave with the protocol records in one LSN space.
class Wal {
 public:
  /// Appends and returns the record's LSN (1-based, truncation-stable).
  Lsn Append(WalRecord record);

  /// The retained records: records()[i] has LSN base() + i + 1.
  const std::vector<WalRecord>& records() const { return records_; }
  /// Number of retained (not truncated) records.
  size_t size() const { return records_.size(); }

  /// Number of records reclaimed from the head by TruncateBefore();
  /// the oldest retained record has LSN base() + 1.
  Lsn base() const { return base_; }

  /// LSN of the newest record (== base() when the log is empty).
  Lsn LastLsn() const { return base_ + static_cast<Lsn>(records_.size()); }

  /// LSN the next appended record will get.
  Lsn NextLsn() const { return LastLsn() + 1; }

  /// True iff `lsn` names a retained record.
  bool Contains(Lsn lsn) const { return lsn > base_ && lsn <= LastLsn(); }

  /// The retained record with the given LSN; asserts Contains(lsn).
  const WalRecord& At(Lsn lsn) const {
    assert(Contains(lsn));
    return records_[static_cast<size_t>(lsn - base_ - 1)];
  }

  /// Reclaims every record with LSN < `lsn` (clamped to the retained
  /// range) and returns how many were dropped. LSNs of the surviving
  /// records do not change. Protocol state of the dropped records stays
  /// queryable: the incremental per-transaction index keeps their
  /// prepared/decided/applied/ended bits, so Scan() (and with it the
  /// recovery paths that rebuild decision caches) answers exactly as it
  /// did before the truncation — only the raw record bodies are gone.
  /// The caller owns the safety argument that nothing will dereference
  /// the dropped LSNs (see PageStore::EndCheckpoint's barrier).
  size_t TruncateBefore(Lsn lsn);

  /// Earliest LSN still needed by commit-protocol recovery: the first
  /// record of any transaction that is not yet closed (undecided, or
  /// decided but not yet applied/acknowledged). NextLsn() when every
  /// logged transaction is closed. Head truncation must never pass
  /// this point, or InDoubt()/DecidedUnended() would lose records they
  /// still have to return.
  Lsn ProtocolBarrier() const;

  /// LSN of the kCheckpointBegin record of the last COMPLETE checkpoint
  /// (the ARIES "master record"); kNoLsn before the first one. Restart
  /// analysis starts scanning here instead of at the log's start.
  Lsn master() const { return master_; }
  void SetMaster(Lsn lsn) { master_ = lsn; }

  /// True iff `txn` has a kPrepared record and no decision record yet.
  /// Maintained incrementally on Append (and rebuilt on load), so the
  /// storage engine's restart analysis does not rescan the protocol
  /// records to classify in-doubt transactions.
  bool IsPreparedUndecided(const TxnId& txn) const;

  /// Recovery summary for one transaction found in the log.
  struct TxnLogState {
    bool prepared = false;
    bool precommitted = false;
    bool decided = false;
    bool commit = false;  ///< valid if decided
    bool applied = false;
    bool ended = false;
    WalRecord prepared_record;  ///< valid if prepared
    /// Non-empty iff this site logged the decision as the coordinator
    /// (coordinator decision records carry the participant list).
    std::vector<SiteId> decision_participants;
  };

  /// Scans the log and summarizes every transaction that appears in it.
  /// Storage-engine records (kStore*) are invisible here — the page
  /// engine's restart pass scans them separately. Transactions whose
  /// records were head-truncated still appear, reconstructed from the
  /// incremental digest (truncation only ever drops closed
  /// transactions' records, so the digest bits are the whole story;
  /// prepared_record / decision_participants are only populated from
  /// retained records, which is exactly the set recovery dereferences).
  std::unordered_map<TxnId, TxnLogState> Scan() const;

  /// Transactions that this site prepared (voted YES) but whose outcome
  /// it never learned — the "in doubt" set the recovery protocol must
  /// resolve. Sorted by TxnId so recovery reinstates in a canonical
  /// order regardless of the scan's hash-map iteration order.
  std::vector<WalRecord> InDoubt() const;

  /// Decisions this site (as coordinator) logged but never closed with
  /// an End record; after recovery the decision must be re-propagated to
  /// the recorded participants. Sorted by TxnId (see InDoubt()).
  struct UnendedDecision {
    TxnId txn;
    bool commit = false;
    std::vector<SiteId> participants;
  };
  std::vector<UnendedDecision> DecidedUnended() const;

  // --- on-disk persistence ---
  // The simulation treats the in-memory Wal as durable; these let a
  // session's logs be written out and reloaded across process runs
  // (e.g. to archive an experiment or hand a crash scenario to
  // students). The format is the length-prefixed binary record encoding
  // of common/binary_io.h with a magic header.

  /// Serializes all records.
  std::vector<uint8_t> Serialize() const;

  /// Parses a buffer produced by Serialize(), replacing the current
  /// records. Fails (leaving the log unchanged) on any corruption,
  /// including a truncated tail — the strict mode for archives that are
  /// supposed to be complete.
  Status Deserialize(const std::vector<uint8_t>& buffer);

  /// Like Deserialize(), but treats a torn tail the way a real database
  /// must: a final record cut short by a crash mid-append (frame
  /// overrunning the buffer, or a CRC mismatch on the last declared
  /// record) is dropped and `*dropped` (optional) reports how many
  /// records were discarded. Corruption anywhere BEFORE the tail —
  /// a CRC mismatch with intact records after it — is still an IoError:
  /// that is media damage, not an interrupted append.
  Status DeserializeTolerant(const std::vector<uint8_t>& buffer,
                             size_t* dropped = nullptr);

  Status SaveToFile(const std::string& path) const;

  /// Loads via DeserializeTolerant (real files can have torn tails).
  Status LoadFromFile(const std::string& path, size_t* dropped = nullptr);

 private:
  /// Cumulative protocol bits for one transaction — the digest that
  /// outlives head truncation. first_lsn anchors ProtocolBarrier();
  /// coordinator means this site logged the decision with a participant
  /// list (so kEnd, not kApplied, closes the transaction here).
  struct ProtoState {
    Lsn first_lsn = kNoLsn;
    bool prepared = false;
    bool precommitted = false;
    bool decided = false;
    bool commit = false;
    bool applied = false;
    bool ended = false;
    bool coordinator = false;

    /// A closed transaction's records are safe to truncate: the digest
    /// alone answers every later query about it.
    bool Closed() const {
      return decided && (!prepared || applied) && (!coordinator || ended);
    }
  };

  Status DeserializeImpl(const std::vector<uint8_t>& buffer, bool tolerant,
                         size_t* dropped);
  void IndexRecord(const WalRecord& record, Lsn lsn);

  std::vector<WalRecord> records_;
  /// Records reclaimed from the head; records_[i] has LSN base_ + i + 1.
  Lsn base_ = 0;
  Lsn master_ = kNoLsn;
  /// Incremental per-transaction protocol digest (see ProtoState).
  /// Survives truncation; serialized for transactions whose records
  /// were truncated so a saved log reloads with identical Scan() state.
  std::map<TxnId, ProtoState> proto_index_;
};

}  // namespace rainbow

#endif  // RAINBOW_STORAGE_WAL_H_
