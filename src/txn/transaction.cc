#include "txn/transaction.h"

#include <sstream>

#include "common/string_util.h"
#include "common/trace.h"

namespace rainbow {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kRead:
      return "R";
    case OpKind::kWrite:
      return "W";
    case OpKind::kIncrement:
      return "I";
    case OpKind::kScan:
      return "S";
  }
  return "?";
}

std::string Op::ToString() const {
  switch (kind) {
    case OpKind::kRead:
      return StringPrintf("R(%u)", item);
    case OpKind::kWrite:
      return StringPrintf("W(%u=%lld)", item, static_cast<long long>(value));
    case OpKind::kIncrement:
      return StringPrintf("I(%u+=%lld)", item, static_cast<long long>(value));
    case OpKind::kScan:
      return StringPrintf("S(%u..%lld)", item, static_cast<long long>(value));
  }
  return "?";
}

bool TxnProgram::read_only() const {
  for (const Op& op : ops) {
    if (op.writes()) return false;
  }
  return true;
}

std::string TxnProgram::ToString() const {
  std::ostringstream os;
  if (!label.empty()) os << label << ": ";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i) os << " ";
    os << ops[i].ToString();
  }
  return os.str();
}

std::string TxnOutcome::ToString() const {
  std::ostringstream os;
  os << id.ToString() << " "
     << (committed ? "COMMIT"
                   : std::string("ABORT(") + AbortCauseName(abort_cause) + ")")
     << StringPrintf(" rt=%lldus ops=%u trips=%u",
                     static_cast<long long>(response_time()), num_ops,
                     round_trips);
  if (!committed && !abort_detail.empty()) os << " [" << abort_detail << "]";
  return os.str();
}

}  // namespace rainbow
