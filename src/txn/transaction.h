#ifndef RAINBOW_TXN_TRANSACTION_H_
#define RAINBOW_TXN_TRANSACTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rainbow {

/// Kinds of operations a Rainbow transaction performs on database items.
enum class OpKind {
  kRead,       ///< read the item
  kWrite,      ///< blind write of a constant
  kIncrement,  ///< read-modify-write: new value = current + delta
  kScan,       ///< range read: `value` items starting at `item`
};

const char* OpKindName(OpKind k);

/// One operation of a transaction program. Items are referenced by id;
/// the manual workload panel composes these from item names via the
/// catalog.
struct Op {
  OpKind kind = OpKind::kRead;
  ItemId item = kInvalidItem;
  Value value = 0;  ///< write: new value; increment: delta; read: unused

  static Op Read(ItemId item) { return Op{OpKind::kRead, item, 0}; }
  static Op Write(ItemId item, Value v) { return Op{OpKind::kWrite, item, v}; }
  static Op Increment(ItemId item, Value delta) {
    return Op{OpKind::kIncrement, item, delta};
  }
  /// Range read of `length` consecutive items starting at `item`. The
  /// coordinator expands it into per-item reads at Start() (the RCP
  /// reads each copy through the replica-control path; the page engine
  /// serves the copies from its B+ tree leaf chain).
  static Op Scan(ItemId item, Value length) {
    return Op{OpKind::kScan, item, length};
  }

  bool reads() const { return kind != OpKind::kWrite; }
  bool writes() const {
    return kind != OpKind::kRead && kind != OpKind::kScan;
  }
  std::string ToString() const;
};

/// A transaction program: the ordered list of operations submitted to a
/// home site, processed one at a time by the RCP (paper §2.1).
struct TxnProgram {
  std::vector<Op> ops;
  std::string label;  ///< optional, for traces and the session log

  bool read_only() const;
  std::string ToString() const;
};

/// What happened to a submitted transaction, reported back to the
/// workload generator / progress monitor when the thread finishes.
struct TxnOutcome {
  TxnId id;
  TxnTimestamp ts;  ///< the timestamp the transaction ran with
  bool committed = false;
  AbortCause abort_cause = AbortCause::kNone;
  std::string abort_detail;
  SimTime submitted_at = 0;
  SimTime finished_at = 0;
  SiteId home = kInvalidSite;
  uint32_t num_ops = 0;
  uint32_t round_trips = 0;  ///< request/reply pairs the coordinator ran
  /// Values observed by read/increment ops, in program order (committed
  /// transactions only; used by examples and the serializability tests).
  std::vector<Value> reads;

  SimTime response_time() const { return finished_at - submitted_at; }
  std::string ToString() const;
};

/// Completion callback delivered by the home site when the transaction
/// finishes (commits or aborts).
using TxnCallback = std::function<void(const TxnOutcome&)>;

/// Committed access record used by the history checker: which version a
/// committed transaction read / installed per item.
struct CommittedAccess {
  ItemId item = kInvalidItem;
  bool is_write = false;
  Version version = 0;  ///< read: version observed; write: version installed
};

}  // namespace rainbow

#endif  // RAINBOW_TXN_TRANSACTION_H_
