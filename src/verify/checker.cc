#include "verify/checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "common/table.h"

namespace rainbow {

const char* InvariantKindName(InvariantKind k) {
  switch (k) {
    case InvariantKind::kQuorumConfig:
      return "quorum-config";
    case InvariantKind::kSerializability:
      return "serializability";
    case InvariantKind::kAtomicity:
      return "atomicity";
    case InvariantKind::kReplication:
      return "replication";
    case InvariantKind::kLockDiscipline:
      return "lock-discipline";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = StringPrintf("VIOLATION [%s/%s]",
                                 InvariantKindName(invariant), code.c_str());
  if (txn.valid()) out += " " + txn.ToString();
  if (item != kInvalidItem) out += StringPrintf(" item %u", item);
  if (site != kInvalidSite) out += StringPrintf(" @S%u", site);
  out += ": " + message;
  return out;
}

size_t CheckReport::CountFor(InvariantKind kind) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.invariant == kind) ++n;
  }
  return n;
}

std::string CheckReport::Render() const {
  std::ostringstream os;
  os << "history check: " << events << " events, " << committed
     << " committed, " << aborted << " aborted";
  if (truncated) {
    os << " (trace truncated: " << dropped
       << " records dropped — trace passes skipped)";
  }
  os << "\n";
  TablePrinter t({"invariant", "violations", "checked"});
  t.AddRow({InvariantKindName(InvariantKind::kSerializability),
            std::to_string(CountFor(InvariantKind::kSerializability)),
            StringPrintf("%zu txns, %zu edges", graph_nodes, graph_edges)});
  t.AddRow({InvariantKindName(InvariantKind::kAtomicity),
            std::to_string(CountFor(InvariantKind::kAtomicity)),
            StringPrintf("%zu committed", committed)});
  t.AddRow({InvariantKindName(InvariantKind::kReplication),
            std::to_string(CountFor(InvariantKind::kReplication)),
            StringPrintf("%zu events", events)});
  t.AddRow({InvariantKindName(InvariantKind::kLockDiscipline),
            std::to_string(CountFor(InvariantKind::kLockDiscipline)),
            StringPrintf("%zu committed", committed)});
  t.AddRow({InvariantKindName(InvariantKind::kQuorumConfig),
            std::to_string(CountFor(InvariantKind::kQuorumConfig)), "static"});
  os << t.ToString();
  if (violations.empty()) {
    os << "all invariants hold\n";
  } else {
    for (const Violation& v : violations) os << v.ToString() << "\n";
  }
  return os.str();
}

HistoryChecker::HistoryChecker(SystemConfig config)
    : config_(std::move(config)) {}

namespace {

/// Classification of the transactions a trace mentions. A transaction
/// counts as committed when its coordinator reported commit or any
/// replica applied a commit decision (3PC termination can commit a
/// transaction whose coordinator never came back).
struct TxnOutcomes {
  std::set<TxnId> committed;
  std::set<TxnId> aborted;

  static TxnOutcomes From(const TraceCollector& trace) {
    TxnOutcomes out;
    for (const TraceRecord& r : trace.records()) {
      switch (r.kind) {
        case TraceEventKind::kTxnCommit:
          out.committed.insert(r.txn);
          break;
        case TraceEventKind::kTxnAbort:
          out.aborted.insert(r.txn);
          break;
        case TraceEventKind::kDecision:
        case TraceEventKind::kDecisionApplied:
          if (r.arg == 1) out.committed.insert(r.txn);
          break;
        default:
          break;
      }
    }
    return out;
  }
};

}  // namespace

CheckReport HistoryChecker::Check(const TraceCollector& trace) const {
  CheckReport report;
  report.events = trace.records().size();
  report.dropped = trace.dropped();
  CheckQuorumConfig(report);
  if (trace.dropped() > 0) {
    // An evicted prefix would make every absence-based check unsound
    // (e.g. "no vote recorded" when the vote was simply dropped).
    report.truncated = true;
    return report;
  }
  TxnOutcomes outcomes = TxnOutcomes::From(trace);
  report.committed = outcomes.committed.size();
  report.aborted = outcomes.aborted.size();
  CheckSerializability(trace, report);
  CheckAtomicity(trace, report);
  CheckReplication(trace, report);
  if (config_.protocols.cc == CcKind::kTwoPhaseLocking) {
    CheckLockDiscipline(trace, report);
  }
  return report;
}

void HistoryChecker::CheckQuorumConfig(CheckReport& report) const {
  if (config_.protocols.rcp != RcpKind::kQuorumConsensus) return;
  for (const ItemConfig& item : config_.items) {
    int total = 0;
    if (item.votes.empty()) {
      total = static_cast<int>(item.copies.size());
    } else {
      for (int v : item.votes) total += v;
    }
    // 0 = majority, mirroring RainbowSystem's schema construction.
    int rq = item.read_quorum > 0 ? item.read_quorum : total / 2 + 1;
    int wq = item.write_quorum > 0 ? item.write_quorum : total / 2 + 1;
    if (rq + wq <= total) {
      Violation v;
      v.invariant = InvariantKind::kQuorumConfig;
      v.code = "rw-no-intersect";
      v.message = StringPrintf(
          "item '%s': R(%d) + W(%d) <= total votes (%d); a read quorum "
          "can miss the latest write",
          item.name.c_str(), rq, wq, total);
      report.violations.push_back(std::move(v));
    }
    if (2 * wq <= total) {
      Violation v;
      v.invariant = InvariantKind::kQuorumConfig;
      v.code = "ww-no-intersect";
      v.message = StringPrintf(
          "item '%s': 2W(%d) <= total votes (%d); two write quorums can "
          "be disjoint and install conflicting versions",
          item.name.c_str(), wq, total);
      report.violations.push_back(std::move(v));
    }
  }
}

namespace {

/// Finds one cycle in a directed graph (adjacency sets over dense node
/// indices) and returns it as a node sequence (first == last), or empty
/// when the graph is acyclic. Iterative colored DFS keeping the current
/// path so the offending cycle can be printed.
std::vector<size_t> FindCycle(const std::vector<std::set<size_t>>& edges) {
  const size_t n = edges.size();
  std::vector<int> color(n, 0);  // 0 white, 1 on path, 2 done
  struct Frame {
    size_t node;
    std::set<size_t>::const_iterator next;
  };
  std::vector<Frame> path;
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    color[start] = 1;
    path.push_back(Frame{start, edges[start].begin()});
    while (!path.empty()) {
      Frame& f = path.back();
      if (f.next == edges[f.node].end()) {
        color[f.node] = 2;
        path.pop_back();
        continue;
      }
      size_t succ = *f.next;
      ++f.next;
      if (color[succ] == 1) {
        // Back edge: the cycle is the path suffix from succ to f.node.
        std::vector<size_t> cycle;
        size_t i = 0;
        while (path[i].node != succ) ++i;
        for (; i < path.size(); ++i) cycle.push_back(path[i].node);
        cycle.push_back(succ);
        return cycle;
      }
      if (color[succ] == 0) {
        color[succ] = 1;
        path.push_back(Frame{succ, edges[succ].begin()});
      }
    }
  }
  return {};
}

}  // namespace

void HistoryChecker::CheckSerializability(const TraceCollector& trace,
                                          CheckReport& report) const {
  TxnOutcomes outcomes = TxnOutcomes::From(trace);
  const std::set<TxnId>& committed = outcomes.committed;

  // Per item: the committed writer of each version, and the committed
  // readers of each version. kWriteApplied repeats per replica; the
  // replication pass checks cross-replica agreement, so the first writer
  // wins here.
  struct ItemHistory {
    std::map<Version, TxnId> writers;
    std::map<Version, std::set<TxnId>> readers;
  };
  // Keyed by ItemId in a *sorted* map: the iteration below assigns the
  // precedence-graph node indices and emits violations, so hash-order
  // iteration would leak into the printed cycle and the violation list
  // (rainbow_lint D1).
  std::map<ItemId, ItemHistory> items;
  for (const TraceRecord& r : trace.records()) {
    if (!committed.contains(r.txn)) continue;
    if (r.kind == TraceEventKind::kWriteApplied) {
      items[r.item].writers.emplace(static_cast<Version>(r.arg), r.txn);
    } else if (r.kind == TraceEventKind::kReadDone) {
      items[r.item].readers[static_cast<Version>(r.arg)].insert(r.txn);
    }
  }

  // Dense node indices over the committed transactions that conflict.
  std::map<TxnId, size_t> index;
  std::vector<TxnId> nodes;
  auto node_of = [&](TxnId t) {
    auto [it, inserted] = index.try_emplace(t, nodes.size());
    if (inserted) nodes.push_back(t);
    return it->second;
  };
  std::vector<std::set<size_t>> edges;
  size_t edge_count = 0;
  auto add_edge = [&](TxnId a, TxnId b) {
    if (a == b) return;
    size_t ia = node_of(a), ib = node_of(b);
    if (edges.size() < nodes.size()) edges.resize(nodes.size());
    if (edges[ia].insert(ib).second) ++edge_count;
  };

  for (const auto& [item, hist] : items) {
    // ww: the writer of each version precedes the writer of the next.
    const TxnId* prev = nullptr;
    for (const auto& [version, writer] : hist.writers) {
      if (prev != nullptr) add_edge(*prev, writer);
      prev = &writer;
    }
    for (const auto& [version, readers] : hist.readers) {
      // wr: the writer of `version` precedes its readers. Version 0 is
      // the initial load and has no writer.
      auto w = hist.writers.find(version);
      if (w != hist.writers.end()) {
        for (TxnId rdr : readers) add_edge(w->second, rdr);
      } else if (version != 0) {
        Violation v;
        v.invariant = InvariantKind::kSerializability;
        v.code = "read-uninstalled-version";
        v.txn = *readers.begin();
        v.item = item;
        v.message = StringPrintf(
            "version %llu was read but no committed transaction installed "
            "it", static_cast<unsigned long long>(version));
        report.violations.push_back(std::move(v));
      }
      // rw: readers of `version` precede the writer of the next version.
      auto next = hist.writers.upper_bound(version);
      if (next != hist.writers.end()) {
        for (TxnId rdr : readers) add_edge(rdr, next->second);
      }
    }
  }
  if (edges.size() < nodes.size()) edges.resize(nodes.size());
  report.graph_nodes = nodes.size();
  report.graph_edges = edge_count;

  std::vector<size_t> cycle = FindCycle(edges);
  if (!cycle.empty()) {
    std::string path;
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i) path += " -> ";
      path += nodes[cycle[i]].ToString();
    }
    Violation v;
    v.invariant = InvariantKind::kSerializability;
    v.code = "precedence-cycle";
    v.txn = nodes[cycle.front()];
    v.message = "conflict cycle: " + path;
    report.violations.push_back(std::move(v));
  }
}

void HistoryChecker::CheckAtomicity(const TraceCollector& trace,
                                    CheckReport& report) const {
  struct AcpView {
    std::set<SiteId> applied_commit;
    std::set<SiteId> applied_abort;
    std::set<SiteId> yes_voters;
    std::set<SiteId> no_voters;
    int64_t prepared_cohort = -1;  ///< kPrepare arg; -1 = never prepared
    int decisions_commit = 0;      ///< coordinator kDecision arg==1
    int decisions_abort = 0;
  };
  std::map<TxnId, AcpView> txns;
  for (const TraceRecord& r : trace.records()) {
    switch (r.kind) {
      case TraceEventKind::kPrepare:
        txns[r.txn].prepared_cohort =
            std::max(txns[r.txn].prepared_cohort, r.arg);
        break;
      case TraceEventKind::kVote:
        (r.arg == 1 ? txns[r.txn].yes_voters : txns[r.txn].no_voters)
            .insert(r.site);
        break;
      case TraceEventKind::kDecision:
        ++(r.arg == 1 ? txns[r.txn].decisions_commit
                      : txns[r.txn].decisions_abort);
        break;
      case TraceEventKind::kDecisionApplied:
        (r.arg == 1 ? txns[r.txn].applied_commit : txns[r.txn].applied_abort)
            .insert(r.site);
        break;
      default:
        break;
    }
  }
  for (const auto& [txn, view] : txns) {
    if (!view.applied_commit.empty() && !view.applied_abort.empty()) {
      Violation v;
      v.invariant = InvariantKind::kAtomicity;
      v.code = "split-decision";
      v.txn = txn;
      v.site = *view.applied_commit.begin();
      v.message = StringPrintf(
          "COMMIT applied at %zu site(s) (first @S%u) but ABORT applied "
          "at %zu site(s) (first @S%u)",
          view.applied_commit.size(), *view.applied_commit.begin(),
          view.applied_abort.size(), *view.applied_abort.begin());
      report.violations.push_back(std::move(v));
    }
    if (view.decisions_commit > 0 && view.decisions_abort > 0) {
      Violation v;
      v.invariant = InvariantKind::kAtomicity;
      v.code = "contradictory-decisions";
      v.txn = txn;
      v.message = "coordinator recorded both COMMIT and ABORT decisions";
      report.violations.push_back(std::move(v));
    }
    bool committed =
        view.decisions_commit > 0 || !view.applied_commit.empty();
    if (committed && view.prepared_cohort >= 0) {
      if (!view.no_voters.empty()) {
        Violation v;
        v.invariant = InvariantKind::kAtomicity;
        v.code = "commit-despite-no-vote";
        v.txn = txn;
        v.site = *view.no_voters.begin();
        v.message = StringPrintf("committed although site %u voted NO",
                                 *view.no_voters.begin());
        report.violations.push_back(std::move(v));
      }
      if (static_cast<int64_t>(view.yes_voters.size()) <
          view.prepared_cohort) {
        Violation v;
        v.invariant = InvariantKind::kAtomicity;
        v.code = "commit-without-votes";
        v.txn = txn;
        v.message = StringPrintf(
            "committed with %zu YES vote(s) from a prepare cohort of %lld",
            view.yes_voters.size(),
            static_cast<long long>(view.prepared_cohort));
        report.violations.push_back(std::move(v));
      }
    }
  }
}

void HistoryChecker::CheckReplication(const TraceCollector& trace,
                                      CheckReport& report) const {
  // Per replica copy: the last installed version must grow strictly.
  // Per (item, version): every install must come from one transaction.
  std::map<std::pair<SiteId, ItemId>, Version> last_at_replica;
  std::map<std::pair<ItemId, Version>, TxnId> installer;
  for (const TraceRecord& r : trace.records()) {
    if (r.kind != TraceEventKind::kWriteApplied) continue;
    Version version = static_cast<Version>(r.arg);
    auto key = std::make_pair(r.site, r.item);
    auto it = last_at_replica.find(key);
    if (it != last_at_replica.end() && version < it->second) {
      Violation v;
      v.invariant = InvariantKind::kReplication;
      v.code = "replica-regression";
      v.txn = r.txn;
      v.item = r.item;
      v.site = r.site;
      v.message = StringPrintf(
          "installed version %llu after version %llu was already applied "
          "at this replica",
          static_cast<unsigned long long>(version),
          static_cast<unsigned long long>(it->second));
      report.violations.push_back(std::move(v));
    } else {
      last_at_replica[key] = version;
    }
    auto [ins, inserted] =
        installer.emplace(std::make_pair(r.item, version), r.txn);
    if (!inserted && ins->second != r.txn) {
      Violation v;
      v.invariant = InvariantKind::kReplication;
      v.code = "divergent-install";
      v.txn = r.txn;
      v.item = r.item;
      v.site = r.site;
      v.message = StringPrintf(
          "version %llu installed by both %s and %s (lost update: "
          "write quorums failed to intersect)",
          static_cast<unsigned long long>(version),
          ins->second.ToString().c_str(), r.txn.ToString().c_str());
      report.violations.push_back(std::move(v));
    }
  }
}

void HistoryChecker::CheckLockDiscipline(const TraceCollector& trace,
                                         CheckReport& report) const {
  TxnOutcomes outcomes = TxnOutcomes::From(trace);
  const std::vector<TraceRecord>& records = trace.records();

  // First release point per committed transaction, in global emission
  // order: a read-only YES vote releases that participant's locks early;
  // an applied decision releases them at commit/abort time.
  std::map<TxnId, size_t> first_release;
  // Sites whose grants the transaction actually used (voted or applied a
  // decision). Surplus broadcast grants that the coordinator cancelled
  // never participate and are exempt: the transaction never used them.
  std::map<TxnId, std::set<SiteId>> participants;
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (!outcomes.committed.contains(r.txn)) continue;
    bool releases =
        r.kind == TraceEventKind::kDecisionApplied ||
        (r.kind == TraceEventKind::kVote && r.arg == 1 &&
         r.detail == "read-only");
    if (releases) first_release.try_emplace(r.txn, i);
    if (r.kind == TraceEventKind::kVote ||
        r.kind == TraceEventKind::kDecisionApplied) {
      participants[r.txn].insert(r.site);
    }
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (r.kind != TraceEventKind::kCcGrant) continue;
    auto rel = first_release.find(r.txn);
    if (rel == first_release.end() || i <= rel->second) continue;
    auto used = participants.find(r.txn);
    if (used == participants.end() || !used->second.contains(r.site)) {
      continue;
    }
    Violation v;
    v.invariant = InvariantKind::kLockDiscipline;
    v.code = "grant-after-release";
    v.txn = r.txn;
    v.item = r.item;
    v.site = r.site;
    v.message = StringPrintf(
        "lock granted (event #%zu) after the transaction's first release "
        "(event #%zu): growing phase violated",
        i, rel->second);
    report.violations.push_back(std::move(v));
  }
}

}  // namespace rainbow
