#ifndef RAINBOW_VERIFY_CHECKER_H_
#define RAINBOW_VERIFY_CHECKER_H_

#include <string>
#include <vector>

#include "common/trace.h"
#include "common/types.h"
#include "core/config.h"

namespace rainbow {

/// The invariant classes the offline history checker verifies. Each
/// class corresponds to one protocol layer of the paper's architecture:
/// serializability to the CCP, atomicity to the ACP, replication to the
/// RCP, and lock discipline to the 2PL engine specifically.
enum class InvariantKind {
  kQuorumConfig,     ///< static: R+W > N and 2W > N per item
  kSerializability,  ///< committed history is conflict-serializable
  kAtomicity,        ///< 2PC/3PC: one decision, full vote set for commit
  kReplication,      ///< per-replica version monotonicity, install agreement
  kLockDiscipline,   ///< 2PL: no acquisition after the first release
};

const char* InvariantKindName(InvariantKind k);

/// One detected invariant violation. `code` is a stable machine-readable
/// identifier (e.g. "precedence-cycle", "split-decision"); `message` is
/// the human explanation, including the offending cycle for
/// serializability violations. Optional fields are sentinel-valued when
/// the violation is not scoped to a transaction / item / site.
struct Violation {
  InvariantKind invariant = InvariantKind::kSerializability;
  std::string code;
  TxnId txn;
  ItemId item = kInvalidItem;
  SiteId site = kInvalidSite;
  std::string message;

  std::string ToString() const;
};

/// Machine-readable result of one checker run plus the statistics the
/// ASCII report prints. `ok()` is the gate tests and CI assert on.
struct CheckReport {
  std::vector<Violation> violations;

  size_t events = 0;         ///< trace records consumed
  size_t dropped = 0;        ///< records the collector evicted (capacity)
  bool truncated = false;    ///< dropped > 0: trace passes were skipped
  size_t committed = 0;      ///< committed transactions seen in the trace
  size_t aborted = 0;        ///< aborted transactions seen in the trace
  size_t graph_nodes = 0;    ///< precedence-graph transactions
  size_t graph_edges = 0;    ///< precedence-graph conflict edges

  bool ok() const { return violations.empty(); }
  size_t CountFor(InvariantKind kind) const;

  /// ASCII report: a per-invariant summary table (TablePrinter) followed
  /// by one line per violation.
  std::string Render() const;
};

/// Offline protocol-invariant checker: consumes the structured trace of
/// a finished run (common/trace.h TraceCollector) and statically
/// analyzes the execution history. Every simulation becomes a
/// self-checking experiment: a buggy CC / RCP / ACP combination that
/// terminates cleanly still fails here.
///
/// Checked invariants:
///  1. Conflict-serializability — a precedence graph over the committed
///     transactions (ww edges along each item's version order, wr from
///     a version's writer to its readers, rw from a version's readers
///     to the next version's writer) must be acyclic. A violation
///     message prints one offending cycle.
///  2. 2PC/3PC atomicity — no transaction applies COMMIT at one replica
///     and ABORT at another, and no coordinator commit decision without
///     a full set of YES votes.
///  3. Replication — installed versions are strictly monotone per
///     replica, every (item, version) is installed by exactly one
///     transaction, and (statically) quorum configurations intersect
///     (R + W > N, 2W > N).
///  4. 2PL lock discipline — no committed transaction is granted access
///     at a participating replica after its first release point (a
///     read-only early release or an applied decision): the classic
///     growing/shrinking-phase rule. Only checked when the configured
///     CC is 2PL.
///
/// Reads are taken from coordinator-side kReadDone records (the version
/// actually used — the max over the read quorum), writes from replica-
/// side kWriteApplied records. Requires trace_detail >= kProtocol; when
/// the collector dropped records (capacity), trace-based passes are
/// skipped and the report is marked truncated.
class HistoryChecker {
 public:
  explicit HistoryChecker(SystemConfig config);

  /// Runs every applicable invariant pass and returns the full report.
  CheckReport Check(const TraceCollector& trace) const;

  // Individual passes, exposed so tests can target one invariant class
  // with a hand-built (deliberately violating) trace.
  void CheckQuorumConfig(CheckReport& report) const;
  void CheckSerializability(const TraceCollector& trace,
                            CheckReport& report) const;
  void CheckAtomicity(const TraceCollector& trace, CheckReport& report) const;
  void CheckReplication(const TraceCollector& trace,
                        CheckReport& report) const;
  void CheckLockDiscipline(const TraceCollector& trace,
                           CheckReport& report) const;

  const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
};

}  // namespace rainbow

#endif  // RAINBOW_VERIFY_CHECKER_H_
