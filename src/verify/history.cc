#include "verify/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace rainbow {

void HistoryRecorder::RecordCommit(TxnId txn,
                                   std::vector<CommittedAccess> accesses) {
  if (!enabled_) return;
  txns_.push_back(CommittedTxn{txn, std::move(accesses)});
}

void HistoryRecorder::CanonicalSort() {
  std::stable_sort(
      txns_.begin(), txns_.end(),
      [](const CommittedTxn& a, const CommittedTxn& b) { return a.id < b.id; });
}

namespace {

struct ItemVersions {
  /// version -> writer index in history
  std::map<Version, size_t> writers;
  /// version -> reader indices
  std::map<Version, std::vector<size_t>> readers;
};

}  // namespace

Status CheckConflictSerializable(const std::vector<CommittedTxn>& history) {
  // Index accesses per item. Sorted map, not unordered: the edge-build
  // loop below returns the first inconsistency it sees, and which one
  // that is must not depend on hash order (rainbow_lint D1).
  std::map<ItemId, ItemVersions> items;
  for (size_t i = 0; i < history.size(); ++i) {
    for (const CommittedAccess& a : history[i].accesses) {
      ItemVersions& iv = items[a.item];
      if (a.is_write) {
        auto [it, inserted] = iv.writers.emplace(a.version, i);
        if (!inserted && it->second != i) {
          return Status::Internal(StringPrintf(
              "item %u version %llu installed by both %s and %s", a.item,
              static_cast<unsigned long long>(a.version),
              history[it->second].id.ToString().c_str(),
              history[i].id.ToString().c_str()));
        }
      } else {
        iv.readers[a.version].push_back(i);
      }
    }
  }

  // Build conflict edges.
  std::vector<std::set<size_t>> edges(history.size());
  auto add_edge = [&](size_t a, size_t b) {
    if (a != b) edges[a].insert(b);
  };
  for (const auto& [item, iv] : items) {
    // ww edges along the version order.
    const size_t* prev_writer = nullptr;
    for (const auto& [version, writer] : iv.writers) {
      if (prev_writer != nullptr) add_edge(*prev_writer, writer);
      prev_writer = &writer;
    }
    for (const auto& [version, readers] : iv.readers) {
      // wr: the writer of `version` precedes its readers (version 0 is
      // the initial load, no writer).
      auto w = iv.writers.find(version);
      if (w != iv.writers.end()) {
        for (size_t r : readers) add_edge(w->second, r);
      } else if (version != 0 && !iv.writers.contains(version)) {
        return Status::Internal(StringPrintf(
            "item %u: version %llu was read but never written", item,
            static_cast<unsigned long long>(version)));
      }
      // rw: readers of `version` precede the writer of the next version.
      auto next = iv.writers.upper_bound(version);
      if (next != iv.writers.end()) {
        for (size_t r : readers) add_edge(r, next->second);
      }
    }
  }

  // Cycle detection (iterative DFS, colors).
  std::vector<int> color(history.size(), 0);
  std::vector<size_t> stack;
  for (size_t start = 0; start < history.size(); ++start) {
    if (color[start] != 0) continue;
    stack.push_back(start);
    while (!stack.empty()) {
      size_t n = stack.back();
      if (color[n] == 0) {
        color[n] = 1;
        for (size_t next : edges[n]) {
          if (color[next] == 1) {
            return Status::Internal(
                "conflict cycle involving " + history[next].id.ToString() +
                " and " + history[n].id.ToString());
          }
          if (color[next] == 0) stack.push_back(next);
        }
      } else {
        if (color[n] == 1) color[n] = 2;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

std::string RenderHistory(const std::vector<CommittedTxn>& history) {
  std::ostringstream os;
  for (const CommittedTxn& t : history) {
    os << t.id.ToString() << ":";
    for (const CommittedAccess& a : t.accesses) {
      os << StringPrintf(" %s(%u@v%llu)", a.is_write ? "w" : "r", a.item,
                         static_cast<unsigned long long>(a.version));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rainbow
