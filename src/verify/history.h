#ifndef RAINBOW_VERIFY_HISTORY_H_
#define RAINBOW_VERIFY_HISTORY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace rainbow {

/// One committed transaction with the versions it read and installed.
struct CommittedTxn {
  TxnId id;
  std::vector<CommittedAccess> accesses;
};

/// Collects the committed history of a Rainbow run. Coordinators report
/// each commit with per-item version information; the checker below then
/// validates conflict-serializability. Part of the library (not just the
/// tests) because inspecting executions is the paper's stated classroom
/// use.
class HistoryRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void RecordCommit(TxnId txn, std::vector<CommittedAccess> accesses);

  const std::vector<CommittedTxn>& transactions() const { return txns_; }
  void Clear() { txns_.clear(); }

  /// Appends another recorder's transactions (per-shard merge). The
  /// checker is order-insensitive; CanonicalSort() gives renders a
  /// deterministic, shard-count-invariant order.
  void MergeFrom(const HistoryRecorder& other) {
    txns_.insert(txns_.end(), other.txns_.begin(), other.txns_.end());
  }
  void CanonicalSort();

 private:
  bool enabled_ = false;
  std::vector<CommittedTxn> txns_;
};

/// Checks that the committed history is conflict-serializable, using the
/// per-item version order as the write order:
///
///  * ww: writer of version v precedes the writer of the next version;
///  * wr: writer of version v precedes every reader of v;
///  * rw: every reader of version v precedes the writer of the next
///        version after v.
///
/// Returns OK if the conflict graph is acyclic; otherwise kInternal with
/// a description of a cycle. Also fails if two committed transactions
/// installed the same version of the same item (lost update).
Status CheckConflictSerializable(const std::vector<CommittedTxn>& history);

/// Convenience: renders the history one transaction per line.
std::string RenderHistory(const std::vector<CommittedTxn>& history);

}  // namespace rainbow

#endif  // RAINBOW_VERIFY_HISTORY_H_
