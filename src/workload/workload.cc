#include "workload/workload.h"

#include <algorithm>
#include <cassert>

#include "core/system.h"

namespace rainbow {

const char* AccessPatternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::kUniform:
      return "uniform";
    case AccessPattern::kZipf:
      return "zipf";
    case AccessPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(RainbowSystem* system,
                                     WorkloadConfig config)
    : system_(system), config_(config), rng_(config.seed) {
  num_items_ = static_cast<uint32_t>(system_->catalog().schema().num_items());
  assert(num_items_ > 0);
  if (config_.pattern == AccessPattern::kZipf) {
    zipf_ = std::make_unique<ZipfSampler>(num_items_, config_.zipf_theta);
  }
}

SiteId WorkloadGenerator::PickHome() {
  size_t n = system_->num_sites();
  switch (config_.home) {
    case WorkloadConfig::HomePolicy::kRoundRobin:
      return static_cast<SiteId>(next_home_++ % n);
    case WorkloadConfig::HomePolicy::kRandom:
      return static_cast<SiteId>(rng_.NextUint(n));
  }
  return 0;
}

ItemId WorkloadGenerator::PickItem() {
  switch (config_.pattern) {
    case AccessPattern::kUniform:
      return static_cast<ItemId>(rng_.NextUint(num_items_));
    case AccessPattern::kZipf:
      return static_cast<ItemId>(zipf_->Sample(rng_));
    case AccessPattern::kHotspot: {
      uint32_t hot = std::max<uint32_t>(
          1, static_cast<uint32_t>(num_items_ * config_.hot_fraction));
      if (rng_.NextBool(config_.hot_prob)) {
        return static_cast<ItemId>(rng_.NextUint(hot));
      }
      if (hot >= num_items_) return static_cast<ItemId>(rng_.NextUint(num_items_));
      return static_cast<ItemId>(hot + rng_.NextUint(num_items_ - hot));
    }
  }
  return 0;
}

TxnProgram WorkloadGenerator::GenerateProgram() {
  TxnProgram program;
  uint32_t n = config_.ops_min;
  if (config_.ops_max > config_.ops_min) {
    n += static_cast<uint32_t>(
        rng_.NextUint(config_.ops_max - config_.ops_min + 1));
  }
  // Items within one transaction are distinct (repeats collapse into the
  // coordinator's read-own-write path and weaken contention).
  std::vector<ItemId> chosen;
  for (uint32_t i = 0; i < n; ++i) {
    ItemId item = PickItem();
    for (int attempts = 0;
         attempts < 8 &&
         std::find(chosen.begin(), chosen.end(), item) != chosen.end();
         ++attempts) {
      item = PickItem();
    }
    chosen.push_back(item);
    if (rng_.NextBool(config_.read_fraction)) {
      program.ops.push_back(Op::Read(item));
    } else if (config_.use_increments) {
      program.ops.push_back(Op::Increment(item, rng_.NextInt(-10, 10)));
    } else {
      program.ops.push_back(Op::Write(item, rng_.NextInt(0, 1000)));
    }
  }
  return program;
}

void WorkloadGenerator::Run(std::function<void()> done) {
  done_ = std::move(done);
  if (config_.num_txns == 0) {
    done_fired_ = true;
    if (done_) done_();
    return;
  }
  if (config_.arrival == WorkloadConfig::Arrival::kClosed) {
    uint32_t initial = std::min(config_.mpl, config_.num_txns);
    for (uint32_t i = 0; i < initial; ++i) SubmitOne();
    return;
  }
  // Open arrivals: schedule the whole Poisson process up front.
  double mean_gap_us = 1e6 / config_.arrival_rate_tps;
  SimTime t = system_->sim().Now();
  for (uint32_t i = 0; i < config_.num_txns; ++i) {
    t += std::max<SimTime>(1,
                           static_cast<SimTime>(rng_.NextExponential(mean_gap_us)));
    system_->sim().At(t, [this] { SubmitOne(); });
  }
}

void WorkloadGenerator::SubmitOne() {
  if (launched_ >= config_.num_txns) return;
  ++launched_;
  SubmitProgram(GenerateProgram(), 0);
}

void WorkloadGenerator::SubmitProgram(TxnProgram program, uint32_t attempt,
                                      std::optional<TxnTimestamp> inherit_ts) {
  ++submitted_;
  SiteId home = PickHome();
  TxnProgram copy = program;
  Status s = system_->Submit(
      home, std::move(copy),
      [this, program = std::move(program), attempt](const TxnOutcome& o) {
        OnOutcome(o, program, attempt);
      },
      inherit_ts);
  assert(s.ok());
  (void)s;
}

void WorkloadGenerator::OnOutcome(const TxnOutcome& outcome,
                                  TxnProgram program, uint32_t attempt) {
  if (!outcome.committed && attempt < config_.max_retries) {
    ++retries_;
    // Wait-die fairness: restarts may keep the original timestamp so
    // the transaction keeps ageing. (Fast-failed submissions to crashed
    // homes carry no usable timestamp.)
    std::optional<TxnTimestamp> inherit;
    if (config_.retry_inherit_timestamp &&
        outcome.ts.site != kInvalidSite) {
      inherit = outcome.ts;
    }
    // Capped exponential backoff (with jitter) between restarts: rapid
    // retry storms under contention re-collide; spreading the restarts
    // lets the conflicting winners drain first.
    SimTime backoff = RetryBackoffDelay(config_.retry_backoff,
                                        static_cast<int>(attempt) + 1, rng_);
    system_->sim().After(backoff,
                         [this, program = std::move(program), attempt,
                          inherit] {
                           SubmitProgram(program, attempt + 1, inherit);
                         });
    return;
  }
  ++completed_;
  worst_attempts_ = std::max(worst_attempts_, attempt + 1);
  if (!outcome.committed) ++gave_up_;
  if (config_.arrival == WorkloadConfig::Arrival::kClosed &&
      launched_ < config_.num_txns) {
    if (config_.think_time > 0) {
      system_->sim().After(config_.think_time, [this] { SubmitOne(); });
    } else {
      SubmitOne();
    }
  }
  MaybeDone();
}

void WorkloadGenerator::MaybeDone() {
  if (done_fired_) return;
  if (completed_ >= config_.num_txns) {
    done_fired_ = true;
    if (done_) done_();
  }
}

}  // namespace rainbow
