#include "workload/workload.h"

#include <algorithm>
#include <cassert>

#include "core/system.h"

namespace rainbow {

const char* AccessPatternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::kUniform:
      return "uniform";
    case AccessPattern::kZipf:
      return "zipf";
    case AccessPattern::kHotspot:
      return "hotspot";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(RainbowSystem* system,
                                     WorkloadConfig config)
    : system_(system), config_(config), rng_(config.seed) {
  num_items_ = static_cast<uint32_t>(system_->catalog().schema().num_items());
  assert(num_items_ > 0);
  if (config_.pattern == AccessPattern::kZipf) {
    zipf_ = std::make_unique<ZipfSampler>(num_items_, config_.zipf_theta);
  }
  // The sequential driver's draw order depends on the global completion
  // interleaving, which a sharded run does not reproduce across shard
  // counts — force the per-site mode there.
  if (system_->config().sim_shards > 1) config_.per_site_clients = true;
}

SiteId WorkloadGenerator::PickHome() {
  size_t n = system_->num_sites();
  switch (config_.home) {
    case WorkloadConfig::HomePolicy::kRoundRobin:
      return static_cast<SiteId>(next_home_++ % n);
    case WorkloadConfig::HomePolicy::kRandom:
      return static_cast<SiteId>(rng_.NextUint(n));
  }
  return 0;
}

ItemId WorkloadGenerator::PickItem(Rng& rng) {
  switch (config_.pattern) {
    case AccessPattern::kUniform:
      return static_cast<ItemId>(rng.NextUint(num_items_));
    case AccessPattern::kZipf:
      return static_cast<ItemId>(zipf_->Sample(rng));
    case AccessPattern::kHotspot: {
      uint32_t hot = std::max<uint32_t>(
          1, static_cast<uint32_t>(num_items_ * config_.hot_fraction));
      if (rng.NextBool(config_.hot_prob)) {
        return static_cast<ItemId>(rng.NextUint(hot));
      }
      if (hot >= num_items_) return static_cast<ItemId>(rng.NextUint(num_items_));
      return static_cast<ItemId>(hot + rng.NextUint(num_items_ - hot));
    }
  }
  return 0;
}

TxnProgram WorkloadGenerator::GenerateProgram(Rng& rng) {
  TxnProgram program;
  uint32_t n = config_.ops_min;
  if (config_.ops_max > config_.ops_min) {
    n += static_cast<uint32_t>(
        rng.NextUint(config_.ops_max - config_.ops_min + 1));
  }
  // Items within one transaction are distinct (repeats collapse into the
  // coordinator's read-own-write path and weaken contention).
  std::vector<ItemId> chosen;
  for (uint32_t i = 0; i < n; ++i) {
    ItemId item = PickItem(rng);
    for (int attempts = 0;
         attempts < 8 &&
         std::find(chosen.begin(), chosen.end(), item) != chosen.end();
         ++attempts) {
      item = PickItem(rng);
    }
    chosen.push_back(item);
    // The scan draw is guarded so a scan-free config consumes exactly
    // the same RNG stream as before the verb existed.
    if (config_.scan_fraction > 0 && rng.NextBool(config_.scan_fraction)) {
      uint32_t len = std::max<uint32_t>(1, config_.scan_length);
      if (len > num_items_) len = num_items_;
      ItemId start = item;
      if (start + len > num_items_) start = num_items_ - len;
      program.ops.push_back(Op::Scan(start, static_cast<Value>(len)));
      continue;
    }
    if (rng.NextBool(config_.read_fraction)) {
      program.ops.push_back(Op::Read(item));
    } else if (config_.use_increments) {
      program.ops.push_back(Op::Increment(item, rng.NextInt(-10, 10)));
    } else {
      program.ops.push_back(Op::Write(item, rng.NextInt(0, 1000)));
    }
  }
  return program;
}

void WorkloadGenerator::Run(std::function<void()> done) {
  done_ = std::move(done);
  if (config_.num_txns == 0) {
    done_fired_ = true;
    if (done_) done_();
    return;
  }
  if (config_.per_site_clients) {
    RunPerSite();
    return;
  }
  if (config_.arrival == WorkloadConfig::Arrival::kClosed) {
    uint32_t initial = std::min(config_.mpl, config_.num_txns);
    for (uint32_t i = 0; i < initial; ++i) SubmitOne();
    return;
  }
  // Open arrivals: schedule the whole Poisson process up front.
  double mean_gap_us = 1e6 / config_.arrival_rate_tps;
  SimTime t = system_->sim().Now();
  for (uint32_t i = 0; i < config_.num_txns; ++i) {
    t += std::max<SimTime>(1,
                           static_cast<SimTime>(rng_.NextExponential(mean_gap_us)));
    system_->sim().At(t, [this] { SubmitOne(); });
  }
}

// --- per-site clients -----------------------------------------------------

void WorkloadGenerator::RunPerSite() {
  const uint32_t n = static_cast<uint32_t>(system_->num_sites());
  assert(n > 0);
  for (uint32_t i = 0; i < n; ++i) {
    auto c = std::make_unique<Client>();
    c->home = static_cast<SiteId>(i);
    // One independent stream per site, keyed by the site id alone so the
    // draws are identical at any shard count.
    c->rng = Rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    c->target = config_.num_txns / n + (i < config_.num_txns % n ? 1 : 0);
    c->mpl = config_.mpl / n + (i < config_.mpl % n ? 1 : 0);
    if (c->target > 0 && c->mpl == 0) c->mpl = 1;
    clients_.push_back(std::move(c));
  }
  uint32_t idle_clients = 0;
  for (auto& cp : clients_) {
    Client* c = cp.get();
    if (c->target == 0) {
      ++idle_clients;
      continue;
    }
    if (config_.arrival == WorkloadConfig::Arrival::kClosed) {
      uint32_t initial = std::min(c->mpl, c->target);
      // Run() is called with no shard worker active, so submitting into
      // the owning shard's queue directly is safe here.
      for (uint32_t k = 0; k < initial; ++k) ClientSubmitOne(c);
      continue;
    }
    // Open arrivals: each client runs its slice of the Poisson process
    // (rate split evenly) on its own shard's clock.
    double mean_gap_us =
        1e6 / (config_.arrival_rate_tps / static_cast<double>(n));
    Simulator& sim = system_->SimForSite(c->home);
    SimTime t = sim.Now();
    for (uint32_t k = 0; k < c->target; ++k) {
      t += std::max<SimTime>(
          1, static_cast<SimTime>(c->rng.NextExponential(mean_gap_us)));
      sim.At(t, [this, c] { ClientSubmitOne(c); });
    }
  }
  clients_done_.store(idle_clients, std::memory_order_release);
  if (idle_clients == clients_.size()) {
    done_fired_ = true;
    if (done_) done_();
  }
}

void WorkloadGenerator::ClientSubmitOne(Client* c) {
  if (c->launched >= c->target) return;
  ++c->launched;
  ClientSubmitProgram(c, GenerateProgram(c->rng), 0, std::nullopt);
}

void WorkloadGenerator::ClientSubmitProgram(
    Client* c, TxnProgram program, uint32_t attempt,
    std::optional<TxnTimestamp> inherit_ts) {
  ++c->submitted;
  TxnProgram copy = program;
  Status s = system_->Submit(
      c->home, std::move(copy),
      [this, c, program = std::move(program), attempt](const TxnOutcome& o) {
        OnClientOutcome(c, o, program, attempt);
      },
      inherit_ts);
  assert(s.ok());
  (void)s;
}

void WorkloadGenerator::OnClientOutcome(Client* c, const TxnOutcome& outcome,
                                        TxnProgram program, uint32_t attempt) {
  // Runs on c->home's shard; touches only this client's state.
  if (!outcome.committed && attempt < config_.max_retries) {
    ++c->retries;
    std::optional<TxnTimestamp> inherit;
    if (config_.retry_inherit_timestamp && outcome.ts.site != kInvalidSite) {
      inherit = outcome.ts;
    }
    SimTime backoff = RetryBackoffDelay(config_.retry_backoff,
                                        static_cast<int>(attempt) + 1, c->rng);
    system_->SimForSite(c->home).After(
        backoff, [this, c, program = std::move(program), attempt, inherit] {
          ClientSubmitProgram(c, program, attempt + 1, inherit);
        });
    return;
  }
  ++c->completed;
  c->worst_attempts = std::max(c->worst_attempts, attempt + 1);
  if (!outcome.committed) ++c->gave_up;
  if (config_.arrival == WorkloadConfig::Arrival::kClosed &&
      c->launched < c->target) {
    if (config_.think_time > 0) {
      system_->SimForSite(c->home).After(config_.think_time,
                                         [this, c] { ClientSubmitOne(c); });
    } else {
      ClientSubmitOne(c);
    }
  }
  if (c->completed >= c->target) ClientFinished();
}

void WorkloadGenerator::ClientFinished() {
  uint32_t prev = clients_done_.fetch_add(1, std::memory_order_acq_rel);
  if (prev + 1 == clients_.size()) {
    // Only the last client reaches this branch, so done_ fires once.
    done_fired_ = true;
    if (done_) done_();
  }
}

// --- sequential driver ----------------------------------------------------

void WorkloadGenerator::SubmitOne() {
  if (launched_ >= config_.num_txns) return;
  ++launched_;
  SubmitProgram(GenerateProgram(), 0);
}

void WorkloadGenerator::SubmitProgram(TxnProgram program, uint32_t attempt,
                                      std::optional<TxnTimestamp> inherit_ts) {
  ++submitted_;
  SiteId home = PickHome();
  TxnProgram copy = program;
  Status s = system_->Submit(
      home, std::move(copy),
      [this, program = std::move(program), attempt](const TxnOutcome& o) {
        OnOutcome(o, program, attempt);
      },
      inherit_ts);
  assert(s.ok());
  (void)s;
}

void WorkloadGenerator::OnOutcome(const TxnOutcome& outcome,
                                  TxnProgram program, uint32_t attempt) {
  if (!outcome.committed && attempt < config_.max_retries) {
    ++retries_;
    // Wait-die fairness: restarts may keep the original timestamp so
    // the transaction keeps ageing. (Fast-failed submissions to crashed
    // homes carry no usable timestamp.)
    std::optional<TxnTimestamp> inherit;
    if (config_.retry_inherit_timestamp &&
        outcome.ts.site != kInvalidSite) {
      inherit = outcome.ts;
    }
    // Capped exponential backoff (with jitter) between restarts: rapid
    // retry storms under contention re-collide; spreading the restarts
    // lets the conflicting winners drain first.
    SimTime backoff = RetryBackoffDelay(config_.retry_backoff,
                                        static_cast<int>(attempt) + 1, rng_);
    system_->sim().After(backoff,
                         [this, program = std::move(program), attempt,
                          inherit] {
                           SubmitProgram(program, attempt + 1, inherit);
                         });
    return;
  }
  ++completed_;
  worst_attempts_ = std::max(worst_attempts_, attempt + 1);
  if (!outcome.committed) ++gave_up_;
  if (config_.arrival == WorkloadConfig::Arrival::kClosed &&
      launched_ < config_.num_txns) {
    if (config_.think_time > 0) {
      system_->sim().After(config_.think_time, [this] { SubmitOne(); });
    } else {
      SubmitOne();
    }
  }
  MaybeDone();
}

void WorkloadGenerator::MaybeDone() {
  if (done_fired_) return;
  if (completed_ >= config_.num_txns) {
    done_fired_ = true;
    if (done_) done_();
  }
}

}  // namespace rainbow
