#ifndef RAINBOW_WORKLOAD_WORKLOAD_H_
#define RAINBOW_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "net/rpc.h"
#include "txn/transaction.h"

namespace rainbow {

class RainbowSystem;

/// How transactions pick the items they touch.
enum class AccessPattern {
  kUniform,  ///< uniform over all items
  kZipf,     ///< Zipf-distributed ranks (skew = zipf_theta)
  kHotspot,  ///< hot_prob of accesses hit the first hot_fraction items
};

const char* AccessPatternName(AccessPattern p);

/// Parameters of the simulated workload — the WLG's automatic mode
/// (Figure A-2's manual panel corresponds to composing TxnPrograms by
/// hand and calling RainbowSystem::Submit directly).
struct WorkloadConfig {
  uint64_t seed = 42;
  uint32_t num_txns = 200;  ///< total transactions to generate

  /// Closed system: `mpl` transactions in flight, each completion (plus
  /// think time) triggers the next submission. Open system: Poisson
  /// arrivals at `arrival_rate_tps`.
  enum class Arrival { kClosed, kOpen };
  Arrival arrival = Arrival::kClosed;
  uint32_t mpl = 8;
  SimTime think_time = 0;
  double arrival_rate_tps = 200;

  uint32_t ops_min = 2;
  uint32_t ops_max = 6;
  double read_fraction = 0.75;  ///< probability an op is a read
  bool use_increments = true;   ///< writes are read-modify-write increments

  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_theta = 0.8;
  double hot_fraction = 0.1;
  double hot_prob = 0.8;

  /// Home-site selection.
  enum class HomePolicy { kRoundRobin, kRandom };
  HomePolicy home = HomePolicy::kRoundRobin;

  /// Automatic restarts: an aborted transaction is resubmitted up to
  /// this many times. 0 disables restarts.
  uint32_t max_retries = 0;
  /// Client-level restart pacing: capped exponential backoff with
  /// jitter, indexed by the attempt number. Shares the RPC layer's
  /// policy/backoff machinery (timeout and max_attempts are unused at
  /// this level — max_retries above bounds the restarts).
  RpcPolicy retry_backoff{/*timeout=*/Millis(0), /*max_attempts=*/0,
                          /*backoff_base=*/Millis(5),
                          /*backoff_cap=*/Millis(80), /*jitter=*/0.5};
  /// Restarts keep the original timestamp (wait-die / wound-wait
  /// fairness: a restarted transaction keeps ageing instead of forever
  /// being the youngest victim).
  bool retry_inherit_timestamp = false;
};

/// Generates and drives a workload against a RainbowSystem — the
/// paper's workload generator (WLG) component.
class WorkloadGenerator {
 public:
  WorkloadGenerator(RainbowSystem* system, WorkloadConfig config);

  /// Begins generation. `done` (optional) fires when every generated
  /// transaction (including retries) has completed. Drive the simulator
  /// (RunFor / RunToQuiescence) to make progress.
  void Run(std::function<void()> done = nullptr);

  /// Generates one transaction program (exposed for tests and the
  /// manual panel's "random transaction" button).
  TxnProgram GenerateProgram();

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t retries() const { return retries_; }
  /// Starvation tail: most attempts any single transaction needed before
  /// it finished (committed or gave up).
  uint32_t worst_attempts() const { return worst_attempts_; }
  /// Transactions that exhausted max_retries without committing.
  uint64_t gave_up() const { return gave_up_; }
  bool finished() const { return done_fired_; }

 private:
  SiteId PickHome();
  ItemId PickItem();
  void SubmitOne();
  void SubmitProgram(TxnProgram program, uint32_t attempt,
                     std::optional<TxnTimestamp> inherit_ts = std::nullopt);
  void OnOutcome(const TxnOutcome& outcome, TxnProgram program,
                 uint32_t attempt);
  void MaybeDone();

  RainbowSystem* system_;
  WorkloadConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  uint32_t num_items_;
  uint64_t launched_ = 0;   ///< first-attempt submissions
  uint64_t submitted_ = 0;  ///< all submissions including retries
  uint64_t completed_ = 0;  ///< transactions that finished for good
  uint64_t retries_ = 0;
  uint32_t worst_attempts_ = 0;
  uint64_t gave_up_ = 0;
  uint64_t next_home_ = 0;
  std::function<void()> done_;
  bool done_fired_ = false;
};

}  // namespace rainbow

#endif  // RAINBOW_WORKLOAD_WORKLOAD_H_
