#ifndef RAINBOW_WORKLOAD_WORKLOAD_H_
#define RAINBOW_WORKLOAD_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/rpc.h"
#include "txn/transaction.h"

namespace rainbow {

class RainbowSystem;

/// How transactions pick the items they touch.
enum class AccessPattern {
  kUniform,  ///< uniform over all items
  kZipf,     ///< Zipf-distributed ranks (skew = zipf_theta)
  kHotspot,  ///< hot_prob of accesses hit the first hot_fraction items
};

const char* AccessPatternName(AccessPattern p);

/// Parameters of the simulated workload — the WLG's automatic mode
/// (Figure A-2's manual panel corresponds to composing TxnPrograms by
/// hand and calling RainbowSystem::Submit directly).
struct WorkloadConfig {
  uint64_t seed = 42;
  uint32_t num_txns = 200;  ///< total transactions to generate

  /// Closed system: `mpl` transactions in flight, each completion (plus
  /// think time) triggers the next submission. Open system: Poisson
  /// arrivals at `arrival_rate_tps`.
  enum class Arrival { kClosed, kOpen };
  Arrival arrival = Arrival::kClosed;
  uint32_t mpl = 8;
  SimTime think_time = 0;
  double arrival_rate_tps = 200;

  uint32_t ops_min = 2;
  uint32_t ops_max = 6;
  double read_fraction = 0.75;  ///< probability an op is a read
  bool use_increments = true;   ///< writes are read-modify-write increments

  /// Probability an op is a range scan (drawn before the read/write
  /// choice; 0 draws nothing from the RNG, so enabling scans never
  /// perturbs the op stream of a scan-free config).
  double scan_fraction = 0.0;
  /// Items per scan (clamped to the database size).
  uint32_t scan_length = 8;

  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_theta = 0.8;
  double hot_fraction = 0.1;
  double hot_prob = 0.8;

  /// Home-site selection.
  enum class HomePolicy { kRoundRobin, kRandom };
  HomePolicy home = HomePolicy::kRoundRobin;

  /// One independent client per site instead of one sequential driver:
  /// transaction quota, MPL and (open mode) arrival rate are split
  /// across the sites, and every client draws from its own RNG stream
  /// keyed by its home site. Forced on when the system runs with
  /// sim_shards > 1 — the sequential driver's draw order would depend
  /// on cross-shard completion interleaving, per-site clients keep the
  /// generated workload invariant under shard count. (With very small
  /// mpl or num_txns the per-site split rounds each busy client up to
  /// at least one in-flight transaction.)
  bool per_site_clients = false;

  /// Automatic restarts: an aborted transaction is resubmitted up to
  /// this many times. 0 disables restarts.
  uint32_t max_retries = 0;
  /// Client-level restart pacing: capped exponential backoff with
  /// jitter, indexed by the attempt number. Shares the RPC layer's
  /// policy/backoff machinery (timeout and max_attempts are unused at
  /// this level — max_retries above bounds the restarts).
  RpcPolicy retry_backoff{/*timeout=*/Millis(0), /*max_attempts=*/0,
                          /*backoff_base=*/Millis(5),
                          /*backoff_cap=*/Millis(80), /*jitter=*/0.5};
  /// Restarts keep the original timestamp (wait-die / wound-wait
  /// fairness: a restarted transaction keeps ageing instead of forever
  /// being the youngest victim).
  bool retry_inherit_timestamp = false;
};

/// Generates and drives a workload against a RainbowSystem — the
/// paper's workload generator (WLG) component.
class WorkloadGenerator {
 public:
  WorkloadGenerator(RainbowSystem* system, WorkloadConfig config);

  /// Begins generation. `done` (optional) fires when every generated
  /// transaction (including retries) has completed. Drive the simulator
  /// (RunFor / RunToQuiescence) to make progress. In per-site-clients
  /// mode under sharding, `done` fires on the worker thread of the last
  /// client's shard — prefer polling finished() between runs.
  void Run(std::function<void()> done = nullptr);

  /// Generates one transaction program (exposed for tests and the
  /// manual panel's "random transaction" button).
  TxnProgram GenerateProgram() { return GenerateProgram(rng_); }
  TxnProgram GenerateProgram(Rng& rng);

  // Aggregated counters. Under sharding, read these only between runs
  // (shard workers parked) — they sum per-client tallies.
  uint64_t submitted() const {
    uint64_t n = submitted_;
    for (const auto& c : clients_) n += c->submitted;
    return n;
  }
  uint64_t completed() const {
    uint64_t n = completed_;
    for (const auto& c : clients_) n += c->completed;
    return n;
  }
  uint64_t retries() const {
    uint64_t n = retries_;
    for (const auto& c : clients_) n += c->retries;
    return n;
  }
  /// Starvation tail: most attempts any single transaction needed before
  /// it finished (committed or gave up).
  uint32_t worst_attempts() const {
    uint32_t n = worst_attempts_;
    for (const auto& c : clients_) n = n > c->worst_attempts ? n : c->worst_attempts;
    return n;
  }
  /// Transactions that exhausted max_retries without committing.
  uint64_t gave_up() const {
    uint64_t n = gave_up_;
    for (const auto& c : clients_) n += c->gave_up;
    return n;
  }
  bool finished() const {
    if (!clients_.empty()) {
      return clients_done_.load(std::memory_order_acquire) ==
             clients_.size();
    }
    return done_fired_;
  }

 private:
  /// One independent per-site client (per_site_clients mode). All of a
  /// client's callbacks run on its home site's shard, so no two shard
  /// workers ever touch the same client.
  struct Client {
    SiteId home = 0;
    Rng rng{0};
    uint32_t target = 0;  ///< first-attempt submission quota
    uint32_t mpl = 0;     ///< closed-mode in-flight cap
    uint64_t launched = 0;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t retries = 0;
    uint32_t worst_attempts = 0;
    uint64_t gave_up = 0;
  };

  SiteId PickHome();
  ItemId PickItem(Rng& rng);
  void SubmitOne();
  void SubmitProgram(TxnProgram program, uint32_t attempt,
                     std::optional<TxnTimestamp> inherit_ts = std::nullopt);
  void OnOutcome(const TxnOutcome& outcome, TxnProgram program,
                 uint32_t attempt);
  void MaybeDone();

  void RunPerSite();
  void ClientSubmitOne(Client* c);
  void ClientSubmitProgram(Client* c, TxnProgram program, uint32_t attempt,
                           std::optional<TxnTimestamp> inherit_ts);
  void OnClientOutcome(Client* c, const TxnOutcome& outcome,
                       TxnProgram program, uint32_t attempt);
  void ClientFinished();

  RainbowSystem* system_;
  WorkloadConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  uint32_t num_items_;
  uint64_t launched_ = 0;   ///< first-attempt submissions
  uint64_t submitted_ = 0;  ///< all submissions including retries
  uint64_t completed_ = 0;  ///< transactions that finished for good
  uint64_t retries_ = 0;
  uint32_t worst_attempts_ = 0;
  uint64_t gave_up_ = 0;
  uint64_t next_home_ = 0;
  std::vector<std::unique_ptr<Client>> clients_;
  std::atomic<uint32_t> clients_done_{0};
  std::function<void()> done_;
  bool done_fired_ = false;
};

}  // namespace rainbow

#endif  // RAINBOW_WORKLOAD_WORKLOAD_H_
