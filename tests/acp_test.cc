#include <gtest/gtest.h>

#include "acp/acp_common.h"

namespace rainbow {
namespace {

TEST(VoteCollectorTest, AllYes) {
  VoteCollector vc({0, 1, 2});
  EXPECT_FALSE(vc.Complete());
  vc.Record(0, true);
  vc.Record(1, true);
  EXPECT_EQ(vc.pending(), 1u);
  vc.Record(2, true);
  EXPECT_TRUE(vc.Complete());
  EXPECT_TRUE(vc.AllYes());
  EXPECT_FALSE(vc.AnyNo());
}

TEST(VoteCollectorTest, NoVotePoisons) {
  VoteCollector vc({0, 1});
  vc.Record(0, true);
  vc.Record(1, false);
  EXPECT_TRUE(vc.Complete());
  EXPECT_TRUE(vc.AnyNo());
  EXPECT_FALSE(vc.AllYes());
}

TEST(VoteCollectorTest, DuplicatesAndStraysIgnored) {
  VoteCollector vc({0, 1});
  vc.Record(0, true);
  vc.Record(0, false);  // duplicate: ignored, including the NO
  vc.Record(7, false);  // not a participant
  EXPECT_FALSE(vc.AnyNo());
  EXPECT_EQ(vc.pending(), 1u);
}

TEST(AckCollectorTest, TracksMissing) {
  AckCollector ac({3, 4, 5});
  ac.Record(4);
  ac.Record(9);  // stray
  EXPECT_FALSE(ac.Complete());
  EXPECT_EQ(ac.pending(), 2u);
  EXPECT_EQ(ac.Missing(), (std::vector<SiteId>{3, 5}));
  ac.Record(3);
  ac.Record(5);
  EXPECT_TRUE(ac.Complete());
}

TEST(ThreePcTerminationTest, EmptyIsUndecidable) {
  EXPECT_FALSE(ThreePcTerminationDecision({}).has_value());
}

TEST(ThreePcTerminationTest, CommittedForcesCommit) {
  auto d = ThreePcTerminationDecision(
      {AcpState::kPrepared, AcpState::kCommitted});
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);
}

TEST(ThreePcTerminationTest, AbortedForcesAbort) {
  auto d = ThreePcTerminationDecision(
      {AcpState::kPreCommitted, AcpState::kAborted});
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
}

TEST(ThreePcTerminationTest, UnpreparedSiteMeansAbort) {
  // A site still active (or with no record) never voted YES, so the
  // coordinator cannot have decided commit.
  auto d = ThreePcTerminationDecision(
      {AcpState::kPrepared, AcpState::kActive});
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
  d = ThreePcTerminationDecision({AcpState::kPrepared, AcpState::kUnknown});
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
}

TEST(ThreePcTerminationTest, PreCommittedMeansCommit) {
  auto d = ThreePcTerminationDecision(
      {AcpState::kPrepared, AcpState::kPreCommitted});
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);
}

TEST(ThreePcTerminationTest, AllPreparedMeansAbort) {
  auto d = ThreePcTerminationDecision(
      {AcpState::kPrepared, AcpState::kPrepared, AcpState::kPrepared});
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
}

TEST(ElectCoordinatorTest, LowestLiveWins) {
  EXPECT_EQ(ElectCoordinator({3, 1, 2}, {}), 1u);
  EXPECT_EQ(ElectCoordinator({3, 1, 2}, {1}), 2u);
  EXPECT_EQ(ElectCoordinator({3, 1, 2}, {1, 2, 3}), kInvalidSite);
}

}  // namespace
}  // namespace rainbow
