#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "storage/b_plus_tree.h"
#include "storage/buffer_pool.h"

namespace rainbow {
namespace {

// A 64-byte page holds two leaf entries ((64 - 24) / 20 = 2), so even a
// handful of inserts exercises leaf and internal splits.
constexpr uint32_t kTinyPage = 64;

struct TreeFixture {
  explicit TreeFixture(uint32_t page_size = kTinyPage, size_t frames = 16,
                       size_t k = 2)
      : disk(page_size), pool(&disk, frames, k), tree(&pool, &disk) {}
  DiskManager disk;
  BufferPool pool;
  BPlusTree tree;
};

TEST(BPlusTreeTest, PutAndGet) {
  TreeFixture f;
  f.tree.Put(5, 50, 1);
  f.tree.Put(3, 30, 1);
  auto c = f.tree.Get(5);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->value, 50);
  EXPECT_EQ(c->version, 1u);
  EXPECT_TRUE(f.tree.Has(3));
  EXPECT_FALSE(f.tree.Has(4));
  EXPECT_FALSE(f.tree.Get(99).has_value());
  EXPECT_EQ(f.tree.size(), 2u);
}

TEST(BPlusTreeTest, OverwriteKeepsSize) {
  TreeFixture f;
  f.tree.Put(1, 10, 0);
  f.tree.Put(1, 11, 0);
  EXPECT_EQ(f.tree.size(), 1u);
  EXPECT_EQ(f.tree.Get(1)->value, 11);
}

TEST(BPlusTreeTest, SplitsGrowHeightAndKeepAllKeys) {
  TreeFixture f;
  const uint32_t n = 200;
  for (uint32_t i = 0; i < n; ++i) f.tree.Put(i, static_cast<Value>(i * 10), 0);
  EXPECT_EQ(f.tree.size(), n);
  EXPECT_GT(f.tree.height(), 2u);  // tiny pages force a deep tree
  for (uint32_t i = 0; i < n; ++i) {
    auto c = f.tree.Get(i);
    ASSERT_TRUE(c.has_value()) << "item " << i;
    EXPECT_EQ(c->value, static_cast<Value>(i * 10));
  }
}

TEST(BPlusTreeTest, ReverseAndShuffledInsertOrders) {
  const uint32_t n = 150;
  TreeFixture rev;
  for (uint32_t i = n; i > 0; --i) rev.tree.Put(i - 1, i - 1, 0);
  for (uint32_t i = 0; i < n; ++i) ASSERT_TRUE(rev.tree.Has(i)) << i;

  // Deterministic shuffle (multiplicative stride over a prime-sized set).
  TreeFixture shuf;
  const uint32_t m = 151;  // prime
  uint32_t x = 1;
  for (uint32_t i = 0; i < m - 1; ++i) {
    x = (x * 7) % m;
    shuf.tree.Put(x - 1, x, 0);
  }
  EXPECT_EQ(shuf.tree.size(), static_cast<size_t>(m - 1));
  std::vector<std::pair<ItemId, ItemCopy>> out;
  shuf.tree.Scan(0, m, out);
  ASSERT_EQ(out.size(), static_cast<size_t>(m - 1));
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);  // strictly ascending
  }
}

TEST(BPlusTreeTest, ScanWalksLeafChainAcrossSplits) {
  TreeFixture f;
  for (uint32_t i = 0; i < 100; ++i) f.tree.Put(i * 2, static_cast<Value>(i), 0);
  std::vector<std::pair<ItemId, ItemCopy>> out;
  f.tree.Scan(50, 10, out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].first, 50u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 50u + 2 * i);
  }
  // From before the first key and past the last key.
  out.clear();
  f.tree.Scan(0, 3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 0u);
  out.clear();
  f.tree.Scan(500, 5, out);
  EXPECT_TRUE(out.empty());
  // A scan starting between keys begins at the next present key.
  out.clear();
  f.tree.Scan(51, 1, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 52u);
}

TEST(BPlusTreeTest, UpdateStampsPageLsn) {
  TreeFixture f;
  f.tree.Put(7, 1, 0);
  ASSERT_TRUE(f.tree.Update(7, 2, 5, /*lsn=*/10));
  EXPECT_EQ(f.tree.Get(7)->value, 2);
  EXPECT_EQ(f.tree.Get(7)->version, 5u);
  EXPECT_FALSE(f.tree.Update(8, 1, 1, 11));  // absent item

  auto leaf = f.tree.LeafOf(7);
  ASSERT_TRUE(leaf.has_value());
  Page* page = f.pool.FetchPage(*leaf);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->page_lsn(), 10u);
  f.pool.UnpinPage(*leaf, false);
}

TEST(BPlusTreeTest, RedoUpdateGatedByPageLsn) {
  TreeFixture f;
  f.tree.Put(7, 1, 0);
  ASSERT_TRUE(f.tree.Update(7, 2, 5, /*lsn=*/10));
  // The ARIES redo test: a record with lsn <= page LSN already reached
  // the page and must not re-apply.
  EXPECT_FALSE(f.tree.RedoUpdate(7, 99, 99, /*lsn=*/10));
  EXPECT_FALSE(f.tree.RedoUpdate(7, 99, 99, /*lsn=*/9));
  EXPECT_EQ(f.tree.Get(7)->value, 2);
  // A newer record applies and advances the page LSN.
  EXPECT_TRUE(f.tree.RedoUpdate(7, 3, 6, /*lsn=*/11));
  EXPECT_EQ(f.tree.Get(7)->value, 3);
  EXPECT_FALSE(f.tree.RedoUpdate(7, 4, 7, /*lsn=*/11));
}

TEST(BPlusTreeTest, PersistsThroughFlushAndPoolReset) {
  TreeFixture f(kTinyPage, /*frames=*/32);
  for (uint32_t i = 0; i < 80; ++i) f.tree.Put(i, static_cast<Value>(i + 100), 0);
  f.pool.FlushAll();
  f.pool.Reset();  // crash: every frame dropped
  // The tree skeleton + disk image reconstruct everything.
  for (uint32_t i = 0; i < 80; ++i) {
    auto c = f.tree.Get(i);
    ASSERT_TRUE(c.has_value()) << "item " << i;
    EXPECT_EQ(c->value, static_cast<Value>(i + 100));
  }
}

TEST(BPlusTreeTest, UnflushedDataLostOnReset) {
  TreeFixture f;
  f.tree.Put(1, 10, 0);
  f.pool.FlushAll();
  ASSERT_TRUE(f.tree.Update(1, 99, 5, 3));
  f.pool.Reset();  // dirty frame dropped before any flush
  auto c = f.tree.Get(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->value, 10);  // pre-crash flushed image
  EXPECT_EQ(c->version, 0u);
}

TEST(BPlusTreeTest, WorksUnderTinyBufferPool) {
  // Far more pages than frames: every operation churns the pool.
  TreeFixture f(kTinyPage, /*frames=*/8);
  const uint32_t n = 300;
  std::map<ItemId, Value> shadow;
  for (uint32_t i = 0; i < n; ++i) {
    ItemId item = (i * 17) % n;
    f.tree.Put(item, static_cast<Value>(i), 0);
    shadow[item] = static_cast<Value>(i);
  }
  EXPECT_EQ(f.tree.size(), shadow.size());
  for (const auto& [item, value] : shadow) {
    auto c = f.tree.Get(item);
    ASSERT_TRUE(c.has_value()) << "item " << item;
    EXPECT_EQ(c->value, value);
  }
  EXPECT_GT(f.pool.stats().evictions, 0u);
  // No pin leaks: after the dust settles every frame is unpinned.
  for (uint32_t p = 0; p < f.disk.allocated_pages(); ++p) {
    EXPECT_LE(f.pool.PinCountOf(p), 0) << "leaked pin on page " << p;
  }
}

}  // namespace
}  // namespace rainbow
