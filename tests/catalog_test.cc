#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"

namespace rainbow {
namespace {

TEST(SchemaTest, AddAndLookup) {
  ReplicationSchema schema;
  auto id = schema.AddItem("x", 10, {0, 1, 2}, {1, 1, 1}, 2, 2);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*schema.IdOf("x"), *id);
  auto item = schema.Find(*id);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ((*item)->name, "x");
  EXPECT_EQ((*item)->total_votes(), 3);
  EXPECT_EQ((*item)->VoteOf(1), 1);
  EXPECT_EQ((*item)->VoteOf(9), 0);
  EXPECT_TRUE((*item)->HasCopyAt(2));
  EXPECT_FALSE(schema.IdOf("y").ok());
  EXPECT_FALSE(schema.Find(99).ok());
}

TEST(SchemaTest, RejectsDuplicatesAndBadShapes) {
  ReplicationSchema schema;
  ASSERT_TRUE(schema.AddItem("x", 0, {0}, {1}, 1, 1).ok());
  EXPECT_FALSE(schema.AddItem("x", 0, {1}, {1}, 1, 1).ok());  // dup name
  EXPECT_FALSE(schema.AddItem("a", 0, {}, {}, 1, 1).ok());    // no copies
  EXPECT_FALSE(schema.AddItem("b", 0, {0, 1}, {1}, 1, 1).ok());  // mismatch
  EXPECT_FALSE(schema.AddItem("c", 0, {0, 0}, {1, 1}, 1, 1).ok());  // dup site
  EXPECT_FALSE(schema.AddItem("d", 0, {0}, {0}, 1, 1).ok());  // zero vote
}

TEST(SchemaTest, MajorityHelper) {
  ReplicationSchema schema;
  auto id = schema.AddItemMajority("x", 0, {0, 1, 2, 3, 4});
  ASSERT_TRUE(id.ok());
  auto item = schema.Find(*id);
  EXPECT_EQ((*item)->read_quorum, 3);
  EXPECT_EQ((*item)->write_quorum, 3);
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateEnforcesQuorumIntersection) {
  {
    ReplicationSchema s;
    ASSERT_TRUE(s.AddItem("x", 0, {0, 1, 2}, {1, 1, 1}, 1, 1).ok());
    EXPECT_FALSE(s.Validate().ok());  // R+W = 2 <= 3
  }
  {
    ReplicationSchema s;
    // R+W = 4 > 3 but 2W = 2 <= 3: write quorums don't intersect.
    ASSERT_TRUE(s.AddItem("x", 0, {0, 1, 2}, {1, 1, 1}, 3, 1).ok());
    EXPECT_FALSE(s.Validate().ok());
  }
  {
    ReplicationSchema s;
    // Weighted: votes 2,1,1; R=2, W=3: R+W=5 > 4, 2W=6 > 4. Valid.
    ASSERT_TRUE(s.AddItem("x", 0, {0, 1, 2}, {2, 1, 1}, 2, 3).ok());
    EXPECT_TRUE(s.Validate().ok());
  }
  {
    ReplicationSchema s;
    // Quorum larger than total votes.
    ASSERT_TRUE(s.AddItem("x", 0, {0, 1}, {1, 1}, 3, 2).ok());
    EXPECT_FALSE(s.Validate().ok());
  }
}

TEST(SchemaTest, ItemsAt) {
  ReplicationSchema schema;
  ASSERT_TRUE(schema.AddItemMajority("a", 0, {0, 1}).ok());
  ASSERT_TRUE(schema.AddItemMajority("b", 0, {1, 2}).ok());
  ASSERT_TRUE(schema.AddItemMajority("c", 0, {0, 2}).ok());
  EXPECT_EQ(schema.ItemsAt(0).size(), 2u);
  EXPECT_EQ(schema.ItemsAt(1).size(), 2u);
  EXPECT_EQ(schema.ItemsAt(3).size(), 0u);
}

TEST(CatalogTest, RegistersSitesDensely) {
  Catalog catalog;
  EXPECT_EQ(*catalog.RegisterSite("a"), 0u);
  EXPECT_EQ(*catalog.RegisterSite("b"), 1u);
  EXPECT_EQ(catalog.num_sites(), 2u);
  auto info = catalog.FindSite(1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->name, "b");
  EXPECT_FALSE(catalog.FindSite(5).ok());
}

TEST(CatalogTest, ValidateCatchesPlacementOnUnknownSite) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSite("a").ok());
  ASSERT_TRUE(catalog.schema().AddItemMajority("x", 0, {0, 1}).ok());
  EXPECT_FALSE(catalog.Validate().ok());  // site 1 not registered
  ASSERT_TRUE(catalog.RegisterSite("b").ok());
  EXPECT_TRUE(catalog.Validate().ok());
}

}  // namespace
}  // namespace rainbow
