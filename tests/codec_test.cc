#include <gtest/gtest.h>

#include "core/session.h"
#include "net/codec.h"

namespace rainbow {
namespace {

/// Round-trips a payload and returns the decoded copy.
Payload RoundTrip(const Payload& p) {
  std::vector<uint8_t> wire = EncodePayload(p);
  auto decoded = DecodePayload(wire);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.ok() ? *decoded : Payload{Ack{}};
}

TEST(CodecTest, PrimitivesRoundTrip) {
  Encoder e;
  e.PutU8(0xab);
  e.PutU32(0xdeadbeef);
  e.PutU64(0x0123456789abcdefULL);
  e.PutI64(-42);
  e.PutBool(true);
  e.PutTxnId(TxnId{7, 99});
  e.PutTimestamp(TxnTimestamp{-5, 3});

  Decoder d(e.buffer());
  EXPECT_EQ(*d.GetU8(), 0xab);
  EXPECT_EQ(*d.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*d.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*d.GetI64(), -42);
  EXPECT_TRUE(*d.GetBool());
  EXPECT_EQ(*d.GetTxnId(), (TxnId{7, 99}));
  EXPECT_EQ(*d.GetTimestamp(), (TxnTimestamp{-5, 3}));
  EXPECT_TRUE(d.exhausted());
}

TEST(CodecTest, TruncatedReadsFail) {
  Encoder e;
  e.PutU32(5);
  Decoder d(e.buffer());
  EXPECT_TRUE(d.GetU32().ok());
  EXPECT_FALSE(d.GetU8().ok());
  EXPECT_FALSE(d.GetU64().ok());
}

TEST(CodecTest, EveryPayloadKindRoundTrips) {
  TxnId txn{3, 17};
  TxnTimestamp ts{123456, 3};

  std::vector<Payload> payloads = {
      NsLookupRequest{txn, 9},
      NsLookupReply{txn, 9, true, {0, 1, 2}, {2, 1, 1}, 2, 3},
      ReadRequest{txn, ts, 4},
      ReadReply{txn, 4, true, DenyReason::kNone, -77, 12},
      ReadReply{txn, 4, false, DenyReason::kTsoTooLate, 0, 0},
      PrewriteRequest{txn, ts, 5, 999},
      PrewriteReply{txn, 5, false, DenyReason::kWounded, 3},
      AbortRequest{txn},
      PrepareRequest{txn, {{1, 10}, {2, 11}}, {{4, 3}}, {0, 1, 2}, true},
      VoteReply{txn, false, DenyReason::kUnknownTxn},
      Decision{txn, true},
      Ack{txn},
      DecisionQuery{txn, 2},
      DecisionInfo{txn, true, false},
      PreCommitRequest{txn},
      PreCommitAck{txn},
      StateQuery{txn, 1},
      StateReply{txn, AcpState::kPreCommitted},
      RemoteAbortNotify{txn, AbortCause::kCcp, DenyReason::kDeadlockVictim},
      RefreshRequest{{1, 2, 3}},
      RefreshReply{{{1, 100, 5}, {2, -3, 7}}},
      DeadlockProbe{txn, TxnId{1, 4}, 3},
      DeadlockProbeCheck{txn, TxnId{2, 6}, 5},
  };

  for (const Payload& p : payloads) {
    Payload q = RoundTrip(p);
    EXPECT_EQ(MessageKindOf(q), MessageKindOf(p))
        << MessageKindName(MessageKindOf(p));
  }

  // Spot-check field fidelity on the richest messages.
  {
    auto q = std::get<NsLookupReply>(RoundTrip(payloads[1]));
    EXPECT_EQ(q.copies, (std::vector<SiteId>{0, 1, 2}));
    EXPECT_EQ(q.votes, (std::vector<int>{2, 1, 1}));
    EXPECT_EQ(q.read_quorum, 2);
    EXPECT_EQ(q.write_quorum, 3);
  }
  {
    auto q = std::get<PrepareRequest>(RoundTrip(payloads[8]));
    ASSERT_EQ(q.versions.size(), 2u);
    EXPECT_EQ(q.versions[1].item, 2u);
    EXPECT_EQ(q.versions[1].version, 11u);
    EXPECT_EQ(q.participants, (std::vector<SiteId>{0, 1, 2}));
    EXPECT_TRUE(q.three_phase);
    ASSERT_EQ(q.validations.size(), 1u);
    EXPECT_EQ(q.validations[0].item, 4u);
    EXPECT_EQ(q.validations[0].version, 3u);
  }
  {
    auto q = std::get<ReadReply>(RoundTrip(payloads[3]));
    EXPECT_EQ(q.value, -77);
    EXPECT_EQ(q.version, 12u);
  }
  {
    auto q = std::get<RefreshReply>(RoundTrip(payloads[20]));
    ASSERT_EQ(q.entries.size(), 2u);
    EXPECT_EQ(q.entries[1].value, -3);
  }
  {
    auto q = std::get<DeadlockProbe>(RoundTrip(payloads[21]));
    EXPECT_EQ(q.initiator, txn);
    EXPECT_EQ(q.holder, (TxnId{1, 4}));
    EXPECT_EQ(q.hops, 3u);
  }
}

TEST(CodecTest, DecodeRejectsBadKind) {
  std::vector<uint8_t> buf = {0xff, 0, 0, 0};
  EXPECT_FALSE(DecodePayload(buf).ok());
}

TEST(CodecTest, DecodeRejectsTrailingGarbage) {
  std::vector<uint8_t> wire = EncodePayload(Payload{Ack{TxnId{0, 1}}});
  wire.push_back(0);
  EXPECT_FALSE(DecodePayload(wire).ok());
}

TEST(CodecTest, DecodeRejectsEveryTruncation) {
  // Chop the encoding of a complex payload at every length: none may
  // crash, and all must fail cleanly.
  std::vector<uint8_t> wire = EncodePayload(
      Payload{PrepareRequest{TxnId{1, 2}, {{3, 4}}, {{5, 6}}, {0, 1}, false}});
  for (size_t len = 0; len < wire.size(); ++len) {
    std::vector<uint8_t> cut(wire.begin(),
                             wire.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodePayload(cut).ok()) << "length " << len;
  }
}

TEST(CodecTest, DecodeRejectsBadEnums) {
  std::vector<uint8_t> wire =
      EncodePayload(Payload{StateReply{TxnId{0, 1}, AcpState::kPrepared}});
  wire.back() = 0x77;  // invalid AcpState
  EXPECT_FALSE(DecodePayload(wire).ok());
}

TEST(CodecTest, FullMessageRoundTrip) {
  Message m;
  m.id = 42;
  m.from = 3;
  m.to = kNameServerId;
  m.sent_at = Millis(17);
  m.payload = NsLookupRequest{TxnId{3, 8}, 5};
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->from, 3u);
  EXPECT_EQ(decoded->to, kNameServerId);
  EXPECT_EQ(decoded->sent_at, Millis(17));
  EXPECT_EQ(decoded->kind(), MessageKind::kNsLookupRequest);
}

TEST(CodecTest, WholeSystemRunsOverTheWireCodec) {
  // Every protocol message of a busy session is round-tripped through
  // the codec; any lossy or incomplete encoding would break the run.
  SystemConfig system;
  system.seed = 202;
  system.num_sites = 4;
  system.verify_codec = true;
  system.protocols.acp = AcpKind::kThreePhaseCommit;  // widest message mix
  system.AddUniformItems(60, 100, 3);
  WorkloadConfig workload;
  workload.num_txns = 150;
  workload.mpl = 6;
  SessionOptions options;
  options.check_serializability = true;
  auto result = RunSession(system, workload, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->committed, 100u);
}

}  // namespace
}  // namespace rainbow
