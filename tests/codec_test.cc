#include <gtest/gtest.h>

#include <optional>

#include "common/rng.h"
#include "core/session.h"
#include "net/codec.h"

namespace rainbow {
namespace {

/// Round-trips a payload and returns the decoded copy.
Payload RoundTrip(const Payload& p) {
  std::vector<uint8_t> wire = EncodePayload(p);
  auto decoded = DecodePayload(wire);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.ok() ? *decoded : Payload{Ack{}};
}

TEST(CodecTest, PrimitivesRoundTrip) {
  Encoder e;
  e.PutU8(0xab);
  e.PutU32(0xdeadbeef);
  e.PutU64(0x0123456789abcdefULL);
  e.PutI64(-42);
  e.PutBool(true);
  e.PutTxnId(TxnId{7, 99});
  e.PutTimestamp(TxnTimestamp{-5, 3});

  Decoder d(e.buffer());
  EXPECT_EQ(*d.GetU8(), 0xab);
  EXPECT_EQ(*d.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*d.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*d.GetI64(), -42);
  EXPECT_TRUE(*d.GetBool());
  EXPECT_EQ(*d.GetTxnId(), (TxnId{7, 99}));
  EXPECT_EQ(*d.GetTimestamp(), (TxnTimestamp{-5, 3}));
  EXPECT_TRUE(d.exhausted());
}

TEST(CodecTest, TruncatedReadsFail) {
  Encoder e;
  e.PutU32(5);
  Decoder d(e.buffer());
  EXPECT_TRUE(d.GetU32().ok());
  EXPECT_FALSE(d.GetU8().ok());
  EXPECT_FALSE(d.GetU64().ok());
}

// ---------------------------------------------------------------------------
// Randomized round-trip property. One generator per MessageKind; the
// test iterates the full enum, so adding a kind without a generator (or
// without codec support) fails the suite rather than silently shipping
// an unserializable message.
// ---------------------------------------------------------------------------

TxnId RandomTxn(Rng& rng) {
  return TxnId{static_cast<SiteId>(rng.NextUint(16)), rng.NextUint(1 << 20)};
}

TxnTimestamp RandomTs(Rng& rng) {
  return TxnTimestamp{static_cast<SimTime>(rng.NextInt(0, 1'000'000'000)),
                      static_cast<SiteId>(rng.NextUint(16))};
}

std::vector<SiteId> RandomSites(Rng& rng) {
  std::vector<SiteId> out(rng.NextUint(5));
  for (SiteId& s : out) s = static_cast<SiteId>(rng.NextUint(32));
  return out;
}

DenyReason RandomDenyReason(Rng& rng) {
  return static_cast<DenyReason>(rng.NextUint(8));
}

std::optional<Payload> RandomPayload(MessageKind kind, Rng& rng) {
  ItemId item = static_cast<ItemId>(rng.NextUint(1 << 16));
  Value value = rng.NextInt(-1'000'000, 1'000'000);
  Version version = rng.NextUint(1 << 24);
  switch (kind) {
    case MessageKind::kNsLookupRequest:
      return Payload{NsLookupRequest{RandomTxn(rng), item}};
    case MessageKind::kNsLookupReply: {
      NsLookupReply r{RandomTxn(rng), item, rng.NextBool(0.9), {}, {}, 0, 0};
      r.copies = RandomSites(rng);
      r.votes.resize(r.copies.size());
      for (int& v : r.votes) v = static_cast<int>(rng.NextUint(4));
      r.read_quorum = static_cast<int>(rng.NextUint(8));
      r.write_quorum = static_cast<int>(rng.NextUint(8));
      return Payload{r};
    }
    case MessageKind::kReadRequest:
      return Payload{ReadRequest{RandomTxn(rng), RandomTs(rng), item}};
    case MessageKind::kReadReply:
      return Payload{ReadReply{RandomTxn(rng), item, rng.NextBool(0.5),
                               RandomDenyReason(rng), value, version}};
    case MessageKind::kPrewriteRequest:
      return Payload{PrewriteRequest{RandomTxn(rng), RandomTs(rng), item,
                                     value, rng.NextBool(0.2)}};
    case MessageKind::kPrewriteReply:
      return Payload{PrewriteReply{RandomTxn(rng), item, rng.NextBool(0.5),
                                   RandomDenyReason(rng), version}};
    case MessageKind::kAbortRequest:
      return Payload{AbortRequest{RandomTxn(rng)}};
    case MessageKind::kPrepareRequest: {
      PrepareRequest p{RandomTxn(rng), {}, {}, RandomSites(rng),
                       rng.NextBool(0.5)};
      p.versions.resize(rng.NextUint(4));
      for (auto& wv : p.versions) {
        wv.item = static_cast<ItemId>(rng.NextUint(1 << 16));
        wv.version = rng.NextUint(1 << 24);
      }
      p.validations.resize(rng.NextUint(4));
      for (auto& rv : p.validations) {
        rv.item = static_cast<ItemId>(rng.NextUint(1 << 16));
        rv.version = rng.NextUint(1 << 24);
      }
      return Payload{p};
    }
    case MessageKind::kVoteReply:
      return Payload{VoteReply{RandomTxn(rng), rng.NextBool(0.5),
                               RandomDenyReason(rng), rng.NextBool(0.2)}};
    case MessageKind::kDecision:
      return Payload{Decision{RandomTxn(rng), rng.NextBool(0.5)}};
    case MessageKind::kAck:
      return Payload{Ack{RandomTxn(rng)}};
    case MessageKind::kDecisionQuery:
      return Payload{
          DecisionQuery{RandomTxn(rng), static_cast<SiteId>(rng.NextUint(16))}};
    case MessageKind::kDecisionInfo:
      return Payload{DecisionInfo{RandomTxn(rng), rng.NextBool(0.5),
                                  rng.NextBool(0.5)}};
    case MessageKind::kPreCommitRequest:
      return Payload{PreCommitRequest{RandomTxn(rng)}};
    case MessageKind::kPreCommitAck:
      return Payload{PreCommitAck{RandomTxn(rng)}};
    case MessageKind::kStateQuery:
      return Payload{
          StateQuery{RandomTxn(rng), static_cast<SiteId>(rng.NextUint(16))}};
    case MessageKind::kStateReply:
      return Payload{StateReply{RandomTxn(rng),
                                static_cast<AcpState>(rng.NextUint(6))}};
    case MessageKind::kRemoteAbortNotify:
      return Payload{RemoteAbortNotify{RandomTxn(rng),
                                       static_cast<AbortCause>(rng.NextUint(6)),
                                       RandomDenyReason(rng)}};
    case MessageKind::kRefreshRequest: {
      RefreshRequest r;
      r.items.resize(rng.NextUint(6));
      for (ItemId& i : r.items) i = static_cast<ItemId>(rng.NextUint(1 << 16));
      return Payload{r};
    }
    case MessageKind::kRefreshReply: {
      RefreshReply r;
      r.entries.resize(rng.NextUint(6));
      for (auto& e : r.entries) {
        e.item = static_cast<ItemId>(rng.NextUint(1 << 16));
        e.value = rng.NextInt(-1'000'000, 1'000'000);
        e.version = rng.NextUint(1 << 24);
      }
      return Payload{r};
    }
    case MessageKind::kDeadlockProbe:
      return Payload{DeadlockProbe{RandomTxn(rng), RandomTxn(rng),
                                   static_cast<uint32_t>(rng.NextUint(64))}};
    case MessageKind::kDeadlockProbeCheck:
      return Payload{DeadlockProbeCheck{RandomTxn(rng), RandomTxn(rng),
                                        static_cast<uint32_t>(rng.NextUint(64))}};
    case MessageKind::kCount:
      break;
  }
  return std::nullopt;
}

TEST(CodecTest, EveryPayloadKindRoundTrips) {
  // The payload structs have no operator==, so fidelity is checked via
  // encoding stability: decode(encode(p)) must re-encode to the same
  // bytes. Combined with DecodeRejectsTrailingGarbage/Truncation this
  // pins the wire format bijectively.
  Rng rng(20260806);
  for (int k = 0; k < static_cast<int>(MessageKind::kCount); ++k) {
    MessageKind kind = static_cast<MessageKind>(k);
    for (int round = 0; round < 50; ++round) {
      std::optional<Payload> p = RandomPayload(kind, rng);
      ASSERT_TRUE(p.has_value())
          << "no random generator for " << MessageKindName(kind)
          << " — add one when introducing a new message kind";
      std::vector<uint8_t> wire = EncodePayload(*p);
      auto decoded = DecodePayload(wire);
      ASSERT_TRUE(decoded.ok())
          << MessageKindName(kind) << ": " << decoded.status();
      EXPECT_EQ(MessageKindOf(*decoded), kind) << MessageKindName(kind);
      EXPECT_EQ(EncodePayload(*decoded), wire)
          << MessageKindName(kind) << " re-encode mismatch (round " << round
          << ")";
    }
  }
}

TEST(CodecTest, RichPayloadFieldFidelity) {
  TxnId txn{3, 17};

  // Spot-check field fidelity on the richest messages.
  {
    auto q = std::get<NsLookupReply>(
        RoundTrip(NsLookupReply{txn, 9, true, {0, 1, 2}, {2, 1, 1}, 2, 3}));
    EXPECT_EQ(q.copies, (std::vector<SiteId>{0, 1, 2}));
    EXPECT_EQ(q.votes, (std::vector<int>{2, 1, 1}));
    EXPECT_EQ(q.read_quorum, 2);
    EXPECT_EQ(q.write_quorum, 3);
  }
  {
    auto q = std::get<PrepareRequest>(RoundTrip(
        PrepareRequest{txn, {{1, 10}, {2, 11}}, {{4, 3}}, {0, 1, 2}, true}));
    ASSERT_EQ(q.versions.size(), 2u);
    EXPECT_EQ(q.versions[1].item, 2u);
    EXPECT_EQ(q.versions[1].version, 11u);
    EXPECT_EQ(q.participants, (std::vector<SiteId>{0, 1, 2}));
    EXPECT_TRUE(q.three_phase);
    ASSERT_EQ(q.validations.size(), 1u);
    EXPECT_EQ(q.validations[0].item, 4u);
    EXPECT_EQ(q.validations[0].version, 3u);
  }
  {
    auto q = std::get<ReadReply>(RoundTrip(
        ReadReply{txn, 4, true, DenyReason::kNone, -77, 12}));
    EXPECT_EQ(q.value, -77);
    EXPECT_EQ(q.version, 12u);
  }
  {
    auto q = std::get<RefreshReply>(
        RoundTrip(RefreshReply{{{1, 100, 5}, {2, -3, 7}}}));
    ASSERT_EQ(q.entries.size(), 2u);
    EXPECT_EQ(q.entries[1].value, -3);
  }
  {
    auto q = std::get<DeadlockProbe>(
        RoundTrip(DeadlockProbe{txn, TxnId{1, 4}, 3}));
    EXPECT_EQ(q.initiator, txn);
    EXPECT_EQ(q.holder, (TxnId{1, 4}));
    EXPECT_EQ(q.hops, 3u);
  }
}

TEST(CodecTest, DecodeRejectsBadKind) {
  std::vector<uint8_t> buf = {0xff, 0, 0, 0};
  EXPECT_FALSE(DecodePayload(buf).ok());
}

TEST(CodecTest, DecodeRejectsTrailingGarbage) {
  std::vector<uint8_t> wire = EncodePayload(Payload{Ack{TxnId{0, 1}}});
  wire.push_back(0);
  EXPECT_FALSE(DecodePayload(wire).ok());
}

TEST(CodecTest, DecodeRejectsEveryTruncation) {
  // Chop the encoding of a complex payload at every length: none may
  // crash, and all must fail cleanly.
  std::vector<uint8_t> wire = EncodePayload(
      Payload{PrepareRequest{TxnId{1, 2}, {{3, 4}}, {{5, 6}}, {0, 1}, false}});
  for (size_t len = 0; len < wire.size(); ++len) {
    std::vector<uint8_t> cut(wire.begin(),
                             wire.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodePayload(cut).ok()) << "length " << len;
  }
}

TEST(CodecTest, DecodeRejectsBadEnums) {
  std::vector<uint8_t> wire =
      EncodePayload(Payload{StateReply{TxnId{0, 1}, AcpState::kPrepared}});
  wire.back() = 0x77;  // invalid AcpState
  EXPECT_FALSE(DecodePayload(wire).ok());
}

TEST(CodecTest, FuzzedTruncationsAndBitFlipsNeverCrash) {
  // Hardening property over every message kind: any strict prefix of a
  // valid encoding must fail cleanly, and a randomly bit-flipped wire
  // image must either fail cleanly or decode to a value whose canonical
  // re-encoding decodes again. Nothing may crash or read out of bounds
  // (the sanitizer CI jobs give that clause its teeth).
  Rng rng(20260808);
  for (int k = 0; k < static_cast<int>(MessageKind::kCount); ++k) {
    MessageKind kind = static_cast<MessageKind>(k);
    for (int round = 0; round < 8; ++round) {
      std::optional<Payload> p = RandomPayload(kind, rng);
      ASSERT_TRUE(p.has_value()) << "no generator for kind " << k;

      Message m;
      m.id = rng.Next();
      m.from = static_cast<SiteId>(rng.NextUint(32));
      m.to = static_cast<SiteId>(rng.NextUint(32));
      m.sent_at = static_cast<SimTime>(rng.NextUint(1'000'000'000));
      m.rpc_id = rng.NextBool(0.5) ? rng.Next() : 0;
      m.rpc_is_reply = rng.NextBool(0.5);
      m.payload = *p;

      const std::vector<uint8_t> pay_wire = EncodePayload(*p);
      const std::vector<uint8_t> msg_wire = EncodeMessage(m);

      // (a) Every strict prefix is rejected, at both framing layers.
      for (size_t len = 0; len < pay_wire.size(); ++len) {
        std::vector<uint8_t> cut(pay_wire.begin(),
                                 pay_wire.begin() + static_cast<ptrdiff_t>(len));
        EXPECT_FALSE(DecodePayload(cut).ok())
            << "kind " << k << " payload prefix " << len;
      }
      for (size_t len = 0; len < msg_wire.size(); ++len) {
        std::vector<uint8_t> cut(msg_wire.begin(),
                                 msg_wire.begin() + static_cast<ptrdiff_t>(len));
        EXPECT_FALSE(DecodeMessage(cut).ok())
            << "kind " << k << " message prefix " << len;
      }

      // (b) Bit flips: a flip may land in a benign value byte, so
      // success is allowed — but then the decoded value must survive a
      // canonical re-encode/decode cycle.
      for (int flip = 0; flip < 32; ++flip) {
        std::vector<uint8_t> mut = pay_wire;
        for (uint64_t i = 0, n = 1 + rng.NextUint(3); i < n; ++i) {
          mut[rng.NextUint(mut.size())] ^=
              static_cast<uint8_t>(1u << rng.NextUint(8));
        }
        auto r = DecodePayload(mut);
        if (r.ok()) {
          EXPECT_TRUE(DecodePayload(EncodePayload(*r)).ok())
              << "kind " << k << ": flipped payload decoded but does not "
              << "re-encode canonically";
        }
      }
      for (int flip = 0; flip < 32; ++flip) {
        std::vector<uint8_t> mut = msg_wire;
        for (uint64_t i = 0, n = 1 + rng.NextUint(3); i < n; ++i) {
          mut[rng.NextUint(mut.size())] ^=
              static_cast<uint8_t>(1u << rng.NextUint(8));
        }
        auto r = DecodeMessage(mut);
        if (r.ok()) {
          EXPECT_TRUE(DecodeMessage(EncodeMessage(*r)).ok())
              << "kind " << k << ": flipped message decoded but does not "
              << "re-encode canonically";
        }
      }
    }
  }
}

TEST(CodecTest, FullMessageRoundTrip) {
  Message m;
  m.id = 42;
  m.from = 3;
  m.to = kNameServerId;
  m.sent_at = Millis(17);
  m.payload = NsLookupRequest{TxnId{3, 8}, 5};
  auto decoded = DecodeMessage(EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->from, 3u);
  EXPECT_EQ(decoded->to, kNameServerId);
  EXPECT_EQ(decoded->sent_at, Millis(17));
  EXPECT_EQ(decoded->kind(), MessageKind::kNsLookupRequest);
}

TEST(CodecTest, WholeSystemRunsOverTheWireCodec) {
  // Every protocol message of a busy session is round-tripped through
  // the codec; any lossy or incomplete encoding would break the run.
  SystemConfig system;
  system.seed = 202;
  system.num_sites = 4;
  system.verify_codec = true;
  system.protocols.acp = AcpKind::kThreePhaseCommit;  // widest message mix
  system.AddUniformItems(60, 100, 3);
  WorkloadConfig workload;
  workload.num_txns = 150;
  workload.mpl = 6;
  SessionOptions options;
  options.check_serializability = true;
  auto result = RunSession(system, workload, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->committed, 100u);
}

}  // namespace
}  // namespace rainbow
