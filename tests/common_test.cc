#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/types.h"

namespace rainbow {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing item");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing item");
  EXPECT_EQ(s.ToString(), "not_found: missing item");
}

TEST(ResultTest, HoldsValue) {
  Result<int64_t> r = ParseInt("42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int64_t> r = ParseInt("forty-two");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UintBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(10), 10u);
  }
}

TEST(RngTest, IntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(1);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[z.Sample(rng)]++;
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(ZipfTest, SkewedWhenThetaLarge) {
  Rng rng(2);
  ZipfSampler z(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[z.Sample(rng)]++;
  // Rank 0 must dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50, 5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.95)), 95, 7);
}

TEST(HistogramTest, PercentileZeroIsMin) {
  Histogram h;
  h.Add(37);
  h.Add(9000);
  EXPECT_EQ(h.Percentile(0.0), 37);
  EXPECT_EQ(h.Percentile(1.0), 9000);
}

TEST(HistogramTest, PercentileBoundedByMinMax) {
  // Property: for any recorded data and any quantile, the approximate
  // percentile stays within the exact [min, max] envelope — the bucket
  // upper bound must never leak above max or below min.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Histogram h;
    int n = static_cast<int>(rng.NextInt(1, 200));
    for (int i = 0; i < n; ++i) {
      // Spread across several powers of two to hit many buckets.
      h.Add(rng.NextInt(0, int64_t{1} << rng.NextInt(1, 40)));
    }
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      int64_t p = h.Percentile(q);
      EXPECT_GE(p, h.min()) << "trial " << trial << " q=" << q;
      EXPECT_LE(p, h.max()) << "trial " << trial << " q=" << q;
    }
    EXPECT_EQ(h.Percentile(0.0), h.min()) << "trial " << trial;
  }
}

TEST(HistogramTest, PercentileOfSingleValueIsExact) {
  for (int64_t v : {0, 1, 5, 1000, 123456789}) {
    Histogram h;
    h.Add(v);
    for (double q : {0.0, 0.5, 1.0}) {
      EXPECT_EQ(h.Percentile(q), v) << "v=" << v << " q=" << q;
    }
  }
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 20);
}

TEST(StringUtilTest, SplitAndTrim) {
  auto parts = SplitAndTrim(" a , b ,, c ", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, ParseBool) {
  EXPECT_TRUE(*ParseBool("true"));
  EXPECT_TRUE(*ParseBool("YES"));
  EXPECT_FALSE(*ParseBool("0"));
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(TableTest, RendersAligned) {
  TablePrinter t({"name", "count"});
  t.AddRow({"alpha", "10"});
  t.AddRow({"b", "2"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(TxnIdTest, OrderingAndHash) {
  TxnId a{0, 1}, b{1, 1}, c{0, 2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_EQ(a, (TxnId{0, 1}));
  EXPECT_EQ(a.ToString(), "T1@0");
}

TEST(TxnTimestampTest, TotalOrder) {
  TxnTimestamp a{5, 0}, b{5, 1}, c{6, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_FALSE(b < a);
}

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog log;
  log.Record(1, TraceCategory::kTxn, 0, "hello");
  EXPECT_TRUE(log.events().empty());
  log.set_enabled(true);
  log.Record(2, TraceCategory::kTxn, 0, "world");
  EXPECT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.CountContaining("world"), 1u);
}

}  // namespace
}  // namespace rainbow
