#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "core/config.h"
#include "core/session.h"

namespace rainbow {
namespace {

TEST(ConfigTest, UniformItemsPlacement) {
  SystemConfig cfg;
  cfg.num_sites = 4;
  cfg.AddUniformItems(8, 100, 3);
  ASSERT_EQ(cfg.items.size(), 8u);
  for (const ItemConfig& item : cfg.items) {
    EXPECT_EQ(item.copies.size(), 3u);
    EXPECT_EQ(item.initial, 100);
  }
  // Round-robin placement spreads first copies.
  EXPECT_EQ(cfg.items[0].copies[0], 0u);
  EXPECT_EQ(cfg.items[1].copies[0], 1u);
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, ReplicationDegreeClampedToSites) {
  SystemConfig cfg;
  cfg.num_sites = 2;
  cfg.AddUniformItems(1, 0, 5);
  EXPECT_EQ(cfg.items[0].copies.size(), 2u);
}

TEST(ConfigTest, ValidateCatchesErrors) {
  SystemConfig cfg;
  cfg.num_sites = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.num_sites = 2;
  EXPECT_FALSE(cfg.Validate().ok());  // no items
  cfg.AddUniformItems(1, 0, 2);
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.message_loss = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.message_loss = 0;
  cfg.items[0].copies.push_back(9);  // unknown site
  cfg.items[0].votes.clear();
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, TextRoundTrip) {
  SystemConfig cfg;
  cfg.seed = 777;
  cfg.num_sites = 5;
  cfg.enable_trace = true;
  cfg.latency.distribution = LatencyDistribution::kExponential;
  cfg.latency.mean = Millis(7);
  cfg.latency.regions = {0, 0, 1, 1, 1};
  cfg.latency.inter_region_mean = Millis(30);
  cfg.message_loss = 0.01;
  cfg.protocols.rcp = RcpKind::kRowaAvailable;
  cfg.protocols.cc = CcKind::kMultiversionTso;
  cfg.protocols.deadlock = DeadlockPolicy::kWoundWait;
  cfg.protocols.acp = AcpKind::kThreePhaseCommit;
  cfg.protocols.rcp_broadcast = true;
  cfg.protocols.cache_schema = false;
  cfg.protocols.op_timeout = Millis(123);
  cfg.protocols.readonly_optimization = true;
  cfg.protocols.probe_delay = Millis(9);
  cfg.verify_codec = true;
  ItemConfig item;
  item.name = "accounts";
  item.initial = 1000;
  item.copies = {0, 2, 4};
  item.votes = {2, 1, 1};
  item.read_quorum = 2;
  item.write_quorum = 3;
  cfg.items.push_back(item);
  cfg.AddUniformItems(2, 5, 3);

  std::string text = cfg.ToText();
  auto parsed = SystemConfig::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->seed, 777u);
  EXPECT_EQ(parsed->num_sites, 5u);
  EXPECT_TRUE(parsed->enable_trace);
  EXPECT_EQ(parsed->latency.distribution, LatencyDistribution::kExponential);
  EXPECT_EQ(parsed->latency.mean, Millis(7));
  EXPECT_EQ(parsed->latency.regions, (std::vector<int>{0, 0, 1, 1, 1}));
  EXPECT_EQ(parsed->latency.inter_region_mean, Millis(30));
  EXPECT_DOUBLE_EQ(parsed->message_loss, 0.01);
  EXPECT_EQ(parsed->protocols.rcp, RcpKind::kRowaAvailable);
  EXPECT_EQ(parsed->protocols.cc, CcKind::kMultiversionTso);
  EXPECT_EQ(parsed->protocols.deadlock, DeadlockPolicy::kWoundWait);
  EXPECT_EQ(parsed->protocols.acp, AcpKind::kThreePhaseCommit);
  EXPECT_TRUE(parsed->protocols.rcp_broadcast);
  EXPECT_FALSE(parsed->protocols.cache_schema);
  EXPECT_EQ(parsed->protocols.op_timeout, Millis(123));
  EXPECT_TRUE(parsed->protocols.readonly_optimization);
  EXPECT_EQ(parsed->protocols.probe_delay, Millis(9));
  EXPECT_TRUE(parsed->verify_codec);
  ASSERT_EQ(parsed->items.size(), 3u);
  EXPECT_EQ(parsed->items[0].name, "accounts");
  EXPECT_EQ(parsed->items[0].initial, 1000);
  EXPECT_EQ(parsed->items[0].copies, (std::vector<SiteId>{0, 2, 4}));
  EXPECT_EQ(parsed->items[0].votes, (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(parsed->items[0].read_quorum, 2);
  EXPECT_EQ(parsed->items[0].write_quorum, 3);
  EXPECT_TRUE(parsed->items[1].votes.empty());

  // Round-trip is a fixed point.
  EXPECT_EQ(parsed->ToText(), text);
}

SystemConfig RandomConfig(Rng& rng) {
  SystemConfig cfg;
  cfg.seed = rng.Next();
  cfg.num_sites = static_cast<uint32_t>(rng.NextInt(1, 8));
  cfg.enable_trace = rng.NextBool(0.5);
  cfg.record_history = rng.NextBool(0.5);
  cfg.stats_bucket = Millis(rng.NextInt(1, 1000));
  cfg.trace_enabled = rng.NextBool(0.5);
  cfg.trace_detail = static_cast<TraceDetail>(rng.NextInt(0, 2));

  cfg.latency.distribution = static_cast<LatencyDistribution>(
      rng.NextInt(0, 2));
  cfg.latency.mean = rng.NextInt(1, 100000);
  cfg.latency.min = rng.NextInt(0, 1000);
  cfg.latency.per_kb = rng.NextInt(0, 500);
  cfg.latency.local = rng.NextInt(0, 100);
  if (rng.NextBool(0.3)) {
    for (uint32_t i = 0; i < cfg.num_sites; ++i) {
      cfg.latency.regions.push_back(static_cast<int>(rng.NextUint(3)));
    }
    cfg.latency.inter_region_mean = rng.NextInt(1, 200000);
  }
  // message_loss must survive the 6-decimal text format exactly.
  cfg.message_loss = static_cast<double>(rng.NextInt(0, 500000)) / 1e6;
  cfg.verify_codec = rng.NextBool(0.5);

  cfg.protocols.rcp = static_cast<RcpKind>(rng.NextInt(0, 3));
  cfg.protocols.cc = static_cast<CcKind>(rng.NextInt(0, 3));
  cfg.protocols.deadlock = static_cast<DeadlockPolicy>(rng.NextInt(0, 4));
  cfg.protocols.acp = static_cast<AcpKind>(rng.NextInt(0, 1));
  cfg.protocols.rcp_broadcast = rng.NextBool(0.5);
  cfg.protocols.cache_schema = rng.NextBool(0.5);
  cfg.protocols.cooperative_termination = rng.NextBool(0.5);
  cfg.protocols.recovery_refresh = rng.NextBool(0.5);
  cfg.protocols.readonly_optimization = rng.NextBool(0.5);
  cfg.protocols.ordered_access = rng.NextBool(0.5);
  cfg.protocols.op_timeout = rng.NextInt(1, 1000000);
  cfg.protocols.lock_wait_timeout = rng.NextInt(1, 1000000);
  cfg.protocols.vote_timeout = rng.NextInt(1, 1000000);
  cfg.protocols.decision_timeout = rng.NextInt(1, 1000000);
  cfg.protocols.decision_retry = rng.NextInt(1, 1000000);
  cfg.protocols.active_timeout = rng.NextInt(1, 1000000);
  cfg.protocols.ack_retry = rng.NextInt(1, 1000000);
  cfg.protocols.max_ack_resends = static_cast<int>(rng.NextInt(0, 20));
  cfg.protocols.suspicion_ttl = rng.NextInt(1, 10000000);
  cfg.protocols.termination_window = rng.NextInt(1, 1000000);
  cfg.protocols.probe_delay = rng.NextInt(1, 1000000);
  cfg.protocols.rpc_max_attempts = static_cast<int>(rng.NextInt(0, 10));
  cfg.protocols.rpc_backoff_base = rng.NextInt(1, 100000);
  cfg.protocols.rpc_backoff_cap = rng.NextInt(1, 1000000);

  int num_items = static_cast<int>(rng.NextInt(1, 12));
  for (int i = 0; i < num_items; ++i) {
    ItemConfig item;
    item.name = "it" + std::to_string(i);
    item.initial = rng.NextInt(-1000, 1000);
    int copies = static_cast<int>(rng.NextInt(1, cfg.num_sites));
    for (int c = 0; c < copies; ++c) {
      item.copies.push_back(
          static_cast<SiteId>((i + c) % cfg.num_sites));
    }
    if (rng.NextBool(0.4)) {
      for (int c = 0; c < copies; ++c) {
        item.votes.push_back(static_cast<int>(rng.NextInt(1, 3)));
      }
    }
    item.read_quorum = static_cast<int>(rng.NextUint(3));
    item.write_quorum = static_cast<int>(rng.NextUint(3));
    cfg.items.push_back(item);
  }
  return cfg;
}

TEST(ConfigPropertyTest, SaveParseSaveIsByteIdentical) {
  // Save() normalizes; parsing that normal form and saving again must
  // reproduce it byte for byte for arbitrary configurations. This is
  // the "saved session" contract: a config file written by one session
  // reloads into an equivalent instance in the next.
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    SystemConfig cfg = RandomConfig(rng);
    std::string saved = cfg.ToText();
    auto parsed = SystemConfig::FromText(saved);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial << ": " << parsed.status()
                             << "\n" << saved;
    EXPECT_EQ(parsed->ToText(), saved) << "trial " << trial;
  }
}

TEST(ConfigPropertyTest, TraceKnobsRoundTrip) {
  for (TraceDetail d :
       {TraceDetail::kOff, TraceDetail::kProtocol, TraceDetail::kFull}) {
    SystemConfig cfg;
    cfg.trace_enabled = true;
    cfg.trace_detail = d;
    auto parsed = SystemConfig::FromText(cfg.ToText());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(parsed->trace_enabled);
    EXPECT_EQ(parsed->trace_detail, d);
  }
  EXPECT_FALSE(
      SystemConfig::FromText("[system]\ntrace_detail = loud\n").ok());
}

TEST(ConfigTest, ParserRejectsGarbage) {
  EXPECT_FALSE(SystemConfig::FromText("[system]\nbogus_key = 1\n").ok());
  EXPECT_FALSE(SystemConfig::FromText("[nowhere]\nx = 1\n").ok());
  EXPECT_FALSE(SystemConfig::FromText("[system]\nnot a kv line\n").ok());
  EXPECT_FALSE(
      SystemConfig::FromText("[items]\nitem = too,few,fields\n").ok());
  EXPECT_FALSE(
      SystemConfig::FromText("[protocols]\nrcp = PAXOS\n").ok());
}

TEST(ConfigTest, ParsesAllProtocolNames) {
  for (const char* rcp : {"QC", "ROWA", "ROWA-A", "PRIMARY"}) {
    auto parsed = SystemConfig::FromText(std::string("[protocols]\nrcp = ") +
                                         rcp + "\n");
    EXPECT_TRUE(parsed.ok()) << rcp;
  }
  for (const char* dl :
       {"wait-die", "wound-wait", "local-wfg", "timeout-only",
        "edge-chasing"}) {
    auto parsed = SystemConfig::FromText(
        std::string("[protocols]\ndeadlock = ") + dl + "\n");
    EXPECT_TRUE(parsed.ok()) << dl;
  }
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ConfigTest, ShippedSampleConfigsLoadAndRun) {
  // The files under configs/ must stay loadable — they are the "saved
  // session" artifacts the paper's §4.2 describes.
  for (const char* name :
       {"classroom_default.rainbow", "georeplicated.rainbow"}) {
    std::string text = ReadFileOrEmpty(std::string(RAINBOW_SOURCE_DIR) +
                                       "/configs/" + name);
    ASSERT_FALSE(text.empty()) << name;
    auto cfg = SystemConfig::FromText(text);
    ASSERT_TRUE(cfg.ok()) << name << ": " << cfg.status();
    ASSERT_TRUE(cfg->Validate().ok()) << name;
    // And a short session actually runs on it.
    WorkloadConfig wl;
    wl.num_txns = 20;
    wl.mpl = 2;
    wl.read_fraction = 0.9;  // the geo sample has only 4 hot items
    auto result = RunSession(*cfg, wl);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_GT(result->committed, 10u) << name;
  }
}

TEST(ConfigTest, ParserIgnoresCommentsAndBlanks) {
  auto parsed = SystemConfig::FromText(
      "# a comment\n\n[system]\nseed = 9\n# another\nnum_sites = 2\n"
      "[items]\nitem = x, 0, 0|1, -, 0, 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seed, 9u);
  EXPECT_EQ(parsed->num_sites, 2u);
  ASSERT_EQ(parsed->items.size(), 1u);
}

}  // namespace
}  // namespace rainbow
