// Crash-sweep atomicity across the protocol matrix: for every
// ACP × RCP × CCP combination, sweep a home-site crash across the full
// lifetime of a single write transaction (500µs steps under fixed 1ms
// latency) and assert atomic visibility after recovery — the quorum
// copies either all carry the write or none do, replicas never diverge,
// and no protocol state leaks.

#include <gtest/gtest.h>

#include "core/system.h"
#include "fault/fault_injector.h"

namespace rainbow {
namespace {

struct MatrixCase {
  AcpKind acp;
  RcpKind rcp;
  CcKind cc;
  const char* name;
};

const MatrixCase kCases[] = {
    {AcpKind::kTwoPhaseCommit, RcpKind::kQuorumConsensus,
     CcKind::kTwoPhaseLocking, "2PC_QC_2PL"},
    {AcpKind::kTwoPhaseCommit, RcpKind::kRowa, CcKind::kTwoPhaseLocking,
     "2PC_ROWA_2PL"},
    {AcpKind::kTwoPhaseCommit, RcpKind::kPrimaryCopy,
     CcKind::kTwoPhaseLocking, "2PC_PRIMARY_2PL"},
    {AcpKind::kTwoPhaseCommit, RcpKind::kQuorumConsensus,
     CcKind::kTimestampOrdering, "2PC_QC_TSO"},
    {AcpKind::kTwoPhaseCommit, RcpKind::kQuorumConsensus,
     CcKind::kMultiversionTso, "2PC_QC_MVTO"},
    {AcpKind::kTwoPhaseCommit, RcpKind::kQuorumConsensus,
     CcKind::kOptimistic, "2PC_QC_OCC"},
    {AcpKind::kThreePhaseCommit, RcpKind::kQuorumConsensus,
     CcKind::kTwoPhaseLocking, "3PC_QC_2PL"},
    {AcpKind::kThreePhaseCommit, RcpKind::kRowa, CcKind::kTwoPhaseLocking,
     "3PC_ROWA_2PL"},
};

class CrashMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CrashMatrix, HomeCrashAtomicAcrossLifetime) {
  const MatrixCase& mc = GetParam();
  for (SimTime crash_at = Millis(1); crash_at <= Millis(14);
       crash_at += Micros(500)) {
    SystemConfig cfg;
    cfg.seed = 321;
    cfg.num_sites = 3;
    cfg.latency.distribution = LatencyDistribution::kFixed;
    cfg.latency.mean = Millis(1);
    cfg.latency.per_kb = 0;
    cfg.protocols.acp = mc.acp;
    cfg.protocols.rcp = mc.rcp;
    cfg.protocols.cc = mc.cc;
    cfg.AddFullyReplicatedItems(6, 100);

    auto sys = RainbowSystem::Create(cfg);
    ASSERT_TRUE(sys.ok()) << mc.name;
    RainbowSystem& s = **sys;
    FaultInjector inject(&s);
    inject.Schedule(FaultEvent::Crash(crash_at, 0));
    inject.Schedule(FaultEvent::Recover(Millis(800), 0));

    ASSERT_TRUE(
        s.Submit(0, TxnProgram{{Op::Write(3, 777)}, ""}, nullptr).ok());
    s.RunFor(Seconds(4));

    // Replica agreement at every version.
    ASSERT_TRUE(s.CheckReplicaConsistency(false).ok())
        << mc.name << " crash_at=" << crash_at << ": "
        << s.CheckReplicaConsistency(false).ToString();
    // Atomic visibility: whatever the highest version is, its value is
    // the transaction's write (or the initial value at version 0).
    auto latest = s.LatestCommitted(3);
    ASSERT_TRUE(latest.ok());
    if (latest->version == 0) {
      EXPECT_EQ(latest->value, 100) << mc.name;
    } else {
      EXPECT_EQ(latest->version, 1u) << mc.name;
      EXPECT_EQ(latest->value, 777) << mc.name;
    }
    // No leaked protocol state anywhere.
    for (SiteId id = 0; id < 3; ++id) {
      EXPECT_EQ(s.site(id)->active_coordinators(), 0u)
          << mc.name << " site " << id << " crash_at=" << crash_at;
      EXPECT_EQ(s.site(id)->active_participants(), 0u)
          << mc.name << " site " << id << " crash_at=" << crash_at;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashMatrix, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace rainbow
