// Tests of the edge-chasing (Chandy–Misra–Haas) distributed deadlock
// detector: a genuinely distributed cycle — each transaction holds a
// lock at one site and waits at another — that no site-local policy can
// see, resolved by probes well before any timeout.

#include <gtest/gtest.h>

#include "cc/lock_manager.h"
#include "core/system.h"
#include "verify/history.h"
#include "workload/workload.h"

namespace rainbow {
namespace {

TEST(LockManagerEdgeChasing, WaitingForReportsHolders) {
  LockManager lm(DeadlockPolicy::kEdgeChasing);
  TxnId t1{0, 1}, t2{1, 1}, t3{2, 1};
  lm.RequestWrite(t1, TxnTimestamp{1, 0}, 7, [](const CcGrant&) {});
  bool t2_pending = true;
  lm.RequestWrite(t2, TxnTimestamp{2, 1}, 7,
                  [&](const CcGrant&) { t2_pending = false; });
  EXPECT_TRUE(t2_pending);
  auto waits = lm.WaitingFor(t2);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0], t1);
  // t3 queues behind t2: waits for the holder AND the queued-ahead t2.
  lm.RequestWrite(t3, TxnTimestamp{3, 2}, 7, [](const CcGrant&) {});
  auto waits3 = lm.WaitingFor(t3);
  EXPECT_EQ(waits3.size(), 2u);
  // Non-blocked transactions wait for nobody.
  EXPECT_TRUE(lm.WaitingFor(t1).empty());
  EXPECT_TRUE(lm.WaitingFor(TxnId{9, 9}).empty());
}

class EdgeChasingTest : public ::testing::Test {
 protected:
  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.seed = 77;
    cfg.num_sites = 2;
    cfg.latency.distribution = LatencyDistribution::kFixed;
    cfg.latency.mean = Millis(1);
    cfg.enable_trace = true;
    cfg.protocols.deadlock = DeadlockPolicy::kEdgeChasing;
    cfg.protocols.probe_delay = Millis(5);
    // Long fallback timeouts: if probes fail, the test's own deadline
    // catches it long before these fire.
    cfg.protocols.lock_wait_timeout = Seconds(30);
    cfg.protocols.op_timeout = Seconds(60);
    // Two single-copy items, one per site: T-a locks x(at site 0) then
    // wants y(at site 1); T-b locks y then wants x.
    ItemConfig x;
    x.name = "x";
    x.initial = 0;
    x.copies = {0};
    cfg.items.push_back(x);
    ItemConfig y;
    y.name = "y";
    y.initial = 0;
    y.copies = {1};
    cfg.items.push_back(y);
    return cfg;
  }
};

TEST_F(EdgeChasingTest, ResolvesDistributedCycle) {
  auto sys = RainbowSystem::Create(Config());
  ASSERT_TRUE(sys.ok()) << sys.status();
  RainbowSystem& s = **sys;

  TxnOutcome out_a, out_b;
  bool done_a = false, done_b = false;
  // T-a homed at 0: writes x (local grant) then y.
  TxnProgram a;
  a.ops = {Op::Write(0, 1), Op::Write(1, 1)};
  // T-b homed at 1: writes y (local grant) then x.
  TxnProgram b;
  b.ops = {Op::Write(1, 2), Op::Write(0, 2)};

  ASSERT_TRUE(s.Submit(0, a, [&](const TxnOutcome& o) {
                 out_a = o;
                 done_a = true;
               }).ok());
  ASSERT_TRUE(s.Submit(1, b, [&](const TxnOutcome& o) {
                 out_b = o;
                 done_b = true;
               }).ok());
  // Probes must break the cycle within tens of milliseconds — far
  // below the 30s lock-wait fallback.
  s.RunFor(Millis(500));
  ASSERT_TRUE(done_a && done_b) << "deadlock was not broken by probes";
  // At least one of the two died as a deadlock victim; they cannot both
  // have committed.
  EXPECT_FALSE(out_a.committed && out_b.committed);
  int aborted_by_probe =
      (!out_a.committed &&
       out_a.abort_detail.find("deadlock") != std::string::npos) +
      (!out_b.committed &&
       out_b.abort_detail.find("deadlock") != std::string::npos);
  EXPECT_GE(aborted_by_probe, 1) << out_a.ToString() << " / "
                                 << out_b.ToString();
  // Probe traffic actually flowed.
  const NetworkStats& net = s.net().stats();
  EXPECT_GT(net.by_kind[static_cast<size_t>(MessageKind::kDeadlockProbe)],
            0u);
  EXPECT_GT(
      net.by_kind[static_cast<size_t>(MessageKind::kDeadlockProbeCheck)], 0u);
  // Locks were released: a follow-up transaction touching both items
  // commits quickly.
  bool follow_up = false;
  TxnProgram c;
  c.ops = {Op::Write(0, 9), Op::Write(1, 9)};
  ASSERT_TRUE(s.Submit(0, c,
                       [&](const TxnOutcome& o) { follow_up = o.committed; })
                  .ok());
  s.RunFor(Millis(500));
  EXPECT_TRUE(follow_up);
}

TEST_F(EdgeChasingTest, NoFalsePositivesOnPlainContention) {
  // A chain (no cycle): many writers of the same item. Probes flow but
  // nobody should be aborted as a deadlock victim.
  SystemConfig cfg = Config();
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Blind writes only: concurrent increments would S->X upgrade into a
  // *real* deadlock; a pure writer chain has no cycle.
  int committed = 0, aborted = 0;
  for (int i = 0; i < 5; ++i) {
    TxnProgram p;
    p.ops = {Op::Write(0, i + 1)};
    ASSERT_TRUE(s.Submit(static_cast<SiteId>(i % 2), p,
                         [&](const TxnOutcome& o) {
                           (o.committed ? committed : aborted)++;
                         })
                    .ok());
  }
  s.RunFor(Seconds(2));
  EXPECT_EQ(committed, 5);
  EXPECT_EQ(aborted, 0);
  EXPECT_EQ(s.LatestCommitted(0)->version, 5u);
}

TEST_F(EdgeChasingTest, OrderedAccessPreventsTheCycleEntirely) {
  // The same two transactions that deadlock in ResolvesDistributedCycle
  // cannot deadlock under conservative ordered access: both acquire
  // item 0 before item 1, so the waits form a chain, never a cycle —
  // and both commit.
  SystemConfig cfg = Config();
  cfg.protocols.deadlock = DeadlockPolicy::kTimeoutOnly;  // no detector
  cfg.protocols.ordered_access = true;
  cfg.protocols.lock_wait_timeout = Seconds(30);  // nothing should trip it
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;

  TxnOutcome out_a, out_b;
  bool done_a = false, done_b = false;
  TxnProgram a;
  a.ops = {Op::Write(0, 1), Op::Write(1, 1)};
  TxnProgram b;
  b.ops = {Op::Write(1, 2), Op::Write(0, 2)};  // reversed program order
  ASSERT_TRUE(s.Submit(0, a, [&](const TxnOutcome& o) {
                 out_a = o;
                 done_a = true;
               }).ok());
  ASSERT_TRUE(s.Submit(1, b, [&](const TxnOutcome& o) {
                 out_b = o;
                 done_b = true;
               }).ok());
  s.RunFor(Millis(500));
  ASSERT_TRUE(done_a && done_b);
  EXPECT_TRUE(out_a.committed) << out_a.ToString();
  EXPECT_TRUE(out_b.committed) << out_b.ToString();
  // No probes were even needed.
  EXPECT_EQ(s.net().stats().by_kind[static_cast<size_t>(
                MessageKind::kDeadlockProbe)],
            0u);
}

TEST_F(EdgeChasingTest, OrderedAccessPreservesClientSemantics) {
  // Read values come back in PROGRAM order even though execution was
  // reordered by item id.
  SystemConfig cfg = Config();
  cfg.protocols.ordered_access = true;
  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  // Seed distinct values.
  ASSERT_TRUE(
      s.Submit(0, TxnProgram{{Op::Write(0, 111), Op::Write(1, 222)}, ""},
               nullptr)
          .ok());
  s.RunFor(Millis(200));

  TxnOutcome out;
  bool done = false;
  TxnProgram p;
  // Program reads y (item 1) FIRST, then x (item 0); execution order
  // flips them, but reads[0] must still be y's value.
  p.ops = {Op::Read(1), Op::Read(0), Op::Increment(1, 1)};
  ASSERT_TRUE(s.Submit(1, p, [&](const TxnOutcome& o) {
                 out = o;
                 done = true;
               }).ok());
  s.RunFor(Millis(300));
  ASSERT_TRUE(done);
  ASSERT_TRUE(out.committed);
  ASSERT_EQ(out.reads.size(), 3u);
  EXPECT_EQ(out.reads[0], 222);  // R(y) — program order preserved
  EXPECT_EQ(out.reads[1], 111);  // R(x)
  EXPECT_EQ(out.reads[2], 222);  // I(y) observed y before incrementing
  EXPECT_EQ(s.LatestCommitted(1)->value, 223);
}

TEST_F(EdgeChasingTest, SerializableUnderContendedWorkload) {
  // Whole-system soak with the edge-chasing policy: cycles form and are
  // broken; the usual invariants must hold.
  SystemConfig cfg;
  cfg.seed = 78;
  cfg.num_sites = 4;
  cfg.record_history = true;
  cfg.protocols.deadlock = DeadlockPolicy::kEdgeChasing;
  cfg.protocols.probe_delay = Millis(5);
  cfg.protocols.lock_wait_timeout = Millis(200);
  cfg.AddUniformItems(15, 0, 3);

  auto sys = RainbowSystem::Create(cfg);
  ASSERT_TRUE(sys.ok());
  RainbowSystem& s = **sys;
  WorkloadConfig wl;
  wl.seed = 79;
  wl.num_txns = 120;
  wl.mpl = 8;
  wl.read_fraction = 0.4;
  WorkloadGenerator wlg(&s, wl);
  bool done = false;
  wlg.Run([&] { done = true; });
  s.RunFor(Seconds(120));
  ASSERT_TRUE(done);
  s.RunFor(Seconds(2));

  EXPECT_TRUE(CheckConflictSerializable(s.history().transactions()).ok());
  EXPECT_TRUE(s.CheckReplicaConsistency(false).ok());
  for (SiteId id = 0; id < 4; ++id) {
    EXPECT_EQ(s.site(id)->active_coordinators(), 0u);
    EXPECT_EQ(s.site(id)->active_participants(), 0u);
  }
  EXPECT_GT(s.monitor().committed(), 30u);
}

}  // namespace
}  // namespace rainbow
